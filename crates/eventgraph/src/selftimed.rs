//! Self-timed (as-soon-as-possible) execution of a timed event graph.
//!
//! Under self-timed execution every transition fires as soon as all of its
//! input places hold a token.  A classical result states that the firing times
//! then become periodic (after a transient) with period equal to the maximum
//! cycle ratio of the graph; this module provides the explicit execution so
//! the analytic ratio computed by
//! [`TimedEventGraph::max_cycle_ratio`](crate::TimedEventGraph::max_cycle_ratio)
//! can be cross-validated experimentally.

use crate::error::EventGraphError;
use crate::graph::TimedEventGraph;

/// The firing times produced by a self-timed execution.
#[derive(Clone, Debug, PartialEq)]
pub struct SelfTimedRun {
    /// `starts[t][k]` is the start time of the `k`-th firing of transition `t`.
    pub starts: Vec<Vec<f64>>,
}

impl SelfTimedRun {
    /// Number of iterations executed.
    pub fn iterations(&self) -> usize {
        self.starts.first().map_or(0, Vec::len)
    }

    /// Estimates the asymptotic period from the tail of the execution:
    /// the largest per-transition average inter-firing distance over the last
    /// half of the run.
    pub fn asymptotic_period(&self) -> f64 {
        let iters = self.iterations();
        if iters < 2 {
            return 0.0;
        }
        let window = (iters / 2).max(1);
        let last = iters - 1;
        let first = last - window;
        self.starts
            .iter()
            .map(|s| (s[last] - s[first]) / window as f64)
            .fold(0.0, f64::max)
    }
}

impl TimedEventGraph {
    /// Executes the graph self-timed for `iterations` firings of every transition.
    ///
    /// Fails if a token-free cycle with positive duration exists (the firing
    /// times would not be defined).
    pub fn self_timed(&self, iterations: usize) -> Result<SelfTimedRun, EventGraphError> {
        self.validate()?;
        if let Some(cycle) = self.find_zero_token_cycle() {
            return Err(EventGraphError::ZeroTokenCycle { cycle });
        }
        let n = self.n();
        let mut starts = vec![vec![0.0f64; iterations]; n];
        for k in 0..iterations {
            // Within one iteration the zero-token arcs form an acyclic
            // dependency structure (positive-duration token-free cycles were
            // rejected above); a bounded relaxation reaches the fixpoint.
            // Initialise from cross-iteration arcs first.
            for t in 0..n {
                let mut start = 0.0f64;
                for arc in self.in_arcs(t) {
                    let h = arc.tokens as usize;
                    if h > 0 && k >= h {
                        start = start.max(starts[arc.from][k - h] + self.duration(arc.from));
                    }
                }
                starts[t][k] = start;
            }
            let mut changed = true;
            let mut passes = 0usize;
            while changed && passes <= n {
                changed = false;
                passes += 1;
                for t in 0..n {
                    let mut start = starts[t][k];
                    for arc in self.in_arcs(t) {
                        if arc.tokens == 0 {
                            let candidate = starts[arc.from][k] + self.duration(arc.from);
                            if candidate > start + 1e-15 {
                                start = candidate;
                            }
                        }
                    }
                    if start > starts[t][k] {
                        starts[t][k] = start;
                        changed = true;
                    }
                }
            }
        }
        Ok(SelfTimedRun { starts })
    }

    /// Convenience wrapper: runs a self-timed execution and returns the
    /// asymptotic period estimate.
    pub fn self_timed_period(&self, iterations: usize) -> Result<f64, EventGraphError> {
        Ok(self.self_timed(iterations)?.asymptotic_period())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_period_matches_ratio() {
        let mut g = TimedEventGraph::with_durations(vec![1.0, 2.0]);
        g.add_arc(0, 1, 0).unwrap();
        g.add_arc(1, 0, 1).unwrap();
        // ratio = 3 / 1 = 3
        let analytic = g.min_period().unwrap();
        let measured = g.self_timed_period(64).unwrap();
        assert!((analytic - 3.0).abs() < 1e-9);
        assert!((measured - analytic).abs() < 1e-6);
    }

    #[test]
    fn pipeline_with_tokens_reaches_bottleneck_rate() {
        // Three-stage pipeline where every stage has a self-loop token
        // (it cannot overlap with itself); the slowest stage dictates the period.
        let mut g = TimedEventGraph::with_durations(vec![1.0, 4.0, 2.0]);
        g.add_arc(0, 1, 0).unwrap();
        g.add_arc(1, 2, 0).unwrap();
        for t in 0..3 {
            g.add_arc(t, t, 1).unwrap();
        }
        let analytic = g.min_period().unwrap();
        assert!((analytic - 4.0).abs() < 1e-9);
        let measured = g.self_timed_period(128).unwrap();
        assert!((measured - 4.0).abs() < 1e-6);
    }

    #[test]
    fn two_coupled_cycles_period_is_max() {
        let mut g = TimedEventGraph::with_durations(vec![2.0, 3.0, 5.0]);
        // cycle 1: 0 <-> 1, 2 tokens, ratio (2+3)/2 = 2.5
        g.add_arc(0, 1, 1).unwrap();
        g.add_arc(1, 0, 1).unwrap();
        // cycle 2: 1 <-> 2, 2 tokens, ratio (3+5)/2 = 4
        g.add_arc(1, 2, 1).unwrap();
        g.add_arc(2, 1, 1).unwrap();
        let analytic = g.min_period().unwrap();
        assert!((analytic - 4.0).abs() < 1e-9);
        let measured = g.self_timed_period(256).unwrap();
        assert!((measured - 4.0).abs() < 1e-5);
    }

    #[test]
    fn zero_iterations_and_short_runs() {
        let mut g = TimedEventGraph::with_durations(vec![1.0]);
        g.add_arc(0, 0, 1).unwrap();
        let run = g.self_timed(0).unwrap();
        assert_eq!(run.iterations(), 0);
        assert_eq!(run.asymptotic_period(), 0.0);
        let run = g.self_timed(1).unwrap();
        assert_eq!(run.iterations(), 1);
        assert_eq!(run.asymptotic_period(), 0.0);
    }

    #[test]
    fn token_free_cycle_rejected() {
        let mut g = TimedEventGraph::with_durations(vec![1.0, 1.0]);
        g.add_arc(0, 1, 0).unwrap();
        g.add_arc(1, 0, 0).unwrap();
        assert!(g.self_timed(4).is_err());
    }

    #[test]
    fn earliest_schedule_consistency_with_selftimed() {
        // In steady state the self-timed start times of consecutive iterations
        // differ by the period; the earliest schedule at that period must exist.
        let mut g = TimedEventGraph::with_durations(vec![1.0, 2.0, 3.0]);
        g.add_arc(0, 1, 0).unwrap();
        g.add_arc(1, 2, 0).unwrap();
        g.add_arc(2, 0, 2).unwrap();
        let p = g.min_period().unwrap();
        assert!((p - 3.0).abs() < 1e-9);
        assert!(g.earliest_schedule(p).is_some());
        let measured = g.self_timed_period(128).unwrap();
        assert!(measured <= p + 1e-6);
    }
}
