//! # fsw-eventgraph — timed event graphs for cyclic schedule analysis
//!
//! Substrate crate of the filtering-streaming-workflow reproduction: timed
//! event graphs (timed marked graphs), their **maximum cycle ratio** — the
//! minimum feasible period of the cyclic schedule they describe — earliest
//! firing schedules for a given period, and self-timed (ASAP) execution.
//!
//! The one-port communication models of the paper (`INORDER`, `OUTORDER`)
//! yield, once the communication orderings of each server are fixed, exactly
//! this kind of uniform cyclic precedence system; the scheduler crate
//! (`fsw-sched`) builds the event graph and this crate answers "what period
//! does that ordering achieve?".
//!
//! ```
//! use fsw_eventgraph::TimedEventGraph;
//!
//! // A two-stage pipeline where each stage needs 2 (resp. 3) time units and
//! // cannot overlap with itself.
//! let mut g = TimedEventGraph::with_durations(vec![2.0, 3.0]);
//! g.add_arc(0, 1, 0).unwrap();      // stage 0 feeds stage 1 (same data set)
//! g.add_arc(0, 0, 1).unwrap();      // stage 0 is busy until its previous firing finished
//! g.add_arc(1, 1, 1).unwrap();
//! assert_eq!(g.min_period().unwrap(), 3.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cycle_ratio;
pub mod error;
pub mod graph;
pub mod selftimed;

pub use cycle_ratio::CycleRatio;
pub use error::EventGraphError;
pub use graph::{Arc, TimedEventGraph};
pub use selftimed::SelfTimedRun;
