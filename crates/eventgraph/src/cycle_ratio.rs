//! Maximum cycle ratio and periodic schedules of timed event graphs.
//!
//! The minimum feasible period of a cyclic schedule described by a timed event
//! graph equals its **maximum cycle ratio**
//! `max_C  Σ_{t ∈ C} duration(t) / Σ_{a ∈ C} tokens(a)`.
//! This module computes it by Lawler's parametric search (binary search on the
//! candidate period `λ`, positive-cycle detection by Bellman–Ford on the arc
//! weights `duration(from) − λ·tokens`), then reads the exact ratio off an
//! explicit critical cycle so the returned value is accurate to the float
//! arithmetic of the cycle sums rather than to the binary-search tolerance.

use crate::error::EventGraphError;
use crate::graph::TimedEventGraph;

/// Result of a maximum cycle ratio computation.
#[derive(Clone, Debug, PartialEq)]
pub struct CycleRatio {
    /// The maximum ratio (the minimum feasible period of the schedule).
    pub ratio: f64,
    /// The transitions of one critical cycle, in order.
    pub cycle: Vec<usize>,
}

/// Tolerance used to stop the parametric binary search.
const SEARCH_TOLERANCE: f64 = 1e-12;
/// Tolerance used when comparing float weights during cycle detection.
const WEIGHT_EPSILON: f64 = 1e-12;

impl TimedEventGraph {
    /// Computes the maximum cycle ratio of the graph.
    ///
    /// Returns `Ok(None)` if the graph has no cycle constraining the period
    /// (every positive period is then feasible), and an error if a token-free
    /// cycle with positive duration exists (no finite period is feasible).
    pub fn max_cycle_ratio(&self) -> Result<Option<CycleRatio>, EventGraphError> {
        self.validate()?;
        if let Some(cycle) = self.find_zero_token_cycle() {
            return Err(EventGraphError::ZeroTokenCycle { cycle });
        }
        if self.n() == 0 || self.arc_count() == 0 {
            return Ok(None);
        }
        // Feasible at λ = 0 means every cycle has zero total duration: nothing
        // constrains the period.
        if self.positive_cycle(0.0).is_none() {
            return Ok(None);
        }
        let mut lo = 0.0f64;
        let mut hi = self.total_duration().max(1.0);
        // Make sure `hi` really is feasible (it is by construction: any cycle
        // has duration ≤ total_duration and at least one token), then shrink.
        debug_assert!(self.positive_cycle(hi + 1.0).is_none());
        let mut hi_feasible = hi;
        while hi_feasible - lo > SEARCH_TOLERANCE * hi_feasible.max(1.0) {
            let mid = 0.5 * (lo + hi_feasible);
            if self.positive_cycle(mid).is_some() {
                lo = mid;
            } else {
                hi_feasible = mid;
            }
        }
        hi = hi_feasible;
        // Extract a critical cycle on the infeasible side and refine: the
        // extracted cycle's exact ratio is a lower bound on the optimum that
        // keeps improving until no strictly better cycle exists.
        let mut best: Option<CycleRatio> = None;
        let mut probe = lo;
        for _ in 0..16 {
            match self.positive_cycle(probe) {
                Some(cycle) => {
                    let ratio = self.cycle_ratio_of(&cycle);
                    let improved = best.as_ref().is_none_or(|b| ratio > b.ratio);
                    if improved {
                        best = Some(CycleRatio { ratio, cycle });
                    }
                    // Probe just above the best ratio found so far.
                    probe = ratio * (1.0 + 1e-12) + 1e-15;
                    if probe > hi {
                        break;
                    }
                }
                None => break,
            }
        }
        match best {
            Some(b) => Ok(Some(b)),
            None => {
                // The binary search said infeasible below `hi` but no cycle was
                // extracted at `lo`; fall back to the search bound.
                Ok(Some(CycleRatio {
                    ratio: hi,
                    cycle: Vec::new(),
                }))
            }
        }
    }

    /// Minimum feasible period of the schedule (0 when nothing constrains it).
    pub fn min_period(&self) -> Result<f64, EventGraphError> {
        Ok(self.max_cycle_ratio()?.map_or(0.0, |c| c.ratio))
    }

    /// Exact ratio of an explicit cycle (transition list).
    pub fn cycle_ratio_of(&self, cycle: &[usize]) -> f64 {
        if cycle.is_empty() {
            return 0.0;
        }
        let duration: f64 = cycle.iter().map(|&t| self.duration(t)).sum();
        // Sum the tokens along consecutive arcs of the cycle, choosing for
        // every hop the arc with the fewest tokens (parallel arcs are allowed).
        let mut tokens = 0u64;
        for w in 0..cycle.len() {
            let from = cycle[w];
            let to = cycle[(w + 1) % cycle.len()];
            let min_tokens = self
                .out_arcs(from)
                .filter(|a| a.to == to)
                .map(|a| a.tokens)
                .min()
                .unwrap_or(0);
            tokens += u64::from(min_tokens);
        }
        if tokens == 0 {
            f64::INFINITY
        } else {
            duration / tokens as f64
        }
    }

    /// Searches for a cycle with strictly positive weight under the parametric
    /// weights `duration(from) − λ·tokens`; returns its transitions if found.
    ///
    /// A positive cycle exists iff the period `λ` is *infeasible*.
    pub fn positive_cycle(&self, lambda: f64) -> Option<Vec<usize>> {
        let n = self.n();
        if n == 0 {
            return None;
        }
        let mut dist = vec![0.0f64; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut updated_node = None;
        for _pass in 0..n {
            updated_node = None;
            for arc in self.arcs() {
                let w = self.duration(arc.from) - lambda * f64::from(arc.tokens);
                if dist[arc.from] + w > dist[arc.to] + WEIGHT_EPSILON {
                    dist[arc.to] = dist[arc.from] + w;
                    pred[arc.to] = Some(arc.from);
                    updated_node = Some(arc.to);
                }
            }
            updated_node?;
        }
        // A relaxation happened on the n-th pass: walk the predecessor chain n
        // steps to land inside a positive cycle, then collect it.
        let mut v = updated_node.expect("checked above");
        for _ in 0..n {
            v = pred[v].expect("predecessor chain broken");
        }
        let start = v;
        let mut cycle = vec![start];
        let mut cur = pred[start].expect("cycle node has a predecessor");
        while cur != start {
            cycle.push(cur);
            cur = pred[cur].expect("cycle node has a predecessor");
        }
        cycle.reverse();
        Some(cycle)
    }

    /// Earliest-start schedule of one iteration for a given period `λ`:
    /// start times `s` such that `s[to] ≥ s[from] + duration(from) − λ·tokens`
    /// for every arc, normalised so the earliest start is 0.
    ///
    /// Returns `None` if `λ` is infeasible (smaller than the maximum cycle ratio).
    pub fn earliest_schedule(&self, lambda: f64) -> Option<Vec<f64>> {
        let n = self.n();
        let mut dist = vec![0.0f64; n];
        let mut changed = true;
        for _pass in 0..n {
            changed = false;
            for arc in self.arcs() {
                let w = self.duration(arc.from) - lambda * f64::from(arc.tokens);
                if dist[arc.from] + w > dist[arc.to] + WEIGHT_EPSILON {
                    dist[arc.to] = dist[arc.from] + w;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if changed {
            // Still relaxing after n passes: positive cycle, λ infeasible.
            return None;
        }
        let min = dist.iter().copied().fold(f64::INFINITY, f64::min);
        if min.is_finite() && min != 0.0 {
            for d in &mut dist {
                *d -= min;
            }
        }
        Some(dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single cycle a -> b -> a with 2 tokens total: ratio = (1+2)/2.
    #[test]
    fn single_cycle_ratio() {
        let mut g = TimedEventGraph::with_durations(vec![1.0, 2.0]);
        g.add_arc(0, 1, 1).unwrap();
        g.add_arc(1, 0, 1).unwrap();
        let r = g.max_cycle_ratio().unwrap().unwrap();
        assert!((r.ratio - 1.5).abs() < 1e-9);
        assert_eq!(r.cycle.len(), 2);
        assert!((g.min_period().unwrap() - 1.5).abs() < 1e-9);
    }

    /// Two cycles with different ratios: the larger one wins.
    #[test]
    fn two_cycles_max_wins() {
        let mut g = TimedEventGraph::with_durations(vec![3.0, 1.0, 2.0, 2.0]);
        // cycle A: 0 -> 1 -> 0, 2 tokens, duration 4, ratio 2
        g.add_arc(0, 1, 1).unwrap();
        g.add_arc(1, 0, 1).unwrap();
        // cycle B: 2 -> 3 -> 2, 1 token, duration 4, ratio 4
        g.add_arc(2, 3, 0).unwrap();
        g.add_arc(3, 2, 1).unwrap();
        let r = g.max_cycle_ratio().unwrap().unwrap();
        assert!((r.ratio - 4.0).abs() < 1e-9);
        assert_eq!(r.cycle.len(), 2);
        assert!(r.cycle.contains(&2) && r.cycle.contains(&3));
    }

    /// A fractional critical ratio is recovered exactly from the cycle sums.
    #[test]
    fn fractional_ratio_exact() {
        let mut g = TimedEventGraph::with_durations(vec![7.0, 6.0, 7.0]);
        // one cycle over the three transitions, 3 tokens: ratio 20/3
        g.add_arc(0, 1, 1).unwrap();
        g.add_arc(1, 2, 1).unwrap();
        g.add_arc(2, 0, 1).unwrap();
        let r = g.max_cycle_ratio().unwrap().unwrap();
        assert_eq!(r.ratio, 20.0 / 3.0);
    }

    #[test]
    fn acyclic_graph_unconstrained() {
        let mut g = TimedEventGraph::with_durations(vec![1.0, 1.0, 1.0]);
        g.add_arc(0, 1, 0).unwrap();
        g.add_arc(1, 2, 0).unwrap();
        assert_eq!(g.max_cycle_ratio().unwrap(), None);
        assert_eq!(g.min_period().unwrap(), 0.0);
    }

    #[test]
    fn zero_token_cycle_is_an_error() {
        let mut g = TimedEventGraph::with_durations(vec![1.0, 1.0]);
        g.add_arc(0, 1, 0).unwrap();
        g.add_arc(1, 0, 0).unwrap();
        assert!(matches!(
            g.max_cycle_ratio(),
            Err(EventGraphError::ZeroTokenCycle { .. })
        ));
    }

    #[test]
    fn self_loop_cycle() {
        let mut g = TimedEventGraph::with_durations(vec![5.0]);
        g.add_arc(0, 0, 2).unwrap();
        let r = g.max_cycle_ratio().unwrap().unwrap();
        assert!((r.ratio - 2.5).abs() < 1e-9);
        assert_eq!(r.cycle, vec![0]);
    }

    #[test]
    fn earliest_schedule_respects_constraints() {
        let mut g = TimedEventGraph::with_durations(vec![2.0, 3.0, 1.0]);
        g.add_arc(0, 1, 0).unwrap();
        g.add_arc(1, 2, 0).unwrap();
        g.add_arc(2, 0, 1).unwrap();
        // ratio = 6 / 1 = 6
        let r = g.min_period().unwrap();
        assert!((r - 6.0).abs() < 1e-9);
        let s = g.earliest_schedule(6.0).unwrap();
        assert!(s[1] >= s[0] + 2.0 - 1e-9);
        assert!(s[2] >= s[1] + 3.0 - 1e-9);
        assert!(s[0] >= s[2] + 1.0 - 6.0 - 1e-9);
        assert!(g.earliest_schedule(5.9).is_none());
        // A larger period is also feasible.
        assert!(g.earliest_schedule(10.0).is_some());
    }

    #[test]
    fn parallel_arcs_use_fewest_tokens() {
        let mut g = TimedEventGraph::with_durations(vec![4.0, 4.0]);
        g.add_arc(0, 1, 0).unwrap();
        g.add_arc(0, 1, 3).unwrap();
        g.add_arc(1, 0, 1).unwrap();
        // Tightest cycle uses the 0-token arc: ratio 8 / 1 = 8.
        let r = g.max_cycle_ratio().unwrap().unwrap();
        assert!((r.ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = TimedEventGraph::new();
        assert_eq!(g.max_cycle_ratio().unwrap(), None);
    }
}
