//! Timed event graphs (timed marked graphs).
//!
//! A timed event graph is a Petri net in which every place has exactly one
//! input and one output transition; it is represented here directly as a
//! multigraph whose nodes are **transitions** (each with a firing duration)
//! and whose arcs carry an initial **token count**.
//!
//! Cyclic schedules map naturally onto this structure: transition `t` models a
//! recurring operation (a computation or a communication), an arc `s → t`
//! with `h` tokens models the *uniform precedence constraint*
//! `start_t(n) ≥ start_s(n − h) + duration_s` for all iterations `n`.
//! The minimum feasible period of such a system is its **maximum cycle
//! ratio**: the maximum over all directed cycles of (total duration of the
//! transitions on the cycle) / (total token count of the cycle).

use crate::error::EventGraphError;

/// An arc of a timed event graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Arc {
    /// Source transition.
    pub from: usize,
    /// Target transition.
    pub to: usize,
    /// Initial marking of the place between `from` and `to` (in scheduling
    /// terms: how many iterations earlier the source occurrence is).
    pub tokens: u32,
}

/// A timed event graph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimedEventGraph {
    durations: Vec<f64>,
    arcs: Vec<Arc>,
    out_adj: Vec<Vec<usize>>, // indices into `arcs`
    in_adj: Vec<Vec<usize>>,
}

impl TimedEventGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TimedEventGraph::default()
    }

    /// Creates a graph with the given transition durations and no arcs.
    pub fn with_durations(durations: Vec<f64>) -> Self {
        let n = durations.len();
        TimedEventGraph {
            durations,
            arcs: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        }
    }

    /// Adds a transition with the given firing duration and returns its index.
    pub fn add_transition(&mut self, duration: f64) -> usize {
        self.durations.push(duration);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        self.durations.len() - 1
    }

    /// Adds an arc `from → to` carrying `tokens` initial tokens.
    pub fn add_arc(&mut self, from: usize, to: usize, tokens: u32) -> Result<(), EventGraphError> {
        let n = self.durations.len();
        if from >= n {
            return Err(EventGraphError::InvalidTransition { id: from, n });
        }
        if to >= n {
            return Err(EventGraphError::InvalidTransition { id: to, n });
        }
        let idx = self.arcs.len();
        self.arcs.push(Arc { from, to, tokens });
        self.out_adj[from].push(idx);
        self.in_adj[to].push(idx);
        Ok(())
    }

    /// Number of transitions.
    pub fn n(&self) -> usize {
        self.durations.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Firing duration of a transition.
    pub fn duration(&self, t: usize) -> f64 {
        self.durations[t]
    }

    /// All arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Arcs leaving a transition.
    pub fn out_arcs(&self, t: usize) -> impl Iterator<Item = &Arc> + '_ {
        self.out_adj[t].iter().map(move |&i| &self.arcs[i])
    }

    /// Arcs entering a transition.
    pub fn in_arcs(&self, t: usize) -> impl Iterator<Item = &Arc> + '_ {
        self.in_adj[t].iter().map(move |&i| &self.arcs[i])
    }

    /// Checks that every duration is finite and non-negative.
    pub fn validate(&self) -> Result<(), EventGraphError> {
        for (id, &d) in self.durations.iter().enumerate() {
            let duration_ok = d.is_finite() && d >= 0.0;
            if !duration_ok {
                return Err(EventGraphError::InvalidDuration { id, duration: d });
            }
        }
        Ok(())
    }

    /// Total duration of all transitions (a trivial upper bound on any cycle's duration).
    pub fn total_duration(&self) -> f64 {
        self.durations.iter().sum()
    }

    /// Searches for a cycle made only of zero-token arcs whose total transition
    /// duration is strictly positive; returns it if one exists.
    ///
    /// Such a cycle makes the period infinite (the operations of one single
    /// iteration depend circularly on each other).
    pub fn find_zero_token_cycle(&self) -> Option<Vec<usize>> {
        // DFS over the subgraph of zero-token arcs looking for any cycle, then
        // check whether its duration is positive.  Zero-duration cycles are
        // harmless (degenerate simultaneous events) and are ignored.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let n = self.n();
        let mut mark = vec![Mark::White; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        for root in 0..n {
            if mark[root] != Mark::White {
                continue;
            }
            // Iterative DFS with an explicit stack of (node, next arc index).
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            mark[root] = Mark::Grey;
            while let Some(&(v, next)) = stack.last() {
                let arcs = &self.out_adj[v];
                if next >= arcs.len() {
                    mark[v] = Mark::Black;
                    stack.pop();
                    continue;
                }
                stack.last_mut().expect("non-empty stack").1 += 1;
                let arc = &self.arcs[arcs[next]];
                if arc.tokens > 0 {
                    continue;
                }
                let w = arc.to;
                match mark[w] {
                    Mark::White => {
                        mark[w] = Mark::Grey;
                        parent[w] = Some(v);
                        stack.push((w, 0));
                    }
                    Mark::Grey => {
                        // Found a cycle w -> ... -> v -> w.
                        let mut cycle = vec![v];
                        let mut cur = v;
                        while cur != w {
                            cur = parent[cur].expect("grey chain broken");
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        let dur: f64 = cycle.iter().map(|&t| self.durations[t]).sum();
                        if dur > 0.0 {
                            return Some(cycle);
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = TimedEventGraph::new();
        let a = g.add_transition(1.0);
        let b = g.add_transition(2.0);
        g.add_arc(a, b, 0).unwrap();
        g.add_arc(b, a, 1).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.arc_count(), 2);
        assert_eq!(g.duration(b), 2.0);
        assert_eq!(g.out_arcs(a).count(), 1);
        assert_eq!(g.in_arcs(a).count(), 1);
        assert_eq!(g.total_duration(), 3.0);
        g.validate().unwrap();
    }

    #[test]
    fn invalid_arc_rejected() {
        let mut g = TimedEventGraph::with_durations(vec![1.0]);
        assert_eq!(
            g.add_arc(0, 3, 0),
            Err(EventGraphError::InvalidTransition { id: 3, n: 1 })
        );
    }

    #[test]
    fn invalid_duration_detected() {
        let g = TimedEventGraph::with_durations(vec![1.0, -2.0]);
        assert_eq!(
            g.validate(),
            Err(EventGraphError::InvalidDuration {
                id: 1,
                duration: -2.0
            })
        );
    }

    #[test]
    fn zero_token_cycle_detection() {
        let mut g = TimedEventGraph::with_durations(vec![1.0, 1.0, 1.0]);
        g.add_arc(0, 1, 0).unwrap();
        g.add_arc(1, 2, 0).unwrap();
        g.add_arc(2, 0, 1).unwrap();
        assert!(g.find_zero_token_cycle().is_none());
        // Close the token-free cycle.
        g.add_arc(2, 0, 0).unwrap();
        let cycle = g.find_zero_token_cycle().unwrap();
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn zero_duration_token_free_cycle_is_harmless() {
        let mut g = TimedEventGraph::with_durations(vec![0.0, 0.0]);
        g.add_arc(0, 1, 0).unwrap();
        g.add_arc(1, 0, 0).unwrap();
        assert!(g.find_zero_token_cycle().is_none());
    }
}
