//! Error type for timed event graphs.

use std::fmt;

/// Errors raised by timed event graph analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum EventGraphError {
    /// An arc endpoint is out of range.
    InvalidTransition {
        /// The offending transition index.
        id: usize,
        /// Number of transitions in the graph.
        n: usize,
    },
    /// A transition duration is negative or not finite.
    InvalidDuration {
        /// The offending transition index.
        id: usize,
        /// The rejected duration.
        duration: f64,
    },
    /// The graph contains a cycle whose arcs carry no token but whose
    /// transitions have positive total duration: no finite period exists.
    ZeroTokenCycle {
        /// The transitions of one such cycle.
        cycle: Vec<usize>,
    },
}

impl fmt::Display for EventGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventGraphError::InvalidTransition { id, n } => {
                write!(f, "transition index {id} out of range (n = {n})")
            }
            EventGraphError::InvalidDuration { id, duration } => {
                write!(f, "transition {id} has invalid duration {duration}")
            }
            EventGraphError::ZeroTokenCycle { cycle } => {
                write!(f, "token-free cycle with positive duration: {cycle:?}")
            }
        }
    }
}

impl std::error::Error for EventGraphError {}
