//! Random instance generators.
//!
//! Used by the scaling experiments (E10), the benches and the property tests.
//! All generators are deterministic given the RNG, so experiments are
//! reproducible from a seed.

use rand::Rng;

use fsw_core::{Application, ExecutionGraph, ServiceId};

/// Configuration of the random application generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomAppConfig {
    /// Number of services.
    pub n: usize,
    /// Costs are drawn uniformly from this interval.
    pub cost_range: (f64, f64),
    /// Selectivities of *filters* are drawn uniformly from this interval (≤ 1).
    pub filter_selectivity_range: (f64, f64),
    /// Selectivities of *expanders* are drawn uniformly from this interval (≥ 1).
    pub expander_selectivity_range: (f64, f64),
    /// Probability that a service is an expander.
    pub expander_fraction: f64,
    /// Probability of each forward precedence constraint `(i, j)`, `i < j`.
    pub constraint_probability: f64,
}

impl Default for RandomAppConfig {
    fn default() -> Self {
        RandomAppConfig {
            n: 8,
            cost_range: (0.5, 5.0),
            filter_selectivity_range: (0.1, 1.0),
            expander_selectivity_range: (1.0, 3.0),
            expander_fraction: 0.25,
            constraint_probability: 0.0,
        }
    }
}

impl RandomAppConfig {
    /// Convenience constructor for `n` independent services.
    pub fn independent(n: usize) -> Self {
        RandomAppConfig {
            n,
            ..RandomAppConfig::default()
        }
    }

    /// Convenience constructor for `n` services with random precedence constraints.
    pub fn constrained(n: usize, constraint_probability: f64) -> Self {
        RandomAppConfig {
            n,
            constraint_probability,
            ..RandomAppConfig::default()
        }
    }
}

/// Draws a random application.
pub fn random_application<R: Rng + ?Sized>(config: &RandomAppConfig, rng: &mut R) -> Application {
    let mut app = Application::new();
    for _ in 0..config.n {
        let cost = rng.gen_range(config.cost_range.0..=config.cost_range.1);
        let selectivity = if rng.gen_bool(config.expander_fraction) {
            rng.gen_range(config.expander_selectivity_range.0..=config.expander_selectivity_range.1)
        } else {
            rng.gen_range(config.filter_selectivity_range.0..=config.filter_selectivity_range.1)
        };
        app.add_service(cost, selectivity);
    }
    if config.constraint_probability > 0.0 {
        for i in 0..config.n {
            for j in (i + 1)..config.n {
                if rng.gen_bool(config.constraint_probability) {
                    app.add_constraint(i, j).expect("forward edges are acyclic");
                }
            }
        }
    }
    app
}

/// Draws a random forest execution graph over `n` services (every service
/// picks its parent among the lower-numbered services, or none).
pub fn random_forest_graph<R: Rng + ?Sized>(
    n: usize,
    edge_bias: f64,
    rng: &mut R,
) -> ExecutionGraph {
    let mut parents: Vec<Option<ServiceId>> = vec![None; n];
    for (k, parent) in parents.iter_mut().enumerate().skip(1) {
        if rng.gen_bool(edge_bias) {
            *parent = Some(rng.gen_range(0..k));
        }
    }
    ExecutionGraph::from_parents(&parents).expect("parents of lower index are acyclic")
}

/// Draws a random DAG execution graph over `n` services with the given forward
/// edge probability.
pub fn random_dag_graph<R: Rng + ?Sized>(n: usize, edge_prob: f64, rng: &mut R) -> ExecutionGraph {
    let mut graph = ExecutionGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(edge_prob) {
                graph.add_edge(i, j).expect("forward edges are acyclic");
            }
        }
    }
    graph
}

/// Draws a random execution graph *compatible with* an application's
/// precedence constraints: the constraints themselves plus random extra
/// forward edges.
pub fn random_compatible_graph<R: Rng + ?Sized>(
    app: &Application,
    extra_edge_prob: f64,
    rng: &mut R,
) -> ExecutionGraph {
    let n = app.n();
    let mut graph = ExecutionGraph::new(n);
    for &(i, j) in app.constraints() {
        graph.add_edge(i, j).expect("constraints are acyclic");
    }
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(extra_edge_prob) {
                // Ignore edges that would create a cycle.
                let _ = graph.add_edge(i, j);
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_application_is_valid() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1, 4, 12] {
            let app = random_application(&RandomAppConfig::independent(n), &mut rng);
            assert_eq!(app.n(), n);
            app.validate().unwrap();
        }
        let app = random_application(&RandomAppConfig::constrained(10, 0.3), &mut rng);
        app.validate().unwrap();
        assert!(app.has_constraints());
    }

    #[test]
    fn generators_are_deterministic_given_the_seed() {
        let config = RandomAppConfig::independent(6);
        let a = random_application(&config, &mut StdRng::seed_from_u64(42));
        let b = random_application(&config, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn random_graphs_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let forest = random_forest_graph(10, 0.7, &mut rng);
            assert!(forest.is_forest());
            let dag = random_dag_graph(10, 0.3, &mut rng);
            dag.topological_order().unwrap();
        }
    }

    #[test]
    fn compatible_graphs_respect_constraints() {
        let mut rng = StdRng::seed_from_u64(11);
        let app = random_application(&RandomAppConfig::constrained(9, 0.25), &mut rng);
        for _ in 0..10 {
            let g = random_compatible_graph(&app, 0.2, &mut rng);
            g.respects(&app).unwrap();
        }
    }
}
