//! The worked example and counter-examples of the paper.
//!
//! Each constructor returns the application together with the execution
//! graph(s) discussed in the paper, so experiments can evaluate exactly the
//! instances used in the text (experiments E1–E4 of EXPERIMENTS.md).

use fsw_core::{Application, ExecutionGraph};

/// A paper instance: an application plus one or more named execution graphs.
#[derive(Clone, Debug)]
pub struct PaperInstance {
    /// Human-readable identifier (e.g. `"section-2.3"`).
    pub name: &'static str,
    /// The application (services and constraints).
    pub app: Application,
    /// Named execution graphs discussed by the paper for this instance.
    pub graphs: Vec<(&'static str, ExecutionGraph)>,
}

impl PaperInstance {
    /// The first graph registered (the "main" one for the instance).
    pub fn graph(&self) -> &ExecutionGraph {
        &self.graphs[0].1
    }

    /// Looks a named graph up.
    pub fn graph_named(&self, name: &str) -> Option<&ExecutionGraph> {
        self.graphs.iter().find(|(n, _)| *n == name).map(|(_, g)| g)
    }
}

/// Section 2.3: five services of cost 4 and selectivity 1, mapped on the
/// Figure 1 execution graph.
///
/// Reference values (paper): latency 21 for every model; optimal period 4
/// (OVERLAP), 7 (OUTORDER), 23/3 (INORDER).
pub fn section23() -> PaperInstance {
    let app = Application::independent(&[(4.0, 1.0); 5]);
    let graph = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
    PaperInstance {
        name: "section-2.3",
        app,
        graphs: vec![("figure-1", graph)],
    }
}

/// Appendix B.1 / Figure 4: the impact of communication costs on MINPERIOD.
///
/// 202 services: `C1`, `C2` with cost 100 and selectivity 0.9999, and 200
/// services with cost `100/0.9999` and selectivity 100.  Without
/// communication costs the optimal plan chains `C1 → C2` and hangs all the
/// expensive services below `C2` (period 100); with communication costs that
/// plan's period doubles (outgoing volume of `C2` ≈ 200) while the Figure 4
/// plan — each filter keeping 100 successors — still achieves 100.
pub fn counterexample_b1() -> PaperInstance {
    let mut specs = vec![(100.0, 0.9999), (100.0, 0.9999)];
    for _ in 0..200 {
        specs.push((100.0 / 0.9999, 100.0));
    }
    let app = Application::independent(&specs);
    let n = specs.len();

    // Figure 4: C1 feeds services 2..=101, C2 feeds services 102..=201.
    let mut fig4 = ExecutionGraph::new(n);
    for j in 2..102 {
        fig4.add_edge(0, j).unwrap();
    }
    for j in 102..202 {
        fig4.add_edge(1, j).unwrap();
    }

    // The no-communication optimal structure: C1 -> C2 -> everything else.
    let mut nocomm = ExecutionGraph::new(n);
    nocomm.add_edge(0, 1).unwrap();
    for j in 2..202 {
        nocomm.add_edge(1, j).unwrap();
    }

    PaperInstance {
        name: "counterexample-b1",
        app,
        graphs: vec![("figure-4", fig4), ("no-comm-chain", nocomm)],
    }
}

/// Appendix B.2 / Figure 5: one-port vs multi-port for the **latency**.
///
/// Twelve unit-cost services; `σ2 = σ3 = 2`, `σ4 = σ5 = σ6 = 3`, all other
/// selectivities 1.  The first six services each feed a subset of the last six
/// so that every sender has an outgoing volume of 6 and every receiver an
/// incoming volume of 6 (made of messages of sizes 1, 2 and 3).
/// Reference values: multi-port latency 20, one-port latency ≥ 21.
pub fn counterexample_b2() -> PaperInstance {
    let mut specs = vec![(1.0, 1.0); 12];
    specs[1].1 = 2.0;
    specs[2].1 = 2.0;
    specs[3].1 = 3.0;
    specs[4].1 = 3.0;
    specs[5].1 = 3.0;
    let app = Application::independent(&specs);
    let mut edges = Vec::new();
    // C1 (size-1 messages) feeds everybody.
    for j in 6..12 {
        edges.push((0usize, j));
    }
    // C2, C3 (size-2 messages) feed three receivers each.
    for j in 6..9 {
        edges.push((1, j));
    }
    for j in 9..12 {
        edges.push((2, j));
    }
    // C4, C5, C6 (size-3 messages) feed two receivers each.
    for j in [6, 7] {
        edges.push((3, j));
    }
    for j in [8, 9] {
        edges.push((4, j));
    }
    for j in [10, 11] {
        edges.push((5, j));
    }
    let graph = ExecutionGraph::from_edges(12, &edges).unwrap();
    PaperInstance {
        name: "counterexample-b2",
        app,
        graphs: vec![("figure-5", graph)],
    }
}

/// Appendix B.3 / Figure 6: one-port vs multi-port for the **period** (with
/// computation/communication overlap on both sides).
///
/// Eight services; `σ1 = σ2 = 3`, `σ3 = 4`, `σ4 = 2`, the rest 1.  Senders
/// `C1, C2` feed all four receivers, `C3, C4` feed `C5, C6, C7`, so that
/// `Cout(C1) = Cout(C2) = Cout(C3) = 12` and `Cin(C5) = Cin(C6) = Cin(C7) = 12`.
/// Reference values: multi-port period 12, one-port period > 12.
///
/// **Documented adaptation** (see DESIGN.md): the paper sets every cost and
/// every second-layer selectivity to 1, which would make the computations and
/// final output transfers of `C5–C7` (input volume 72) dominate both models
/// and hide the communication phenomenon the example is about; we set the
/// receiver costs and selectivities to `1/6` so the sender/receiver
/// communication bound of 12 is binding, exactly as in the paper's discussion.
pub fn counterexample_b3() -> PaperInstance {
    let specs = vec![
        (1.0, 3.0),
        (1.0, 3.0),
        (1.0, 4.0),
        (1.0, 2.0),
        (1.0 / 6.0, 1.0 / 6.0),
        (1.0 / 6.0, 1.0 / 6.0),
        (1.0 / 6.0, 1.0 / 6.0),
        (1.0 / 6.0, 1.0 / 6.0),
    ];
    let app = Application::independent(&specs);
    let mut edges = Vec::new();
    for j in 4..8 {
        edges.push((0usize, j));
        edges.push((1, j));
    }
    for j in 4..7 {
        edges.push((2, j));
        edges.push((3, j));
    }
    let graph = ExecutionGraph::from_edges(8, &edges).unwrap();
    PaperInstance {
        name: "counterexample-b3",
        app,
        graphs: vec![("figure-6", graph)],
    }
}

/// A parametric fork-join instance (one source, `width` parallel services, one
/// sink), useful for scaling studies and as the shape of the Proposition 9
/// and 13 gadgets.
pub fn fork_join(width: usize, middle_cost: f64, middle_selectivity: f64) -> PaperInstance {
    let mut specs = vec![(1.0, 1.0)];
    for _ in 0..width {
        specs.push((middle_cost, middle_selectivity));
    }
    specs.push((1.0, 1.0));
    let app = Application::independent(&specs);
    let n = specs.len();
    let mut graph = ExecutionGraph::new(n);
    for i in 1..=width {
        graph.add_edge(0, i).unwrap();
        graph.add_edge(i, n - 1).unwrap();
    }
    PaperInstance {
        name: "fork-join",
        app,
        graphs: vec![("fork-join", graph)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_core::{CommModel, PlanMetrics};

    #[test]
    fn section23_bounds_match_paper() {
        let inst = section23();
        let m = PlanMetrics::compute(&inst.app, inst.graph()).unwrap();
        assert_eq!(m.period_lower_bound(CommModel::Overlap), 4.0);
        assert_eq!(m.period_lower_bound(CommModel::OutOrder), 7.0);
    }

    #[test]
    fn b1_graphs_have_the_paper_shape() {
        let inst = counterexample_b1();
        assert_eq!(inst.app.n(), 202);
        let fig4 = inst.graph_named("figure-4").unwrap();
        assert_eq!(fig4.succs(0).len(), 100);
        assert_eq!(fig4.succs(1).len(), 100);
        let nocomm = inst.graph_named("no-comm-chain").unwrap();
        assert_eq!(nocomm.succs(1).len(), 200);
        // Figure 4 keeps the period at 100 under OVERLAP, the chain doubles it.
        let m4 = PlanMetrics::compute(&inst.app, fig4).unwrap();
        assert!((m4.period_lower_bound(CommModel::Overlap) - 100.0).abs() < 0.02);
        let mc = PlanMetrics::compute(&inst.app, nocomm).unwrap();
        assert!(mc.period_lower_bound(CommModel::Overlap) > 199.0);
        // Without communications both plans achieve (almost exactly) 100.
        let comp_only = |m: &PlanMetrics| (0..202).map(|k| m.c_comp(k)).fold(0.0f64, f64::max);
        assert!((comp_only(&m4) - 100.0).abs() < 0.02);
        assert!((comp_only(&mc) - 100.0).abs() < 0.02);
    }

    #[test]
    fn b2_volumes_match_paper() {
        let inst = counterexample_b2();
        let m = PlanMetrics::compute(&inst.app, inst.graph()).unwrap();
        for i in 0..6 {
            assert!((m.c_out(i) - 6.0).abs() < 1e-12);
        }
        for j in 6..12 {
            assert!((m.c_in(j) - 6.0).abs() < 1e-12);
            assert!((m.c_comp(j) - 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn b3_volumes_match_paper() {
        let inst = counterexample_b3();
        let m = PlanMetrics::compute(&inst.app, inst.graph()).unwrap();
        for i in 0..3 {
            assert!(
                (m.c_out(i) - 12.0).abs() < 1e-12,
                "Cout({i}) = {}",
                m.c_out(i)
            );
        }
        assert!((m.c_out(3) - 6.0).abs() < 1e-12);
        for j in 4..7 {
            assert!((m.c_in(j) - 12.0).abs() < 1e-12, "Cin({j}) = {}", m.c_in(j));
        }
        assert!((m.c_in(7) - 6.0).abs() < 1e-12);
        // With the documented cost adaptation the multi-port bound is 12.
        assert!((m.period_lower_bound(CommModel::Overlap) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn fork_join_shape() {
        let inst = fork_join(4, 2.0, 0.5);
        assert_eq!(inst.app.n(), 6);
        let g = inst.graph();
        assert_eq!(g.succs(0).len(), 4);
        assert_eq!(g.preds(5).len(), 4);
        assert!(!g.is_forest());
    }
}
