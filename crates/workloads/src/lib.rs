//! # fsw-workloads — instances for the filtering-workflow reproduction
//!
//! Three families of instances:
//!
//! * [`paper`] — the worked example (Section 2.3) and the three
//!   counter-examples (Appendix B) of the paper, with their exact parameters
//!   and execution graphs;
//! * [`random`] — seeded random applications and execution graphs for scaling
//!   studies, benches and property tests;
//! * [`scenarios`] — realistic workloads from the two application domains the
//!   paper motivates (query optimisation over web services, media pipelines);
//! * [`streaming`] — serving traces: tenants, requests and service-set
//!   mutations arriving over time, for the `fsw_serve` layer.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod paper;
pub mod random;
pub mod scenarios;
pub mod streaming;

pub use paper::{
    counterexample_b1, counterexample_b2, counterexample_b3, fork_join, section23, PaperInstance,
};
pub use random::{
    random_application, random_compatible_graph, random_dag_graph, random_forest_graph,
    RandomAppConfig,
};
pub use scenarios::{
    media_pipeline, query_optimization, sensor_fusion, skewed_query_optimization,
    tiered_query_optimization, uniform_query_optimization,
};
pub use streaming::{serving_trace, ArrivalTrace, TraceConfig, TraceEvent, TraceEventKind};
