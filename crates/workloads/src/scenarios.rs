//! Realistic application scenarios.
//!
//! The paper's introduction motivates filtering workflows with query
//! optimisation over web services and with classical streaming applications
//! (video/audio pipelines, DSP).  These constructors provide concrete
//! instances in both families; they back the domain-specific examples of the
//! workspace (`examples/query_optimization.rs`, `examples/media_pipeline.rs`).

use rand::Rng;

use fsw_core::Application;

/// A query-optimisation workload: `n` independent predicates (web-service
/// calls) with selectivities below 1 and heterogeneous per-tuple costs, in the
/// style of Srivastava et al.
///
/// Costs are drawn log-uniformly in `[0.2, 20)` and selectivities uniformly in
/// `[0.05, 0.95)`; no precedence constraints (predicates commute).
pub fn query_optimization<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Application {
    let mut app = Application::new();
    for _ in 0..n {
        let cost = 0.2 * (100.0f64).powf(rng.gen::<f64>());
        let selectivity = rng.gen_range(0.05..0.95);
        app.add_service(cost, selectivity);
    }
    app
}

/// A *uniform-weight* query-optimisation workload: `n` interchangeable
/// predicates sharing one cost/selectivity pair drawn from the
/// [`query_optimization`] distributions.
///
/// This is the regime of replicated micro-services (one predicate deployed
/// `n` times behind a load balancer): every plan is determined by its shape
/// alone, so the symmetry-reduced exhaustive searches enumerate canonical
/// representatives of forest-isomorphism classes instead of all `n^n`
/// parent functions (see `fsw_sched::engine::CanonicalSpace`).
pub fn uniform_query_optimization<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Application {
    let cost = 0.2 * (100.0f64).powf(rng.gen::<f64>());
    let selectivity = rng.gen_range(0.05..0.95);
    let mut app = Application::new();
    for _ in 0..n {
        app.add_service(cost, selectivity);
    }
    app
}

/// A query-optimisation workload with *correlated* expensive predicates: a few
/// cheap, highly selective predicates and a tail of expensive ones, which is
/// the regime where ordering matters most.
pub fn skewed_query_optimization<R: Rng + ?Sized>(
    cheap: usize,
    expensive: usize,
    rng: &mut R,
) -> Application {
    let mut app = Application::new();
    for _ in 0..cheap {
        app.add_service(rng.gen_range(0.1..0.5), rng.gen_range(0.05..0.3));
    }
    for _ in 0..expensive {
        app.add_service(rng.gen_range(5.0..30.0), rng.gen_range(0.6..0.99));
    }
    app
}

/// The *replicated-tier* variant of [`skewed_query_optimization`]: each tier
/// draws **one** `(cost, selectivity)` pair and deploys `sizes[t]` identical
/// replicas of it — the regime of horizontally scaled predicate services,
/// where every instance of a tier is bit-interchangeable.
///
/// Tiers alternate between the cheap/selective and expensive/permissive
/// distributions of the skewed workload (tier 0 cheap, tier 1 expensive,
/// tier 2 cheap, …).  Every tier with two or more replicas contributes a
/// weight class with non-trivial symmetry, so the plan searches collapse the
/// instance to class-preserving relabelling orbits
/// (`fsw_sched::engine::CanonicalSpace::class_reducible`): a `5 + 5` tiered
/// instance enumerates ~245k coloured forest classes instead of 10^10
/// parent functions.
pub fn tiered_query_optimization<R: Rng + ?Sized>(sizes: &[usize], rng: &mut R) -> Application {
    let mut app = Application::new();
    for (tier, &size) in sizes.iter().enumerate() {
        let (cost, selectivity) = if tier % 2 == 0 {
            (rng.gen_range(0.1..0.5), rng.gen_range(0.05..0.3))
        } else {
            (rng.gen_range(5.0..30.0), rng.gen_range(0.6..0.99))
        };
        for _ in 0..size {
            app.add_service(cost, selectivity);
        }
    }
    app
}

/// A media-analytics pipeline: a demultiplexer, a decoder that *expands* the
/// data, several per-frame analysis filters, and a re-encoder, with the
/// natural precedence constraints of the pipeline.
///
/// Returns the application; the decoder (service 1) has selectivity > 1,
/// analysis stages shrink their stream, and the encoder compresses it back.
pub fn media_pipeline() -> Application {
    Application::builder()
        // 0: demux — cheap, keeps the data size
        .service(0.2, 1.0)
        // 1: decoder — expands compressed input ~8x
        .service(1.5, 8.0)
        // 2: scene-change detector — drops ~70% of frames
        .service(0.8, 0.3)
        // 3: object detector — expensive, annotates (slight growth)
        .service(6.0, 1.1)
        // 4: tracker — moderate cost, keeps size
        .service(2.0, 1.0)
        // 5: encoder — compresses back
        .service(3.0, 0.15)
        .constraint(0, 1)
        .constraint(1, 2)
        .constraint(2, 3)
        .constraint(3, 4)
        .constraint(4, 5)
        .build()
        .expect("static pipeline is valid")
}

/// A sensor-fusion DAG: several independent sensor pre-filters feeding a fusion
/// stage, followed by two analysis branches.  Contains both filters and an
/// expander and a non-chain precedence structure.
pub fn sensor_fusion(sensors: usize) -> Application {
    let mut builder = Application::builder();
    for _ in 0..sensors {
        builder = builder.service(0.5, 0.4); // per-sensor denoising filters
    }
    // fusion (expands: feature vectors), anomaly detection, archival compaction
    builder = builder
        .service(2.0, 1.5)
        .service(4.0, 0.2)
        .service(1.0, 0.1);
    let fusion = sensors;
    for s in 0..sensors {
        builder = builder.constraint(s, fusion);
    }
    builder = builder
        .constraint(fusion, sensors + 1)
        .constraint(fusion, sensors + 2);
    builder.build().expect("static DAG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn query_workloads_are_filters() {
        let mut rng = StdRng::seed_from_u64(1);
        let app = query_optimization(12, &mut rng);
        assert_eq!(app.n(), 12);
        app.validate().unwrap();
        assert!(app.services().iter().all(|s| s.selectivity < 1.0));
        let skewed = skewed_query_optimization(3, 5, &mut rng);
        assert_eq!(skewed.n(), 8);
        skewed.validate().unwrap();
    }

    #[test]
    fn tiered_workloads_partition_into_weight_classes() {
        let mut rng = StdRng::seed_from_u64(4);
        let app = tiered_query_optimization(&[3, 4, 2], &mut rng);
        assert_eq!(app.n(), 9);
        app.validate().unwrap();
        let classes = fsw_core::WeightClasses::of(&app);
        assert_eq!(classes.class_count(), 3);
        assert_eq!(classes.sizes(), &[3, 4, 2]);
        assert!(classes.has_symmetry());
        // Tier 1 is the expensive one.
        assert!(app.cost(3) > app.cost(0));
    }

    #[test]
    fn media_pipeline_is_a_chain_with_an_expander() {
        let app = media_pipeline();
        assert_eq!(app.n(), 6);
        app.validate().unwrap();
        assert!(app.service(1).is_expander());
        assert_eq!(app.constraints().len(), 5);
    }

    #[test]
    fn sensor_fusion_has_a_join() {
        let app = sensor_fusion(4);
        assert_eq!(app.n(), 7);
        app.validate().unwrap();
        // The fusion stage has `sensors` incoming constraints.
        assert_eq!(
            app.constraints().iter().filter(|&&(_, to)| to == 4).count(),
            4
        );
    }
}
