//! Streaming serving workloads: tenants and requests arriving over time.
//!
//! The serving layer (`fsw_serve`) is exercised by *traces*: a timeline of
//! tenants being admitted, issuing plan requests, and mutating their
//! service sets (service arrivals, departures, weight changes).  This
//! module generates such traces deterministically from a seeded RNG.
//!
//! The generator's tenants are drawn from a small pool of **templates** —
//! exactly the fleet regime the fingerprint store exploits: several tenants
//! deploy the same replicated predicate set (sometimes as a permutation of
//! each other), so their requests collapse onto one canonical fingerprint
//! until a mutation makes a tenant unique.

use rand::Rng;

/// One mutation or request in a trace, all indices in the tenant's own
/// current labelling.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEventKind {
    /// The tenant joins the fleet with this service set.
    Admit {
        /// `(cost, selectivity)` per service.
        services: Vec<(f64, f64)>,
    },
    /// The tenant asks for a plan of its current service set.
    Request,
    /// A service joins the tenant's set.
    Arrive {
        /// Cost of the new service.
        cost: f64,
        /// Selectivity of the new service.
        selectivity: f64,
    },
    /// Service `service` leaves the tenant's set (current labelling; later
    /// ids shift down).
    Depart {
        /// The departing service.
        service: usize,
    },
    /// Service `service` changes weights in place.
    Reweight {
        /// The re-weighted service.
        service: usize,
        /// Its new cost.
        cost: f64,
        /// Its new selectivity.
        selectivity: f64,
    },
}

/// One timestamped trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// The step the event happens at (events of one step form one batch).
    pub step: usize,
    /// The tenant the event belongs to.
    pub tenant: usize,
    /// What happens.
    pub kind: TraceEventKind,
}

/// A deterministic serving trace (see [`serving_trace`]).
#[derive(Clone, Debug)]
pub struct ArrivalTrace {
    /// Events in timeline order (non-decreasing `step`).
    pub events: Vec<TraceEvent>,
    /// Number of tenants admitted.
    pub tenants: usize,
    /// Number of steps the trace spans.
    pub steps: usize,
}

impl ArrivalTrace {
    /// The applications the trace admits, in admission order (one per
    /// tenant, before any mutation) — the single place the `Admit`
    /// encoding is turned into [`fsw_core::Application`]s.
    pub fn admitted_apps(&self) -> Vec<fsw_core::Application> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::Admit { services } => {
                    Some(fsw_core::Application::independent(services))
                }
                _ => None,
            })
            .collect()
    }

    /// Number of [`TraceEventKind::Request`] events in the trace.
    pub fn request_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Request))
            .count()
    }

    /// Number of mutation events (arrivals + departures + reweights).
    pub fn mutation_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceEventKind::Arrive { .. }
                        | TraceEventKind::Depart { .. }
                        | TraceEventKind::Reweight { .. }
                )
            })
            .count()
    }
}

/// Shape of a generated trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Tenants admitted over the first steps of the trace.
    pub tenants: usize,
    /// Tenants admitted per step of the admission phase: admitting several
    /// at once puts their first requests into one service batch, which is
    /// what exercises the in-flight fingerprint dedup.
    pub admissions_per_step: usize,
    /// Steps after the admission phase; each step issues a batch of
    /// requests and occasionally a mutation.
    pub steps: usize,
    /// Distinct application templates the tenants draw from (several
    /// tenants per template is what makes the fingerprint store pay).
    pub templates: usize,
    /// Services per template (kept small enough that every solve is
    /// exhaustive under the default budget).
    pub services_per_tenant: usize,
    /// Hard cap on a tenant's service count: an arrival that would exceed
    /// it is generated as a reweight instead, keeping every solve of the
    /// trace inside the exhaustive enumeration budget.
    pub max_services: usize,
    /// Probability that a step mutates one tenant's service set before the
    /// step's requests fire.
    pub mutation_rate: f64,
    /// Tenants issuing a request per step (cycled deterministically).
    pub requests_per_step: usize,
    /// Every `jumbo_every`-th tenant (0 = none) is admitted as a **jumbo**:
    /// an oversized application of [`Self::jumbo_services`] all-distinct
    /// weights, whose raw plan space defeats every symmetry reduction —
    /// overload-scenario fodder for the serving layer's admission control.
    /// Jumbo tenants are never mutated (their size is the point).
    pub jumbo_every: usize,
    /// Service count of jumbo tenants (weights generated all-distinct and
    /// deterministic per tenant, so each jumbo is its own fingerprint).
    pub jumbo_services: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            tenants: 12,
            admissions_per_step: 6,
            steps: 30,
            templates: 4,
            services_per_tenant: 5,
            max_services: 7,
            mutation_rate: 0.3,
            requests_per_step: 4,
            jumbo_every: 0,
            jumbo_services: 24,
        }
    }
}

/// Generates a serving trace: `tenants` admissions (one per early step,
/// each immediately followed by that tenant's first request), then `steps`
/// rounds of request batches with occasional mutations.  Deterministic for
/// a given RNG state and config.
///
/// Templates are skewed query workloads (a few cheap selective predicates,
/// a tail of expensive permissive ones, every service's weights drawn
/// independently, like [`crate::skewed_query_optimization`]), and tenants
/// of one template deploy it as a rotated permutation of each other: the
/// canonical fingerprint (`fsw_core::AppFingerprint`) collapses the
/// rotations onto one store entry until a mutation individualises a
/// tenant.  Distinct per-service weights also keep the plan searches on
/// the labelled enumeration path, where warm-started re-plans measurably
/// out-prune cold solves.
pub fn serving_trace<R: Rng + ?Sized>(config: &TraceConfig, rng: &mut R) -> ArrivalTrace {
    assert!(config.tenants >= 1 && config.templates >= 1);
    assert!(config.services_per_tenant >= 3, "need room for departures");
    assert!(config.max_services >= config.services_per_tenant);
    assert!(
        config.jumbo_every == 0 || config.jumbo_services >= 3,
        "jumbo tenants need at least 3 services"
    );
    let is_jumbo =
        |tenant: usize| config.jumbo_every > 0 && (tenant + 1).is_multiple_of(config.jumbo_every);
    // Template pool: per-service independent draws, cheap/selective head
    // and expensive/permissive tail.
    let templates: Vec<Vec<(f64, f64)>> = (0..config.templates)
        .map(|_| {
            let cheap_count = 1 + config.services_per_tenant / 3;
            (0..config.services_per_tenant)
                .map(|k| {
                    if k < cheap_count {
                        (rng.gen_range(0.1..0.5), rng.gen_range(0.05..0.3))
                    } else {
                        (rng.gen_range(5.0..30.0), rng.gen_range(0.6..0.99))
                    }
                })
                .collect()
        })
        .collect();
    let admissions_per_step = config.admissions_per_step.max(1);
    let mut events = Vec::new();
    // Tenant k deploys template k % templates, rotated by its index within
    // the template group — a permutation the canonical fingerprint undoes.
    // Admissions arrive in groups, so same-template tenants land their
    // first requests in one batch (the in-flight dedup path).
    let mut sizes = Vec::with_capacity(config.tenants);
    for tenant in 0..config.tenants {
        // Jumbo tenants deploy an oversized all-distinct service set
        // (deterministic per tenant, no RNG consumed — adding jumbos to a
        // config never perturbs the other tenants' draws).
        let services: Vec<(f64, f64)> = if is_jumbo(tenant) {
            (0..config.jumbo_services)
                .map(|k| {
                    (
                        10.0 + k as f64 + tenant as f64 * 1e-3,
                        0.30 + 0.6 * k as f64 / config.jumbo_services as f64,
                    )
                })
                .collect()
        } else {
            let template = &templates[tenant % config.templates];
            let rotation = tenant / config.templates;
            (0..template.len())
                .map(|k| template[(k + rotation) % template.len()])
                .collect()
        };
        sizes.push(services.len());
        let step = tenant / admissions_per_step;
        events.push(TraceEvent {
            step,
            tenant,
            kind: TraceEventKind::Admit { services },
        });
        events.push(TraceEvent {
            step,
            tenant,
            kind: TraceEventKind::Request,
        });
    }
    // Steady phase: per step, maybe one mutation (followed by the mutated
    // tenant's request), then a deterministic cycle of tenant requests.
    let base = config.tenants.div_ceil(admissions_per_step);
    // Mutations only ever hit non-jumbo tenants (with no jumbos configured
    // this is the identity mapping, so existing seeds replay unchanged).
    let mutable: Vec<usize> = (0..config.tenants).filter(|&t| !is_jumbo(t)).collect();
    for round in 0..config.steps {
        let step = base + round;
        if !mutable.is_empty() && rng.gen::<f64>() < config.mutation_rate {
            let tenant = mutable[rng.gen_range(0..mutable.len())];
            let n = sizes[tenant];
            let kind = match rng.gen_range(0..3u32) {
                0 if n < config.max_services => {
                    sizes[tenant] += 1;
                    TraceEventKind::Arrive {
                        cost: rng.gen_range(0.5..8.0),
                        selectivity: rng.gen_range(0.2..0.9),
                    }
                }
                1 if n > 3 => {
                    sizes[tenant] -= 1;
                    TraceEventKind::Depart {
                        service: rng.gen_range(0..n),
                    }
                }
                _ => TraceEventKind::Reweight {
                    service: rng.gen_range(0..n),
                    cost: rng.gen_range(0.5..8.0),
                    selectivity: rng.gen_range(0.2..0.9),
                },
            };
            events.push(TraceEvent { step, tenant, kind });
            events.push(TraceEvent {
                step,
                tenant,
                kind: TraceEventKind::Request,
            });
        }
        for slot in 0..config.requests_per_step {
            let tenant = (round * config.requests_per_step + slot) % config.tenants;
            events.push(TraceEvent {
                step,
                tenant,
                kind: TraceEventKind::Request,
            });
        }
    }
    ArrivalTrace {
        events,
        tenants: config.tenants,
        steps: base + config.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_core::{Application, CanonicalApplication};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn traces_are_deterministic_and_well_formed() {
        let config = TraceConfig::default();
        let a = serving_trace(&config, &mut StdRng::seed_from_u64(99));
        let b = serving_trace(&config, &mut StdRng::seed_from_u64(99));
        assert_eq!(a.events, b.events, "same seed, same trace");
        assert_eq!(a.tenants, config.tenants);
        assert!(a.request_count() >= config.tenants + config.steps * config.requests_per_step);
        // Steps are non-decreasing and every tenant is admitted before its
        // first other event.
        let mut admitted = vec![false; a.tenants];
        let mut last_step = 0;
        for event in &a.events {
            assert!(event.step >= last_step);
            last_step = event.step;
            match &event.kind {
                TraceEventKind::Admit { services } => {
                    assert!(!admitted[event.tenant]);
                    assert!(services.len() >= 3);
                    admitted[event.tenant] = true;
                }
                _ => assert!(admitted[event.tenant], "tenant used before admission"),
            }
        }
        assert!(admitted.iter().all(|&x| x));
    }

    #[test]
    fn same_template_tenants_share_a_canonical_fingerprint() {
        let config = TraceConfig {
            tenants: 8,
            templates: 4,
            ..TraceConfig::default()
        };
        let trace = serving_trace(&config, &mut StdRng::seed_from_u64(7));
        let apps: Vec<Application> = trace
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::Admit { services } => Some(Application::independent(services)),
                _ => None,
            })
            .collect();
        assert_eq!(apps.len(), 8);
        // Tenant k and tenant k + templates share a template (rotated).
        for k in 0..4 {
            let a = CanonicalApplication::of(&apps[k]).fingerprint;
            let b = CanonicalApplication::of(&apps[k + 4]).fingerprint;
            assert_eq!(a, b, "template {k}: rotated twins must collapse");
        }
    }

    #[test]
    fn jumbo_tenants_are_oversized_distinct_and_never_mutated() {
        let config = TraceConfig {
            tenants: 8,
            templates: 4,
            steps: 100,
            mutation_rate: 0.9,
            jumbo_every: 4,
            jumbo_services: 24,
            ..TraceConfig::default()
        };
        let trace = serving_trace(&config, &mut StdRng::seed_from_u64(11));
        let jumbos = [3usize, 7];
        for event in &trace.events {
            match &event.kind {
                TraceEventKind::Admit { services } if jumbos.contains(&event.tenant) => {
                    assert_eq!(services.len(), 24);
                    // All-distinct weights: no symmetry class to collapse.
                    let mut costs: Vec<u64> = services.iter().map(|s| s.0.to_bits()).collect();
                    costs.sort_unstable();
                    costs.dedup();
                    assert_eq!(costs.len(), 24);
                }
                TraceEventKind::Arrive { .. }
                | TraceEventKind::Depart { .. }
                | TraceEventKind::Reweight { .. } => {
                    assert!(
                        !jumbos.contains(&event.tenant),
                        "jumbo tenants never mutate"
                    );
                }
                _ => {}
            }
        }
        // Distinct jumbo tenants have distinct fingerprints.
        let apps = trace.admitted_apps();
        assert_ne!(
            CanonicalApplication::of(&apps[3]).fingerprint,
            CanonicalApplication::of(&apps[7]).fingerprint
        );
        // Adding jumbos must not perturb the non-jumbo tenants' draws: the
        // same seed without jumbos admits the same template deployments.
        let plain = serving_trace(
            &TraceConfig {
                jumbo_every: 0,
                ..config
            },
            &mut StdRng::seed_from_u64(11),
        );
        let plain_apps = plain.admitted_apps();
        for tenant in (0..8).filter(|t| !jumbos.contains(t)) {
            assert_eq!(
                CanonicalApplication::of(&apps[tenant]).fingerprint,
                CanonicalApplication::of(&plain_apps[tenant]).fingerprint,
                "tenant {tenant} drifted when jumbos were added"
            );
        }
    }

    #[test]
    fn departures_never_underflow_the_service_set() {
        let config = TraceConfig {
            steps: 200,
            mutation_rate: 0.9,
            ..TraceConfig::default()
        };
        let trace = serving_trace(&config, &mut StdRng::seed_from_u64(3));
        let mut sizes = vec![0usize; trace.tenants];
        for event in &trace.events {
            match &event.kind {
                TraceEventKind::Admit { services } => sizes[event.tenant] = services.len(),
                TraceEventKind::Arrive { .. } => sizes[event.tenant] += 1,
                TraceEventKind::Depart { service } => {
                    assert!(*service < sizes[event.tenant]);
                    sizes[event.tenant] -= 1;
                    assert!(sizes[event.tenant] >= 3);
                }
                TraceEventKind::Reweight { service, .. } => {
                    assert!(*service < sizes[event.tenant]);
                }
                TraceEventKind::Request => {}
            }
        }
    }
}
