//! The paper's NP-hardness reduction gadgets.
//!
//! Every hardness proof of the paper maps an RN3DM instance to a filtering
//! workflow; building the gadgets explicitly lets the experiments (E5–E7 in
//! EXPERIMENTS.md) check, end to end, that the schedulers agree with the
//! theory: YES instances admit a plan/operation list within the reduction's
//! bound `K`, NO instances do not.
//!
//! Implemented gadgets:
//!
//! * Proposition 2 (period orchestration, `OUTORDER`/`INORDER`), Figure 9;
//! * Proposition 9 (latency orchestration, fork-join), Figure 12;
//! * Proposition 13 (MINLATENCY), fork-join with selectivities.
//!
//! The MINPERIOD gadgets of Propositions 5 and 6 use real-valued parameters
//! whose published values are garbled in the available text (OCR damage); they
//! are intentionally not reproduced (documented in DESIGN.md) — MINPERIOD
//! hardness is exercised through the orchestration gadget plus the structural
//! experiments instead.

use fsw_core::{Application, ExecutionGraph};

use crate::instance::Rn3dmInstance;

/// A reduction gadget: the workflow instance plus the decision bound `K`.
#[derive(Clone, Debug)]
pub struct Gadget {
    /// Short name (`"prop2"`, `"prop9"`, `"prop13"`).
    pub name: &'static str,
    /// The application of the gadget.
    pub app: Application,
    /// The execution graph the reduction argues about (for orchestration
    /// gadgets this graph is part of the instance; for MINLATENCY it is the
    /// intended optimal plan).
    pub graph: ExecutionGraph,
    /// The decision bound: the instance is a YES instance iff the relevant
    /// objective can reach `K`.
    pub bound: f64,
}

/// Proposition 2 / Figure 9: RN3DM ↦ "is there an `OUTORDER` operation list of
/// period at most `2n + 3` for this execution graph?".
///
/// Services (1-indexed in the paper, 0-indexed here):
/// `C1` (cost `n`) fans out to `C2, C4, …, C_{2n+2}` and to `C_{2n+4}`;
/// every even service (cost `2n+1`) feeds the next odd service
/// (cost `2n+1 − A[i]`, or `2n+1` for `C_{2n+3}`); all odd services and
/// `C_{2n+4}` feed `C_{2n+5}` (cost `n`).  All selectivities are 1.
pub fn prop2_period_outorder(instance: &Rn3dmInstance) -> Gadget {
    let n = instance.n();
    assert!(n >= 1, "the gadget needs n >= 1");
    let total = 2 * n + 5;
    let nf = n as f64;
    // Costs, using the paper's 1-based indexing internally for clarity.
    let mut costs = vec![0.0f64; total + 1];
    costs[1] = nf;
    costs[2 * n + 5] = nf;
    costs[2 * n + 3] = 2.0 * nf + 1.0;
    costs[2 * n + 4] = 2.0 * nf + 1.0;
    for i in 1..=(n + 1) {
        costs[2 * i] = 2.0 * nf + 1.0;
    }
    for i in 1..=n {
        costs[2 * i + 1] = 2.0 * nf + 1.0 - instance.a[i - 1] as f64;
    }
    let mut app = Application::new();
    for c in costs.iter().skip(1) {
        app.add_service(*c, 1.0);
    }
    // Edges (converting to 0-based indices).
    let idx = |one_based: usize| one_based - 1;
    let mut graph = ExecutionGraph::new(total);
    for i in 1..=(n + 1) {
        graph.add_edge(idx(1), idx(2 * i)).unwrap();
        graph.add_edge(idx(2 * i), idx(2 * i + 1)).unwrap();
        graph.add_edge(idx(2 * i + 1), idx(2 * n + 5)).unwrap();
    }
    graph.add_edge(idx(1), idx(2 * n + 4)).unwrap();
    graph.add_edge(idx(2 * n + 4), idx(2 * n + 5)).unwrap();
    Gadget {
        name: "prop2",
        app,
        graph,
        bound: 2.0 * nf + 3.0,
    }
}

/// Proposition 9 / Figure 12: RN3DM ↦ "is there a one-port operation list of
/// latency at most `n² + n + 4` for this fork-join execution graph?".
///
/// `C0` (cost 1) fans out to `C1..Cn` (cost `n − A[i] + n²`), which all feed
/// `C_{n+1}` (cost 1); all selectivities are 1.
pub fn prop9_latency_forkjoin(instance: &Rn3dmInstance) -> Gadget {
    let n = instance.n();
    assert!(n >= 1, "the gadget needs n >= 1");
    let nf = n as f64;
    let mut app = Application::new();
    app.add_service(1.0, 1.0);
    for i in 0..n {
        app.add_service(nf - instance.a[i] as f64 + nf * nf, 1.0);
    }
    app.add_service(1.0, 1.0);
    let mut graph = ExecutionGraph::new(n + 2);
    for i in 1..=n {
        graph.add_edge(0, i).unwrap();
        graph.add_edge(i, n + 1).unwrap();
    }
    Gadget {
        name: "prop9",
        app,
        graph,
        bound: nf * nf + nf + 4.0,
    }
}

/// Proposition 13: RN3DM ↦ MINLATENCY.
///
/// A fork service `F` with cost and selectivity `1/(20n)`, `n` middle services
/// with cost `10n − A[i]` and selectivity `1 − 1/(2n)`, and a join service `J`
/// with cost 1 and selectivity `200n² − 1`.  The paper's bound
/// `K = 1/2 + 10nσⁿ + 1/(20n)` excludes the initial input transfer (size
/// `δ0 = 1`), which this library always counts, so the returned bound is
/// `K + 1`.  The returned graph is the intended optimal fork-join plan.
pub fn prop13_minlatency(instance: &Rn3dmInstance) -> Gadget {
    let n = instance.n();
    assert!(n >= 2, "the gadget needs n >= 2");
    let nf = n as f64;
    let sigma = 1.0 - 1.0 / (2.0 * nf);
    let sf = 1.0 / (20.0 * nf);
    let mut app = Application::new();
    app.add_service(sf, sf); // F
    for i in 0..n {
        app.add_service(10.0 * nf - instance.a[i] as f64, sigma);
    }
    app.add_service(1.0, 200.0 * nf * nf - 1.0); // J
    let mut graph = ExecutionGraph::new(n + 2);
    for i in 1..=n {
        graph.add_edge(0, i).unwrap();
        graph.add_edge(i, n + 1).unwrap();
    }
    let bound = 0.5 + 10.0 * nf * sigma.powi(n as i32) + sf + 1.0;
    Gadget {
        name: "prop13",
        app,
        graph,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{no_instance, yes_instance, Rn3dmInstance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prop2_gadget_shape() {
        let inst = Rn3dmInstance::new(vec![2, 4, 6]);
        let g = prop2_period_outorder(&inst);
        let n = 3;
        assert_eq!(g.app.n(), 2 * n + 5);
        assert_eq!(g.bound, (2 * n + 3) as f64);
        // C1 has n + 2 successors, C_{2n+5} has n + 2 predecessors.
        assert_eq!(g.graph.succs(0).len(), n + 2);
        assert_eq!(g.graph.preds(2 * n + 4).len(), n + 2);
        g.app.validate().unwrap();
        // Per-server work: C1, C_{2n+2}, C_{2n+3}, C_{2n+4}, C_{2n+5} and all
        // even services are saturated at exactly 2n+3; odd services have slack.
        let metrics = fsw_core::PlanMetrics::compute(&g.app, &g.graph).unwrap();
        let exec = |k: usize| metrics.c_in(k) + metrics.c_comp(k) + metrics.c_out(k);
        assert_eq!(exec(0), g.bound);
        assert_eq!(exec(2 * n + 4), g.bound);
        for i in 1..=n {
            assert_eq!(exec(2 * i - 1), g.bound);
            assert_eq!(exec(2 * i), g.bound - inst.a[i - 1] as f64);
        }
    }

    #[test]
    fn prop9_gadget_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let (inst, _) = yes_instance(4, &mut rng);
        let g = prop9_latency_forkjoin(&inst);
        assert_eq!(g.app.n(), 6);
        assert_eq!(g.bound, 4.0 * 4.0 + 4.0 + 4.0);
        assert!(!g.graph.is_forest());
        g.app.validate().unwrap();
    }

    #[test]
    fn prop13_gadget_shape() {
        let inst = Rn3dmInstance::new(vec![2, 4, 6]);
        let g = prop13_minlatency(&inst);
        assert_eq!(g.app.n(), 5);
        assert!(g.app.service(0).selectivity < 1.0);
        assert!(g.app.service(4).is_expander());
        g.app.validate().unwrap();
        assert!(g.bound > 1.0);
    }

    #[test]
    fn no_instances_produce_well_formed_gadgets_too() {
        let mut rng = StdRng::seed_from_u64(4);
        if let Some(inst) = no_instance(4, 500, &mut rng) {
            let g2 = prop2_period_outorder(&inst);
            g2.app.validate().unwrap();
            let g9 = prop9_latency_forkjoin(&inst);
            g9.app.validate().unwrap();
        }
    }
}
