//! RN3DM (permutation sums) instances.
//!
//! RN3DM is the restricted form of Numerical 3-Dimensional Matching used by
//! every NP-hardness reduction of the paper: given an integer vector
//! `A[1..n]`, do two permutations `λ1, λ2` of `{1..n}` exist such that
//! `λ1(i) + λ2(i) = A[i]` for every `i`?  The problem is NP-complete
//! (Yu, Hoogeveen, Lenstra 2004), yet small instances are easily solved by
//! backtracking, which is exactly what the reduction experiments need.

use rand::seq::SliceRandom;
use rand::Rng;

/// An RN3DM instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rn3dmInstance {
    /// The target sums `A[1..n]` (0-indexed here).
    pub a: Vec<usize>,
}

/// A certificate for a YES instance: the two permutations (1-indexed values).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rn3dmSolution {
    /// `λ1(i)` for every position `i`.
    pub lambda1: Vec<usize>,
    /// `λ2(i)` for every position `i`.
    pub lambda2: Vec<usize>,
}

impl Rn3dmInstance {
    /// Creates an instance from the target sums.
    pub fn new(a: Vec<usize>) -> Self {
        Rn3dmInstance { a }
    }

    /// Number of positions.
    pub fn n(&self) -> usize {
        self.a.len()
    }

    /// Checks the necessary conditions `Σ A[i] = n(n+1)` and `2 ≤ A[i] ≤ 2n`.
    /// Instances violating them are trivially NO instances.
    pub fn is_well_formed(&self) -> bool {
        let n = self.n();
        if n == 0 {
            return false;
        }
        let sum: usize = self.a.iter().sum();
        sum == n * (n + 1) && self.a.iter().all(|&x| (2..=2 * n).contains(&x))
    }

    /// Verifies a candidate certificate.
    pub fn check(&self, solution: &Rn3dmSolution) -> bool {
        let n = self.n();
        let is_perm = |p: &[usize]| {
            let mut seen = vec![false; n + 1];
            p.len() == n
                && p.iter().all(|&v| {
                    if v >= 1 && v <= n && !seen[v] {
                        seen[v] = true;
                        true
                    } else {
                        false
                    }
                })
        };
        is_perm(&solution.lambda1)
            && is_perm(&solution.lambda2)
            && (0..n).all(|i| solution.lambda1[i] + solution.lambda2[i] == self.a[i])
    }

    /// Solves the instance by backtracking; returns a certificate if one exists.
    ///
    /// Exponential in the worst case (the problem is NP-complete) but fast for
    /// the small instances used by the reduction experiments.
    pub fn solve(&self) -> Option<Rn3dmSolution> {
        let n = self.n();
        if !self.is_well_formed() {
            return None;
        }
        let mut lambda1 = vec![0usize; n];
        let mut used1 = vec![false; n + 1];
        let mut used2 = vec![false; n + 1];
        if self.backtrack(0, &mut lambda1, &mut used1, &mut used2) {
            let lambda2: Vec<usize> = (0..n).map(|i| self.a[i] - lambda1[i]).collect();
            let solution = Rn3dmSolution { lambda1, lambda2 };
            debug_assert!(self.check(&solution));
            Some(solution)
        } else {
            None
        }
    }

    fn backtrack(
        &self,
        i: usize,
        lambda1: &mut Vec<usize>,
        used1: &mut Vec<bool>,
        used2: &mut Vec<bool>,
    ) -> bool {
        let n = self.n();
        if i == n {
            return true;
        }
        for v in 1..=n {
            if used1[v] {
                continue;
            }
            let Some(w) = self.a[i].checked_sub(v) else {
                continue;
            };
            if w < 1 || w > n || used2[w] {
                continue;
            }
            used1[v] = true;
            used2[w] = true;
            lambda1[i] = v;
            if self.backtrack(i + 1, lambda1, used1, used2) {
                return true;
            }
            used1[v] = false;
            used2[w] = false;
        }
        false
    }

    /// `true` iff the instance admits a solution.
    pub fn is_yes(&self) -> bool {
        self.solve().is_some()
    }
}

/// Generates a YES instance of size `n` (by drawing two random permutations
/// and summing them).
pub fn yes_instance<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (Rn3dmInstance, Rn3dmSolution) {
    let mut lambda1: Vec<usize> = (1..=n).collect();
    let mut lambda2: Vec<usize> = (1..=n).collect();
    lambda1.shuffle(rng);
    lambda2.shuffle(rng);
    let a: Vec<usize> = (0..n).map(|i| lambda1[i] + lambda2[i]).collect();
    (Rn3dmInstance::new(a), Rn3dmSolution { lambda1, lambda2 })
}

/// Tries to generate a well-formed NO instance of size `n`; returns `None` if
/// none was found within `attempts` random draws (small sizes have few or no
/// NO instances — for `n ≤ 2` every well-formed instance is a YES instance).
pub fn no_instance<R: Rng + ?Sized>(
    n: usize,
    attempts: usize,
    rng: &mut R,
) -> Option<Rn3dmInstance> {
    for _ in 0..attempts {
        // Start from a YES instance and redistribute mass between two positions
        // while keeping the sum and the range constraints.
        let (mut inst, _) = yes_instance(n, rng);
        for _ in 0..4 {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i == j {
                continue;
            }
            if inst.a[i] < 2 * n && inst.a[j] > 2 {
                inst.a[i] += 1;
                inst.a[j] -= 1;
            }
        }
        if inst.is_well_formed() && !inst.is_yes() {
            return Some(inst);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trivial_instances() {
        // n = 1: A = [2] is the only well-formed instance and it is YES.
        let inst = Rn3dmInstance::new(vec![2]);
        assert!(inst.is_well_formed());
        assert!(inst.is_yes());
        // Ill-formed instances are rejected.
        assert!(!Rn3dmInstance::new(vec![3]).is_well_formed());
        assert!(!Rn3dmInstance::new(vec![]).is_well_formed());
        assert!(Rn3dmInstance::new(vec![3]).solve().is_none());
    }

    #[test]
    fn known_yes_and_no() {
        // n = 3, A = [2, 4, 6]: λ1 = (1,2,3), λ2 = (1,2,3).
        let yes = Rn3dmInstance::new(vec![2, 4, 6]);
        assert!(yes.is_yes());
        let sol = yes.solve().unwrap();
        assert!(yes.check(&sol));
        // n = 4, A = [2, 2, 8, 8] is well-formed but infeasible: two positions
        // would both need λ1(i) = λ2(i) = 1.
        let no = Rn3dmInstance::new(vec![2, 2, 8, 8]);
        assert!(no.is_well_formed());
        assert!(!no.is_yes());
    }

    #[test]
    fn generated_yes_instances_are_yes() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in 2..=7 {
            let (inst, sol) = yes_instance(n, &mut rng);
            assert!(inst.is_well_formed());
            assert!(inst.check(&sol));
            assert!(inst.is_yes());
        }
    }

    #[test]
    fn generated_no_instances_are_no() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in 3..=6 {
            if let Some(inst) = no_instance(n, 200, &mut rng) {
                assert!(inst.is_well_formed());
                assert!(!inst.is_yes());
            }
        }
    }

    #[test]
    fn certificate_checker_rejects_wrong_answers() {
        let inst = Rn3dmInstance::new(vec![2, 4, 6]);
        let wrong = Rn3dmSolution {
            lambda1: vec![1, 2, 3],
            lambda2: vec![2, 1, 3],
        };
        assert!(!inst.check(&wrong));
        let not_a_permutation = Rn3dmSolution {
            lambda1: vec![1, 1, 3],
            lambda2: vec![1, 3, 3],
        };
        assert!(!inst.check(&not_a_permutation));
    }
}
