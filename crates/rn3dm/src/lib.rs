//! # fsw-rn3dm — RN3DM instances and the paper's hardness gadgets
//!
//! RN3DM (permutation sums) is the NP-complete problem every reduction of the
//! paper starts from.  This crate provides instances, a small exact solver,
//! YES/NO generators, and the explicit reduction gadgets (Propositions 2, 9
//! and 13) so that the scheduling experiments can exercise the hardness
//! constructions end to end.
//!
//! ```
//! use fsw_rn3dm::Rn3dmInstance;
//!
//! let yes = Rn3dmInstance::new(vec![2, 4, 6]);
//! assert!(yes.is_yes());
//! let no = Rn3dmInstance::new(vec![2, 2, 8, 8]);
//! assert!(!no.is_yes());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod instance;
pub mod reductions;

pub use instance::{no_instance, yes_instance, Rn3dmInstance, Rn3dmSolution};
pub use reductions::{prop13_minlatency, prop2_period_outorder, prop9_latency_forkjoin, Gadget};
