//! Operation lists: the cyclic timetable of a plan.
//!
//! An operation list fixes, for data set number 0, the begin/end time of every
//! computation and of every communication of the plan; the whole pattern
//! repeats every `λ` time units for the following data sets
//! (`BeginCalc_n = BeginCalc_0 + n·λ`, etc.).  The period of the plan is `λ`
//! and its latency is the largest communication completion time of data set 0
//! (every exit node emits a final message to the output node, so the longest
//! path always ends with a communication).

use std::collections::BTreeMap;

use crate::error::{CoreError, CoreResult};
use crate::graph::ExecutionGraph;
use crate::service::ServiceId;

/// Identifier of a communication of the plan.
///
/// Besides service-to-service transfers ([`EdgeRef::Link`]), the plan contains
/// one incoming communication from the outside world per entry node
/// ([`EdgeRef::Input`]) and one outgoing communication to the outside world per
/// exit node ([`EdgeRef::Output`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeRef {
    /// Communication from the input node to entry service `k`.
    Input(ServiceId),
    /// Communication from service `i` to service `j`.
    Link(ServiceId, ServiceId),
    /// Communication from exit service `k` to the output node.
    Output(ServiceId),
}

impl EdgeRef {
    /// The service on the sending side, if any (`None` for input edges).
    pub fn sender(&self) -> Option<ServiceId> {
        match *self {
            EdgeRef::Input(_) => None,
            EdgeRef::Link(i, _) => Some(i),
            EdgeRef::Output(k) => Some(k),
        }
    }

    /// The service on the receiving side, if any (`None` for output edges).
    pub fn receiver(&self) -> Option<ServiceId> {
        match *self {
            EdgeRef::Input(k) => Some(k),
            EdgeRef::Link(_, j) => Some(j),
            EdgeRef::Output(_) => None,
        }
    }

    /// Returns `true` if the communication occupies server `k` (as sender or receiver).
    pub fn touches(&self, k: ServiceId) -> bool {
        self.sender() == Some(k) || self.receiver() == Some(k)
    }
}

impl std::fmt::Display for EdgeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EdgeRef::Input(k) => write!(f, "in->C{}", k + 1),
            EdgeRef::Link(i, j) => write!(f, "C{}->C{}", i + 1, j + 1),
            EdgeRef::Output(k) => write!(f, "C{}->out", k + 1),
        }
    }
}

/// A half-open time interval `[begin, end)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Start time.
    pub begin: f64,
    /// Completion time.
    pub end: f64,
}

impl Interval {
    /// Creates a new interval.
    pub fn new(begin: f64, end: f64) -> Self {
        Interval { begin, end }
    }

    /// Creates an interval from a start time and a duration.
    pub fn with_duration(begin: f64, duration: f64) -> Self {
        Interval {
            begin,
            end: begin + duration,
        }
    }

    /// Duration of the interval.
    pub fn duration(&self) -> f64 {
        self.end - self.begin
    }

    /// Returns `true` if the two (non-cyclic) intervals overlap with positive measure.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.begin < other.end && other.begin < self.end
    }

    /// Shifts the interval by `dt`.
    pub fn shifted(&self, dt: f64) -> Interval {
        Interval::new(self.begin + dt, self.end + dt)
    }
}

/// The operation list `OL` of a plan.
///
/// `calc[k]` is the computation interval of service `k` for data set 0 and
/// `comm[e]` the communication interval of plan edge `e` for data set 0; the
/// schedule repeats with period [`OperationList::lambda`].
#[derive(Clone, Debug, PartialEq)]
pub struct OperationList {
    /// The cyclic period `λ` of the schedule.
    pub lambda: f64,
    /// Computation interval of every service (data set 0).
    pub calc: Vec<Interval>,
    /// Communication interval of every plan edge (data set 0).
    pub comm: BTreeMap<EdgeRef, Interval>,
}

impl OperationList {
    /// Creates an operation list with `n` zero-length computations at time 0.
    pub fn new(n: usize, lambda: f64) -> Self {
        OperationList {
            lambda,
            calc: vec![Interval::new(0.0, 0.0); n],
            comm: BTreeMap::new(),
        }
    }

    /// Number of services covered.
    pub fn n(&self) -> usize {
        self.calc.len()
    }

    /// The period `P = λ` of the schedule.
    pub fn period(&self) -> f64 {
        self.lambda
    }

    /// The latency `L = max EndComm⁰` of the schedule (paper, Section 2.2).
    pub fn latency(&self) -> f64 {
        self.comm
            .values()
            .map(|iv| iv.end)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The completion time of the last operation (computation or
    /// communication) of data set 0.
    pub fn makespan(&self) -> f64 {
        let calc_end = self.calc.iter().map(|iv| iv.end).fold(0.0, f64::max);
        calc_end.max(self.latency().max(0.0))
    }

    /// Earliest start of any operation of data set 0.
    pub fn start(&self) -> f64 {
        let calc_begin = self
            .calc
            .iter()
            .map(|iv| iv.begin)
            .fold(f64::INFINITY, f64::min);
        let comm_begin = self
            .comm
            .values()
            .map(|iv| iv.begin)
            .fold(f64::INFINITY, f64::min);
        calc_begin.min(comm_begin)
    }

    /// Sets the computation interval of service `k`.
    pub fn set_calc(&mut self, k: ServiceId, interval: Interval) {
        self.calc[k] = interval;
    }

    /// Sets the communication interval of plan edge `e`.
    pub fn set_comm(&mut self, e: EdgeRef, interval: Interval) {
        self.comm.insert(e, interval);
    }

    /// The communication interval of a plan edge, if scheduled.
    pub fn comm(&self, e: EdgeRef) -> Option<Interval> {
        self.comm.get(&e).copied()
    }

    /// The computation interval of a service.
    pub fn calc(&self, k: ServiceId) -> Interval {
        self.calc[k]
    }

    /// Changes the period, leaving all data-set-0 times untouched.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Shifts every operation by `dt` (useful to normalise schedules to start at 0).
    pub fn shift(&mut self, dt: f64) {
        for iv in &mut self.calc {
            *iv = iv.shifted(dt);
        }
        for iv in self.comm.values_mut() {
            *iv = iv.shifted(dt);
        }
    }

    /// Checks that the operation list covers exactly the plan edges of `graph`
    /// (one communication per input, link and output edge) and one computation
    /// per service.
    pub fn covers(&self, graph: &ExecutionGraph) -> CoreResult<()> {
        if self.calc.len() != graph.n() {
            return Err(CoreError::SizeMismatch {
                expected: graph.n(),
                found: self.calc.len(),
            });
        }
        let expected: std::collections::BTreeSet<EdgeRef> =
            crate::metrics::plan_edges(graph).into_iter().collect();
        let actual: std::collections::BTreeSet<EdgeRef> = self.comm.keys().copied().collect();
        if expected != actual {
            // Report the first discrepancy in a structured way.
            if let Some(&missing) = expected.difference(&actual).next() {
                return Err(match missing {
                    EdgeRef::Input(k) => CoreError::MissingPrecedence { from: k, to: k },
                    EdgeRef::Link(i, j) => CoreError::MissingPrecedence { from: i, to: j },
                    EdgeRef::Output(k) => CoreError::MissingPrecedence { from: k, to: k },
                });
            }
            if let Some(&extra) = actual.difference(&expected).next() {
                return Err(match extra {
                    EdgeRef::Input(k) | EdgeRef::Output(k) => CoreError::InvalidService {
                        id: k,
                        n: graph.n(),
                    },
                    EdgeRef::Link(i, _) => CoreError::InvalidService {
                        id: i,
                        n: graph.n(),
                    },
                });
            }
        }
        Ok(())
    }
}

/// A complete plan: an execution graph together with an operation list.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// The execution graph `EG`.
    pub graph: ExecutionGraph,
    /// The operation list `OL`.
    pub oplist: OperationList,
}

impl Plan {
    /// Bundles an execution graph and an operation list.
    pub fn new(graph: ExecutionGraph, oplist: OperationList) -> Self {
        Plan { graph, oplist }
    }

    /// Period of the plan.
    pub fn period(&self) -> f64 {
        self.oplist.period()
    }

    /// Latency of the plan.
    pub fn latency(&self) -> f64 {
        self.oplist.latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_ref_accessors() {
        let e = EdgeRef::Link(2, 5);
        assert_eq!(e.sender(), Some(2));
        assert_eq!(e.receiver(), Some(5));
        assert!(e.touches(2) && e.touches(5) && !e.touches(3));
        assert_eq!(EdgeRef::Input(1).sender(), None);
        assert_eq!(EdgeRef::Output(1).receiver(), None);
        assert_eq!(EdgeRef::Link(0, 1).to_string(), "C1->C2");
        assert_eq!(EdgeRef::Input(0).to_string(), "in->C1");
        assert_eq!(EdgeRef::Output(4).to_string(), "C5->out");
    }

    #[test]
    fn interval_arithmetic() {
        let a = Interval::with_duration(1.0, 2.0);
        assert_eq!(a.end, 3.0);
        assert_eq!(a.duration(), 2.0);
        let b = Interval::new(2.5, 4.0);
        assert!(a.overlaps(&b));
        let c = Interval::new(3.0, 4.0);
        assert!(!a.overlaps(&c));
        assert_eq!(a.shifted(1.0), Interval::new(2.0, 4.0));
    }

    /// The operation list spelled out in Section 2.3 for the Figure 1 graph.
    fn section23_oplist() -> OperationList {
        let mut ol = OperationList::new(5, 21.0);
        // Services are C1..C5 = ids 0..4.
        ol.set_calc(0, Interval::new(1.0, 5.0));
        ol.set_calc(1, Interval::new(6.0, 10.0));
        ol.set_calc(2, Interval::new(11.0, 15.0));
        ol.set_calc(3, Interval::new(7.0, 11.0));
        ol.set_calc(4, Interval::new(16.0, 20.0));
        ol.set_comm(EdgeRef::Input(0), Interval::new(0.0, 1.0));
        ol.set_comm(EdgeRef::Link(0, 1), Interval::new(5.0, 6.0));
        ol.set_comm(EdgeRef::Link(0, 3), Interval::new(6.0, 7.0));
        ol.set_comm(EdgeRef::Link(1, 2), Interval::new(10.0, 11.0));
        ol.set_comm(EdgeRef::Link(2, 4), Interval::new(15.0, 16.0));
        ol.set_comm(EdgeRef::Link(3, 4), Interval::new(11.0, 12.0));
        ol.set_comm(EdgeRef::Output(4), Interval::new(20.0, 21.0));
        ol
    }

    #[test]
    fn section23_period_and_latency() {
        let ol = section23_oplist();
        assert_eq!(ol.period(), 21.0);
        assert_eq!(ol.latency(), 21.0);
        assert_eq!(ol.makespan(), 21.0);
        assert_eq!(ol.start(), 0.0);
    }

    #[test]
    fn covers_detects_missing_and_extra_edges() {
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
        let ol = section23_oplist();
        ol.covers(&g).unwrap();

        let mut missing = ol.clone();
        missing.comm.remove(&EdgeRef::Link(0, 3));
        assert!(missing.covers(&g).is_err());

        let mut extra = ol.clone();
        extra.set_comm(EdgeRef::Link(1, 4), Interval::new(0.0, 1.0));
        assert!(extra.covers(&g).is_err());

        let short = OperationList::new(4, 1.0);
        assert!(short.covers(&g).is_err());
    }

    #[test]
    fn shift_moves_everything() {
        let mut ol = section23_oplist();
        ol.shift(2.0);
        assert_eq!(ol.calc(0), Interval::new(3.0, 7.0));
        assert_eq!(ol.comm(EdgeRef::Input(0)).unwrap(), Interval::new(2.0, 3.0));
        assert_eq!(ol.latency(), 23.0);
    }
}
