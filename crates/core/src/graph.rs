//! Execution graphs.
//!
//! An execution graph `EG = (C, E)` is a DAG over the services of an
//! [`Application`](crate::Application).  It contains the application's
//! precedence constraints (in its transitive closure) plus any extra edges the
//! scheduler decided to add so that upstream selectivities shrink downstream
//! data.  Entry nodes implicitly receive data from an *input node* and exit
//! nodes implicitly send their result to an *output node*; those pseudo-nodes
//! are materialised by [`crate::oplist::EdgeRef::Input`] and
//! [`crate::oplist::EdgeRef::Output`] in operation lists.

use crate::error::{CoreError, CoreResult};
use crate::service::{Application, ServiceId};

/// A directed acyclic execution graph over `n` services.
///
/// Edges are stored both as successor and predecessor adjacency lists (kept
/// sorted), so that neighbourhood queries are cheap in both directions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ExecutionGraph {
    n: usize,
    succs: Vec<Vec<ServiceId>>,
    preds: Vec<Vec<ServiceId>>,
}

impl ExecutionGraph {
    /// Creates an edge-less execution graph over `n` services.
    pub fn new(n: usize) -> Self {
        ExecutionGraph {
            n,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// Creates an execution graph from an explicit edge list.
    pub fn from_edges(n: usize, edges: &[(ServiceId, ServiceId)]) -> CoreResult<Self> {
        let mut g = ExecutionGraph::new(n);
        for &(i, j) in edges {
            g.add_edge(i, j)?;
        }
        Ok(g)
    }

    /// Creates a linear chain following `order` (a permutation of `0..n`, or a
    /// subset of services to chain; services not listed stay isolated).
    pub fn chain_of(n: usize, order: &[ServiceId]) -> CoreResult<Self> {
        let mut g = ExecutionGraph::new(n);
        for w in order.windows(2) {
            g.add_edge(w[0], w[1])?;
        }
        Ok(g)
    }

    /// Creates an execution graph from a parent function: `parents[k]` is the
    /// unique direct predecessor of `k`, or `None` if `k` is an entry node.
    /// The result is always a forest.
    pub fn from_parents(parents: &[Option<ServiceId>]) -> CoreResult<Self> {
        let n = parents.len();
        let mut g = ExecutionGraph::new(n);
        for (k, &p) in parents.iter().enumerate() {
            if let Some(p) = p {
                g.add_edge(p, k)?;
            }
        }
        Ok(g)
    }

    /// Creates an execution graph whose edges are the selected *forward* edges
    /// of a topological permutation: bit `a*(a-1)/2 + ...` — concretely, bit
    /// `b` of `mask` selects the `b`-th pair `(a, c)` with `a < c` in the
    /// lexicographic order `(0,1), (0,2), …, (0,n-1), (1,2), …`, adding the
    /// edge `order[a] → order[c]`.
    ///
    /// Because every selected edge goes forward along `order`, the result is
    /// acyclic by construction, so this skips the per-edge cycle checks of
    /// [`ExecutionGraph::add_edge`] — it is the hot constructor of the
    /// exhaustive DAG enumeration.  Requires `order` to be a permutation of
    /// `0..n` with `n*(n-1)/2 <= 64`; both are debug-asserted.
    pub fn from_permutation_mask(order: &[ServiceId], mask: u64) -> Self {
        let n = order.len();
        debug_assert!(n * n.saturating_sub(1) / 2 <= 64);
        debug_assert!({
            let mut seen = vec![false; n];
            order
                .iter()
                .all(|&k| k < n && !std::mem::replace(&mut seen[k], true))
        });
        let mut g = ExecutionGraph::new(n);
        let mut bit = 0u32;
        for a in 0..n {
            for c in (a + 1)..n {
                if mask & (1u64 << bit) != 0 {
                    let (i, j) = (order[a], order[c]);
                    g.succs[i].push(j);
                    g.preds[j].push(i);
                }
                bit += 1;
            }
        }
        for list in g.succs.iter_mut().chain(g.preds.iter_mut()) {
            list.sort_unstable();
        }
        g
    }

    /// Number of services (excluding the implicit input/output nodes).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edge mask of this graph under the node relabelling `perm`: bit
    /// `perm[i] * n + perm[j]` is set for every edge `i → j`.  Two graphs
    /// are identical up to the relabelling iff their masks under it match —
    /// the compact signature behind the canonical-form machinery
    /// ([`crate::canonical`], `fsw_sched::engine::EvalCache`).  Requires
    /// `n² <= 128` (debug-asserted); `perm` must be a permutation of `0..n`.
    pub fn edge_mask_under(&self, perm: &[ServiceId]) -> u128 {
        debug_assert!(self.n * self.n <= 128);
        debug_assert_eq!(perm.len(), self.n);
        let mut mask = 0u128;
        for i in 0..self.n {
            for &j in self.succs(i).iter() {
                mask |= 1u128 << (perm[i] * self.n + perm[j]);
            }
        }
        mask
    }

    /// Number of service-to-service edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Returns `true` if the edge `i → j` is present.
    pub fn has_edge(&self, i: ServiceId, j: ServiceId) -> bool {
        i < self.n && self.succs[i].binary_search(&j).is_ok()
    }

    /// Adds the edge `i → j`.
    ///
    /// Fails on out-of-range endpoints, self-loops, or if the edge would
    /// create a directed cycle.  Adding an existing edge is a no-op.
    pub fn add_edge(&mut self, i: ServiceId, j: ServiceId) -> CoreResult<()> {
        if i >= self.n {
            return Err(CoreError::InvalidService { id: i, n: self.n });
        }
        if j >= self.n {
            return Err(CoreError::InvalidService { id: j, n: self.n });
        }
        if i == j {
            return Err(CoreError::SelfLoop { id: i });
        }
        if self.has_edge(i, j) {
            return Ok(());
        }
        if self.reaches(j, i) {
            return Err(CoreError::WouldCreateCycle { from: i, to: j });
        }
        let pos = self.succs[i].binary_search(&j).unwrap_err();
        self.succs[i].insert(pos, j);
        let pos = self.preds[j].binary_search(&i).unwrap_err();
        self.preds[j].insert(pos, i);
        Ok(())
    }

    /// Removes the edge `i → j`, returning `true` if it was present.
    pub fn remove_edge(&mut self, i: ServiceId, j: ServiceId) -> bool {
        if i >= self.n || j >= self.n {
            return false;
        }
        match self.succs[i].binary_search(&j) {
            Ok(pos) => {
                self.succs[i].remove(pos);
                let p = self.preds[j]
                    .binary_search(&i)
                    .expect("adjacency out of sync");
                self.preds[j].remove(p);
                true
            }
            Err(_) => false,
        }
    }

    /// Direct successors `Sout(k)` of a service, sorted.
    pub fn succs(&self, k: ServiceId) -> &[ServiceId] {
        &self.succs[k]
    }

    /// Direct predecessors `Sin(k)` of a service, sorted.
    pub fn preds(&self, k: ServiceId) -> &[ServiceId] {
        &self.preds[k]
    }

    /// Iterator over all edges `(i, j)`.
    pub fn edges(&self) -> impl Iterator<Item = (ServiceId, ServiceId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(i, js)| js.iter().map(move |&j| (i, j)))
    }

    /// Entry nodes (no predecessor); they receive data from the input node.
    pub fn entry_nodes(&self) -> Vec<ServiceId> {
        (0..self.n).filter(|&k| self.preds[k].is_empty()).collect()
    }

    /// Exit nodes (no successor); they send their output to the output node.
    pub fn exit_nodes(&self) -> Vec<ServiceId> {
        (0..self.n).filter(|&k| self.succs[k].is_empty()).collect()
    }

    /// Returns `true` if `from` reaches `to` by a directed path (possibly empty:
    /// `reaches(x, x)` is `true`).
    pub fn reaches(&self, from: ServiceId, to: ServiceId) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.n];
        let mut stack = vec![from];
        visited[from] = true;
        while let Some(v) = stack.pop() {
            for &w in &self.succs[v] {
                if w == to {
                    return true;
                }
                if !visited[w] {
                    visited[w] = true;
                    stack.push(w);
                }
            }
        }
        false
    }

    /// A topological order of the services.
    ///
    /// The graph is maintained acyclic by construction, so this never fails
    /// unless the invariant was broken; the `Result` is kept for robustness.
    pub fn topological_order(&self) -> CoreResult<Vec<ServiceId>> {
        let mut indeg: Vec<usize> = (0..self.n).map(|k| self.preds[k].len()).collect();
        // Use a stack seeded in reverse id order so the produced order is
        // deterministic (small ids first among ready nodes).
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..self.n)
            .filter(|&k| indeg[k] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(std::cmp::Reverse(v)) = heap.pop() {
            order.push(v);
            for &w in &self.succs[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    heap.push(std::cmp::Reverse(w));
                }
            }
        }
        if order.len() != self.n {
            return Err(CoreError::CyclicGraph);
        }
        Ok(order)
    }

    /// The set of ancestors `Ancest_k(EG)` of every service, as boolean masks.
    ///
    /// `result[k][a]` is `true` iff `a` is a strict ancestor of `k` (a
    /// predecessor, or a predecessor of a predecessor, and so on).
    pub fn ancestor_sets(&self) -> Vec<Vec<bool>> {
        let order = self
            .topological_order()
            .expect("execution graph invariant: acyclic");
        let mut anc = vec![vec![false; self.n]; self.n];
        for &v in &order {
            // Ancestors of v = union over preds p of ({p} ∪ ancestors(p)).
            let mut mask = vec![false; self.n];
            for &p in &self.preds[v] {
                mask[p] = true;
                for a in 0..self.n {
                    if anc[p][a] {
                        mask[a] = true;
                    }
                }
            }
            anc[v] = mask;
        }
        anc
    }

    /// The ancestors of a single service, as a sorted list.
    pub fn ancestors(&self, k: ServiceId) -> Vec<ServiceId> {
        let mut visited = vec![false; self.n];
        let mut stack: Vec<usize> = self.preds[k].to_vec();
        for &p in &self.preds[k] {
            visited[p] = true;
        }
        while let Some(v) = stack.pop() {
            for &p in &self.preds[v] {
                if !visited[p] {
                    visited[p] = true;
                    stack.push(p);
                }
            }
        }
        (0..self.n).filter(|&a| visited[a]).collect()
    }

    /// Full transitive closure as boolean masks: `closure[i][j]` is `true` iff
    /// there is a (possibly empty) path from `i` to `j`.
    pub fn transitive_closure(&self) -> Vec<Vec<bool>> {
        let anc = self.ancestor_sets();
        let mut clo = vec![vec![false; self.n]; self.n];
        for (i, row) in clo.iter_mut().enumerate() {
            row[i] = true;
        }
        for (j, mask) in anc.iter().enumerate() {
            for (i, &is_anc) in mask.iter().enumerate() {
                if is_anc {
                    clo[i][j] = true;
                }
            }
        }
        clo
    }

    /// Checks that every precedence constraint of `app` is honoured, i.e. is
    /// contained in the transitive closure of this graph.
    pub fn respects(&self, app: &Application) -> CoreResult<()> {
        if app.n() != self.n {
            return Err(CoreError::SizeMismatch {
                expected: app.n(),
                found: self.n,
            });
        }
        if app.constraints().is_empty() {
            return Ok(());
        }
        let anc = self.ancestor_sets();
        for &(from, to) in app.constraints() {
            if !anc[to][from] {
                return Err(CoreError::MissingPrecedence { from, to });
            }
        }
        Ok(())
    }

    /// Returns `true` if every node has at most one direct predecessor
    /// (the graph is a forest of out-trees).
    pub fn is_forest(&self) -> bool {
        (0..self.n).all(|k| self.preds[k].len() <= 1)
    }

    /// Returns `true` if the graph is a forest with a single entry node and
    /// every other node reachable from it (a rooted out-tree).
    pub fn is_tree(&self) -> bool {
        if !self.is_forest() {
            return false;
        }
        let entries = self.entry_nodes();
        if entries.len() != 1 {
            return false;
        }
        // In a forest with a single entry, every other node has exactly one
        // parent, hence n-1 edges and connectivity follows.
        self.edge_count() == self.n.saturating_sub(1)
    }

    /// Returns `true` if the graph is one single linear chain covering all services.
    pub fn is_chain(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.is_tree() && (0..self.n).all(|k| self.succs[k].len() <= 1)
    }

    /// If the graph is a forest, returns the parent function
    /// (`None` for entry nodes).
    pub fn parents(&self) -> CoreResult<Vec<Option<ServiceId>>> {
        if !self.is_forest() {
            return Err(CoreError::NotAForest);
        }
        Ok((0..self.n)
            .map(|k| self.preds[k].first().copied())
            .collect())
    }

    /// If the graph is a single chain, returns its service order from entry to exit.
    pub fn chain_order(&self) -> CoreResult<Vec<ServiceId>> {
        if !self.is_chain() {
            return Err(CoreError::NotAChain);
        }
        if self.n == 0 {
            return Ok(Vec::new());
        }
        let mut order = Vec::with_capacity(self.n);
        let mut cur = self.entry_nodes()[0];
        order.push(cur);
        while let Some(&next) = self.succs[cur].first() {
            order.push(next);
            cur = next;
        }
        Ok(order)
    }

    /// Longest path length (number of edges) from any entry node to `k`.
    pub fn depth(&self, k: ServiceId) -> usize {
        let order = self
            .topological_order()
            .expect("execution graph invariant: acyclic");
        let mut depth = vec![0usize; self.n];
        for &v in &order {
            for &p in &self.preds[v] {
                depth[v] = depth[v].max(depth[p] + 1);
            }
        }
        depth[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> ExecutionGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        ExecutionGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn add_remove_edges() {
        let mut g = ExecutionGraph::new(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 2);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn cycle_rejected() {
        let mut g = ExecutionGraph::new(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        assert_eq!(
            g.add_edge(2, 0),
            Err(CoreError::WouldCreateCycle { from: 2, to: 0 })
        );
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let mut g = ExecutionGraph::new(2);
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn entries_exits_and_topo() {
        let g = diamond();
        assert_eq!(g.entry_nodes(), vec![0]);
        assert_eq!(g.exit_nodes(), vec![3]);
        let order = g.topological_order().unwrap();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ancestors_of_diamond() {
        let g = diamond();
        assert_eq!(g.ancestors(3), vec![0, 1, 2]);
        assert_eq!(g.ancestors(0), Vec::<usize>::new());
        let anc = g.ancestor_sets();
        assert!(anc[3][0] && anc[3][1] && anc[3][2]);
        assert!(!anc[0][3]);
    }

    #[test]
    fn transitive_closure_contains_paths() {
        let g = diamond();
        let clo = g.transitive_closure();
        assert!(clo[0][3]);
        assert!(clo[1][3]);
        assert!(!clo[1][2]);
        assert!(clo[2][2]);
    }

    #[test]
    fn respects_constraints() {
        let mut app = Application::independent(&[(1.0, 1.0); 4]);
        app.add_constraint(0, 3).unwrap();
        let g = diamond();
        g.respects(&app).unwrap();
        app.add_constraint(3, 1).unwrap();
        assert_eq!(
            g.respects(&app),
            Err(CoreError::MissingPrecedence { from: 3, to: 1 })
        );
    }

    #[test]
    fn shapes() {
        let chain = ExecutionGraph::chain_of(3, &[2, 0, 1]).unwrap();
        assert!(chain.is_chain());
        assert!(chain.is_tree());
        assert!(chain.is_forest());
        assert_eq!(chain.chain_order().unwrap(), vec![2, 0, 1]);

        let g = diamond();
        assert!(!g.is_forest());
        assert!(!g.is_chain());

        let star = ExecutionGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert!(star.is_tree());
        assert!(!star.is_chain());

        let forest = ExecutionGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(forest.is_forest());
        assert!(!forest.is_tree());
    }

    #[test]
    fn parents_roundtrip() {
        let parents = vec![None, Some(0), Some(0), Some(2)];
        let g = ExecutionGraph::from_parents(&parents).unwrap();
        assert_eq!(g.parents().unwrap(), parents);
        assert!(ExecutionGraph::from_edges(3, &[(0, 2), (1, 2)])
            .unwrap()
            .parents()
            .is_err());
    }

    #[test]
    fn permutation_mask_matches_checked_construction() {
        let order = vec![2usize, 0, 3, 1];
        let n = order.len();
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .collect();
        for mask in 0u64..(1 << pairs.len()) {
            let fast = ExecutionGraph::from_permutation_mask(&order, mask);
            let mut slow = ExecutionGraph::new(n);
            for (bit, &(a, b)) in pairs.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    slow.add_edge(order[a], order[b]).unwrap();
                }
            }
            assert_eq!(fast, slow, "mask {mask:#b}");
        }
    }

    #[test]
    fn depth_computation() {
        let g = diamond();
        assert_eq!(g.depth(0), 0);
        assert_eq!(g.depth(1), 1);
        assert_eq!(g.depth(3), 2);
    }

    #[test]
    fn empty_graph() {
        let g = ExecutionGraph::new(0);
        assert!(g.is_chain());
        assert_eq!(g.topological_order().unwrap(), Vec::<usize>::new());
    }
}
