//! Validation of operation lists against the model rules of Appendix A.
//!
//! Every scheduling algorithm in this workspace must produce operation lists
//! that pass [`validate_oplist`] for the model it targets; the validator is the
//! executable form of the paper's resource-constraint rule sets and is used
//! pervasively in tests and property checks.

use std::fmt;

use crate::graph::ExecutionGraph;
use crate::metrics::{in_edges, out_edges, plan_edges, PlanMetrics};
use crate::model::CommModel;
use crate::oplist::{EdgeRef, OperationList};
use crate::service::{Application, ServiceId};

/// Default numerical tolerance used by the validator.
pub const DEFAULT_EPSILON: f64 = 1e-7;

/// A single violation of the model rules.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// The period is not a positive finite number.
    InvalidPeriod {
        /// Offending value of `λ`.
        lambda: f64,
    },
    /// The operation list does not cover exactly the plan edges of the graph.
    Coverage {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A computation has the wrong duration.
    CalcDuration {
        /// Service whose computation is wrong.
        service: ServiceId,
        /// Expected duration (`Ccomp`).
        expected: f64,
        /// Duration found in the operation list.
        found: f64,
    },
    /// A communication has the wrong duration (one-port) or exceeds the
    /// available bandwidth (multi-port: duration shorter than the volume).
    CommDuration {
        /// Offending communication.
        edge: EdgeRef,
        /// Volume that must be transferred.
        volume: f64,
        /// Duration found in the operation list.
        found: f64,
    },
    /// An operation lasts longer than the period, so consecutive data sets
    /// would necessarily conflict on the resource.
    LongerThanPeriod {
        /// Description of the operation.
        what: String,
        /// Duration of the operation.
        duration: f64,
        /// The period `λ`.
        lambda: f64,
    },
    /// An incoming communication finishes after the computation starts, or the
    /// computation finishes after an outgoing communication starts.
    Precedence {
        /// Description of the two operations in conflict.
        detail: String,
    },
    /// Two operations of a one-port server overlap (modulo the period).
    OnePortConflict {
        /// The server on which the conflict occurs.
        service: ServiceId,
        /// Description of the two conflicting operations.
        detail: String,
    },
    /// The in-order rule is violated: an outgoing communication for data set
    /// `n` finishes after an incoming communication for data set `n + 1` starts.
    InOrder {
        /// The server on which the rule is violated.
        service: ServiceId,
        /// Description of the two operations.
        detail: String,
    },
    /// The incoming or outgoing bandwidth capacity of a server is exceeded in
    /// the multi-port model.
    Bandwidth {
        /// The server whose capacity is exceeded.
        service: ServiceId,
        /// `true` for the incoming direction, `false` for outgoing.
        incoming: bool,
        /// Aggregate rate observed at the offending instant.
        rate: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::InvalidPeriod { lambda } => write!(f, "invalid period {lambda}"),
            Violation::Coverage { detail } => write!(f, "coverage error: {detail}"),
            Violation::CalcDuration {
                service,
                expected,
                found,
            } => write!(
                f,
                "computation of C{} lasts {found}, expected {expected}",
                service + 1
            ),
            Violation::CommDuration {
                edge,
                volume,
                found,
            } => write!(f, "communication {edge} lasts {found} for volume {volume}"),
            Violation::LongerThanPeriod {
                what,
                duration,
                lambda,
            } => write!(f, "{what} lasts {duration} > period {lambda}"),
            Violation::Precedence { detail } => write!(f, "precedence violated: {detail}"),
            Violation::OnePortConflict { service, detail } => {
                write!(f, "one-port conflict on C{}: {detail}", service + 1)
            }
            Violation::InOrder { service, detail } => {
                write!(f, "in-order rule violated on C{}: {detail}", service + 1)
            }
            Violation::Bandwidth {
                service,
                incoming,
                rate,
            } => write!(
                f,
                "{} bandwidth of C{} exceeded: aggregate rate {rate}",
                if *incoming { "incoming" } else { "outgoing" },
                service + 1
            ),
        }
    }
}

/// Options for the validator.
#[derive(Clone, Copy, Debug)]
pub struct ValidationOptions {
    /// Numerical tolerance.
    pub epsilon: f64,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            epsilon: DEFAULT_EPSILON,
        }
    }
}

/// Validates an operation list against the rules of the given model
/// (Appendix A of the paper).  Returns all violations found.
pub fn validate_oplist(
    app: &Application,
    graph: &ExecutionGraph,
    oplist: &OperationList,
    model: CommModel,
) -> Result<(), Vec<Violation>> {
    validate_oplist_with(app, graph, oplist, model, ValidationOptions::default())
}

/// Like [`validate_oplist`], with explicit numerical tolerance.
pub fn validate_oplist_with(
    app: &Application,
    graph: &ExecutionGraph,
    oplist: &OperationList,
    model: CommModel,
    opts: ValidationOptions,
) -> Result<(), Vec<Violation>> {
    let eps = opts.epsilon;
    let mut violations = Vec::new();
    let lambda = oplist.lambda;
    let lambda_ok = lambda.is_finite() && lambda > 0.0;
    if !lambda_ok {
        violations.push(Violation::InvalidPeriod { lambda });
        return Err(violations);
    }
    if let Err(e) = oplist.covers(graph) {
        violations.push(Violation::Coverage {
            detail: e.to_string(),
        });
        return Err(violations);
    }
    let metrics = match PlanMetrics::compute(app, graph) {
        Ok(m) => m,
        Err(e) => {
            violations.push(Violation::Coverage {
                detail: e.to_string(),
            });
            return Err(violations);
        }
    };

    check_durations(app, graph, oplist, model, &metrics, eps, &mut violations);
    check_precedence(graph, oplist, eps, &mut violations);
    match model {
        CommModel::Overlap => check_bandwidth(app, graph, oplist, &metrics, eps, &mut violations),
        CommModel::OutOrder => check_one_port(graph, oplist, eps, &mut violations),
        CommModel::InOrder => {
            check_one_port(graph, oplist, eps, &mut violations);
            check_in_order(graph, oplist, eps, &mut violations);
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

fn check_durations(
    app: &Application,
    graph: &ExecutionGraph,
    oplist: &OperationList,
    model: CommModel,
    metrics: &PlanMetrics,
    eps: f64,
    violations: &mut Vec<Violation>,
) {
    let lambda = oplist.lambda;
    for k in 0..graph.n() {
        let iv = oplist.calc(k);
        let expected = metrics.c_comp(k);
        if (iv.duration() - expected).abs() > eps {
            violations.push(Violation::CalcDuration {
                service: k,
                expected,
                found: iv.duration(),
            });
        }
        if iv.duration() > lambda + eps {
            violations.push(Violation::LongerThanPeriod {
                what: format!("computation of C{}", k + 1),
                duration: iv.duration(),
                lambda,
            });
        }
    }
    for edge in plan_edges(graph) {
        let iv = oplist.comm(edge).expect("coverage already checked");
        let volume = metrics.edge_volume(app, edge);
        let ok = match model {
            // One-port: the link is dedicated, the transfer lasts exactly `volume / b`.
            CommModel::OutOrder | CommModel::InOrder => (iv.duration() - volume).abs() <= eps,
            // Multi-port: a constant fraction of the bandwidth is reserved, so the
            // transfer may be slower than `volume / b` but never faster.
            CommModel::Overlap => iv.duration() >= volume - eps,
        };
        if !ok {
            violations.push(Violation::CommDuration {
                edge,
                volume,
                found: iv.duration(),
            });
        }
        if iv.duration() > lambda + eps {
            violations.push(Violation::LongerThanPeriod {
                what: format!("communication {edge}"),
                duration: iv.duration(),
                lambda,
            });
        }
    }
}

fn check_precedence(
    graph: &ExecutionGraph,
    oplist: &OperationList,
    eps: f64,
    violations: &mut Vec<Violation>,
) {
    for k in 0..graph.n() {
        let calc = oplist.calc(k);
        for e in in_edges(graph, k) {
            let iv = oplist.comm(e).expect("coverage already checked");
            if iv.end > calc.begin + eps {
                violations.push(Violation::Precedence {
                    detail: format!(
                        "{e} ends at {} but computation of C{} starts at {}",
                        iv.end,
                        k + 1,
                        calc.begin
                    ),
                });
            }
        }
        for e in out_edges(graph, k) {
            let iv = oplist.comm(e).expect("coverage already checked");
            if calc.end > iv.begin + eps {
                violations.push(Violation::Precedence {
                    detail: format!(
                        "computation of C{} ends at {} but {e} starts at {}",
                        k + 1,
                        calc.end,
                        iv.begin
                    ),
                });
            }
        }
    }
}

/// Returns `true` if two cyclic occurrences (start, duration) repeated every
/// `lambda` never overlap.
fn cyclically_disjoint(b1: f64, d1: f64, b2: f64, d2: f64, lambda: f64, eps: f64) -> bool {
    if d1 <= eps || d2 <= eps {
        return true;
    }
    if d1 + d2 > lambda + eps {
        return false;
    }
    let delta = (b2 - b1).rem_euclid(lambda);
    // Occurrence 2 must start after occurrence 1 finishes, and occurrence 1's
    // next instance must start after occurrence 2 finishes.
    delta >= d1 - eps && lambda - delta >= d2 - eps
}

/// All operations (description, begin, duration) executed by server `k`.
fn server_ops(
    graph: &ExecutionGraph,
    oplist: &OperationList,
    k: ServiceId,
) -> Vec<(String, f64, f64)> {
    let mut ops = Vec::new();
    let calc = oplist.calc(k);
    ops.push((format!("calc C{}", k + 1), calc.begin, calc.duration()));
    for e in in_edges(graph, k).into_iter().chain(out_edges(graph, k)) {
        let iv = oplist.comm(e).expect("coverage already checked");
        ops.push((format!("{e}"), iv.begin, iv.duration()));
    }
    ops
}

fn check_one_port(
    graph: &ExecutionGraph,
    oplist: &OperationList,
    eps: f64,
    violations: &mut Vec<Violation>,
) {
    let lambda = oplist.lambda;
    for k in 0..graph.n() {
        let ops = server_ops(graph, oplist, k);
        for a in 0..ops.len() {
            for b in (a + 1)..ops.len() {
                let (ref na, ba, da) = ops[a];
                let (ref nb, bb, db) = ops[b];
                if !cyclically_disjoint(ba, da, bb, db, lambda, eps) {
                    violations.push(Violation::OnePortConflict {
                        service: k,
                        detail: format!("{na} [{ba}, {}) vs {nb} [{bb}, {})", ba + da, bb + db),
                    });
                }
            }
        }
    }
}

fn check_in_order(
    graph: &ExecutionGraph,
    oplist: &OperationList,
    eps: f64,
    violations: &mut Vec<Violation>,
) {
    let lambda = oplist.lambda;
    for k in 0..graph.n() {
        for e_out in out_edges(graph, k) {
            let out_iv = oplist.comm(e_out).expect("coverage already checked");
            for e_in in in_edges(graph, k) {
                let in_iv = oplist.comm(e_in).expect("coverage already checked");
                // Outgoing communications of data set n must end before the
                // incoming communications of data set n+1 begin (rule (1)).
                if out_iv.end > in_iv.begin + lambda + eps {
                    violations.push(Violation::InOrder {
                        service: k,
                        detail: format!(
                            "{e_out} ends at {} after {e_in} of the next data set starts at {}",
                            out_iv.end,
                            in_iv.begin + lambda
                        ),
                    });
                }
            }
        }
    }
}

fn check_bandwidth(
    app: &Application,
    graph: &ExecutionGraph,
    oplist: &OperationList,
    metrics: &PlanMetrics,
    eps: f64,
    violations: &mut Vec<Violation>,
) {
    let lambda = oplist.lambda;
    for k in 0..graph.n() {
        for (incoming, edges) in [(true, in_edges(graph, k)), (false, out_edges(graph, k))] {
            // Each communication reserves a constant bandwidth ratio volume/duration
            // for its whole (cyclic) occurrence.  Sweep the period circle and check
            // the aggregate never exceeds the capacity b = 1.
            let mut arcs: Vec<(f64, f64, f64)> = Vec::new(); // (start, end, rate) with 0 <= start < end <= lambda
            for e in edges {
                let iv = oplist.comm(e).expect("coverage already checked");
                let volume = metrics.edge_volume(app, e);
                if volume <= eps || iv.duration() <= eps {
                    continue;
                }
                let rate = volume / iv.duration();
                let s = iv.begin.rem_euclid(lambda);
                let d = iv.duration().min(lambda);
                if s + d <= lambda + eps {
                    arcs.push((s, (s + d).min(lambda), rate));
                } else {
                    arcs.push((s, lambda, rate));
                    arcs.push((0.0, s + d - lambda, rate));
                }
            }
            let mut points: Vec<f64> = arcs.iter().flat_map(|&(s, e, _)| [s, e]).collect();
            points.push(0.0);
            points.push(lambda);
            points.sort_by(|a, b| a.partial_cmp(b).unwrap());
            points.dedup_by(|a, b| (*a - *b).abs() <= eps);
            let mut worst: Option<f64> = None;
            for w in points.windows(2) {
                let mid = 0.5 * (w[0] + w[1]);
                let rate: f64 = arcs
                    .iter()
                    .filter(|&&(s, e, _)| s <= mid && mid < e)
                    .map(|&(_, _, r)| r)
                    .sum();
                if rate > 1.0 + eps {
                    worst = Some(worst.map_or(rate, |w: f64| w.max(rate)));
                }
            }
            if let Some(rate) = worst {
                violations.push(Violation::Bandwidth {
                    service: k,
                    incoming,
                    rate,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oplist::Interval;

    /// Section 2.3: five services of cost 4 and selectivity 1, Figure 1 graph,
    /// and the operation list spelled out in the paper (latency 21).
    fn section23() -> (Application, ExecutionGraph, OperationList) {
        let app = Application::independent(&[(4.0, 1.0); 5]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
        let mut ol = OperationList::new(5, 21.0);
        ol.set_calc(0, Interval::new(1.0, 5.0));
        ol.set_calc(1, Interval::new(6.0, 10.0));
        ol.set_calc(2, Interval::new(11.0, 15.0));
        ol.set_calc(3, Interval::new(7.0, 11.0));
        ol.set_calc(4, Interval::new(16.0, 20.0));
        ol.set_comm(EdgeRef::Input(0), Interval::new(0.0, 1.0));
        ol.set_comm(EdgeRef::Link(0, 1), Interval::new(5.0, 6.0));
        ol.set_comm(EdgeRef::Link(0, 3), Interval::new(6.0, 7.0));
        ol.set_comm(EdgeRef::Link(1, 2), Interval::new(10.0, 11.0));
        ol.set_comm(EdgeRef::Link(2, 4), Interval::new(15.0, 16.0));
        ol.set_comm(EdgeRef::Link(3, 4), Interval::new(11.0, 12.0));
        ol.set_comm(EdgeRef::Output(4), Interval::new(20.0, 21.0));
        (app, g, ol)
    }

    #[test]
    fn section23_latency_schedule_valid_for_all_models() {
        let (app, g, ol) = section23();
        for model in CommModel::ALL {
            validate_oplist(&app, &g, &ol, model).unwrap_or_else(|v| panic!("{model}: {:?}", v));
        }
    }

    #[test]
    fn section23_overlap_period_5_valid() {
        // Keeping the same data-set-0 times and shrinking λ to 5 is valid for
        // OVERLAP (the paper notes this), and shrinking to 4 requires moving
        // the C4->C5 communication.
        let (app, g, ol) = section23();
        let ol5 = ol.clone().with_lambda(5.0);
        validate_oplist(&app, &g, &ol5, CommModel::Overlap).unwrap();

        let mut ol4 = ol.clone().with_lambda(4.0);
        ol4.set_comm(EdgeRef::Link(3, 4), Interval::new(12.0, 13.0));
        validate_oplist(&app, &g, &ol4, CommModel::Overlap).unwrap();
        // ...and the period cannot go below Ccomp = 4.
        let ol3 = ol.with_lambda(3.9);
        assert!(validate_oplist(&app, &g, &ol3, CommModel::Overlap).is_err());
    }

    #[test]
    fn section23_one_port_periods() {
        // The paper: with the latency-optimal operation list, the period is 5 for
        // OVERLAP but only 10 for INORDER; OUTORDER admits 7 after moving
        // the C4->C5 communication and C4's computation.
        let (app, g, ol) = section23();
        let ol7 = {
            let mut ol = ol.clone().with_lambda(7.0);
            ol.set_comm(EdgeRef::Link(3, 4), Interval::new(14.0, 15.0));
            ol.set_calc(3, Interval::new(8.0, 12.0));
            ol
        };
        validate_oplist(&app, &g, &ol7, CommModel::OutOrder).unwrap();
        // The same schedule violates the in-order rule on C4 (it sends data
        // set 0 at time 14..15, after receiving data set 1 at 6+7=13).
        assert!(validate_oplist(&app, &g, &ol7, CommModel::InOrder).is_err());

        // INORDER at period 10 with the original data-set-0 times is valid.
        let ol10 = ol.clone().with_lambda(10.0);
        validate_oplist(&app, &g, &ol10, CommModel::InOrder).unwrap();

        // INORDER at the paper's optimal 23/3 with the idle time spread over
        // C1, C4 and C5 (Section 2.3).
        let mut ol_opt = ol.clone().with_lambda(23.0 / 3.0);
        ol_opt.set_comm(
            EdgeRef::Link(0, 3),
            Interval::new(6.0 + 2.0 / 3.0, 7.0 + 2.0 / 3.0),
        );
        ol_opt.set_calc(3, Interval::new(7.0 + 2.0 / 3.0, 11.0 + 2.0 / 3.0));
        ol_opt.set_comm(
            EdgeRef::Link(3, 4),
            Interval::new(13.0 + 1.0 / 3.0, 14.0 + 1.0 / 3.0),
        );
        validate_oplist(&app, &g, &ol_opt, CommModel::InOrder).unwrap();
        // ...while 7 itself is infeasible for this operation-list family
        // (the paper's reasoning): the plain schedule at λ = 7 violates INORDER.
        let ol7_inorder = ol.with_lambda(7.0);
        assert!(validate_oplist(&app, &g, &ol7_inorder, CommModel::InOrder).is_err());
    }

    #[test]
    fn detects_wrong_calc_duration() {
        let (app, g, mut ol) = section23();
        ol.set_calc(2, Interval::new(11.0, 14.0));
        let err = validate_oplist(&app, &g, &ol, CommModel::Overlap).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::CalcDuration { service: 2, .. })));
    }

    #[test]
    fn detects_wrong_comm_duration() {
        let (app, g, mut ol) = section23();
        ol.set_comm(EdgeRef::Link(0, 1), Interval::new(5.0, 5.5));
        // Too short for every model.
        for model in CommModel::ALL {
            let err = validate_oplist(&app, &g, &ol, model).unwrap_err();
            assert!(err
                .iter()
                .any(|v| matches!(v, Violation::CommDuration { .. })));
        }
        // A longer-than-volume communication (a smaller bandwidth share) is
        // fine for OVERLAP but not for the one-port models.
        let (_, _, mut ol) = section23();
        ol.set_comm(EdgeRef::Link(3, 4), Interval::new(11.0, 12.5));
        validate_oplist(&app, &g, &ol, CommModel::Overlap).unwrap();
        let err = validate_oplist(&app, &g, &ol, CommModel::OutOrder).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::CommDuration { .. })));
    }

    #[test]
    fn detects_precedence_violation() {
        let (app, g, mut ol) = section23();
        ol.set_calc(1, Interval::new(5.5, 9.5));
        let err = validate_oplist(&app, &g, &ol, CommModel::Overlap).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::Precedence { .. })));
    }

    #[test]
    fn detects_one_port_conflict() {
        let (app, g, mut ol) = section23();
        // Make C1 send to C2 and C4 at the same time.
        ol.set_comm(EdgeRef::Link(0, 3), Interval::new(5.5, 6.5));
        ol.set_calc(3, Interval::new(6.5, 10.5));
        let err = validate_oplist(&app, &g, &ol, CommModel::OutOrder).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::OnePortConflict { service: 0, .. })));
        // The same schedule is fine for OVERLAP as long as bandwidth allows it
        // (each of the two transfers would need full bandwidth here, so it is
        // still rejected, but as a bandwidth violation).
        let err = validate_oplist(&app, &g, &ol, CommModel::Overlap).unwrap_err();
        assert!(err.iter().any(|v| matches!(
            v,
            Violation::Bandwidth {
                service: 0,
                incoming: false,
                ..
            }
        )));
    }

    #[test]
    fn detects_invalid_period_and_coverage() {
        let (app, g, ol) = section23();
        let bad = ol.clone().with_lambda(0.0);
        assert!(matches!(
            validate_oplist(&app, &g, &bad, CommModel::Overlap)
                .unwrap_err()
                .as_slice(),
            [Violation::InvalidPeriod { .. }]
        ));
        let mut missing = ol;
        missing.comm.remove(&EdgeRef::Output(4));
        assert!(matches!(
            validate_oplist(&app, &g, &missing, CommModel::Overlap)
                .unwrap_err()
                .as_slice(),
            [Violation::Coverage { .. }]
        ));
    }

    #[test]
    fn cyclic_disjointness_helper() {
        // [0,2) and [2,4) with lambda 5: disjoint.
        assert!(cyclically_disjoint(0.0, 2.0, 2.0, 2.0, 5.0, 1e-9));
        // [0,3) and [2,4): overlap.
        assert!(!cyclically_disjoint(0.0, 3.0, 2.0, 2.0, 5.0, 1e-9));
        // [4,6) wraps to [4,5)+[0,1); [0.5, 1.5) overlaps the wrapped part.
        assert!(!cyclically_disjoint(4.0, 2.0, 0.5, 1.0, 5.0, 1e-9));
        // Same but starting at 1.0: disjoint.
        assert!(cyclically_disjoint(4.0, 2.0, 1.0, 1.0, 5.0, 1e-9));
        // Total duration exceeding lambda can never be disjoint.
        assert!(!cyclically_disjoint(0.0, 3.0, 3.0, 3.0, 5.0, 1e-9));
        // Zero-duration operations never conflict.
        assert!(cyclically_disjoint(0.0, 0.0, 0.0, 4.0, 5.0, 1e-9));
    }
}
