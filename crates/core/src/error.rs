//! Error types for the core model.

use std::fmt;

/// Errors raised while building or querying the core model
/// (applications, execution graphs, metrics, operation lists).
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A service index was out of range for the application / graph it was used with.
    InvalidService {
        /// The offending index.
        id: usize,
        /// Number of services in the container.
        n: usize,
    },
    /// A service was declared with a non-positive cost.
    NonPositiveCost {
        /// The offending service.
        id: usize,
        /// The cost that was rejected.
        cost: f64,
    },
    /// A service was declared with a negative selectivity.
    NegativeSelectivity {
        /// The offending service.
        id: usize,
        /// The selectivity that was rejected.
        selectivity: f64,
    },
    /// A self-loop edge `(i, i)` was requested.
    SelfLoop {
        /// The offending service.
        id: usize,
    },
    /// Adding an edge would create a directed cycle.
    WouldCreateCycle {
        /// Edge source.
        from: usize,
        /// Edge target.
        to: usize,
    },
    /// The graph (or application constraint set) contains a directed cycle.
    CyclicGraph,
    /// The execution graph does not contain the application's precedence
    /// constraints in its transitive closure.
    MissingPrecedence {
        /// Constraint source.
        from: usize,
        /// Constraint target.
        to: usize,
    },
    /// The structure was expected to be a forest (each node has at most one
    /// direct predecessor) but is not.
    NotAForest,
    /// The structure was expected to be a chain but is not.
    NotAChain,
    /// The structure was expected to be a tree but is not.
    NotATree,
    /// A numeric argument was invalid (NaN, non-positive period, ...).
    InvalidNumber {
        /// Human-readable description of the offending quantity.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The graph and the application disagree on the number of services.
    SizeMismatch {
        /// Size the caller expected.
        expected: usize,
        /// Size actually found.
        found: usize,
    },
    /// The input is valid but outside what the called operation supports
    /// (e.g. a constrained application handed to the online re-planning
    /// sessions, whose plan adaptation is forest-splice based).
    Unsupported {
        /// What the operation cannot handle.
        reason: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidService { id, n } => {
                write!(f, "service index {id} out of range (n = {n})")
            }
            CoreError::NonPositiveCost { id, cost } => {
                write!(f, "service {id} has non-positive cost {cost}")
            }
            CoreError::NegativeSelectivity { id, selectivity } => {
                write!(f, "service {id} has negative selectivity {selectivity}")
            }
            CoreError::SelfLoop { id } => write!(f, "self-loop on service {id}"),
            CoreError::WouldCreateCycle { from, to } => {
                write!(f, "adding edge {from} -> {to} would create a cycle")
            }
            CoreError::CyclicGraph => write!(f, "graph contains a directed cycle"),
            CoreError::MissingPrecedence { from, to } => write!(
                f,
                "precedence constraint {from} -> {to} is not honoured by the execution graph"
            ),
            CoreError::NotAForest => write!(f, "execution graph is not a forest"),
            CoreError::NotAChain => write!(f, "execution graph is not a linear chain"),
            CoreError::NotATree => write!(f, "execution graph is not a tree"),
            CoreError::InvalidNumber { what, value } => {
                write!(f, "invalid value for {what}: {value}")
            }
            CoreError::SizeMismatch { expected, found } => {
                write!(
                    f,
                    "size mismatch: expected {expected} services, found {found}"
                )
            }
            CoreError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used across the crate.
pub type CoreResult<T> = Result<T, CoreError>;
