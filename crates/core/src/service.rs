//! Services and applications.
//!
//! An [`Application`] is the problem input of the paper: a set of services
//! `C_1 .. C_n`, each with an elementary cost `c_i` and a selectivity `σ_i`,
//! plus a set of precedence constraints `G ⊆ F × F`.
//!
//! Costs are expressed after the normalisation of Section 2.1 of the paper:
//! because the platform is homogeneous we can scale `c_k ← (b / δ0) · (c_k / s)`
//! and let `δ0 = b = s = 1`.  All periods/latencies computed by this workspace
//! are therefore in "normalised time units"; multiply by `δ0 / b` to recover
//! wall-clock values for a concrete platform.

use crate::error::{CoreError, CoreResult};

/// Index of a service inside an [`Application`].
pub type ServiceId = usize;

/// A single service (filter / query / operator) of a filtering workflow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Service {
    /// Elementary computation cost `c_i` (time to process one unit-size data set).
    pub cost: f64,
    /// Selectivity `σ_i`: the ratio between output and input data size.
    /// `σ_i < 1` shrinks data (a *filter*), `σ_i > 1` expands it.
    pub selectivity: f64,
}

impl Service {
    /// Creates a new service with the given cost and selectivity.
    pub fn new(cost: f64, selectivity: f64) -> Self {
        Service { cost, selectivity }
    }

    /// Returns `true` if this service shrinks (or keeps) the data size.
    pub fn is_filter(&self) -> bool {
        self.selectivity <= 1.0
    }

    /// Returns `true` if this service strictly expands the data size.
    pub fn is_expander(&self) -> bool {
        self.selectivity > 1.0
    }
}

/// A filtering workflow application `A = (F, G)`.
///
/// `F` is the set of services and `G` the set of precedence constraints which
/// must appear (in the transitive closure) in every execution graph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Application {
    services: Vec<Service>,
    constraints: Vec<(ServiceId, ServiceId)>,
}

impl Application {
    /// Creates an empty application.
    pub fn new() -> Self {
        Application::default()
    }

    /// Creates an application from a list of services, without precedence constraints.
    pub fn from_services(services: Vec<Service>) -> Self {
        Application {
            services,
            constraints: Vec::new(),
        }
    }

    /// Creates an application of independent services from `(cost, selectivity)` pairs.
    pub fn independent(specs: &[(f64, f64)]) -> Self {
        Application::from_services(specs.iter().map(|&(c, s)| Service::new(c, s)).collect())
    }

    /// Adds a service and returns its id.
    pub fn add_service(&mut self, cost: f64, selectivity: f64) -> ServiceId {
        self.services.push(Service::new(cost, selectivity));
        self.services.len() - 1
    }

    /// Adds a precedence constraint `from → to` to `G`.
    ///
    /// Duplicates are ignored.  Fails if either endpoint is out of range or if
    /// the edge is a self-loop.  Cycle detection is performed by [`Application::validate`].
    pub fn add_constraint(&mut self, from: ServiceId, to: ServiceId) -> CoreResult<()> {
        let n = self.services.len();
        if from >= n {
            return Err(CoreError::InvalidService { id: from, n });
        }
        if to >= n {
            return Err(CoreError::InvalidService { id: to, n });
        }
        if from == to {
            return Err(CoreError::SelfLoop { id: from });
        }
        if !self.constraints.contains(&(from, to)) {
            self.constraints.push((from, to));
        }
        Ok(())
    }

    /// Number of services.
    pub fn n(&self) -> usize {
        self.services.len()
    }

    /// Returns `true` if the application has no services.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Access a service by id.  Panics if out of range.
    pub fn service(&self, id: ServiceId) -> &Service {
        &self.services[id]
    }

    /// Cost `c_i` of a service.
    pub fn cost(&self, id: ServiceId) -> f64 {
        self.services[id].cost
    }

    /// Selectivity `σ_i` of a service.
    pub fn selectivity(&self, id: ServiceId) -> f64 {
        self.services[id].selectivity
    }

    /// All services, in id order.
    pub fn services(&self) -> &[Service] {
        &self.services
    }

    /// The precedence constraints `G`.
    pub fn constraints(&self) -> &[(ServiceId, ServiceId)] {
        &self.constraints
    }

    /// Returns `true` if the application carries at least one precedence constraint.
    pub fn has_constraints(&self) -> bool {
        !self.constraints.is_empty()
    }

    /// Checks that the application is well formed:
    /// positive costs, non-negative selectivities, constraint endpoints in
    /// range and an acyclic constraint graph.
    pub fn validate(&self) -> CoreResult<()> {
        let n = self.services.len();
        for (id, s) in self.services.iter().enumerate() {
            let cost_ok = s.cost.is_finite() && s.cost > 0.0;
            if !cost_ok {
                return Err(CoreError::NonPositiveCost { id, cost: s.cost });
            }
            let selectivity_ok = s.selectivity.is_finite() && s.selectivity >= 0.0;
            if !selectivity_ok {
                return Err(CoreError::NegativeSelectivity {
                    id,
                    selectivity: s.selectivity,
                });
            }
        }
        for &(from, to) in &self.constraints {
            if from >= n {
                return Err(CoreError::InvalidService { id: from, n });
            }
            if to >= n {
                return Err(CoreError::InvalidService { id: to, n });
            }
            if from == to {
                return Err(CoreError::SelfLoop { id: from });
            }
        }
        // Kahn's algorithm on the constraint graph.
        let mut indeg = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(from, to) in &self.constraints {
            indeg[to] += 1;
            succs[from].push(to);
        }
        let mut stack: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = stack.pop() {
            seen += 1;
            for &w in &succs[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    stack.push(w);
                }
            }
        }
        if seen != n {
            return Err(CoreError::CyclicGraph);
        }
        Ok(())
    }

    /// Starts a fluent builder.
    pub fn builder() -> ApplicationBuilder {
        ApplicationBuilder::default()
    }
}

/// Fluent builder for [`Application`].
///
/// ```
/// use fsw_core::Application;
/// let app = Application::builder()
///     .service(1.0, 0.5)
///     .service(2.0, 1.5)
///     .constraint(0, 1)
///     .build()
///     .unwrap();
/// assert_eq!(app.n(), 2);
/// ```
#[derive(Default, Debug, Clone)]
pub struct ApplicationBuilder {
    app: Application,
    pending_constraints: Vec<(ServiceId, ServiceId)>,
}

impl ApplicationBuilder {
    /// Adds a service with the given cost and selectivity.
    pub fn service(mut self, cost: f64, selectivity: f64) -> Self {
        self.app.add_service(cost, selectivity);
        self
    }

    /// Adds several identical services.
    pub fn services(mut self, count: usize, cost: f64, selectivity: f64) -> Self {
        for _ in 0..count {
            self.app.add_service(cost, selectivity);
        }
        self
    }

    /// Adds a precedence constraint.
    pub fn constraint(mut self, from: ServiceId, to: ServiceId) -> Self {
        self.pending_constraints.push((from, to));
        self
    }

    /// Finalises the application, validating it.
    pub fn build(mut self) -> CoreResult<Application> {
        for (from, to) in std::mem::take(&mut self.pending_constraints) {
            self.app.add_constraint(from, to)?;
        }
        self.app.validate()?;
        Ok(self.app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_independent() {
        let app = Application::independent(&[(1.0, 0.5), (2.0, 2.0), (3.0, 1.0)]);
        assert_eq!(app.n(), 3);
        assert!(!app.has_constraints());
        assert!(app.service(0).is_filter());
        assert!(app.service(1).is_expander());
        assert!(app.service(2).is_filter());
        app.validate().unwrap();
    }

    #[test]
    fn builder_with_constraints() {
        let app = Application::builder()
            .service(1.0, 0.9)
            .service(1.0, 0.9)
            .service(1.0, 0.9)
            .constraint(0, 1)
            .constraint(1, 2)
            .build()
            .unwrap();
        assert_eq!(app.constraints(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn constraint_out_of_range() {
        let mut app = Application::independent(&[(1.0, 1.0)]);
        assert_eq!(
            app.add_constraint(0, 3),
            Err(CoreError::InvalidService { id: 3, n: 1 })
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut app = Application::independent(&[(1.0, 1.0), (1.0, 1.0)]);
        assert_eq!(app.add_constraint(1, 1), Err(CoreError::SelfLoop { id: 1 }));
    }

    #[test]
    fn duplicate_constraints_deduplicated() {
        let mut app = Application::independent(&[(1.0, 1.0), (1.0, 1.0)]);
        app.add_constraint(0, 1).unwrap();
        app.add_constraint(0, 1).unwrap();
        assert_eq!(app.constraints().len(), 1);
    }

    #[test]
    fn cyclic_constraints_detected() {
        let app = Application::builder()
            .service(1.0, 1.0)
            .service(1.0, 1.0)
            .service(1.0, 1.0)
            .constraint(0, 1)
            .constraint(1, 2)
            .constraint(2, 0)
            .build();
        assert_eq!(app.unwrap_err(), CoreError::CyclicGraph);
    }

    #[test]
    fn invalid_cost_rejected() {
        let app = Application::independent(&[(0.0, 1.0)]);
        assert!(matches!(
            app.validate(),
            Err(CoreError::NonPositiveCost { id: 0, .. })
        ));
    }

    #[test]
    fn negative_selectivity_rejected() {
        let app = Application::independent(&[(1.0, -0.1)]);
        assert!(matches!(
            app.validate(),
            Err(CoreError::NegativeSelectivity { id: 0, .. })
        ));
    }
}
