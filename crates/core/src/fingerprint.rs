//! Application fingerprints: the canonical identity of a planning problem.
//!
//! A serving tier sees a *fleet* of tenant applications, many of which are
//! the same problem wearing different labels: a replicated micro-service
//! deployed behind twelve load balancers produces twelve applications whose
//! services are permutations of one weight multiset.  After the
//! canonicalisation of [`crate::canonical`], such tenants are **identical**
//! — same weight-class partition, same orbit space, same optimum — so one
//! solve can serve all of them.
//!
//! This module provides the key that makes the collapse safe to build a
//! cache on:
//!
//! * [`AppFingerprint`] — a content-complete canonical identity of an
//!   application.  It is *not* a hash: it carries the full canonical weight
//!   vector and constraint set, so fingerprint equality **is** problem
//!   equality (a cache keyed by it can never serve a colliding tenant the
//!   wrong plan).  The weight-class partition signature
//!   ([`crate::WeightClasses::signature`]) is implied: the canonical weight
//!   vector determines the partition bit-for-bit;
//! * [`CanonicalApplication`] — the canonical relabelling itself, plus the
//!   permutation connecting tenant labels to canonical labels, so plans
//!   solved on the canonical application can be mapped back to each tenant
//!   ([`CanonicalApplication::graph_to_tenant`]).
//!
//! ### When do two differently-labelled tenants collapse?
//!
//! Only **unconstrained** applications are canonicalised over service
//! permutations (services stable-sorted by their weight bit patterns):
//! precedence constraints distinguish services regardless of weights, so
//! constrained applications keep their exact labelling and collapse only
//! with bit-identical twins.  Whether a *solver* may serve a relabelled
//! tenant from a collapsed fingerprint additionally depends on the solve
//! path being label-invariant — that gate lives with the serving layer
//! (`fsw_serve`), next to the solvers whose invariance it asserts; this
//! module only guarantees that equal fingerprints describe
//! permutation-equivalent problems.

use crate::error::CoreResult;
use crate::graph::ExecutionGraph;
use crate::service::{Application, ServiceId};

/// The canonical identity of an application: its weight multiset in
/// canonical order plus its precedence constraints.
///
/// Equality and hashing cover the full content, so a fingerprint-keyed map
/// can never confuse two distinct problems.  Two applications share a
/// fingerprint iff
///
/// * both are unconstrained and their services are permutations of one
///   weight multiset (bit-exact costs and selectivities), or
/// * both carry constraints and are bit-identical service-for-service,
///   constraint-for-constraint.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AppFingerprint {
    /// `(cost bits, selectivity bits)` per service, in canonical order.
    services: Vec<(u64, u64)>,
    /// Precedence constraints over canonical labels, sorted; always empty
    /// when `collapsed`.
    constraints: Vec<(ServiceId, ServiceId)>,
    /// `true` when the fingerprint identifies the application up to service
    /// permutation (unconstrained apps), `false` for the exact labelling.
    collapsed: bool,
}

impl AppFingerprint {
    /// Number of services the fingerprinted application holds.
    pub fn n(&self) -> usize {
        self.services.len()
    }

    /// `true` when the fingerprint identifies the application up to a
    /// service permutation (rather than exactly).
    pub fn collapsed(&self) -> bool {
        self.collapsed
    }

    /// A compact 64-bit digest of the fingerprint (FNV-1a over the content),
    /// for display and statistics.  Unlike the fingerprint itself this *can*
    /// collide; never key a cache by it alone.
    pub fn digest(&self) -> u64 {
        let words = [self.collapsed as u64, self.services.len() as u64]
            .into_iter()
            .chain(self.services.iter().flat_map(|&(c, s)| [c, s]))
            .chain(
                self.constraints
                    .iter()
                    .flat_map(|&(from, to)| [from as u64, to as u64]),
            );
        crate::canonical::fnv1a(words)
    }
}

/// An application relabelled into canonical service order, together with the
/// permutation connecting it to the tenant's own labelling.
///
/// For unconstrained applications the canonical order is the stable sort of
/// services by `(cost bits, selectivity bits)`; for constrained applications
/// the canonicalisation is the identity (see [`AppFingerprint`]).
#[derive(Clone, Debug)]
pub struct CanonicalApplication {
    /// The application over canonical labels.
    pub app: Application,
    /// `to_canonical[tenant_id] == canonical_id`.
    pub to_canonical: Vec<ServiceId>,
    /// `from_canonical[canonical_id] == tenant_id`.
    pub from_canonical: Vec<ServiceId>,
    /// The canonical identity (the cache key).
    pub fingerprint: AppFingerprint,
}

impl CanonicalApplication {
    /// Canonicalises `app`: permutation collapse for unconstrained
    /// applications, exact identity for constrained ones.
    pub fn of(app: &Application) -> Self {
        CanonicalApplication::with_collapse(app, !app.has_constraints())
    }

    /// [`CanonicalApplication::of`] with the permutation collapse forced off
    /// (`collapse = false` keys the tenant by its exact labelling; callers
    /// whose solve path is not label-invariant use this).  Constrained
    /// applications never collapse, whatever `collapse` says.
    pub fn with_collapse(app: &Application, collapse: bool) -> Self {
        let n = app.n();
        let key_of = |k: ServiceId| (app.cost(k).to_bits(), app.selectivity(k).to_bits());
        let collapsed = collapse && !app.has_constraints();
        let from_canonical: Vec<ServiceId> = if collapsed {
            let mut order: Vec<ServiceId> = (0..n).collect();
            order.sort_by_key(|&k| key_of(k)); // stable: equal weights keep id order
            order
        } else {
            (0..n).collect()
        };
        let mut to_canonical = vec![0; n];
        for (pos, &k) in from_canonical.iter().enumerate() {
            to_canonical[k] = pos;
        }
        let canonical_app = if collapsed {
            Application::independent(
                &from_canonical
                    .iter()
                    .map(|&k| (app.cost(k), app.selectivity(k)))
                    .collect::<Vec<_>>(),
            )
        } else {
            app.clone()
        };
        let mut constraints: Vec<(ServiceId, ServiceId)> = canonical_app.constraints().to_vec();
        constraints.sort_unstable();
        let fingerprint = AppFingerprint {
            services: from_canonical.iter().map(|&k| key_of(k)).collect(),
            constraints,
            collapsed,
        };
        CanonicalApplication {
            app: canonical_app,
            to_canonical,
            from_canonical,
            fingerprint,
        }
    }

    /// `true` when canonical and tenant labellings coincide.
    pub fn is_identity(&self) -> bool {
        self.to_canonical.iter().enumerate().all(|(k, &p)| k == p)
    }

    /// Maps an execution graph over canonical labels back to the tenant's
    /// own labelling (edge `(a, b)` becomes
    /// `(from_canonical[a], from_canonical[b])`).  The relabelled graph has
    /// the same weighted structure, so every structurally label-invariant
    /// metric is preserved bit-for-bit.
    pub fn graph_to_tenant(&self, graph: &ExecutionGraph) -> CoreResult<ExecutionGraph> {
        debug_assert_eq!(graph.n(), self.from_canonical.len());
        let mut out = ExecutionGraph::new(graph.n());
        for (a, b) in graph.edges() {
            out.add_edge(self.from_canonical[a], self.from_canonical[b])?;
        }
        Ok(out)
    }

    /// Maps a tenant-labelled execution graph onto canonical labels (the
    /// inverse of [`CanonicalApplication::graph_to_tenant`]).
    pub fn graph_to_canonical(&self, graph: &ExecutionGraph) -> CoreResult<ExecutionGraph> {
        debug_assert_eq!(graph.n(), self.to_canonical.len());
        let mut out = ExecutionGraph::new(graph.n());
        for (a, b) in graph.edges() {
            out.add_edge(self.to_canonical[a], self.to_canonical[b])?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PlanMetrics;
    use crate::model::CommModel;

    #[test]
    fn permuted_unconstrained_tenants_share_a_fingerprint() {
        let a = Application::independent(&[(1.0, 0.5), (2.0, 0.8), (1.0, 0.5)]);
        let b = Application::independent(&[(2.0, 0.8), (1.0, 0.5), (1.0, 0.5)]);
        let ca = CanonicalApplication::of(&a);
        let cb = CanonicalApplication::of(&b);
        assert_eq!(ca.fingerprint, cb.fingerprint);
        assert!(ca.fingerprint.collapsed());
        assert_eq!(ca.fingerprint.digest(), cb.fingerprint.digest());
        assert_eq!(ca.app, cb.app, "canonical applications coincide");
        // A different weight multiset gets a different fingerprint.
        let c = Application::independent(&[(2.0, 0.8), (2.0, 0.8), (1.0, 0.5)]);
        assert_ne!(CanonicalApplication::of(&c).fingerprint, ca.fingerprint);
    }

    #[test]
    fn canonical_order_is_a_stable_weight_sort() {
        let app = Application::independent(&[(2.0, 0.8), (1.0, 0.5), (1.0, 0.5)]);
        let canon = CanonicalApplication::of(&app);
        // Sorted by bits: the two (1.0, 0.5) services first, in id order.
        assert_eq!(canon.from_canonical, vec![1, 2, 0]);
        assert_eq!(canon.to_canonical, vec![2, 0, 1]);
        assert_eq!(canon.app.cost(0), 1.0);
        assert_eq!(canon.app.cost(2), 2.0);
        assert!(!canon.is_identity());
        // An already-sorted application is its own canonical form.
        let sorted = Application::independent(&[(1.0, 0.5), (1.0, 0.5), (2.0, 0.8)]);
        assert!(CanonicalApplication::of(&sorted).is_identity());
    }

    #[test]
    fn constrained_applications_never_collapse() {
        let mut a = Application::independent(&[(2.0, 0.8), (1.0, 0.5)]);
        a.add_constraint(0, 1).unwrap();
        let mut b = Application::independent(&[(1.0, 0.5), (2.0, 0.8)]);
        b.add_constraint(1, 0).unwrap();
        let ca = CanonicalApplication::of(&a);
        let cb = CanonicalApplication::of(&b);
        assert!(!ca.fingerprint.collapsed());
        assert!(ca.is_identity() && cb.is_identity());
        // Same problem up to relabelling, but constrained: fingerprints differ.
        assert_ne!(ca.fingerprint, cb.fingerprint);
        // A bit-identical twin matches.
        let twin = CanonicalApplication::of(&a.clone());
        assert_eq!(ca.fingerprint, twin.fingerprint);
    }

    #[test]
    fn collapse_can_be_forced_off() {
        let a = Application::independent(&[(2.0, 0.8), (1.0, 0.5)]);
        let b = Application::independent(&[(1.0, 0.5), (2.0, 0.8)]);
        let ca = CanonicalApplication::with_collapse(&a, false);
        let cb = CanonicalApplication::with_collapse(&b, false);
        assert!(!ca.fingerprint.collapsed());
        assert_ne!(ca.fingerprint, cb.fingerprint);
        assert!(ca.is_identity());
    }

    #[test]
    fn graph_relabelling_preserves_weighted_structure() {
        let app = Application::independent(&[(2.0, 0.8), (1.0, 0.5), (3.0, 0.9)]);
        let canon = CanonicalApplication::of(&app);
        // A chain over canonical labels 0 -> 1 -> 2.
        let canonical_graph = ExecutionGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let tenant_graph = canon.graph_to_tenant(&canonical_graph).unwrap();
        // Structural metrics are identical bit-for-bit.
        let canon_metrics = PlanMetrics::compute(&canon.app, &canonical_graph).unwrap();
        let tenant_metrics = PlanMetrics::compute(&app, &tenant_graph).unwrap();
        for model in CommModel::ALL {
            assert_eq!(
                canon_metrics.period_lower_bound(model),
                tenant_metrics.period_lower_bound(model),
            );
        }
        // Round trip.
        let back = canon.graph_to_canonical(&tenant_graph).unwrap();
        assert_eq!(
            back.edges().collect::<Vec<_>>(),
            canonical_graph.edges().collect::<Vec<_>>()
        );
    }
}
