//! The three communication models of the paper.

use std::fmt;

/// Communication / execution model of a server.
///
/// The paper (Section 2.2) identifies three realistic combinations:
///
/// * [`CommModel::Overlap`] — multi-threaded servers with bounded multi-port
///   communications: a server can receive, compute and send simultaneously
///   (for different data sets), and several communications can share the
///   incoming (resp. outgoing) bandwidth as long as the total capacity `b = 1`
///   is never exceeded.
/// * [`CommModel::OutOrder`] — single-threaded servers with one-port
///   communications: everything on a server is serialised, but operations of
///   *different* data sets may interleave (out-of-order execution).
/// * [`CommModel::InOrder`] — like `OutOrder`, but a server completely
///   processes data set `n` (receive → compute → send) before starting any
///   operation of data set `n + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommModel {
    /// Multi-port communications with communication/computation overlap.
    Overlap,
    /// One-port communications without overlap, out-of-order across data sets.
    OutOrder,
    /// One-port communications without overlap, strict in-order processing.
    InOrder,
}

impl CommModel {
    /// All three models, in the order used throughout the paper.
    pub const ALL: [CommModel; 3] = [CommModel::Overlap, CommModel::OutOrder, CommModel::InOrder];

    /// The two one-port models (no communication/computation overlap).
    pub const ONE_PORT: [CommModel; 2] = [CommModel::OutOrder, CommModel::InOrder];

    /// Returns `true` if the model allows computation/communication overlap
    /// (i.e. the multi-port `OVERLAP` model).
    pub fn overlaps(self) -> bool {
        matches!(self, CommModel::Overlap)
    }

    /// Returns `true` for the serialised one-port models.
    pub fn is_one_port(self) -> bool {
        !self.overlaps()
    }

    /// Short upper-case name used in tables (matches the paper's wording).
    pub fn name(self) -> &'static str {
        match self {
            CommModel::Overlap => "OVERLAP",
            CommModel::OutOrder => "OUTORDER",
            CommModel::InOrder => "INORDER",
        }
    }
}

impl fmt::Display for CommModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_predicates() {
        assert_eq!(CommModel::Overlap.name(), "OVERLAP");
        assert_eq!(CommModel::OutOrder.to_string(), "OUTORDER");
        assert_eq!(CommModel::InOrder.to_string(), "INORDER");
        assert!(CommModel::Overlap.overlaps());
        assert!(!CommModel::InOrder.overlaps());
        assert!(CommModel::OutOrder.is_one_port());
        assert_eq!(CommModel::ALL.len(), 3);
        assert_eq!(CommModel::ONE_PORT.len(), 2);
    }
}
