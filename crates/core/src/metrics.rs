//! Communication and computation volumes of a plan.
//!
//! Given an application and an execution graph, this module computes the
//! quantities of Section 2.1 of the paper (after normalising `δ0 = b = s = 1`):
//!
//! * `input_factor(k)` — the size of the data set *entering* service `C_k`,
//!   i.e. `Π_{C_j ∈ Ancest_k(EG)} σ_j`;
//! * `Ccomp(k) = input_factor(k) · c_k` — computation time of `C_k`;
//! * `Cin(k)` — total volume received by `C_k` from its direct predecessors
//!   (entry nodes receive one data set of size `δ0 = 1` from the input node);
//! * `Cout(k)` — total volume sent by `C_k` to its direct successors
//!   (exit nodes send one message of size `input_factor(k) · σ_k` to the
//!   output node).
//!
//! ### Edge volumes
//!
//! The paper's Section 2.1 formula for `Cin` omits the factor `σ_i` on the
//! data received from a direct predecessor `C_i`, while `Cout` includes it.
//! The worked counter-examples of Appendix B are only consistent with the
//! *physical* reading — the data travelling on an edge `(i, j)` is the output
//! of `C_i`, of size `σ_i · Π_{C_a ∈ Ancest_i} σ_a` — so this crate uses that
//! reading throughout (see DESIGN.md, "A note on the paper's Cin formula").

use crate::error::{CoreError, CoreResult};
use crate::graph::ExecutionGraph;
use crate::model::CommModel;
use crate::oplist::EdgeRef;
use crate::service::{Application, ServiceId};

/// Pre-computed per-service volumes for a `(Application, ExecutionGraph)` pair.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanMetrics {
    input_factor: Vec<f64>,
    c_in: Vec<f64>,
    c_comp: Vec<f64>,
    c_out: Vec<f64>,
}

impl PlanMetrics {
    /// Computes all volumes for the given application and execution graph.
    pub fn compute(app: &Application, graph: &ExecutionGraph) -> CoreResult<Self> {
        if app.n() != graph.n() {
            return Err(CoreError::SizeMismatch {
                expected: app.n(),
                found: graph.n(),
            });
        }
        let n = app.n();
        let order = graph.topological_order()?;

        // input_factor[k] = product of selectivities of all strict ancestors of k.
        //
        // Single-predecessor nodes inherit it **structurally** along the
        // parent chain (`factor[k] = factor[p] · σ_p`): the float value is
        // then a function of the path alone, so class-preserving
        // relabellings — which map paths to weight-identical paths — leave
        // it bit-identical (the property the symmetry-reduced searches rely
        // on), and forests never pay for ancestor sets at all.  Only join
        // nodes fall back to the per-node ancestor-set product, which counts
        // "diamond" ancestors exactly once (selectivities are independent,
        // join cost negligible — Section 2.1).
        let needs_ancestor_sets = (0..n).any(|k| graph.preds(k).len() > 1);
        let anc = if needs_ancestor_sets {
            Some(graph.ancestor_sets())
        } else {
            None
        };
        let mut input_factor = vec![1.0f64; n];
        for &k in &order {
            input_factor[k] = match graph.preds(k) {
                [] => 1.0,
                [p] => input_factor[*p] * app.selectivity(*p),
                _ => {
                    let sets = anc.as_ref().expect("computed when a join exists");
                    let mut prod = 1.0;
                    for (a, &is_anc) in sets[k].iter().enumerate() {
                        if is_anc {
                            prod *= app.selectivity(a);
                        }
                    }
                    prod
                }
            };
        }

        let mut c_in = vec![0.0f64; n];
        let mut c_comp = vec![0.0f64; n];
        let mut c_out = vec![0.0f64; n];
        for k in 0..n {
            c_comp[k] = input_factor[k] * app.cost(k);
            let preds = graph.preds(k);
            if preds.is_empty() {
                // one incoming message of size δ0 = 1 from the input node
                c_in[k] = 1.0;
            } else {
                c_in[k] = preds
                    .iter()
                    .map(|&p| input_factor[p] * app.selectivity(p))
                    .sum();
            }
            let out_size = input_factor[k] * app.selectivity(k);
            let succs = graph.succs(k);
            let fanout = if succs.is_empty() { 1 } else { succs.len() };
            c_out[k] = fanout as f64 * out_size;
        }
        Ok(PlanMetrics {
            input_factor,
            c_in,
            c_comp,
            c_out,
        })
    }

    /// Number of services.
    pub fn n(&self) -> usize {
        self.input_factor.len()
    }

    /// `Π_{C_j ∈ Ancest_k} σ_j`: relative size of the data entering `C_k`.
    pub fn input_factor(&self, k: ServiceId) -> f64 {
        self.input_factor[k]
    }

    /// Lower bound on the time `C_k` spends receiving data for one data set.
    pub fn c_in(&self, k: ServiceId) -> f64 {
        self.c_in[k]
    }

    /// Computation time of `C_k` for one data set.
    pub fn c_comp(&self, k: ServiceId) -> f64 {
        self.c_comp[k]
    }

    /// Lower bound on the time `C_k` spends sending data for one data set.
    pub fn c_out(&self, k: ServiceId) -> f64 {
        self.c_out[k]
    }

    /// Per-service execution bound `Cexec(k)` (Section 2.2):
    /// `max(Cin, Ccomp, Cout)` under [`CommModel::Overlap`],
    /// `Cin + Ccomp + Cout` under the one-port models.
    pub fn c_exec(&self, k: ServiceId, model: CommModel) -> f64 {
        match model {
            CommModel::Overlap => self.c_in[k].max(self.c_comp[k]).max(self.c_out[k]),
            CommModel::OutOrder | CommModel::InOrder => {
                self.c_in[k] + self.c_comp[k] + self.c_out[k]
            }
        }
    }

    /// Lower bound on the period of any operation list for this execution
    /// graph under the given model: `max_k Cexec(k)`.
    ///
    /// Under [`CommModel::Overlap`] the bound is achievable (Theorem 1); under
    /// the one-port models it may not be (Section 2.3's example).
    pub fn period_lower_bound(&self, model: CommModel) -> f64 {
        (0..self.n())
            .map(|k| self.c_exec(k, model))
            .fold(0.0, f64::max)
    }

    /// The largest `max(Cin, Cout)` over all services: the time within which
    /// all communications can be executed in the multi-port model (used by the
    /// Theorem 1 construction).
    pub fn max_comm_bound(&self) -> f64 {
        (0..self.n())
            .map(|k| self.c_in[k].max(self.c_out[k]))
            .fold(0.0, f64::max)
    }

    /// Size of the data set travelling on a plan edge (input, service-to-service
    /// or output edge), given the application used to build these metrics.
    pub fn edge_volume(&self, app: &Application, edge: EdgeRef) -> f64 {
        match edge {
            EdgeRef::Input(_) => 1.0,
            EdgeRef::Link(i, _) => self.input_factor[i] * app.selectivity(i),
            EdgeRef::Output(k) => self.input_factor[k] * app.selectivity(k),
        }
    }
}

/// How far a node's ancestry is known in a [`PartialForestMetrics`] prefix.
#[derive(Clone, Copy, Debug, PartialEq)]
enum ChainState {
    /// The walk to the root stays within the assigned prefix: the node's
    /// input factor (and the input/computation volumes along its chain) are
    /// final in **every** completion of the prefix.
    Decided {
        /// `Π sel` over the node's (final) strict ancestors.
        factor: f64,
        /// `Σ (in-volume + computation)` along the chain from its root down
        /// to and including this node — a critical-path prefix.
        path: f64,
    },
    /// The walk reaches a node whose parent is not assigned yet.
    Undecided,
    /// The walk re-enters itself: the assigned prefix already contains a
    /// cycle, so *no* completion is a valid execution graph.
    Cycle,
    /// Memo marker for a node currently on the resolution stack.
    Visiting,
}

/// Incrementally maintained volumes of a *partial* parent function, powering
/// branch-and-bound pruning in the exhaustive forest enumeration.
///
/// Parents are assigned in service order (`push` assigns the next service,
/// `pop` undoes the last assignment); child counts are updated per added or
/// removed edge rather than recomputed.  The symmetry-reduced searches
/// enumerate canonical *positions* rather than concrete services:
/// [`PartialForestMetrics::push_weighted`] lets them pin each position to the
/// weights of an arbitrary service (of the position's weight class), keeping
/// the bounds bit-identical to those of the relabelled concrete graph.
/// At any prefix the structure yields *admissible* bounds — values that no
/// completion of the prefix can beat:
///
/// * a node whose parent chain stays inside the assigned prefix has a final
///   ancestor set (later assignments only add descendants), so its `Cin` and
///   `Ccomp` are exact and its `Cout` can only grow as more children attach;
/// * [`PartialForestMetrics::period_bound`] is therefore a lower bound on
///   `PlanMetrics::period_lower_bound` of every completion (and equals it at
///   a full assignment);
/// * [`PartialForestMetrics::latency_bound`] is a lower bound on the optimal
///   one-port latency (`tree_latency`) of every completion: the critical
///   path through any decided node is already fully priced.
///
/// Both bounds return `f64::INFINITY` when the prefix contains a cycle —
/// every completion is then infeasible and the whole subtree can be pruned.
///
/// ### Communication-aware floors for unplaced services
///
/// Beyond the decided prefix, every service whose weights are not yet carried
/// by any position must still appear somewhere in each completion, where its
/// input factor is at least `fmin(k) = Π_{j≠k} min(1, σ_j)` (extra ancestors
/// can only shrink the data by factors ≤ 1, and any ancestor set is a subset
/// of the other services).  That yields per-service *execution floors* that
/// hold in every completion:
///
/// * overlap period: `fmin · max(1, c_k, σ_k)` (`Cin ≥ fmin`, `Ccomp ≥
///   fmin·c_k`, `Cout ≥ fmin·σ_k`);
/// * one-port period: `fmin · (1 + c_k + σ_k)`;
/// * latency: `1 + fmin · (c_k + σ_k)` (every chain prefix costs at least the
///   initial data set, plus the node's own computation and one emission).
///
/// `fmin` is multiplied in a fixed (sorted) order so its bits depend only on
/// the weight *multiset* and `k`'s own weights — class-preserving
/// relabellings leave the floors bit-identical, which the symmetry-reduced
/// searches rely on.  Float rounding of the reordered product is absorbed by
/// the strict-clearance epsilon the search engines prune with.
#[derive(Clone, Debug)]
pub struct PartialForestMetrics<'a> {
    app: &'a Application,
    parent: Vec<Option<ServiceId>>,
    /// Which service's weights each position carries (identity unless
    /// [`PartialForestMetrics::push_weighted`] pinned something else).
    weight: Vec<ServiceId>,
    children: Vec<usize>,
    assigned: usize,
    /// Generation-stamped memo for chain resolution; bumping `gen` invalidates
    /// every entry without clearing the arrays.
    gen: u64,
    memo_gen: Vec<u64>,
    memo: Vec<ChainState>,
    scratch: Vec<ServiceId>,
    /// Whether each service's weights are carried by some assigned position
    /// (the membership mask of `weight[..assigned]`).
    placed: Vec<bool>,
    /// Admissible execution floors for not-yet-placed services, sorted by
    /// decreasing floor so a query is the first unplaced entry.
    floor_overlap: Vec<(f64, ServiceId)>,
    floor_oneport: Vec<(f64, ServiceId)>,
    floor_latency: Vec<(f64, ServiceId)>,
}

impl<'a> PartialForestMetrics<'a> {
    /// An empty prefix (no parent assigned yet) over `app`'s services.
    pub fn new(app: &'a Application) -> Self {
        let n = app.n();
        // fmin(k) = Π_{j≠k} min(1, σ_j), multiplied in sorted order so the
        // bits are a function of (multiset, σ_k) alone — see the type docs.
        let mut shrink: Vec<f64> = (0..n).map(|j| app.selectivity(j).min(1.0)).collect();
        shrink.sort_by(|a, b| b.total_cmp(a));
        let mut prefix = vec![1.0f64; n + 1];
        for i in 0..n {
            prefix[i + 1] = prefix[i] * shrink[i];
        }
        let mut suffix = vec![1.0f64; n + 1];
        for i in (0..n).rev() {
            suffix[i] = shrink[i] * suffix[i + 1];
        }
        let mut floor_overlap = Vec::with_capacity(n);
        let mut floor_oneport = Vec::with_capacity(n);
        let mut floor_latency = Vec::with_capacity(n);
        for k in 0..n {
            let own = app.selectivity(k).min(1.0);
            let i = shrink
                .iter()
                .position(|v| v.to_bits() == own.to_bits())
                .expect("every shrink factor is in the sorted list");
            let fmin = prefix[i] * suffix[i + 1];
            let (cost, sel) = (app.cost(k), app.selectivity(k));
            floor_overlap.push((fmin * 1.0f64.max(cost).max(sel), k));
            floor_oneport.push((fmin * (1.0 + cost + sel), k));
            floor_latency.push((1.0 + fmin * (cost + sel), k));
        }
        for list in [&mut floor_overlap, &mut floor_oneport, &mut floor_latency] {
            list.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        }
        PartialForestMetrics {
            app,
            parent: vec![None; n],
            weight: (0..n).collect(),
            children: vec![0; n],
            assigned: 0,
            gen: 1,
            memo_gen: vec![0; n],
            memo: vec![ChainState::Undecided; n],
            scratch: Vec::with_capacity(n),
            placed: vec![false; n],
            floor_overlap,
            floor_oneport,
            floor_latency,
        }
    }

    /// Number of services whose parent has been assigned.
    pub fn assigned(&self) -> usize {
        self.assigned
    }

    /// The parent function built so far (`None` beyond the assigned prefix).
    pub fn parents(&self) -> &[Option<ServiceId>] {
        &self.parent
    }

    /// Assigns the next service's parent (`None` makes it an entry node).
    pub fn push(&mut self, parent: Option<ServiceId>) {
        let k = self.assigned;
        self.push_weighted(parent, k);
    }

    /// Assigns the next *position*'s parent, carrying the weights of service
    /// `weight_of` (any service of the position's weight class): the
    /// symmetry-reduced enumerations walk canonical positions whose concrete
    /// service ids depend on the colouring.  `push` is the identity case.
    pub fn push_weighted(&mut self, parent: Option<ServiceId>, weight_of: ServiceId) {
        let k = self.assigned;
        debug_assert!(k < self.parent.len());
        debug_assert!(parent != Some(k), "self-loops are never enumerated");
        debug_assert!(weight_of < self.parent.len());
        debug_assert!(
            !self.placed[weight_of],
            "every position must carry a distinct service's weights"
        );
        self.parent[k] = parent;
        self.weight[k] = weight_of;
        self.placed[weight_of] = true;
        if let Some(p) = parent {
            self.children[p] += 1;
        }
        self.assigned += 1;
        self.gen += 1;
    }

    /// Undoes the last [`PartialForestMetrics::push`].
    pub fn pop(&mut self) {
        debug_assert!(self.assigned > 0);
        self.assigned -= 1;
        if let Some(p) = self.parent[self.assigned] {
            self.children[p] -= 1;
        }
        self.placed[self.weight[self.assigned]] = false;
        self.parent[self.assigned] = None;
        self.weight[self.assigned] = self.assigned;
        self.gen += 1;
    }

    /// Largest floor among services not yet placed (0 when all are placed).
    /// Lists are sorted descending, so the first unplaced entry is the max;
    /// the value depends only on the unplaced weight *multiset*, keeping it
    /// bit-identical across class-preserving relabellings.
    fn unplaced_floor(&self, list: &[(f64, ServiceId)]) -> f64 {
        for &(lb, k) in list {
            if !self.placed[k] {
                return lb;
            }
        }
        0.0
    }

    /// Resolves the chain state of `j`, memoised for the current generation.
    fn resolve(&mut self, j0: ServiceId) -> ChainState {
        if self.memo_gen[j0] == self.gen {
            let r = self.memo[j0];
            debug_assert!(r != ChainState::Visiting);
            return r;
        }
        let mut stack = std::mem::take(&mut self.scratch);
        stack.clear();
        let mut j = j0;
        // Walk up until the state of `j`'s parentage is known.
        let base = loop {
            if self.memo_gen[j] == self.gen {
                break match self.memo[j] {
                    ChainState::Visiting => ChainState::Cycle,
                    r => r,
                };
            }
            if j >= self.assigned {
                break ChainState::Undecided;
            }
            match self.parent[j] {
                None => {
                    let r = ChainState::Decided {
                        factor: 1.0,
                        path: 1.0 + self.app.cost(self.weight[j]),
                    };
                    self.memo_gen[j] = self.gen;
                    self.memo[j] = r;
                    break r;
                }
                Some(p) => {
                    self.memo_gen[j] = self.gen;
                    self.memo[j] = ChainState::Visiting;
                    stack.push(j);
                    j = p;
                }
            }
        };
        // Unwind: combine each stacked node with its (now resolved) parent.
        let mut cur = base;
        while let Some(v) = stack.pop() {
            cur = match cur {
                ChainState::Decided {
                    factor: fp,
                    path: pp,
                } => {
                    let p = self.parent[v].expect("stacked nodes have parents");
                    // Volume on the edge p → v, which is also v's input factor.
                    let volume = fp * self.app.selectivity(self.weight[p]);
                    let comp = volume * self.app.cost(self.weight[v]);
                    ChainState::Decided {
                        factor: volume,
                        path: pp + volume + comp,
                    }
                }
                other => other,
            };
            self.memo[v] = cur;
        }
        self.scratch = stack;
        cur
    }

    /// Lower bound on `PlanMetrics::period_lower_bound(model)` of every
    /// completion of the current prefix (`∞` when the prefix is cyclic):
    /// the decided prefix terms combined with the communication-aware floor
    /// of the services still to be placed.
    pub fn period_bound(&mut self, model: CommModel) -> f64 {
        let mut bound = match model {
            CommModel::Overlap => self.unplaced_floor(&self.floor_overlap),
            CommModel::InOrder | CommModel::OutOrder => self.unplaced_floor(&self.floor_oneport),
        };
        for j in 0..self.assigned {
            match self.resolve(j) {
                ChainState::Cycle => return f64::INFINITY,
                ChainState::Undecided | ChainState::Visiting => {}
                ChainState::Decided { factor, .. } => {
                    let cin = if self.parent[j].is_none() {
                        1.0
                    } else {
                        factor
                    };
                    let comp = factor * self.app.cost(self.weight[j]);
                    let out_size = factor * self.app.selectivity(self.weight[j]);
                    let cout = self.children[j].max(1) as f64 * out_size;
                    let cexec = match model {
                        CommModel::Overlap => cin.max(comp).max(cout),
                        CommModel::InOrder | CommModel::OutOrder => cin + comp + cout,
                    };
                    bound = bound.max(cexec);
                }
            }
        }
        bound
    }

    /// Lower bound on the optimal one-port latency (`tree_latency`) of every
    /// feasible completion of the current prefix (`∞` when cyclic), including
    /// the floor of the services still to be placed.
    pub fn latency_bound(&mut self) -> f64 {
        let mut bound = self.unplaced_floor(&self.floor_latency);
        for j in 0..self.assigned {
            match self.resolve(j) {
                ChainState::Cycle => return f64::INFINITY,
                ChainState::Undecided | ChainState::Visiting => {}
                ChainState::Decided { factor, path } => {
                    // After j's computation the data either leaves through the
                    // output node or feeds a child; both cost at least one
                    // emission of j's output size.
                    bound = bound.max(path + factor * self.app.selectivity(self.weight[j]));
                }
            }
        }
        bound
    }
}

/// All plan edges of an execution graph, in a deterministic order:
/// input edges (by entry node id), then service-to-service edges (by source,
/// then target), then output edges (by exit node id).
pub fn plan_edges(graph: &ExecutionGraph) -> Vec<EdgeRef> {
    let mut edges = Vec::new();
    for k in graph.entry_nodes() {
        edges.push(EdgeRef::Input(k));
    }
    for (i, j) in graph.edges() {
        edges.push(EdgeRef::Link(i, j));
    }
    for k in graph.exit_nodes() {
        edges.push(EdgeRef::Output(k));
    }
    edges
}

/// Incoming plan edges of service `k` (including the input edge for entry nodes).
pub fn in_edges(graph: &ExecutionGraph, k: ServiceId) -> Vec<EdgeRef> {
    let preds = graph.preds(k);
    if preds.is_empty() {
        vec![EdgeRef::Input(k)]
    } else {
        preds.iter().map(|&p| EdgeRef::Link(p, k)).collect()
    }
}

/// Outgoing plan edges of service `k` (including the output edge for exit nodes).
pub fn out_edges(graph: &ExecutionGraph, k: ServiceId) -> Vec<EdgeRef> {
    let succs = graph.succs(k);
    if succs.is_empty() {
        vec![EdgeRef::Output(k)]
    } else {
        succs.iter().map(|&s| EdgeRef::Link(k, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Section 2.3: five services of cost 4 and
    /// selectivity 1; execution graph of Figure 1.
    fn section23() -> (Application, ExecutionGraph) {
        let app = Application::independent(&[(4.0, 1.0); 5]);
        // C1=0, C2=1, C3=2, C4=3, C5=4
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
        (app, g)
    }

    #[test]
    fn section23_bounds() {
        let (app, g) = section23();
        let m = PlanMetrics::compute(&app, &g).unwrap();
        // C1: receives 1 from input, computes 4, sends to C2 and C4 (2 messages of size 1)
        assert_eq!(m.c_in(0), 1.0);
        assert_eq!(m.c_comp(0), 4.0);
        assert_eq!(m.c_out(0), 2.0);
        // C5: receives from C3 and C4 (2 messages), computes 4, sends 1 to output
        assert_eq!(m.c_in(4), 2.0);
        assert_eq!(m.c_comp(4), 4.0);
        assert_eq!(m.c_out(4), 1.0);
        // Period lower bounds quoted in the paper: 4 for OVERLAP, 7 for the one-port models.
        assert_eq!(m.period_lower_bound(CommModel::Overlap), 4.0);
        assert_eq!(m.period_lower_bound(CommModel::OutOrder), 7.0);
        assert_eq!(m.period_lower_bound(CommModel::InOrder), 7.0);
    }

    #[test]
    fn selectivity_propagates_to_descendants() {
        // 0 (sigma=0.5) -> 1 (sigma=2.0) -> 2
        let app = Application::independent(&[(1.0, 0.5), (2.0, 2.0), (4.0, 1.0)]);
        let g = ExecutionGraph::chain_of(3, &[0, 1, 2]).unwrap();
        let m = PlanMetrics::compute(&app, &g).unwrap();
        assert_eq!(m.input_factor(0), 1.0);
        assert_eq!(m.input_factor(1), 0.5);
        assert_eq!(m.input_factor(2), 1.0);
        assert_eq!(m.c_comp(1), 1.0);
        assert_eq!(m.c_comp(2), 4.0);
        // Edge volumes: in->0 is 1, 0->1 is 0.5, 1->2 is 1.0, 2->out is 1.0
        assert_eq!(m.edge_volume(&app, EdgeRef::Input(0)), 1.0);
        assert_eq!(m.edge_volume(&app, EdgeRef::Link(0, 1)), 0.5);
        assert_eq!(m.edge_volume(&app, EdgeRef::Link(1, 2)), 1.0);
        assert_eq!(m.edge_volume(&app, EdgeRef::Output(2)), 1.0);
        // Cin of 1 is the volume of edge 0->1.
        assert_eq!(m.c_in(1), 0.5);
        assert_eq!(m.c_out(0), 0.5);
    }

    #[test]
    fn diamond_counts_shared_ancestor_once() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, all selectivities 0.5
        let app = Application::independent(&[(1.0, 0.5); 4]);
        let g = ExecutionGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let m = PlanMetrics::compute(&app, &g).unwrap();
        // Ancestors of 3 are {0,1,2}; product = 0.125 (0 counted once).
        assert!((m.input_factor(3) - 0.125).abs() < 1e-12);
        // Cin(3) = vol(1->3) + vol(2->3) = 0.25 + 0.25
        assert!((m.c_in(3) - 0.5).abs() < 1e-12);
        // 0 has two successors: Cout(0) = 2 * 0.5
        assert!((m.c_out(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counterexample_b2_volumes() {
        // Appendix B.2: 12 unit-cost services; σ2=σ3=2, σ4=σ5=σ6=3, others 1.
        // C1 (id 0) feeds all of C7..C12 (ids 6..11); C2,C3 feed 3 each; C4,C5,C6 feed 2 each,
        // such that every receiver gets volumes {1, 2, 3}.
        let mut specs = vec![(1.0, 1.0); 12];
        specs[1].1 = 2.0;
        specs[2].1 = 2.0;
        specs[3].1 = 3.0;
        specs[4].1 = 3.0;
        specs[5].1 = 3.0;
        let app = Application::independent(&specs);
        let mut edges = Vec::new();
        for j in 6..12 {
            edges.push((0usize, j)); // C1 -> all
        }
        for (idx, j) in (6..9).enumerate() {
            let _ = idx;
            edges.push((1, j));
        }
        for j in 9..12 {
            edges.push((2, j));
        }
        for j in [6, 7] {
            edges.push((3, j));
        }
        for j in [8, 9] {
            edges.push((4, j));
        }
        for j in [10, 11] {
            edges.push((5, j));
        }
        let g = ExecutionGraph::from_edges(12, &edges).unwrap();
        let m = PlanMetrics::compute(&app, &g).unwrap();
        for i in 0..6 {
            assert!(
                (m.c_out(i) - 6.0).abs() < 1e-12,
                "Cout({i}) = {}",
                m.c_out(i)
            );
        }
        for j in 6..12 {
            assert!((m.c_in(j) - 6.0).abs() < 1e-12, "Cin({j}) = {}", m.c_in(j));
            assert!((m.c_comp(j) - 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn partial_forest_bound_matches_full_metrics_when_complete() {
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8), (1.0, 0.6)]);
        let assignments: [&[Option<ServiceId>]; 3] = [
            &[None, Some(0), Some(0), Some(2)],
            &[None, None, Some(1), Some(1)],
            &[Some(1), None, Some(0), Some(2)],
        ];
        for parents in assignments {
            let mut pm = PartialForestMetrics::new(&app);
            for &p in parents {
                pm.push(p);
            }
            let graph = ExecutionGraph::from_parents(parents).unwrap();
            let metrics = PlanMetrics::compute(&app, &graph).unwrap();
            for model in [CommModel::Overlap, CommModel::InOrder, CommModel::OutOrder] {
                let full = metrics.period_lower_bound(model);
                let partial = pm.period_bound(model);
                assert!(
                    (full - partial).abs() <= 1e-12 * full.max(1.0),
                    "{model}: partial {partial} vs full {full}"
                );
            }
        }
    }

    #[test]
    fn partial_forest_bounds_grow_monotonically_and_stay_admissible() {
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8), (1.0, 0.6)]);
        let parents = [None, Some(0), Some(0), Some(2)];
        let graph = ExecutionGraph::from_parents(&parents).unwrap();
        let full = PlanMetrics::compute(&app, &graph)
            .unwrap()
            .period_lower_bound(CommModel::InOrder);
        let mut pm = PartialForestMetrics::new(&app);
        let mut last = 0.0;
        for &p in &parents {
            pm.push(p);
            let bound = pm.period_bound(CommModel::InOrder);
            assert!(bound + 1e-12 >= last, "bounds shrank: {bound} < {last}");
            assert!(bound <= full + 1e-12 * full.max(1.0));
            last = bound;
        }
        // Unwinding restores the earlier (weaker) bound.
        pm.pop();
        pm.pop();
        pm.push(parents[2]);
        pm.push(parents[3]);
        let rebound = pm.period_bound(CommModel::InOrder);
        assert!((rebound - last).abs() <= 1e-12 * last.max(1.0));
    }

    #[test]
    fn partial_forest_detects_cycles_and_forward_parents() {
        let app = Application::independent(&[(1.0, 1.0); 3]);
        // 0 → 1, 1 → 0 is a cycle within the assigned prefix.
        let mut pm = PartialForestMetrics::new(&app);
        pm.push(Some(1));
        pm.push(Some(0));
        assert!(pm.period_bound(CommModel::Overlap).is_infinite());
        assert!(pm.latency_bound().is_infinite());
        // A forward parent (2, unassigned) leaves node 0 undecided but the
        // prefix feasible.
        let mut pm = PartialForestMetrics::new(&app);
        pm.push(Some(2));
        pm.push(None);
        let bound = pm.period_bound(CommModel::InOrder);
        assert!(bound.is_finite());
        // Node 1 is a decided root: Cin + Ccomp + Cout = 1 + 1 + 1.
        assert!((bound - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unplaced_floors_lower_bound_every_completion() {
        // The empty-prefix floor must lower-bound the full-assignment bound of
        // every forest over the application, for each model and for latency.
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8), (1.0, 0.6)]);
        let n = app.n();
        let mut empty = PartialForestMetrics::new(&app);
        let floors = [
            empty.period_bound(CommModel::Overlap),
            empty.period_bound(CommModel::InOrder),
            empty.latency_bound(),
        ];
        assert!(floors.iter().all(|f| *f > 0.0), "floors fire on {floors:?}");
        let mut checked = 0;
        for code in 0..(n + 1).pow(n as u32) {
            let mut parents = Vec::with_capacity(n);
            let mut c = code;
            for k in 0..n {
                let choice = c % (n + 1);
                c /= n + 1;
                parents.push(if choice == n || choice == k {
                    None
                } else {
                    Some(choice)
                });
            }
            let Ok(graph) = ExecutionGraph::from_parents(&parents) else {
                continue;
            };
            let metrics = PlanMetrics::compute(&app, &graph).unwrap();
            let mut pm = PartialForestMetrics::new(&app);
            for &p in &parents {
                pm.push(p);
            }
            let eps = 1e-9;
            for (floor, full) in [
                (floors[0], metrics.period_lower_bound(CommModel::Overlap)),
                (floors[1], metrics.period_lower_bound(CommModel::InOrder)),
                (floors[2], pm.latency_bound()),
            ] {
                assert!(
                    floor <= full * (1.0 + eps),
                    "floor {floor} exceeds full bound {full} for {parents:?}"
                );
            }
            checked += 1;
        }
        assert!(checked > 50, "enumerated {checked} forests only");
    }

    #[test]
    fn unplaced_floors_are_identical_across_class_relabellings() {
        // Two services of one class, two of another: pushing either member of
        // a class must leave bit-identical bounds.
        let app = Application::independent(&[(2.0, 0.5), (2.0, 0.5), (1.0, 0.8), (1.0, 0.8)]);
        let mut a = PartialForestMetrics::new(&app);
        a.push_weighted(None, 0);
        a.push_weighted(Some(0), 2);
        let mut b = PartialForestMetrics::new(&app);
        b.push_weighted(None, 1);
        b.push_weighted(Some(0), 3);
        for model in [CommModel::Overlap, CommModel::InOrder, CommModel::OutOrder] {
            assert_eq!(
                a.period_bound(model).to_bits(),
                b.period_bound(model).to_bits()
            );
        }
        assert_eq!(a.latency_bound().to_bits(), b.latency_bound().to_bits());
    }

    #[test]
    fn size_mismatch_rejected() {
        let app = Application::independent(&[(1.0, 1.0); 3]);
        let g = ExecutionGraph::new(4);
        assert!(matches!(
            PlanMetrics::compute(&app, &g),
            Err(CoreError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn edge_helpers() {
        let g = ExecutionGraph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let edges = plan_edges(&g);
        assert_eq!(edges.len(), 1 + 2 + 2);
        assert_eq!(in_edges(&g, 0), vec![EdgeRef::Input(0)]);
        assert_eq!(in_edges(&g, 1), vec![EdgeRef::Link(0, 1)]);
        assert_eq!(
            out_edges(&g, 0),
            vec![EdgeRef::Link(0, 1), EdgeRef::Link(0, 2)]
        );
        assert_eq!(out_edges(&g, 2), vec![EdgeRef::Output(2)]);
    }
}
