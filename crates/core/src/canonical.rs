//! Weight-class symmetry and canonical forms of execution structures.
//!
//! Services that carry **bit-identical cost and selectivity** are
//! interchangeable: relabelling them maps any execution graph to an
//! equivalent one with the same volumes, bounds and (for label-independent
//! evaluations) the same objective value.  The exhaustive plan searches can
//! therefore enumerate one *canonical representative* per relabelling orbit
//! instead of the whole labelled space — for the fully uniform case this
//! collapses the `n^n` parent-function space of the forest enumeration to
//! the number of *unlabelled* rooted forests (A000081 shifted: 286 classes
//! at `n = 8` against 16.7M parent functions, 1 842 at `n = 10` against
//! 10^10).
//!
//! The same idea applies *partially* when the services split into several
//! weight classes: the symmetry group is then the **product of the per-class
//! symmetric groups** `G = Π_c S_{|class c|}`, its orbits are isomorphism
//! classes of *class-coloured* rooted forests, and the orbit accounting
//! becomes `Π_c |class c|! / |Aut|` with `Aut` the colour-preserving
//! automorphism group.  A `2 + 3`-class instance on 10 services still
//! collapses its 10^10 parent functions to a few tens of thousands of
//! coloured classes.
//!
//! This module provides the building blocks of both reductions:
//!
//! * [`WeightClasses`] — the partition of services into weight classes
//!   (groups with identical `(cost, selectivity)` bit patterns);
//! * [`CanonicalForests`] — a streaming generator of canonical rooted
//!   forests on `n` nodes (one per isomorphism class, as parent vectors in
//!   preorder) via the Beyer–Hedetniemi level-sequence successor rule, with
//!   **orbit-size accounting**: each class reports how many labelled forests
//!   it stands for (`n! / |Aut|`), so reduced enumerations remain
//!   explainable and auditable against the raw space;
//! * [`classed_forest_representatives`] — the class-preserving
//!   generalisation: one representative per coloured-forest class (a shape
//!   *and* an assignment of weight classes to its nodes, canonical up to the
//!   shape's automorphisms), with `Π_c |class c|! / |Aut|` orbit accounting;
//! * [`canonical_forest_form`] / [`canonical_classed_form`] — the canonical
//!   relabelling of an arbitrary labelled forest (the representative its
//!   orbit is reported under), shape-only and class-aware respectively;
//! * [`forest_classes`] / [`labelled_forests`] — closed-form counts of the
//!   uniform spaces (`Σ orbit sizes == labelled_forests(n)` is tested below,
//!   for the coloured generator too — the identity holds for *every*
//!   partition, because the coloured orbits also tile the labelled space).
//!
//! The canonical *tie-break* is part of the contract: representatives are
//! produced in decreasing lexicographic order of their level sequences
//! (path first, all-roots last), colourings in **increasing** lexicographic
//! order of their class vectors within each shape (class 0 first; each
//! individual representative still carries non-increasing colour sequences
//! across identical siblings), so "the first optimum in canonical order" is
//! a well-defined, deterministic winner — it is generally **not** the same
//! labelled graph as the first optimum of the raw `n^n` enumeration, which
//! is why the symmetry-reduced searches only engage when every member of an
//! orbit provably evaluates to the same value (see `fsw_sched::engine`).

use crate::error::{CoreError, CoreResult};
use crate::graph::ExecutionGraph;
use crate::model::CommModel;
use crate::service::{Application, ServiceId};

/// The partition of an application's services into weight classes: two
/// services share a class iff their cost and selectivity are bit-identical.
///
/// Classes are numbered in order of first appearance (service 0's class is
/// class 0).
#[derive(Clone, Debug)]
pub struct WeightClasses {
    class_of: Vec<usize>,
    sizes: Vec<usize>,
}

impl WeightClasses {
    /// Computes the weight-class partition of `app`'s services.
    pub fn of(app: &Application) -> Self {
        let n = app.n();
        let mut keys: Vec<(u64, u64)> = Vec::new();
        let mut class_of = Vec::with_capacity(n);
        let mut sizes: Vec<usize> = Vec::new();
        for k in 0..n {
            let key = (app.cost(k).to_bits(), app.selectivity(k).to_bits());
            let class = match keys.iter().position(|&existing| existing == key) {
                Some(c) => c,
                None => {
                    keys.push(key);
                    sizes.push(0);
                    keys.len() - 1
                }
            };
            class_of.push(class);
            sizes[class] += 1;
        }
        WeightClasses { class_of, sizes }
    }

    /// Number of services partitioned.
    pub fn n(&self) -> usize {
        self.class_of.len()
    }

    /// Number of distinct weight classes.
    pub fn class_count(&self) -> usize {
        self.sizes.len()
    }

    /// The class index of service `k`.
    pub fn class_of(&self, k: ServiceId) -> usize {
        self.class_of[k]
    }

    /// Number of services in class `c`.
    pub fn class_size(&self, c: usize) -> usize {
        self.sizes[c]
    }

    /// The class sizes, indexed by class.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The class of every service, indexed by service id.
    pub fn class_vector(&self) -> &[usize] {
        &self.class_of
    }

    /// `true` when every service carries the same weights (at most one
    /// class) — the regime in which full relabelling symmetry applies.
    pub fn is_uniform(&self) -> bool {
        self.sizes.len() <= 1
    }

    /// `true` when at least one class holds two or more services — the
    /// regime in which class-preserving relabelling symmetry is non-trivial.
    pub fn has_symmetry(&self) -> bool {
        self.sizes.iter().any(|&s| s >= 2)
    }

    /// Order of the class-preserving relabelling group `Π_c |class c|!`
    /// (saturating): the number of labelled graphs each coloured orbit of
    /// trivial automorphism stands for.
    pub fn group_order(&self) -> u128 {
        self.sizes
            .iter()
            .fold(1u128, |acc, &s| acc.saturating_mul(factorial(s)))
    }

    /// A compact signature of the partition (an order-sensitive FNV-1a hash
    /// of the class vector): two applications whose services partition
    /// differently get different signatures with overwhelming probability,
    /// so caches keyed by graph shape can mix in the partition and never
    /// collide across applications.
    pub fn signature(&self) -> u64 {
        fnv1a(self.class_of.iter().map(|&c| c as u64))
    }

    /// Deterministic assignment of concrete services to the positions of a
    /// coloured representative: position `p` (of class `colors[p]`) receives
    /// the smallest not-yet-used service id of that class.  Returns `None`
    /// when the colour multiset does not match the partition.
    pub fn service_assignment(&self, colors: &[usize]) -> Option<Vec<ServiceId>> {
        if colors.len() != self.n() {
            return None;
        }
        let mut pool: Vec<Vec<ServiceId>> = vec![Vec::new(); self.sizes.len()];
        for k in (0..self.n()).rev() {
            pool[self.class_of[k]].push(k); // descending, so pop() yields ascending ids
        }
        let mut assignment = Vec::with_capacity(colors.len());
        for &c in colors {
            assignment.push(pool.get_mut(c)?.pop()?);
        }
        Some(assignment)
    }
}

/// One canonical rooted forest, borrowed from a [`CanonicalForests`] stream.
#[derive(Debug)]
pub struct ForestClass<'a> {
    /// Parent vector of the representative: node `k`'s unique direct
    /// predecessor, `None` for roots.  Nodes are labelled in preorder of the
    /// canonical level sequence, so `parents[k] < Some(k)` always holds.
    pub parents: &'a [Option<ServiceId>],
    /// Number of labelled forests in this isomorphism class (`n! / |Aut|`).
    pub orbit: u128,
    /// Index of the first node whose parent may differ from the previously
    /// streamed representative (`0` for the first one): an enumerator
    /// maintaining incremental per-prefix state needs to rewind only the
    /// suffix `changed_from..`.
    pub changed_from: usize,
}

/// Streaming generator of canonical rooted forests on `n` nodes — exactly
/// one representative per forest-isomorphism class.
///
/// A rooted forest on `n` nodes corresponds to a rooted tree on `n + 1`
/// nodes (attach every root to a virtual super-root); the generator walks
/// the canonical level sequences of those super-trees with the classic
/// Beyer–Hedetniemi successor rule (*Constant time generation of rooted
/// trees*, SIAM J. Comput. 1980), from the path (deepest) to the star of
/// isolated nodes (flattest), and converts each sequence to a parent
/// vector plus its orbit size.
#[derive(Clone, Debug)]
pub struct CanonicalForests {
    /// Level sequence of the super-tree in preorder; `levels[0] == 0` is the
    /// virtual root, real nodes sit at levels `>= 1`.
    levels: Vec<usize>,
    parents: Vec<Option<ServiceId>>,
    /// Position scratch: last preorder position seen per level.
    last_at_level: Vec<usize>,
    started: bool,
}

impl CanonicalForests {
    /// A stream over the forests on `n` nodes (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "canonical enumeration needs at least one node");
        CanonicalForests {
            levels: (0..=n).collect(),
            parents: vec![None; n],
            last_at_level: vec![0; n + 1],
            started: false,
        }
    }

    /// Advances to the next canonical representative, or `None` once the
    /// class space is exhausted.  (A lending iterator: the returned item
    /// borrows the generator's buffers.)
    #[allow(clippy::should_implement_trait)] // lending: items borrow self
    pub fn next(&mut self) -> Option<ForestClass<'_>> {
        let changed_pos = if !self.started {
            self.started = true;
            1 // every position is fresh
        } else {
            // On the terminal sequence (all forest roots) `successor` keeps
            // returning `None`, so an exhausted stream stays exhausted.
            self.successor()?
        };
        self.refresh_parents(changed_pos);
        Some(ForestClass {
            parents: &self.parents,
            orbit: forest_orbit_size(&self.levels),
            changed_from: changed_pos - 1,
        })
    }

    /// Beyer–Hedetniemi successor: returns the first sequence position that
    /// changed, or `None` when the current sequence is the last one.
    fn successor(&mut self) -> Option<usize> {
        // p: rightmost node deeper than a forest root (level > 1).
        let p = (1..self.levels.len()).rev().find(|&i| self.levels[i] > 1)?;
        // q: rightmost proper ancestor-level position before p.
        let q = (1..p)
            .rev()
            .find(|&i| self.levels[i] == self.levels[p] - 1)
            .expect("a node of level > 1 has an earlier node one level up");
        for i in p..self.levels.len() {
            self.levels[i] = self.levels[i - (p - q)];
        }
        Some(p)
    }

    /// Recomputes `parents[changed_pos - 1 ..]` from the level sequence.
    fn refresh_parents(&mut self, changed_pos: usize) {
        // Seed the per-level position memo from the unchanged prefix.
        for l in &mut self.last_at_level {
            *l = usize::MAX;
        }
        for (i, &level) in self.levels.iter().enumerate().take(changed_pos) {
            self.last_at_level[level] = i;
        }
        for i in changed_pos..self.levels.len() {
            let level = self.levels[i];
            self.parents[i - 1] = if level == 1 {
                None
            } else {
                let p = self.last_at_level[level - 1];
                debug_assert!(p >= 1, "parent of a level >= 2 node is a real node");
                Some(p - 1)
            };
            self.last_at_level[level] = i;
        }
    }
}

/// One canonical representative of a **class-preserving** relabelling orbit:
/// a forest shape (parent vector over preorder positions) plus an assignment
/// of weight classes to its positions, canonical up to the shape's
/// automorphisms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassedRepresentative {
    /// Parent vector of the shape: position `p`'s unique direct predecessor,
    /// `None` for roots; positions are preorder labels (`parents[p] < Some(p)`).
    pub parents: Vec<Option<ServiceId>>,
    /// Weight class of every position.
    pub classes: Vec<usize>,
    /// Number of labelled forests in this coloured-isomorphism class
    /// (`Π_c |class c|! / |Aut|` with `Aut` the colour-preserving
    /// automorphism group).
    pub orbit: u128,
}

impl ClassedRepresentative {
    /// The representative as a labelled execution graph over the concrete
    /// services of `classes`'s application: positions receive service ids via
    /// [`WeightClasses::service_assignment`] (smallest unused id of the
    /// position's class, in preorder) — the deterministic *canonical member*
    /// of the orbit.  Returns `None` when the colour multiset does not match
    /// the partition (never for generator output).
    pub fn member_graph(&self, classes: &WeightClasses) -> Option<ExecutionGraph> {
        let assignment = classes.service_assignment(&self.classes)?;
        let mut parents = vec![None; self.parents.len()];
        for (pos, &p) in self.parents.iter().enumerate() {
            parents[assignment[pos]] = p.map(|pp| assignment[pp]);
        }
        ExecutionGraph::from_parents(&parents).ok()
    }
}

/// Outcome of a bounded classed-representative materialisation
/// ([`classed_forest_representatives_within`]).
#[derive(Clone, Debug)]
pub enum ClassedGeneration {
    /// The complete representative list, in canonical enumeration order.
    Generated(Vec<ClassedRepresentative>),
    /// More than the cap exist; callers fall back to the raw enumeration.
    CapExceeded,
    /// The deadline passed mid-generation; callers should degrade like an
    /// interrupted search (best-effort fallback, flagged non-exhaustive).
    DeadlineExpired,
}

/// Materialises one canonical representative per **coloured** forest class on
/// `classes.n()` nodes: every forest shape (canonical enumeration order) and,
/// within each shape, every assignment of the weight-class multiset to its
/// nodes that is canonical with respect to the shape's automorphisms
/// (identical sibling subtrees carry non-increasing colour sequences).
///
/// Returns `None` once more than `cap` representatives exist — the caller
/// then falls back to the full labelled enumeration or a heuristic.
///
/// The orbit sizes `Π_c |class c|! / |Aut|` tile the labelled space exactly:
/// `Σ orbit == (n+1)^(n-1)` for every partition (tested below), which is the
/// auditable identity the reduced searches print.
pub fn classed_forest_representatives(
    classes: &WeightClasses,
    cap: usize,
) -> Option<Vec<ClassedRepresentative>> {
    match classed_forest_representatives_within(classes, cap, None) {
        ClassedGeneration::Generated(reps) => Some(reps),
        ClassedGeneration::CapExceeded | ClassedGeneration::DeadlineExpired => None,
    }
}

/// [`classed_forest_representatives`] with an optional wall-clock deadline,
/// checked once per shape (sub-millisecond granularity at enumerable sizes)
/// so a `time_limit`-bounded solver never blocks on a large materialisation.
///
/// The cap is checked by a **count-only pass first**
/// ([`classed_class_count_within`]): the number of coloured classes per
/// shape is computed from memoised per-shape generating functions without
/// materialising a single representative, so a space that overflows the cap
/// is rejected in time proportional to the number of *shapes* (A000081)
/// instead of the number of coloured classes — 3-class spaces at `n >= 10`
/// used to burn millions of representative allocations before falling back.
pub fn classed_forest_representatives_within(
    classes: &WeightClasses,
    cap: usize,
    deadline: Option<std::time::Instant>,
) -> ClassedGeneration {
    let n = classes.n();
    assert!(n >= 1, "classed enumeration needs at least one node");
    match classed_class_count_within(classes, cap as u128, deadline) {
        ClassedCount::Exact(_) => {}
        ClassedCount::ExceedsCap => return ClassedGeneration::CapExceeded,
        ClassedCount::DeadlineExpired => return ClassedGeneration::DeadlineExpired,
        // Too many classes for the counting representation: generate under
        // the cap directly (the pre-count behaviour).
        ClassedCount::Intractable => {}
    }
    let group_order = classes.group_order();
    let mut stream = CanonicalForests::new(n);
    let mut reps: Vec<ClassedRepresentative> = Vec::new();
    while let Some(class) = stream.next() {
        let parents = class.parents.to_vec();
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            return ClassedGeneration::DeadlineExpired;
        }
        // `stream.levels` describes the shape just streamed (the lending
        // borrow has been released by copying the parent vector out).
        if !enumerate_canonical_colorings(&stream.levels, classes, &mut |colors, aut| {
            if reps.len() >= cap {
                return false;
            }
            debug_assert!(
                group_order == u128::MAX || group_order.is_multiple_of(aut),
                "|Aut| divides the group order"
            );
            reps.push(ClassedRepresentative {
                parents: parents.clone(),
                classes: colors.to_vec(),
                orbit: group_order / aut,
            });
            true
        }) {
            return ClassedGeneration::CapExceeded;
        }
    }
    ClassedGeneration::Generated(reps)
}

/// Outcome of a count-only coloured-class pass ([`classed_class_count_within`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassedCount {
    /// The exact number of coloured-forest classes of the partition.
    Exact(u128),
    /// The running total exceeded the cap; counting stopped early.
    ExceedsCap,
    /// The deadline passed mid-count.
    DeadlineExpired,
    /// The partition is too wide for the counting representation (its dense
    /// exponent space `Π_c (|class c| + 1)` exceeds
    /// [`COUNT_DENSE_LIMIT`]): callers fall back to bounded generation.
    Intractable,
}

/// Largest dense generating-function length ([`ClassedCount::Intractable`]
/// beyond it): the exponent space is `Π_c (|class c| + 1)`, exponential in
/// the number of classes, so partitions with many near-singleton classes
/// (one duplicated weight, the rest distinct) would pay more for counting
/// than the generation it guards.  1024 covers every symmetric regime worth
/// collapsing (e.g. four classes of four at `n = 16` is 625) while keeping
/// the worst polynomial product near a microsecond-millisecond scale.
pub const COUNT_DENSE_LIMIT: usize = 1 << 10;

/// The number of coloured-forest classes of `classes`'s partition — the
/// length of the [`classed_forest_representatives`] list — without
/// materialising a single representative.  Returns `None` once the running
/// total exceeds `cap`.
pub fn classed_class_count(classes: &WeightClasses, cap: u128) -> Option<u128> {
    match classed_class_count_within(classes, cap, None) {
        ClassedCount::Exact(count) => Some(count),
        ClassedCount::ExceedsCap | ClassedCount::DeadlineExpired | ClassedCount::Intractable => {
            None
        }
    }
}

/// [`classed_class_count`] with an optional wall-clock deadline, checked
/// once per shape.
///
/// The count is **O(shapes)**, not O(colourings): per canonical shape the
/// number of canonical colourings is read off a generating function over
/// colour-count vectors — for every subtree, `gf[v]` counts its colourings
/// using `v_c` nodes of class `c`, and a run of `k` identical sibling
/// subtrees contributes the size-`k` multiset construction `MSET_k(gf)`
/// (canonical colourings order identical siblings non-increasingly, i.e.
/// pick a multiset), computed by the Newton/Euler-transform recurrence
/// `k · h_k = Σ_{i=1..k} p_i · h_{k-i}` with `p_i = gf(x^i)` the power sum.
/// Subtree GFs are memoised across shapes (identical subtrees recur
/// massively in the Beyer–Hedetniemi stream), so the whole pass costs a few
/// small polynomial products per shape.
pub fn classed_class_count_within(
    classes: &WeightClasses,
    cap: u128,
    deadline: Option<std::time::Instant>,
) -> ClassedCount {
    let n = classes.n();
    assert!(n >= 1, "classed counting needs at least one node");
    let dense_len = classes
        .sizes()
        .iter()
        .try_fold(1usize, |acc, &s| acc.checked_mul(s + 1))
        .unwrap_or(usize::MAX);
    if dense_len > COUNT_DENSE_LIMIT {
        return ClassedCount::Intractable;
    }
    let mut counter = ColourCounter::new(classes);
    let mut stream = CanonicalForests::new(n);
    let mut total: u128 = 0;
    while stream.next().is_some() {
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            return ClassedCount::DeadlineExpired;
        }
        total = total.saturating_add(counter.forest_colorings(&stream.levels));
        if total > cap {
            return ClassedCount::ExceedsCap;
        }
    }
    ClassedCount::Exact(total)
}

/// Objective a [`ShapeBounder`] lower-bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeObjective {
    /// `PlanMetrics::period_lower_bound(model)` of every representative.
    Period(CommModel),
    /// The optimal one-port latency of every representative.
    Latency,
}

/// Shape-level admissible bounds for the lazy bound-ordered enumeration:
/// given only a forest *shape* (super-tree level sequence), a lower bound on
/// the objective of **every** representative carrying that shape, under any
/// colouring and any class-preserving labelling.
///
/// The bound combines three communication-aware floors, all computed from
/// structure alone:
///
/// * a node at depth `d` (level `d + 1`) has input factor at least
///   `anc_floor(d)` — the product of the `d` smallest `min(1, σ)` values
///   (ancestors are distinct services and factors > 1 never shrink data);
/// * its execution time is then floored with the globally cheapest weights
///   (`c_lo`, `σ_lo`) and its structural fan-out;
/// * every distinct weight kind present in the application must occupy
///   *some* position, so the bound also covers each kind's cheapest
///   placement with its **exact** weights.
///
/// Floats are multiplied in a fixed sorted order, so the bound is a pure
/// function of the shape and the weight multiset; rounding drift against
/// the chain-ordered evaluation products is far below the strict-clearance
/// epsilon the searches prune with.
#[derive(Clone, Debug)]
pub struct ShapeBounder {
    /// `anc_floor[d]`: product of the `d` smallest `min(1, σ)` values.
    anc_floor: Vec<f64>,
    /// Distinct `(cost, selectivity)` kinds, deduplicated by bits.
    kinds: Vec<(f64, f64)>,
    cost_lo: f64,
    sel_lo: f64,
    objective: ShapeObjective,
}

impl ShapeBounder {
    /// Builds the bounder for `app` under the given objective.
    pub fn new(app: &Application, objective: ShapeObjective) -> Self {
        let n = app.n();
        let mut shrink: Vec<f64> = (0..n).map(|k| app.selectivity(k).min(1.0)).collect();
        shrink.sort_by(f64::total_cmp); // ascending: smallest factors first
        let mut anc_floor = vec![1.0f64; n + 1];
        for d in 0..n {
            anc_floor[d + 1] = anc_floor[d] * shrink[d];
        }
        let mut kinds: Vec<(f64, f64)> =
            (0..n).map(|k| (app.cost(k), app.selectivity(k))).collect();
        kinds.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        kinds.dedup_by(|a, b| a.0.to_bits() == b.0.to_bits() && a.1.to_bits() == b.1.to_bits());
        let cost_lo = kinds.iter().map(|k| k.0).fold(f64::INFINITY, f64::min);
        let sel_lo = kinds.iter().map(|k| k.1).fold(f64::INFINITY, f64::min);
        ShapeBounder {
            anc_floor,
            kinds,
            cost_lo,
            sel_lo,
            objective,
        }
    }

    /// Floor of one node: depth `d` ancestors, structural fan-out, weights.
    fn node_floor(&self, depth: usize, fanout: usize, cost: f64, sel: f64) -> f64 {
        let fac = self.anc_floor[depth];
        let cin = if depth == 0 { 1.0 } else { fac };
        let comp = fac * cost;
        let cout = fanout.max(1) as f64 * (fac * sel);
        match self.objective {
            ShapeObjective::Period(CommModel::Overlap) => cin.max(comp).max(cout),
            ShapeObjective::Period(CommModel::InOrder | CommModel::OutOrder) => cin + comp + cout,
            ShapeObjective::Latency => 1.0 + fac * (cost + sel),
        }
    }

    /// Lower bound on the objective of every representative of the shape
    /// described by super-tree `levels` (as streamed by [`CanonicalForests`]).
    pub fn shape_bound(&self, levels: &[usize]) -> f64 {
        let len = levels.len();
        let mut fanout = vec![0usize; len];
        let mut last_at_level = vec![usize::MAX; len + 1];
        last_at_level[0] = 0;
        for (i, &level) in levels.iter().enumerate().skip(1) {
            if level >= 2 {
                fanout[last_at_level[level - 1]] += 1;
            }
            last_at_level[level] = i;
        }
        let mut bound = 0.0f64;
        for i in 1..len {
            bound = bound.max(self.node_floor(levels[i] - 1, fanout[i], self.cost_lo, self.sel_lo));
        }
        for &(cost, sel) in &self.kinds {
            let mut cheapest = f64::INFINITY;
            for i in 1..len {
                cheapest = cheapest.min(self.node_floor(levels[i] - 1, fanout[i], cost, sel));
            }
            bound = bound.max(cheapest);
        }
        if self.objective == ShapeObjective::Latency {
            bound = bound.max(self.latency_critical_path(levels));
        }
        bound
    }

    /// Critical-path latency floor of the shape: Algorithm 1's one-port
    /// chain recurrence run over the super-tree with **every** node floored
    /// to the globally cheapest weights — leaf `1 + c_lo + σ_lo`, internal
    /// `1 + c_lo + σ_lo · max_p (p + L_p)` with children fed by
    /// non-increasing residual latency.  Admissible because the recurrence
    /// is monotone non-decreasing in every node's `(c, σ)` (costs add, each
    /// `σ` multiplies a tail ≥ 1, and a larger child latency never shrinks
    /// the parent's), so the cheapest-weight value lower-bounds every
    /// colouring and labelling of the shape — and on *uniform* instances it
    /// is **exact**, firing the bound-clearance certificate the moment an
    /// optimal shape has been expanded.  Children are combined in sorted
    /// order, so the floor is a pure function of the shape and
    /// `(c_lo, σ_lo)`.
    fn latency_critical_path(&self, levels: &[usize]) -> f64 {
        fn subtree(levels: &[usize], at: usize, cost: f64, sel: f64) -> (f64, usize) {
            let level = levels[at];
            let mut subs: Vec<f64> = Vec::new();
            let mut next = at + 1;
            while next < levels.len() && levels[next] == level + 1 {
                let (latency, after) = subtree(levels, next, cost, sel);
                subs.push(latency);
                next = after;
            }
            if subs.is_empty() {
                return (1.0 + cost + sel, next);
            }
            subs.sort_by(|a, b| b.total_cmp(a));
            let tail = subs
                .iter()
                .enumerate()
                .map(|(p, l)| p as f64 + l)
                .fold(0.0f64, f64::max);
            (1.0 + cost + sel * tail, next)
        }
        let mut best = 0.0f64;
        let mut at = 1;
        while at < levels.len() {
            let (latency, next) = subtree(levels, at, self.cost_lo, self.sel_lo);
            best = best.max(latency);
            at = next;
        }
        best
    }
}

/// One shape of the lazy bound-ordered classed enumeration: everything
/// needed to (re)start the shape's colouring walk on demand — the packed
/// level sequence **is** the resumable cursor, no representative is held.
#[derive(Clone, Debug)]
pub struct ShapePlan {
    /// Packed super-tree level sequence (one byte per node, virtual root
    /// included as level 0), decoded on demand.
    pub levels: Box<[u8]>,
    /// Position of the shape in canonical enumeration order.
    pub ordinal: u64,
    /// Number of canonical colourings (coloured orbits) of this shape, `0`
    /// when the counting pass is intractable for the partition.
    pub colorings: u128,
    /// Admissible lower bound on every representative of this shape
    /// ([`ShapeBounder::shape_bound`]; `0` when no bounder was supplied).
    pub bound: f64,
}

impl ShapePlan {
    /// The decoded super-tree level sequence.
    pub fn decode_levels(&self) -> Vec<usize> {
        self.levels.iter().map(|&l| l as usize).collect()
    }
}

/// Outcome of a [`bound_ordered_shape_plan`] scan.
#[derive(Clone, Debug)]
pub enum ShapeScan {
    /// All surviving shapes of the space, sorted by `(bound, ordinal)`.
    Planned {
        /// The shapes, bound-sorted (ties in canonical order).
        shapes: Vec<ShapePlan>,
        /// Total coloured-orbit count when the counting pass is tractable
        /// for the partition (`None` beyond [`COUNT_DENSE_LIMIT`]), cutoff
        /// casualties included — the count describes the *space*, not the
        /// emitted plan.
        orbits: Option<u128>,
        /// Number of shapes whose admissible bound already cleared the
        /// caller's cutoff at emission time: certified hopeless without ever
        /// being stored, sorted or expanded.
        pruned: u64,
    },
    /// The deadline passed mid-scan; callers degrade like an interrupted
    /// search (heuristic fallback, flagged non-exhaustive).
    DeadlineExpired,
}

/// The count-only prelude of the lazy classed enumeration: streams every
/// canonical shape once, counts its canonical colourings off the memoised
/// generating functions (no representative is materialised), attaches the
/// shape-level admissible bound, and returns the shapes **bound-sorted** so
/// a best-first consumer expands promising shapes first and stops at the
/// first shape whose bound clears the incumbent — the sort order makes that
/// a certificate for every remaining shape.
///
/// Memory is O(shapes) (A000081: 32 973 at `n = 13`) against the coloured
/// space's potentially tens of millions of representatives.
///
/// `cutoff` threads a warm incumbent's prune threshold into the prelude
/// (Bounded-Dijkstra-style cutoff reuse): a shape whose admissible bound
/// strictly exceeds it is certified hopeless at emission — counted into
/// `orbits` and `pruned` but never stored, so warm re-solves terminate the
/// generator's *storage* as soon as the floor clears the incumbent.
/// `f64::INFINITY` keeps every shape (the cold-search behaviour); ordinals
/// always index the full canonical stream, so winner tie-breaks are
/// unchanged by the cutoff.
pub fn bound_ordered_shape_plan(
    classes: &WeightClasses,
    bounder: Option<&ShapeBounder>,
    cutoff: f64,
    deadline: Option<std::time::Instant>,
) -> ShapeScan {
    let n = classes.n();
    assert!(n >= 1, "classed enumeration needs at least one node");
    assert!(
        n < u8::MAX as usize,
        "packed level codes hold byte-sized levels"
    );
    let dense_len = classes
        .sizes()
        .iter()
        .try_fold(1usize, |acc, &s| acc.checked_mul(s + 1))
        .unwrap_or(usize::MAX);
    // Uniform partitions have exactly one canonical colouring per shape, so
    // the generating-function pass would only recompute the constant 1.
    let uniform = classes.is_uniform();
    let mut counter =
        (!uniform && dense_len <= COUNT_DENSE_LIMIT).then(|| ColourCounter::new(classes));
    let mut stream = CanonicalForests::new(n);
    let mut shapes: Vec<ShapePlan> = Vec::new();
    let mut orbits: u128 = 0;
    let mut ordinal: u64 = 0;
    let mut pruned: u64 = 0;
    while stream.next().is_some() {
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            return ShapeScan::DeadlineExpired;
        }
        let colorings = if uniform {
            1
        } else {
            counter
                .as_mut()
                .map(|c| c.forest_colorings(&stream.levels))
                .unwrap_or(0)
        };
        orbits = orbits.saturating_add(colorings);
        let bound = bounder
            .map(|b| b.shape_bound(&stream.levels))
            .unwrap_or(0.0);
        if bound > cutoff {
            pruned += 1;
        } else {
            shapes.push(ShapePlan {
                levels: stream.levels.iter().map(|&l| l as u8).collect(),
                ordinal,
                colorings,
                bound,
            });
        }
        ordinal += 1;
    }
    shapes.sort_by(|a, b| a.bound.total_cmp(&b.bound).then(a.ordinal.cmp(&b.ordinal)));
    ShapeScan::Planned {
        shapes,
        orbits: (uniform || counter.is_some()).then_some(orbits),
        pruned,
    }
}

/// Packs a preorder forest (parent vector plus one byte-sized tag per node)
/// into a level-sequence code: `n` bytes of 1-based node levels followed by
/// `n` bytes of tags (weight classes or service ids).  The level sequence
/// alone reconstructs the parent vector ([`unpack_level_code`]), because in
/// preorder every node's parent is the most recent earlier node one level
/// up — the same rule [`CanonicalForests`] rebuilds parents with.
///
/// Requires preorder parents (`parents[k] < Some(k)`), which every canonical
/// representative satisfies by construction.
pub fn pack_level_code(parents: &[Option<ServiceId>], tags: &[usize]) -> Box<[u8]> {
    let n = parents.len();
    assert_eq!(n, tags.len(), "one tag per node");
    assert!(n < u8::MAX as usize, "packed codes hold byte-sized levels");
    let mut level = vec![0u8; n];
    let mut code = Vec::with_capacity(2 * n);
    for (k, &p) in parents.iter().enumerate() {
        level[k] = match p {
            None => 1,
            Some(pp) => {
                assert!(pp < k, "packed codes require preorder parents");
                level[pp] + 1
            }
        };
        code.push(level[k]);
    }
    for &t in tags {
        debug_assert!(t < u8::MAX as usize, "tags must be byte-sized");
        code.push(t as u8);
    }
    code.into_boxed_slice()
}

/// Decodes a [`pack_level_code`] code back into `(parents, tags)`.
pub fn unpack_level_code(code: &[u8]) -> (Vec<Option<ServiceId>>, Vec<usize>) {
    let n = code.len() / 2;
    debug_assert_eq!(code.len(), 2 * n, "codes are levels followed by tags");
    let mut parents = vec![None; n];
    let mut last_at_level = vec![usize::MAX; n + 2];
    for (k, &level) in code[..n].iter().enumerate() {
        let level = level as usize;
        parents[k] = if level == 1 {
            None
        } else {
            Some(last_at_level[level - 1])
        };
        last_at_level[level] = k;
    }
    (parents, code[n..].iter().map(|&t| t as usize).collect())
}

/// Memoised per-shape counter of canonical colourings: generating functions
/// over colour-count vectors, represented densely over the mixed-radix
/// exponent space `Π_c (|class c| + 1)` (truncating products — an exponent
/// beyond its class size can never reach the full-budget coefficient).
struct ColourCounter {
    /// Class sizes (the exponent bound per dimension).
    sizes: Vec<usize>,
    /// Mixed-radix strides: `index(v) = Σ_c v_c · strides[c]`.
    strides: Vec<usize>,
    /// Dense length `Π_c (sizes[c] + 1)`.
    len: usize,
    /// Decoded exponent vector per dense index.
    vectors: Vec<Vec<usize>>,
    /// Subtree GF per normalised level slice (root at relative level 0).
    tree_memo: std::collections::HashMap<Vec<usize>, Vec<u128>>,
    /// `MSET_k` of a subtree GF per (normalised slice, k).
    mset_memo: std::collections::HashMap<(Vec<usize>, usize), Vec<u128>>,
}

impl ColourCounter {
    fn new(classes: &WeightClasses) -> Self {
        let sizes = classes.sizes().to_vec();
        let mut strides = Vec::with_capacity(sizes.len());
        let mut len = 1usize;
        for &s in &sizes {
            strides.push(len);
            len *= s + 1;
        }
        let mut vectors = Vec::with_capacity(len);
        for i in 0..len {
            let mut v = Vec::with_capacity(sizes.len());
            let mut rest = i;
            for &s in &sizes {
                v.push(rest % (s + 1));
                rest /= s + 1;
            }
            vectors.push(v);
        }
        ColourCounter {
            sizes,
            strides,
            len,
            vectors,
            tree_memo: std::collections::HashMap::new(),
            mset_memo: std::collections::HashMap::new(),
        }
    }

    /// The multiplicative identity (`x^0`).
    fn one(&self) -> Vec<u128> {
        let mut p = vec![0u128; self.len];
        p[0] = 1;
        p
    }

    /// Truncating product: exponent overflow in any class dimension drops
    /// the term (it can never contribute to the full-budget coefficient).
    fn mul(&self, a: &[u128], b: &[u128]) -> Vec<u128> {
        let mut out = vec![0u128; self.len];
        for (ia, &ca) in a.iter().enumerate() {
            if ca == 0 {
                continue;
            }
            let va = &self.vectors[ia];
            for (ib, &cb) in b.iter().enumerate() {
                if cb == 0 {
                    continue;
                }
                let vb = &self.vectors[ib];
                // In-bounds digit sums never carry, so indexes just add.
                if va
                    .iter()
                    .zip(vb)
                    .zip(&self.sizes)
                    .all(|((&x, &y), &s)| x + y <= s)
                {
                    out[ia + ib] = out[ia + ib].saturating_add(ca.saturating_mul(cb));
                }
            }
        }
        out
    }

    /// The power sum `f(x^i)`: exponents scaled by `i`, truncating.
    fn power(&self, f: &[u128], i: usize) -> Vec<u128> {
        let mut out = vec![0u128; self.len];
        for (idx, &c) in f.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let v = &self.vectors[idx];
            if v.iter().zip(&self.sizes).all(|(&x, &s)| x * i <= s) {
                out[idx * i] = out[idx * i].saturating_add(c);
            }
        }
        out
    }

    /// `MSET_k(f)`: the GF counting multisets of `k` colourings drawn from
    /// the colouring family `f` counts — one multiset per canonical
    /// assignment of a run of `k` identical sibling subtrees.
    fn mset(&mut self, slice: &[usize], k: usize) -> Vec<u128> {
        if let Some(g) = self.mset_memo.get(&(slice.to_vec(), k)) {
            return g.clone();
        }
        let f = self.tree_gf(slice);
        let powers: Vec<Vec<u128>> = (1..=k).map(|i| self.power(&f, i)).collect();
        let mut h: Vec<Vec<u128>> = vec![self.one()];
        for j in 1..=k {
            let mut acc = vec![0u128; self.len];
            for i in 1..=j {
                let term = self.mul(&powers[i - 1], &h[j - i]);
                for (slot, t) in acc.iter_mut().zip(term) {
                    *slot = slot.saturating_add(t);
                }
            }
            for slot in &mut acc {
                debug_assert!(
                    *slot == u128::MAX || slot.is_multiple_of(j as u128),
                    "Newton recurrence yields integral multiset counts"
                );
                *slot /= j as u128;
            }
            h.push(acc);
        }
        let result = h.pop().expect("k >= 0");
        self.mset_memo.insert((slice.to_vec(), k), result.clone());
        result
    }

    /// GF of one subtree (normalised level slice, root at relative level 0):
    /// the product over its child runs of their `MSET_k`, shifted by the
    /// root's own colour choice.
    fn tree_gf(&mut self, slice: &[usize]) -> Vec<u128> {
        if let Some(g) = self.tree_memo.get(slice) {
            return g.clone();
        }
        let product = self.children_product(slice);
        // The root takes each colour with remaining budget: shift by `e_c`.
        let mut out = vec![0u128; self.len];
        for (c, &stride) in self.strides.iter().enumerate() {
            if self.sizes[c] == 0 {
                continue;
            }
            for (idx, &coeff) in product.iter().enumerate() {
                if coeff != 0 && self.vectors[idx][c] < self.sizes[c] {
                    out[idx + stride] = out[idx + stride].saturating_add(coeff);
                }
            }
        }
        self.tree_memo.insert(slice.to_vec(), out.clone());
        out
    }

    /// Product over the child runs of the node at `slice[0]` (children are
    /// the positions at relative level `slice[0] + 1`; canonical sequences
    /// keep identical sibling subtrees adjacent, so runs suffice).
    fn children_product(&mut self, slice: &[usize]) -> Vec<u128> {
        let root_level = slice[0];
        // Sibling spans as normalised slices, in order.
        let mut result = self.one();
        let mut child = 1;
        let mut run_slice: Option<Vec<usize>> = None;
        let mut run_len = 0usize;
        while child < slice.len() {
            debug_assert_eq!(slice[child], root_level + 1);
            let mut next = child + 1;
            while next < slice.len() && slice[next] > root_level + 1 {
                next += 1;
            }
            let normalised: Vec<usize> = slice[child..next]
                .iter()
                .map(|&l| l - root_level - 1)
                .collect();
            if run_slice.as_deref() == Some(&normalised) {
                run_len += 1;
            } else {
                if let Some(prev) = run_slice.take() {
                    let run_gf = self.mset(&prev, run_len);
                    result = self.mul(&result, &run_gf);
                }
                run_slice = Some(normalised);
                run_len = 1;
            }
            child = next;
        }
        if let Some(prev) = run_slice.take() {
            let run_gf = self.mset(&prev, run_len);
            result = self.mul(&result, &run_gf);
        }
        result
    }

    /// Number of canonical colourings of one forest shape (super-tree level
    /// sequence, virtual root at level 0 carrying no colour): the
    /// full-budget coefficient of the root-run product.
    fn forest_colorings(&mut self, levels: &[usize]) -> u128 {
        let gf = self.children_product(levels);
        let full: usize = self
            .sizes
            .iter()
            .zip(&self.strides)
            .map(|(&s, &stride)| s * stride)
            .sum();
        gf[full]
    }
}

/// Per-node hooks of [`walk_canonical_colorings`]: lazy searches carry
/// incremental bound state down the colour assignment and prune whole
/// colour subtrees without ever materialising a representative.
pub trait ColoringVisitor {
    /// Real position `pos` (preorder, 0-based) receives class `class`; its
    /// shape parent is `parent` (a smaller real position, `None` for
    /// roots).  Only *canonical* prefixes are offered — the sortedness
    /// constraints among identical siblings are checked first.  Return
    /// `false` to skip every colouring extending this prefix; the walker
    /// then tries the next class without calling
    /// [`ColoringVisitor::ascend`], so a refusing implementation must leave
    /// its own state unchanged.
    fn descend(&mut self, pos: usize, parent: Option<usize>, class: usize) -> bool;
    /// Undoes an accepted [`ColoringVisitor::descend`].
    fn ascend(&mut self, pos: usize, class: usize);
    /// A complete canonical colouring (`colors[p]` = class of real position
    /// `p`, preorder) with its coloured automorphism count.  Return `false`
    /// to abort the walk entirely (propagated out as `false`, without
    /// unwinding `ascend` hooks).
    fn complete(&mut self, colors: &[usize], aut: u128) -> bool;
}

/// Walks the canonical colourings of one shape (super-tree `levels`) in the
/// exact order [`classed_forest_representatives`] materialises them:
/// assignments of the class multiset to the real positions such that within
/// every run of identical sibling subtrees the coloured subtree encodings
/// are non-increasing.  Returns `false` iff the visitor aborted.
pub fn walk_canonical_colorings(
    levels: &[usize],
    classes: &WeightClasses,
    visitor: &mut impl ColoringVisitor,
) -> bool {
    if classes.class_count() == 1 {
        return walk_uniform_coloring(levels, visitor);
    }
    let len = levels.len();
    // Subtree span ends: end[i] = first j > i with levels[j] <= levels[i].
    let mut end = vec![len; len];
    let mut open: Vec<usize> = Vec::new();
    for (i, &level) in levels.iter().enumerate() {
        while let Some(&top) = open.last() {
            if levels[top] >= level {
                end[top] = i;
                open.pop();
            } else {
                break;
            }
        }
        open.push(i);
    }
    // Sortedness checks, attached to the position that completes the later
    // subtree of the pair: within every run of identical sibling shapes,
    // member `m` must carry a colour sequence `<=` member `m-1`'s.
    let mut checks_at: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); len];
    for i in 0..len {
        let mut child = i + 1;
        let mut prev: Option<usize> = None;
        while child < end[i] {
            debug_assert_eq!(levels[child], levels[i] + 1);
            let next = end[child];
            if let Some(p) = prev {
                if end[p] - p == next - child && levels[p..end[p]] == levels[child..next] {
                    checks_at[next - 1].push((p, child, next - child));
                }
            }
            prev = Some(child);
            child = next;
        }
    }
    // Preorder parent (as a *real* position) of every super-tree position.
    let mut parent_of: Vec<Option<usize>> = vec![None; len];
    let mut last_at_level = vec![usize::MAX; len + 2];
    last_at_level[0] = 0;
    for i in 1..len {
        let level = levels[i];
        if level >= 2 {
            parent_of[i] = Some(last_at_level[level - 1] - 1);
        }
        last_at_level[level] = i;
    }
    // Depth-first colour assignment over real positions 1..=n, with the
    // remaining per-class budget; a completed run member is compared with
    // its predecessor the moment its last position is coloured.
    let class_count = classes.class_count();
    let mut remaining: Vec<usize> = (0..class_count).map(|c| classes.class_size(c)).collect();
    let mut colors = vec![usize::MAX; len];
    #[allow(clippy::too_many_arguments)]
    fn walk(
        pos: usize,
        len: usize,
        levels: &[usize],
        checks_at: &[Vec<(usize, usize, usize)>],
        parent_of: &[Option<usize>],
        remaining: &mut [usize],
        colors: &mut [usize],
        visitor: &mut impl ColoringVisitor,
    ) -> bool {
        if pos == len {
            let aut = colored_subtree_automorphisms(levels, colors, 0, len);
            return visitor.complete(&colors[1..], aut);
        }
        for c in 0..remaining.len() {
            if remaining[c] == 0 {
                continue;
            }
            colors[pos] = c;
            remaining[c] -= 1;
            let sorted = checks_at[pos]
                .iter()
                .all(|&(p, s, l)| colors[p..p + l] >= colors[s..s + l]);
            if sorted && visitor.descend(pos - 1, parent_of[pos], c) {
                if !walk(
                    pos + 1,
                    len,
                    levels,
                    checks_at,
                    parent_of,
                    remaining,
                    colors,
                    visitor,
                ) {
                    return false;
                }
                visitor.ascend(pos - 1, c);
            }
            remaining[c] += 1;
            colors[pos] = usize::MAX;
        }
        true
    }
    walk(
        1,
        len,
        levels,
        &checks_at,
        &parent_of,
        &mut remaining,
        &mut colors,
        visitor,
    )
}

/// Single-class specialisation of [`walk_canonical_colorings`]: a uniform
/// partition has exactly one canonical colouring per shape, so the span
/// ends, sibling sortedness checks and the recursive class assignment all
/// degenerate — the walk is one linear preorder pass over the level
/// sequence, with parents read off the last-at-level rule the decoder uses.
/// Visitor hooks fire in exactly the order (and with exactly the arguments,
/// automorphism count included) the generic walker produces for a
/// single-class partition, so a visitor cannot observe which walker ran; a
/// refused prefix ends the shape outright, there being no alternative class
/// to try.
fn walk_uniform_coloring(levels: &[usize], visitor: &mut impl ColoringVisitor) -> bool {
    let len = levels.len();
    let mut last_at_level = vec![usize::MAX; len + 2];
    last_at_level[0] = 0;
    for (pos, &level) in levels.iter().enumerate().skip(1) {
        let parent = (level >= 2).then(|| last_at_level[level - 1] - 1);
        if !visitor.descend(pos - 1, parent, 0) {
            for p in (1..pos).rev() {
                visitor.ascend(p - 1, 0);
            }
            return true;
        }
        last_at_level[level] = pos;
    }
    let mut colors = vec![0usize; len];
    colors[0] = usize::MAX; // the virtual root carries no colour
    let aut = colored_subtree_automorphisms(levels, &colors, 0, len);
    if !visitor.complete(&colors[1..], aut) {
        return false;
    }
    for p in (1..len).rev() {
        visitor.ascend(p - 1, 0);
    }
    true
}

/// Emit-only adapter over [`walk_canonical_colorings`]: every canonical
/// prefix is accepted, complete colourings go to the closure.
struct EmitAll<F>(F);

impl<F: FnMut(&[usize], u128) -> bool> ColoringVisitor for EmitAll<F> {
    fn descend(&mut self, _pos: usize, _parent: Option<usize>, _class: usize) -> bool {
        true
    }
    fn ascend(&mut self, _pos: usize, _class: usize) {}
    fn complete(&mut self, colors: &[usize], aut: u128) -> bool {
        (self.0)(colors, aut)
    }
}

/// Enumerates the canonical colourings of one shape (super-tree `levels`):
/// `emit(colors, aut)` receives the colour of each *real* position
/// (preorder) and the coloured automorphism count; returning `false` aborts
/// the enumeration (propagated as `false`).
fn enumerate_canonical_colorings(
    levels: &[usize],
    classes: &WeightClasses,
    emit: &mut impl FnMut(&[usize], u128) -> bool,
) -> bool {
    walk_canonical_colorings(levels, classes, &mut EmitAll(emit))
}

/// `|Aut|` of the **coloured** subtree spanning `levels[start..end)`: as
/// [`subtree_automorphisms`], but a run only accumulates its factorial when
/// the sibling subtrees agree on shape *and* colours.
fn colored_subtree_automorphisms(
    levels: &[usize],
    colors: &[usize],
    start: usize,
    end: usize,
) -> u128 {
    let child_level = levels[start] + 1;
    let mut aut = 1u128;
    let mut child = start + 1;
    let mut run_slice: Option<(usize, usize)> = None;
    let mut run_len = 0u128;
    while child < end {
        debug_assert!(levels[child] == child_level);
        let mut next = child + 1;
        while next < end && levels[next] > child_level {
            next += 1;
        }
        aut = aut.saturating_mul(colored_subtree_automorphisms(levels, colors, child, next));
        let same = run_slice
            .map(|(b, e)| {
                levels[b..e] == levels[child..next] && colors[b..e] == colors[child..next]
            })
            .unwrap_or(false);
        if same {
            run_len += 1;
        } else {
            aut = aut.saturating_mul(factorial_u128(run_len));
            run_slice = Some((child, next));
            run_len = 1;
        }
        child = next;
    }
    aut.saturating_mul(factorial_u128(run_len))
}

/// Orbit size of the forest described by a canonical super-tree level
/// sequence: the number of distinct labelled forests isomorphic to it,
/// `n! / |Aut|` (saturating at `u128::MAX` far beyond any enumerable size).
fn forest_orbit_size(levels: &[usize]) -> u128 {
    let n = levels.len() - 1;
    factorial(n) / subtree_automorphisms(levels, 0, levels.len())
}

/// `|Aut|` of the subtree spanning `levels[start..end)` (rooted at `start`):
/// the product of the children's automorphism counts times, per run of
/// identical child subtree sequences, the factorial of the run length.
/// Canonical sequences keep identical siblings adjacent, so runs suffice.
fn subtree_automorphisms(levels: &[usize], start: usize, end: usize) -> u128 {
    let child_level = levels[start] + 1;
    let mut aut = 1u128;
    let mut child = start + 1;
    let mut run_slice: Option<(usize, usize)> = None;
    let mut run_len = 0u128;
    while child < end {
        debug_assert!(levels[child] == child_level);
        let mut next = child + 1;
        while next < end && levels[next] > child_level {
            next += 1;
        }
        aut = aut.saturating_mul(subtree_automorphisms(levels, child, next));
        let same = run_slice
            .map(|(b, e)| levels[b..e] == levels[child..next])
            .unwrap_or(false);
        if same {
            run_len += 1;
        } else {
            aut = aut.saturating_mul(factorial_u128(run_len));
            run_slice = Some((child, next));
            run_len = 1;
        }
        child = next;
    }
    aut.saturating_mul(factorial_u128(run_len))
}

/// Order-sensitive FNV-1a fold over 64-bit words — the one digest routine
/// shared by [`WeightClasses::signature`] and
/// [`crate::fingerprint::AppFingerprint::digest`].
pub(crate) fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for word in words {
        hash ^= word;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn factorial(n: usize) -> u128 {
    factorial_u128(n as u128)
}

fn factorial_u128(n: u128) -> u128 {
    let mut f = 1u128;
    for k in 2..=n {
        f = f.saturating_mul(k);
    }
    f
}

/// Number of forest-isomorphism classes on `n` nodes — the size of the
/// canonical space [`CanonicalForests`] streams (A000081 shifted by one:
/// rooted forests on `n` nodes ↔ rooted trees on `n + 1` nodes).
/// Saturates at `u128::MAX` once the exact count overflows.
pub fn forest_classes(n: usize) -> u128 {
    rooted_tree_classes(n + 1)
}

/// Number of *labelled* rooted forests on `n` nodes, `(n + 1)^(n - 1)`
/// (Cayley's formula via the super-root bijection) — the raw space the
/// canonical enumeration collapses.  Saturating.
pub fn labelled_forests(n: usize) -> u128 {
    if n == 0 {
        return 1;
    }
    let mut size = 1u128;
    for _ in 0..(n - 1) {
        size = size.saturating_mul((n + 1) as u128);
    }
    size
}

/// Number of unlabelled rooted trees on `n` nodes (OEIS A000081), by the
/// Euler-transform recurrence
/// `(n - 1) · t(n) = Σ_{k=1}^{n-1} (Σ_{d | k} d · t(d)) · t(n - k)`.
/// Saturates at `u128::MAX` on overflow.
pub fn rooted_tree_classes(n: usize) -> u128 {
    if n == 0 {
        return 1; // the empty tree
    }
    let mut t = vec![0u128; n + 1];
    t[1] = 1;
    for m in 2..=n {
        let mut sum = 0u128;
        for k in 1..m {
            let s = t
                .iter()
                .enumerate()
                .take(k + 1)
                .skip(1)
                .filter(|&(d, _)| k % d == 0)
                .fold(0u128, |acc, (d, &td)| {
                    acc.saturating_add((d as u128).saturating_mul(td))
                });
            sum = sum.saturating_add(s.saturating_mul(t[m - k]));
        }
        if sum == u128::MAX {
            t[m] = u128::MAX;
        } else {
            t[m] = sum / (m as u128 - 1);
        }
    }
    t[n]
}

/// The canonical relabelling of a labelled forest: the parent vector of the
/// [`CanonicalForests`] representative of its isomorphism class.
///
/// Fails with [`CoreError::NotAForest`] when some node has several direct
/// predecessors or the graph is cyclic.
pub fn canonical_forest_form(graph: &ExecutionGraph) -> CoreResult<Vec<Option<ServiceId>>> {
    if !graph.is_forest() {
        return Err(CoreError::NotAForest);
    }
    graph.topological_order()?; // rejects cycles (a "forest" check alone keeps 2-cycles out already, but be explicit)
    let n = graph.n();
    // Canonical level sequence of every subtree, deepest-first at each node.
    fn subtree_sequence(graph: &ExecutionGraph, node: ServiceId) -> Vec<usize> {
        let mut children: Vec<Vec<usize>> = graph
            .succs(node)
            .iter()
            .map(|&c| subtree_sequence(graph, c))
            .collect();
        children.sort_by(|a, b| b.cmp(a)); // non-increasing lex order
        let mut seq = vec![0usize];
        for child in children {
            seq.extend(child.into_iter().map(|l| l + 1));
        }
        seq
    }
    let mut roots: Vec<Vec<usize>> = graph
        .entry_nodes()
        .into_iter()
        .map(|r| subtree_sequence(graph, r))
        .collect();
    roots.sort_by(|a, b| b.cmp(a));
    let mut levels = vec![0usize];
    for root in roots {
        levels.extend(root.into_iter().map(|l| l + 1));
    }
    debug_assert_eq!(levels.len(), n + 1);
    // Level sequence → parent vector (as in `CanonicalForests`).
    let mut parents = vec![None; n];
    let mut last_at_level = vec![usize::MAX; n + 2];
    last_at_level[0] = 0;
    for i in 1..levels.len() {
        let level = levels[i];
        parents[i - 1] = if level == 1 {
            None
        } else {
            Some(last_at_level[level - 1] - 1)
        };
        last_at_level[level] = i;
    }
    Ok(parents)
}

/// The class-aware canonical form of a labelled forest: the
/// [`classed_forest_representatives`] representative of its
/// **class-preserving** relabelling orbit (same shape canonicalisation as
/// [`canonical_forest_form`], with the weight classes carried along and used
/// as the tie-break among identically-shaped sibling subtrees).
///
/// Every member of an orbit maps to the *same* representative, so evaluating
/// the representative's [`ClassedRepresentative::member_graph`] instead of
/// the original graph makes label-trajectory-dependent evaluations (the
/// OUTORDER backtracker) a pure function of the orbit — the key property
/// behind the canonical-form memoisation in `fsw_sched::engine`.
///
/// Fails with [`CoreError::NotAForest`] when some node has several direct
/// predecessors or the graph is cyclic.
pub fn canonical_classed_form(
    classes: &WeightClasses,
    graph: &ExecutionGraph,
) -> CoreResult<ClassedRepresentative> {
    if !graph.is_forest() {
        return Err(CoreError::NotAForest);
    }
    graph.topological_order()?; // rejects cycles
    let n = graph.n();
    debug_assert_eq!(classes.n(), n);
    // Coloured canonical encoding of every subtree: children sorted by
    // (level sequence, colour sequence) in non-increasing lexicographic
    // order — shape dominates, colours break shape ties, exactly the order
    // `classed_forest_representatives` emits.
    #[allow(clippy::type_complexity)]
    fn subtree_encoding(
        graph: &ExecutionGraph,
        classes: &WeightClasses,
        node: ServiceId,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut children: Vec<(Vec<usize>, Vec<usize>)> = graph
            .succs(node)
            .iter()
            .map(|&c| subtree_encoding(graph, classes, c))
            .collect();
        children.sort_by(|a, b| b.cmp(a));
        let mut levels = vec![0usize];
        let mut colors = vec![classes.class_of(node)];
        for (child_levels, child_colors) in children {
            levels.extend(child_levels.into_iter().map(|l| l + 1));
            colors.extend(child_colors);
        }
        (levels, colors)
    }
    let mut roots: Vec<(Vec<usize>, Vec<usize>)> = graph
        .entry_nodes()
        .into_iter()
        .map(|r| subtree_encoding(graph, classes, r))
        .collect();
    roots.sort_by(|a, b| b.cmp(a));
    let mut levels = vec![0usize];
    let mut colors = vec![usize::MAX]; // virtual super-root carries no class
    for (root_levels, root_colors) in roots {
        levels.extend(root_levels.into_iter().map(|l| l + 1));
        colors.extend(root_colors);
    }
    debug_assert_eq!(levels.len(), n + 1);
    // Level sequence → parent vector (as in `CanonicalForests`).
    let mut parents = vec![None; n];
    let mut last_at_level = vec![usize::MAX; n + 2];
    last_at_level[0] = 0;
    for i in 1..levels.len() {
        let level = levels[i];
        parents[i - 1] = if level == 1 {
            None
        } else {
            Some(last_at_level[level - 1] - 1)
        };
        last_at_level[level] = i;
    }
    let aut = colored_subtree_automorphisms(&levels, &colors, 0, levels.len());
    Ok(ClassedRepresentative {
        parents,
        classes: colors[1..].to_vec(),
        orbit: classes.group_order() / aut,
    })
}

/// The deterministic canonical *member* of a labelled forest's
/// class-preserving orbit: [`canonical_classed_form`] mapped back onto the
/// concrete services ([`ClassedRepresentative::member_graph`]).  Evaluating
/// this member instead of the original graph makes any evaluation a pure
/// function of the orbit.
pub fn canonical_classed_member(
    classes: &WeightClasses,
    graph: &ExecutionGraph,
) -> CoreResult<ExecutionGraph> {
    let rep = canonical_classed_form(classes, graph)?;
    rep.member_graph(classes).ok_or(CoreError::NotAForest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_classes_partition_by_bits() {
        let app = Application::independent(&[(1.0, 0.5), (2.0, 0.5), (1.0, 0.5), (1.0, 0.25)]);
        let classes = WeightClasses::of(&app);
        assert_eq!(classes.n(), 4);
        assert_eq!(classes.class_count(), 3);
        assert_eq!(classes.class_of(0), classes.class_of(2));
        assert_ne!(classes.class_of(0), classes.class_of(1));
        assert_eq!(classes.class_size(classes.class_of(0)), 2);
        assert!(!classes.is_uniform());
        let uniform = Application::independent(&[(3.0, 0.7); 5]);
        assert!(WeightClasses::of(&uniform).is_uniform());
    }

    #[test]
    fn class_counts_match_a000081() {
        // A000081: 1, 1, 1, 2, 4, 9, 20, 48, 115, 286, 719, 1842, 4766 …
        let expected = [1u128, 1, 1, 2, 4, 9, 20, 48, 115, 286, 719, 1842, 4766];
        for (n, &e) in expected.iter().enumerate() {
            assert_eq!(rooted_tree_classes(n), e, "A000081({n})");
        }
        assert_eq!(forest_classes(8), 286);
        assert_eq!(forest_classes(10), 1842);
        assert_eq!(forest_classes(11), 4766);
    }

    #[test]
    fn generator_streams_each_class_once_and_orbits_cover_the_labelled_space() {
        for n in 1..=8 {
            let mut stream = CanonicalForests::new(n);
            let mut classes = 0u128;
            let mut labelled = 0u128;
            let mut seen = std::collections::HashSet::new();
            while let Some(class) = stream.next() {
                assert_eq!(class.parents.len(), n);
                // Preorder labelling: parents always precede their children.
                for (k, &p) in class.parents.iter().enumerate() {
                    if let Some(p) = p {
                        assert!(p < k, "n={n}: parent {p} !< child {k}");
                    }
                }
                assert!(
                    seen.insert(class.parents.to_vec()),
                    "n={n}: duplicate representative {:?}",
                    class.parents
                );
                classes += 1;
                labelled += class.orbit;
            }
            assert_eq!(classes, forest_classes(n), "n={n}: class count");
            assert_eq!(labelled, labelled_forests(n), "n={n}: Σ orbit sizes");
        }
    }

    #[test]
    fn changed_from_is_a_faithful_rewind_hint() {
        let mut stream = CanonicalForests::new(6);
        let mut previous: Option<Vec<Option<ServiceId>>> = None;
        while let Some(class) = stream.next() {
            if let Some(prev) = &previous {
                for (k, &p) in class.parents.iter().enumerate().take(class.changed_from) {
                    assert_eq!(prev[k], p, "prefix before changed_from");
                }
            } else {
                assert_eq!(class.changed_from, 0);
            }
            previous = Some(class.parents.to_vec());
        }
    }

    #[test]
    fn canonical_form_maps_every_labelled_forest_to_a_streamed_representative() {
        // Enumerate every labelled forest on n nodes (all parent functions
        // that yield a DAG), canonicalise, and tally per representative: the
        // tallies must equal the generator's orbit sizes exactly.
        let n = 5usize;
        let mut tally: std::collections::HashMap<Vec<Option<ServiceId>>, u128> =
            std::collections::HashMap::new();
        let mut parents = vec![None::<ServiceId>; n];
        fn walk(
            k: usize,
            n: usize,
            parents: &mut Vec<Option<ServiceId>>,
            tally: &mut std::collections::HashMap<Vec<Option<ServiceId>>, u128>,
        ) {
            if k == n {
                if let Ok(graph) = ExecutionGraph::from_parents(parents) {
                    let canon = canonical_forest_form(&graph).expect("forest");
                    *tally.entry(canon).or_insert(0) += 1;
                }
                return;
            }
            for p in std::iter::once(None).chain((0..n).filter(|&p| p != k).map(Some)) {
                parents[k] = p;
                walk(k + 1, n, parents, tally);
                parents[k] = None;
            }
        }
        walk(0, n, &mut parents, &mut tally);
        let mut stream = CanonicalForests::new(n);
        let mut streamed = 0usize;
        while let Some(class) = stream.next() {
            let canon = class.parents.to_vec();
            assert_eq!(
                tally.get(&canon).copied(),
                Some(class.orbit),
                "orbit of {canon:?}"
            );
            streamed += 1;
        }
        assert_eq!(streamed, tally.len(), "every orbit has one representative");
    }

    /// `(cost, selectivity)` specs with `sizes[c]` copies of class `c`.
    fn classed_app(sizes: &[usize]) -> Application {
        let mut specs = Vec::new();
        for (c, &size) in sizes.iter().enumerate() {
            for _ in 0..size {
                specs.push((1.0 + c as f64, 0.5 + 0.1 * c as f64));
            }
        }
        Application::independent(&specs)
    }

    #[test]
    fn classed_generator_degenerates_to_the_uniform_one_on_a_single_class() {
        for n in 1..=7 {
            let classes = WeightClasses::of(&classed_app(&[n]));
            let reps = classed_forest_representatives(&classes, usize::MAX).unwrap();
            let mut stream = CanonicalForests::new(n);
            let mut i = 0;
            while let Some(class) = stream.next() {
                assert_eq!(reps[i].parents, class.parents, "n={n} rep {i}: shape");
                assert_eq!(reps[i].orbit, class.orbit, "n={n} rep {i}: orbit");
                assert!(reps[i].classes.iter().all(|&c| c == 0));
                i += 1;
            }
            assert_eq!(i, reps.len(), "n={n}: same class count");
        }
    }

    #[test]
    fn level_codes_round_trip_through_canonical_classed_form() {
        // Canonicalise labelled forests of a 2+2+2 partition, pack the
        // representative as a level-sequence code, and decode: parents and
        // classes must survive, and the decoded member must re-canonicalise
        // to the same representative (idempotence through the codec).
        let app = classed_app(&[2, 2, 2]);
        let classes = WeightClasses::of(&app);
        let n = classes.n();
        let cases: [&[Option<ServiceId>]; 4] = [
            &[None, Some(0), Some(0), Some(2), None, Some(4)],
            &[None, None, None, Some(0), Some(1), Some(2)],
            &[Some(1), None, Some(1), Some(5), None, Some(4)],
            &[None, Some(0), Some(1), Some(2), Some(3), Some(4)],
        ];
        for parents in cases {
            let graph = ExecutionGraph::from_parents(parents).unwrap();
            let rep = canonical_classed_form(&classes, &graph).unwrap();
            let code = pack_level_code(&rep.parents, &rep.classes);
            assert_eq!(code.len(), 2 * n);
            let (decoded_parents, decoded_classes) = unpack_level_code(&code);
            assert_eq!(decoded_parents, rep.parents, "{parents:?}: parents");
            assert_eq!(decoded_classes, rep.classes, "{parents:?}: classes");
            let member = ClassedRepresentative {
                parents: decoded_parents,
                classes: decoded_classes,
                orbit: rep.orbit,
            }
            .member_graph(&classes)
            .unwrap();
            let again = canonical_classed_form(&classes, &member).unwrap();
            assert_eq!(again, rep, "{parents:?}: codec breaks idempotence");
        }
    }

    #[test]
    fn bound_ordered_shape_plan_covers_every_shape_and_counts_orbits() {
        for sizes in [vec![5usize], vec![3, 2], vec![2, 2, 2]] {
            let n: usize = sizes.iter().sum();
            let classes = WeightClasses::of(&classed_app(&sizes));
            let ShapeScan::Planned {
                shapes,
                orbits,
                pruned,
            } = bound_ordered_shape_plan(&classes, None, f64::INFINITY, None)
            else {
                panic!("{sizes:?}: no deadline was set");
            };
            assert_eq!(pruned, 0, "{sizes:?}: an infinite cutoff keeps all");
            assert_eq!(shapes.len() as u128, forest_classes(n), "{sizes:?}: shapes");
            assert_eq!(
                orbits,
                classed_class_count(&classes, u128::MAX),
                "{sizes:?}: orbit total matches the count pass"
            );
            // Ordinals are a permutation, and every decoded shape matches the
            // Beyer–Hedetniemi stream at its ordinal.
            let mut streamed: Vec<Vec<usize>> = Vec::new();
            let mut stream = CanonicalForests::new(n);
            while stream.next().is_some() {
                streamed.push(stream.levels.clone());
            }
            let mut seen = vec![false; shapes.len()];
            for shape in &shapes {
                assert!(!seen[shape.ordinal as usize], "{sizes:?}: dup ordinal");
                seen[shape.ordinal as usize] = true;
                assert_eq!(
                    shape.decode_levels(),
                    streamed[shape.ordinal as usize],
                    "{sizes:?}: packed levels at ordinal {}",
                    shape.ordinal
                );
            }
            // With no bounder, the sort degenerates to canonical order.
            assert!(shapes.windows(2).all(|w| w[0].ordinal < w[1].ordinal));
        }
    }

    /// A finite cutoff drops exactly the shapes whose bound strictly
    /// exceeds it, keeps the orbit total describing the full space, and
    /// leaves the ordinals of the survivors untouched (they index the
    /// canonical stream, not the emitted plan).
    #[test]
    fn shape_plan_cutoff_prunes_at_emission_without_renumbering() {
        let app = classed_app(&[3, 2]);
        let classes = WeightClasses::of(&app);
        let bounder = ShapeBounder::new(&app, ShapeObjective::Period(CommModel::InOrder));
        let ShapeScan::Planned {
            shapes: all,
            orbits: all_orbits,
            pruned: none_pruned,
        } = bound_ordered_shape_plan(&classes, Some(&bounder), f64::INFINITY, None)
        else {
            panic!("no deadline was set");
        };
        assert_eq!(none_pruned, 0);
        let cutoff = all[all.len() / 2].bound;
        let ShapeScan::Planned {
            shapes,
            orbits,
            pruned,
        } = bound_ordered_shape_plan(&classes, Some(&bounder), cutoff, None)
        else {
            panic!("no deadline was set");
        };
        assert_eq!(orbits, all_orbits, "orbit totals describe the space");
        assert_eq!(
            shapes.len() as u64 + pruned,
            all.len() as u64,
            "survivors and casualties tile the shape space"
        );
        assert!(pruned > 0, "the midpoint cutoff must cut something");
        let survivors: Vec<(u64, u64)> = shapes
            .iter()
            .map(|s| (s.ordinal, s.bound.to_bits()))
            .collect();
        let expected: Vec<(u64, u64)> = all
            .iter()
            .filter(|s| s.bound <= cutoff)
            .map(|s| (s.ordinal, s.bound.to_bits()))
            .collect();
        assert_eq!(survivors, expected, "cutoff = filter of the full plan");
    }

    #[test]
    fn shape_bounds_lower_bound_every_representative_of_the_shape() {
        let app = classed_app(&[3, 2]);
        let classes = WeightClasses::of(&app);
        let reps = classed_forest_representatives(&classes, usize::MAX).unwrap();
        for model in [CommModel::Overlap, CommModel::InOrder, CommModel::OutOrder] {
            let bounder = ShapeBounder::new(&app, ShapeObjective::Period(model));
            let ShapeScan::Planned { shapes, .. } =
                bound_ordered_shape_plan(&classes, Some(&bounder), f64::INFINITY, None)
            else {
                panic!("no deadline was set");
            };
            assert!(
                shapes.windows(2).all(|w| w[0].bound <= w[1].bound),
                "{model}: shapes are bound-sorted"
            );
            for rep in &reps {
                let code = pack_level_code(&rep.parents, &rep.classes);
                let shape = shapes
                    .iter()
                    .find(|s| s.levels[1..] == code[..classes.n()])
                    .expect("every representative's shape is planned");
                let graph = rep.member_graph(&classes).unwrap();
                let value = crate::metrics::PlanMetrics::compute(&app, &graph)
                    .unwrap()
                    .period_lower_bound(model);
                assert!(
                    shape.bound <= value * (1.0 + 1e-9),
                    "{model}: shape bound {} exceeds representative value {value}",
                    shape.bound
                );
            }
        }
        // Latency: the critical-path floor may exceed the partial-metrics
        // latency bound of a full assignment (that bound omits sibling
        // serialisation offsets), so admissibility is asserted against the
        // exact optimal one-port tree latency — Algorithm 1's recurrence,
        // implemented locally since fsw_core cannot see the scheduler.
        fn optimal_tree_latency(app: &Application, graph: &ExecutionGraph) -> f64 {
            fn sub(app: &Application, graph: &ExecutionGraph, node: usize) -> f64 {
                let sigma = app.selectivity(node);
                let mut subs: Vec<f64> = graph
                    .succs(node)
                    .iter()
                    .map(|&c| sub(app, graph, c))
                    .collect();
                if subs.is_empty() {
                    return 1.0 + app.cost(node) + sigma;
                }
                subs.sort_by(|a, b| b.total_cmp(a));
                let tail = subs
                    .iter()
                    .enumerate()
                    .map(|(p, l)| p as f64 + l)
                    .fold(0.0f64, f64::max);
                1.0 + app.cost(node) + sigma * tail
            }
            let mut best = 0.0f64;
            for root in graph.entry_nodes() {
                best = best.max(sub(app, graph, root));
            }
            best
        }
        let bounder = ShapeBounder::new(&app, ShapeObjective::Latency);
        let ShapeScan::Planned { shapes, .. } =
            bound_ordered_shape_plan(&classes, Some(&bounder), f64::INFINITY, None)
        else {
            panic!("no deadline was set");
        };
        for rep in &reps {
            let code = pack_level_code(&rep.parents, &rep.classes);
            let shape = shapes
                .iter()
                .find(|s| s.levels[1..] == code[..classes.n()])
                .expect("planned shape");
            let graph = rep.member_graph(&classes).unwrap();
            let value = optimal_tree_latency(&app, &graph);
            assert!(
                shape.bound <= value * (1.0 + 1e-9),
                "latency shape bound {} exceeds optimal latency {value}",
                shape.bound
            );
        }
    }

    #[test]
    fn classed_orbits_tile_the_labelled_space_for_every_partition() {
        for sizes in [
            vec![2usize, 3],
            vec![1, 1, 3],
            vec![3, 3],
            vec![1, 2, 2, 1],
            vec![4, 2, 1],
        ] {
            let n: usize = sizes.iter().sum();
            let classes = WeightClasses::of(&classed_app(&sizes));
            let reps = classed_forest_representatives(&classes, usize::MAX).unwrap();
            let covered: u128 = reps.iter().map(|r| r.orbit).sum();
            assert_eq!(covered, labelled_forests(n), "{sizes:?}: Σ orbit sizes");
            // Representatives are pairwise distinct (shape, colouring) pairs.
            let mut seen = std::collections::HashSet::new();
            for rep in &reps {
                assert!(
                    seen.insert((rep.parents.clone(), rep.classes.clone())),
                    "{sizes:?}: duplicate representative"
                );
                // Colour multiset matches the partition.
                let mut counts = vec![0usize; classes.class_count()];
                for &c in &rep.classes {
                    counts[c] += 1;
                }
                assert_eq!(counts, sizes, "{sizes:?}: colour multiset");
            }
        }
    }

    #[test]
    fn classed_form_maps_every_labelled_forest_to_a_generated_representative() {
        // Enumerate every labelled forest on 5 nodes under a 2+3 partition,
        // canonicalise with the class-aware form, and tally per
        // representative: tallies must equal the generator's orbit sizes.
        let classes = WeightClasses::of(&classed_app(&[2, 3]));
        let n = 5usize;
        let mut tally: std::collections::HashMap<(Vec<Option<ServiceId>>, Vec<usize>), u128> =
            std::collections::HashMap::new();
        let mut parents = vec![None::<ServiceId>; n];
        #[allow(clippy::type_complexity)]
        fn walk(
            k: usize,
            n: usize,
            classes: &WeightClasses,
            parents: &mut Vec<Option<ServiceId>>,
            tally: &mut std::collections::HashMap<(Vec<Option<ServiceId>>, Vec<usize>), u128>,
        ) {
            if k == n {
                if let Ok(graph) = ExecutionGraph::from_parents(parents) {
                    let rep = canonical_classed_form(classes, &graph).expect("forest");
                    *tally.entry((rep.parents, rep.classes)).or_insert(0) += 1;
                }
                return;
            }
            for p in std::iter::once(None).chain((0..n).filter(|&p| p != k).map(Some)) {
                parents[k] = p;
                walk(k + 1, n, classes, parents, tally);
                parents[k] = None;
            }
        }
        walk(0, n, &classes, &mut parents, &mut tally);
        let reps = classed_forest_representatives(&classes, usize::MAX).unwrap();
        assert_eq!(reps.len(), tally.len(), "one representative per orbit");
        for rep in &reps {
            assert_eq!(
                tally
                    .get(&(rep.parents.clone(), rep.classes.clone()))
                    .copied(),
                Some(rep.orbit),
                "orbit of {:?}/{:?}",
                rep.parents,
                rep.classes
            );
        }
    }

    #[test]
    fn classed_form_is_invariant_under_class_preserving_relabellings_only() {
        // Classes {0, 1} and {2, 3}: swapping within a class is invisible,
        // swapping across classes is not.
        let app = Application::independent(&[(1.0, 0.5), (1.0, 0.5), (2.0, 0.8), (2.0, 0.8)]);
        let classes = WeightClasses::of(&app);
        let chain = ExecutionGraph::from_edges(4, &[(0, 2), (2, 1)]).unwrap();
        let class_swapped = ExecutionGraph::from_edges(4, &[(1, 3), (3, 0)]).unwrap();
        let cross_swapped = ExecutionGraph::from_edges(4, &[(2, 0), (0, 3)]).unwrap();
        let c1 = canonical_classed_form(&classes, &chain).unwrap();
        let c2 = canonical_classed_form(&classes, &class_swapped).unwrap();
        let c3 = canonical_classed_form(&classes, &cross_swapped).unwrap();
        assert_eq!(c1, c2, "class-preserving relabelling");
        assert_ne!(
            (&c1.parents, &c1.classes),
            (&c3.parents, &c3.classes),
            "cross-class relabelling changes the coloured orbit"
        );
        // Idempotent: the canonical member canonicalises to itself.
        let member = c1.member_graph(&classes).unwrap();
        let again = canonical_classed_form(&classes, &member).unwrap();
        assert_eq!(c1, again);
        // The member graph realises the representative's coloured shape.
        let member_value = canonical_classed_member(&classes, &chain).unwrap();
        assert_eq!(member, member_value);
        // Non-forests are rejected.
        let join = ExecutionGraph::from_edges(4, &[(0, 2), (1, 2)]).unwrap();
        assert!(matches!(
            canonical_classed_form(&classes, &join),
            Err(CoreError::NotAForest)
        ));
    }

    #[test]
    fn service_assignment_is_class_consistent_and_deterministic() {
        let app = Application::independent(&[(1.0, 0.5), (2.0, 0.8), (1.0, 0.5), (2.0, 0.8)]);
        let classes = WeightClasses::of(&app);
        // Positions coloured 1, 0, 0, 1 receive the smallest unused ids of
        // their classes in order: 1, 0, 2, 3.
        let assignment = classes.service_assignment(&[1, 0, 0, 1]).unwrap();
        assert_eq!(assignment, vec![1, 0, 2, 3]);
        for (pos, &k) in assignment.iter().enumerate() {
            assert_eq!(classes.class_of(k), [1, 0, 0, 1][pos]);
        }
        // A colour multiset that does not match the partition is rejected.
        assert!(classes.service_assignment(&[0, 0, 0, 1]).is_none());
        assert!(classes.service_assignment(&[0, 1]).is_none());
    }

    #[test]
    fn count_only_pass_matches_the_enumerated_class_count() {
        for sizes in [
            vec![5usize],
            vec![2, 3],
            vec![1, 1, 3],
            vec![3, 3],
            vec![1, 2, 2, 1],
            vec![4, 2, 1],
            vec![2, 2, 2],
            vec![1, 1, 1, 1],
            vec![8],
            vec![4, 4],
        ] {
            let classes = WeightClasses::of(&classed_app(&sizes));
            let reps = classed_forest_representatives(&classes, usize::MAX).unwrap();
            assert_eq!(
                classed_class_count(&classes, u128::MAX),
                Some(reps.len() as u128),
                "{sizes:?}"
            );
        }
        // Uniform partitions degenerate to the A000081 shape count.
        for n in 1..=9 {
            let classes = WeightClasses::of(&classed_app(&[n]));
            assert_eq!(
                classed_class_count(&classes, u128::MAX),
                Some(forest_classes(n)),
                "uniform n={n}"
            );
        }
    }

    #[test]
    fn count_only_pass_respects_the_cap_and_deadline() {
        let classes = WeightClasses::of(&classed_app(&[2, 3]));
        let exact = classed_class_count(&classes, u128::MAX).unwrap();
        assert_eq!(classed_class_count(&classes, exact), Some(exact));
        assert_eq!(classed_class_count(&classes, exact - 1), None);
        assert_eq!(
            classed_class_count_within(&classes, exact - 1, None),
            ClassedCount::ExceedsCap
        );
        let expired = Some(std::time::Instant::now() - std::time::Duration::from_millis(1));
        assert_eq!(
            classed_class_count_within(&classes, u128::MAX, expired),
            ClassedCount::DeadlineExpired
        );
    }

    #[test]
    fn singleton_heavy_partitions_bypass_the_count_pass() {
        // One duplicated weight plus sixteen distinct singletons: the dense
        // exponent space (3 · 2^16) dwarfs COUNT_DENSE_LIMIT, so the count
        // pass must refuse instantly and generation must fall back to the
        // bounded materialise-until-cap behaviour instead of allocating
        // gigabyte-scale polynomials.
        let mut specs = vec![(1.0, 0.5), (1.0, 0.5)];
        for k in 0..16 {
            specs.push((2.0 + k as f64, 0.9));
        }
        let classes = WeightClasses::of(&Application::independent(&specs));
        let started = std::time::Instant::now();
        assert_eq!(
            classed_class_count_within(&classes, u128::MAX, None),
            ClassedCount::Intractable
        );
        assert!(classed_forest_representatives(&classes, 10_000).is_none());
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "wide partitions must not pay for the count pass"
        );
    }

    #[test]
    fn oversized_coloured_spaces_are_rejected_in_shape_time() {
        // A 3-class space at n = 10 holds far more than 100k coloured
        // classes; the count-only guard must reject the cap without
        // materialising representatives (this test is fast *because* the
        // pass is O(shapes) — the old behaviour allocated every
        // representative up to the cap first).
        let classes = WeightClasses::of(&classed_app(&[3, 3, 4]));
        let started = std::time::Instant::now();
        assert!(classed_forest_representatives(&classes, 100_000).is_none());
        assert!(classed_class_count(&classes, 100_000).is_none());
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "count-only cap check must not walk the coloured space"
        );
    }

    #[test]
    fn classed_representative_cap_aborts_generation() {
        let classes = WeightClasses::of(&classed_app(&[2, 3]));
        let all = classed_forest_representatives(&classes, usize::MAX).unwrap();
        assert!(all.len() > 4);
        assert!(classed_forest_representatives(&classes, 4).is_none());
        assert_eq!(
            classed_forest_representatives(&classes, all.len())
                .unwrap()
                .len(),
            all.len()
        );
    }

    #[test]
    fn weight_class_signatures_distinguish_partitions() {
        let a = WeightClasses::of(&classed_app(&[2, 3]));
        let b = WeightClasses::of(&classed_app(&[3, 2]));
        let c = WeightClasses::of(&classed_app(&[5]));
        assert_ne!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
        assert_eq!(
            a.signature(),
            WeightClasses::of(&classed_app(&[2, 3])).signature()
        );
        assert_eq!(a.sizes(), &[2, 3]);
        assert_eq!(a.class_vector(), &[0, 0, 1, 1, 1]);
        assert!(a.has_symmetry());
        assert!(!WeightClasses::of(&classed_app(&[1, 1, 1])).has_symmetry());
        assert_eq!(a.group_order(), 2 * 6);
    }

    #[test]
    fn canonical_form_is_isomorphism_invariant_and_idempotent() {
        let chain = ExecutionGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let relabelled = ExecutionGraph::from_edges(4, &[(3, 2), (2, 0)]).unwrap();
        let c1 = canonical_forest_form(&chain).unwrap();
        let c2 = canonical_forest_form(&relabelled).unwrap();
        assert_eq!(c1, c2);
        let again = canonical_forest_form(&ExecutionGraph::from_parents(&c1).unwrap()).unwrap();
        assert_eq!(c1, again);
        // Non-forests are rejected.
        let join = ExecutionGraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        assert!(matches!(
            canonical_forest_form(&join),
            Err(CoreError::NotAForest)
        ));
    }
}
