//! Weight-class symmetry and canonical forms of execution structures.
//!
//! Services that carry **bit-identical cost and selectivity** are
//! interchangeable: relabelling them maps any execution graph to an
//! equivalent one with the same volumes, bounds and (for label-independent
//! evaluations) the same objective value.  The exhaustive plan searches can
//! therefore enumerate one *canonical representative* per relabelling orbit
//! instead of the whole labelled space — for the fully uniform case this
//! collapses the `n^n` parent-function space of the forest enumeration to
//! the number of *unlabelled* rooted forests (A000081 shifted: 286 classes
//! at `n = 8` against 16.7M parent functions, 1 842 at `n = 10` against
//! 10^10).
//!
//! This module provides the building blocks of that reduction:
//!
//! * [`WeightClasses`] — the partition of services into weight classes
//!   (groups with identical `(cost, selectivity)` bit patterns);
//! * [`CanonicalForests`] — a streaming generator of canonical rooted
//!   forests on `n` nodes (one per isomorphism class, as parent vectors in
//!   preorder) via the Beyer–Hedetniemi level-sequence successor rule, with
//!   **orbit-size accounting**: each class reports how many labelled forests
//!   it stands for (`n! / |Aut|`), so reduced enumerations remain
//!   explainable and auditable against the raw space;
//! * [`canonical_forest_form`] — the canonical relabelling of an arbitrary
//!   labelled forest (the representative its orbit is reported under);
//! * [`forest_classes`] / [`labelled_forests`] — closed-form counts of both
//!   spaces (`Σ orbit sizes == labelled_forests(n)` is tested below).
//!
//! The canonical *tie-break* is part of the contract: representatives are
//! produced in decreasing lexicographic order of their level sequences
//! (path first, all-roots last), so "the first optimum in canonical order"
//! is a well-defined, deterministic winner — it is generally **not** the
//! same labelled graph as the first optimum of the raw `n^n` enumeration,
//! which is why the symmetry-reduced searches only engage when every member
//! of an orbit provably evaluates to the same value (see
//! `fsw_sched::engine`).

use crate::error::{CoreError, CoreResult};
use crate::graph::ExecutionGraph;
use crate::service::{Application, ServiceId};

/// The partition of an application's services into weight classes: two
/// services share a class iff their cost and selectivity are bit-identical.
///
/// Classes are numbered in order of first appearance (service 0's class is
/// class 0).
#[derive(Clone, Debug)]
pub struct WeightClasses {
    class_of: Vec<usize>,
    sizes: Vec<usize>,
}

impl WeightClasses {
    /// Computes the weight-class partition of `app`'s services.
    pub fn of(app: &Application) -> Self {
        let n = app.n();
        let mut keys: Vec<(u64, u64)> = Vec::new();
        let mut class_of = Vec::with_capacity(n);
        let mut sizes: Vec<usize> = Vec::new();
        for k in 0..n {
            let key = (app.cost(k).to_bits(), app.selectivity(k).to_bits());
            let class = match keys.iter().position(|&existing| existing == key) {
                Some(c) => c,
                None => {
                    keys.push(key);
                    sizes.push(0);
                    keys.len() - 1
                }
            };
            class_of.push(class);
            sizes[class] += 1;
        }
        WeightClasses { class_of, sizes }
    }

    /// Number of services partitioned.
    pub fn n(&self) -> usize {
        self.class_of.len()
    }

    /// Number of distinct weight classes.
    pub fn class_count(&self) -> usize {
        self.sizes.len()
    }

    /// The class index of service `k`.
    pub fn class_of(&self, k: ServiceId) -> usize {
        self.class_of[k]
    }

    /// Number of services in class `c`.
    pub fn class_size(&self, c: usize) -> usize {
        self.sizes[c]
    }

    /// `true` when every service carries the same weights (at most one
    /// class) — the regime in which full relabelling symmetry applies.
    pub fn is_uniform(&self) -> bool {
        self.sizes.len() <= 1
    }
}

/// One canonical rooted forest, borrowed from a [`CanonicalForests`] stream.
#[derive(Debug)]
pub struct ForestClass<'a> {
    /// Parent vector of the representative: node `k`'s unique direct
    /// predecessor, `None` for roots.  Nodes are labelled in preorder of the
    /// canonical level sequence, so `parents[k] < Some(k)` always holds.
    pub parents: &'a [Option<ServiceId>],
    /// Number of labelled forests in this isomorphism class (`n! / |Aut|`).
    pub orbit: u128,
    /// Index of the first node whose parent may differ from the previously
    /// streamed representative (`0` for the first one): an enumerator
    /// maintaining incremental per-prefix state needs to rewind only the
    /// suffix `changed_from..`.
    pub changed_from: usize,
}

/// Streaming generator of canonical rooted forests on `n` nodes — exactly
/// one representative per forest-isomorphism class.
///
/// A rooted forest on `n` nodes corresponds to a rooted tree on `n + 1`
/// nodes (attach every root to a virtual super-root); the generator walks
/// the canonical level sequences of those super-trees with the classic
/// Beyer–Hedetniemi successor rule (*Constant time generation of rooted
/// trees*, SIAM J. Comput. 1980), from the path (deepest) to the star of
/// isolated nodes (flattest), and converts each sequence to a parent
/// vector plus its orbit size.
#[derive(Clone, Debug)]
pub struct CanonicalForests {
    /// Level sequence of the super-tree in preorder; `levels[0] == 0` is the
    /// virtual root, real nodes sit at levels `>= 1`.
    levels: Vec<usize>,
    parents: Vec<Option<ServiceId>>,
    /// Position scratch: last preorder position seen per level.
    last_at_level: Vec<usize>,
    started: bool,
}

impl CanonicalForests {
    /// A stream over the forests on `n` nodes (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "canonical enumeration needs at least one node");
        CanonicalForests {
            levels: (0..=n).collect(),
            parents: vec![None; n],
            last_at_level: vec![0; n + 1],
            started: false,
        }
    }

    /// Advances to the next canonical representative, or `None` once the
    /// class space is exhausted.  (A lending iterator: the returned item
    /// borrows the generator's buffers.)
    #[allow(clippy::should_implement_trait)] // lending: items borrow self
    pub fn next(&mut self) -> Option<ForestClass<'_>> {
        let changed_pos = if !self.started {
            self.started = true;
            1 // every position is fresh
        } else {
            // On the terminal sequence (all forest roots) `successor` keeps
            // returning `None`, so an exhausted stream stays exhausted.
            self.successor()?
        };
        self.refresh_parents(changed_pos);
        Some(ForestClass {
            parents: &self.parents,
            orbit: forest_orbit_size(&self.levels),
            changed_from: changed_pos - 1,
        })
    }

    /// Beyer–Hedetniemi successor: returns the first sequence position that
    /// changed, or `None` when the current sequence is the last one.
    fn successor(&mut self) -> Option<usize> {
        // p: rightmost node deeper than a forest root (level > 1).
        let p = (1..self.levels.len()).rev().find(|&i| self.levels[i] > 1)?;
        // q: rightmost proper ancestor-level position before p.
        let q = (1..p)
            .rev()
            .find(|&i| self.levels[i] == self.levels[p] - 1)
            .expect("a node of level > 1 has an earlier node one level up");
        for i in p..self.levels.len() {
            self.levels[i] = self.levels[i - (p - q)];
        }
        Some(p)
    }

    /// Recomputes `parents[changed_pos - 1 ..]` from the level sequence.
    fn refresh_parents(&mut self, changed_pos: usize) {
        // Seed the per-level position memo from the unchanged prefix.
        for l in &mut self.last_at_level {
            *l = usize::MAX;
        }
        for (i, &level) in self.levels.iter().enumerate().take(changed_pos) {
            self.last_at_level[level] = i;
        }
        for i in changed_pos..self.levels.len() {
            let level = self.levels[i];
            self.parents[i - 1] = if level == 1 {
                None
            } else {
                let p = self.last_at_level[level - 1];
                debug_assert!(p >= 1, "parent of a level >= 2 node is a real node");
                Some(p - 1)
            };
            self.last_at_level[level] = i;
        }
    }
}

/// Orbit size of the forest described by a canonical super-tree level
/// sequence: the number of distinct labelled forests isomorphic to it,
/// `n! / |Aut|` (saturating at `u128::MAX` far beyond any enumerable size).
fn forest_orbit_size(levels: &[usize]) -> u128 {
    let n = levels.len() - 1;
    factorial(n) / subtree_automorphisms(levels, 0, levels.len())
}

/// `|Aut|` of the subtree spanning `levels[start..end)` (rooted at `start`):
/// the product of the children's automorphism counts times, per run of
/// identical child subtree sequences, the factorial of the run length.
/// Canonical sequences keep identical siblings adjacent, so runs suffice.
fn subtree_automorphisms(levels: &[usize], start: usize, end: usize) -> u128 {
    let child_level = levels[start] + 1;
    let mut aut = 1u128;
    let mut child = start + 1;
    let mut run_slice: Option<(usize, usize)> = None;
    let mut run_len = 0u128;
    while child < end {
        debug_assert!(levels[child] == child_level);
        let mut next = child + 1;
        while next < end && levels[next] > child_level {
            next += 1;
        }
        aut = aut.saturating_mul(subtree_automorphisms(levels, child, next));
        let same = run_slice
            .map(|(b, e)| levels[b..e] == levels[child..next])
            .unwrap_or(false);
        if same {
            run_len += 1;
        } else {
            aut = aut.saturating_mul(factorial_u128(run_len));
            run_slice = Some((child, next));
            run_len = 1;
        }
        child = next;
    }
    aut.saturating_mul(factorial_u128(run_len))
}

fn factorial(n: usize) -> u128 {
    factorial_u128(n as u128)
}

fn factorial_u128(n: u128) -> u128 {
    let mut f = 1u128;
    for k in 2..=n {
        f = f.saturating_mul(k);
    }
    f
}

/// Number of forest-isomorphism classes on `n` nodes — the size of the
/// canonical space [`CanonicalForests`] streams (A000081 shifted by one:
/// rooted forests on `n` nodes ↔ rooted trees on `n + 1` nodes).
/// Saturates at `u128::MAX` once the exact count overflows.
pub fn forest_classes(n: usize) -> u128 {
    rooted_tree_classes(n + 1)
}

/// Number of *labelled* rooted forests on `n` nodes, `(n + 1)^(n - 1)`
/// (Cayley's formula via the super-root bijection) — the raw space the
/// canonical enumeration collapses.  Saturating.
pub fn labelled_forests(n: usize) -> u128 {
    if n == 0 {
        return 1;
    }
    let mut size = 1u128;
    for _ in 0..(n - 1) {
        size = size.saturating_mul((n + 1) as u128);
    }
    size
}

/// Number of unlabelled rooted trees on `n` nodes (OEIS A000081), by the
/// Euler-transform recurrence
/// `(n - 1) · t(n) = Σ_{k=1}^{n-1} (Σ_{d | k} d · t(d)) · t(n - k)`.
/// Saturates at `u128::MAX` on overflow.
pub fn rooted_tree_classes(n: usize) -> u128 {
    if n == 0 {
        return 1; // the empty tree
    }
    let mut t = vec![0u128; n + 1];
    t[1] = 1;
    for m in 2..=n {
        let mut sum = 0u128;
        for k in 1..m {
            let s = t
                .iter()
                .enumerate()
                .take(k + 1)
                .skip(1)
                .filter(|&(d, _)| k % d == 0)
                .fold(0u128, |acc, (d, &td)| {
                    acc.saturating_add((d as u128).saturating_mul(td))
                });
            sum = sum.saturating_add(s.saturating_mul(t[m - k]));
        }
        if sum == u128::MAX {
            t[m] = u128::MAX;
        } else {
            t[m] = sum / (m as u128 - 1);
        }
    }
    t[n]
}

/// The canonical relabelling of a labelled forest: the parent vector of the
/// [`CanonicalForests`] representative of its isomorphism class.
///
/// Fails with [`CoreError::NotAForest`] when some node has several direct
/// predecessors or the graph is cyclic.
pub fn canonical_forest_form(graph: &ExecutionGraph) -> CoreResult<Vec<Option<ServiceId>>> {
    if !graph.is_forest() {
        return Err(CoreError::NotAForest);
    }
    graph.topological_order()?; // rejects cycles (a "forest" check alone keeps 2-cycles out already, but be explicit)
    let n = graph.n();
    // Canonical level sequence of every subtree, deepest-first at each node.
    fn subtree_sequence(graph: &ExecutionGraph, node: ServiceId) -> Vec<usize> {
        let mut children: Vec<Vec<usize>> = graph
            .succs(node)
            .iter()
            .map(|&c| subtree_sequence(graph, c))
            .collect();
        children.sort_by(|a, b| b.cmp(a)); // non-increasing lex order
        let mut seq = vec![0usize];
        for child in children {
            seq.extend(child.into_iter().map(|l| l + 1));
        }
        seq
    }
    let mut roots: Vec<Vec<usize>> = graph
        .entry_nodes()
        .into_iter()
        .map(|r| subtree_sequence(graph, r))
        .collect();
    roots.sort_by(|a, b| b.cmp(a));
    let mut levels = vec![0usize];
    for root in roots {
        levels.extend(root.into_iter().map(|l| l + 1));
    }
    debug_assert_eq!(levels.len(), n + 1);
    // Level sequence → parent vector (as in `CanonicalForests`).
    let mut parents = vec![None; n];
    let mut last_at_level = vec![usize::MAX; n + 2];
    last_at_level[0] = 0;
    for i in 1..levels.len() {
        let level = levels[i];
        parents[i - 1] = if level == 1 {
            None
        } else {
            Some(last_at_level[level - 1] - 1)
        };
        last_at_level[level] = i;
    }
    Ok(parents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_classes_partition_by_bits() {
        let app = Application::independent(&[(1.0, 0.5), (2.0, 0.5), (1.0, 0.5), (1.0, 0.25)]);
        let classes = WeightClasses::of(&app);
        assert_eq!(classes.n(), 4);
        assert_eq!(classes.class_count(), 3);
        assert_eq!(classes.class_of(0), classes.class_of(2));
        assert_ne!(classes.class_of(0), classes.class_of(1));
        assert_eq!(classes.class_size(classes.class_of(0)), 2);
        assert!(!classes.is_uniform());
        let uniform = Application::independent(&[(3.0, 0.7); 5]);
        assert!(WeightClasses::of(&uniform).is_uniform());
    }

    #[test]
    fn class_counts_match_a000081() {
        // A000081: 1, 1, 1, 2, 4, 9, 20, 48, 115, 286, 719, 1842, 4766 …
        let expected = [1u128, 1, 1, 2, 4, 9, 20, 48, 115, 286, 719, 1842, 4766];
        for (n, &e) in expected.iter().enumerate() {
            assert_eq!(rooted_tree_classes(n), e, "A000081({n})");
        }
        assert_eq!(forest_classes(8), 286);
        assert_eq!(forest_classes(10), 1842);
        assert_eq!(forest_classes(11), 4766);
    }

    #[test]
    fn generator_streams_each_class_once_and_orbits_cover_the_labelled_space() {
        for n in 1..=8 {
            let mut stream = CanonicalForests::new(n);
            let mut classes = 0u128;
            let mut labelled = 0u128;
            let mut seen = std::collections::HashSet::new();
            while let Some(class) = stream.next() {
                assert_eq!(class.parents.len(), n);
                // Preorder labelling: parents always precede their children.
                for (k, &p) in class.parents.iter().enumerate() {
                    if let Some(p) = p {
                        assert!(p < k, "n={n}: parent {p} !< child {k}");
                    }
                }
                assert!(
                    seen.insert(class.parents.to_vec()),
                    "n={n}: duplicate representative {:?}",
                    class.parents
                );
                classes += 1;
                labelled += class.orbit;
            }
            assert_eq!(classes, forest_classes(n), "n={n}: class count");
            assert_eq!(labelled, labelled_forests(n), "n={n}: Σ orbit sizes");
        }
    }

    #[test]
    fn changed_from_is_a_faithful_rewind_hint() {
        let mut stream = CanonicalForests::new(6);
        let mut previous: Option<Vec<Option<ServiceId>>> = None;
        while let Some(class) = stream.next() {
            if let Some(prev) = &previous {
                for (k, &p) in class.parents.iter().enumerate().take(class.changed_from) {
                    assert_eq!(prev[k], p, "prefix before changed_from");
                }
            } else {
                assert_eq!(class.changed_from, 0);
            }
            previous = Some(class.parents.to_vec());
        }
    }

    #[test]
    fn canonical_form_maps_every_labelled_forest_to_a_streamed_representative() {
        // Enumerate every labelled forest on n nodes (all parent functions
        // that yield a DAG), canonicalise, and tally per representative: the
        // tallies must equal the generator's orbit sizes exactly.
        let n = 5usize;
        let mut tally: std::collections::HashMap<Vec<Option<ServiceId>>, u128> =
            std::collections::HashMap::new();
        let mut parents = vec![None::<ServiceId>; n];
        fn walk(
            k: usize,
            n: usize,
            parents: &mut Vec<Option<ServiceId>>,
            tally: &mut std::collections::HashMap<Vec<Option<ServiceId>>, u128>,
        ) {
            if k == n {
                if let Ok(graph) = ExecutionGraph::from_parents(parents) {
                    let canon = canonical_forest_form(&graph).expect("forest");
                    *tally.entry(canon).or_insert(0) += 1;
                }
                return;
            }
            for p in std::iter::once(None).chain((0..n).filter(|&p| p != k).map(Some)) {
                parents[k] = p;
                walk(k + 1, n, parents, tally);
                parents[k] = None;
            }
        }
        walk(0, n, &mut parents, &mut tally);
        let mut stream = CanonicalForests::new(n);
        let mut streamed = 0usize;
        while let Some(class) = stream.next() {
            let canon = class.parents.to_vec();
            assert_eq!(
                tally.get(&canon).copied(),
                Some(class.orbit),
                "orbit of {canon:?}"
            );
            streamed += 1;
        }
        assert_eq!(streamed, tally.len(), "every orbit has one representative");
    }

    #[test]
    fn canonical_form_is_isomorphism_invariant_and_idempotent() {
        let chain = ExecutionGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let relabelled = ExecutionGraph::from_edges(4, &[(3, 2), (2, 0)]).unwrap();
        let c1 = canonical_forest_form(&chain).unwrap();
        let c2 = canonical_forest_form(&relabelled).unwrap();
        assert_eq!(c1, c2);
        let again = canonical_forest_form(&ExecutionGraph::from_parents(&c1).unwrap()).unwrap();
        assert_eq!(c1, again);
        // Non-forests are rejected.
        let join = ExecutionGraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        assert!(matches!(
            canonical_forest_form(&join),
            Err(CoreError::NotAForest)
        ));
    }
}
