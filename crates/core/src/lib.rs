//! # fsw-core — the model of filtering streaming workflows
//!
//! Core data model for the reproduction of *"Mapping Filtering Streaming
//! Applications With Communication Costs"* (Agrawal, Benoit, Dufossé, Robert,
//! SPAA 2009).
//!
//! A filtering workflow is a set of **services**, each with a cost `c_i` and a
//! selectivity `σ_i`, linked by precedence constraints ([`Application`]).  A
//! **plan** maps the workflow onto a homogeneous platform (one service per
//! server); it is the combination of an [`ExecutionGraph`] — the DAG saying
//! who sends data to whom — and an [`OperationList`] — the cyclic timetable of
//! every computation and communication.  Three communication models
//! ([`CommModel`]) govern what a server may do simultaneously.
//!
//! This crate provides:
//!
//! * the model types ([`Service`], [`Application`], [`ExecutionGraph`],
//!   [`OperationList`], [`Plan`], [`CommModel`]);
//! * the volume metrics of Section 2.1 of the paper ([`PlanMetrics`]:
//!   `Cin`, `Ccomp`, `Cout`, `Cexec`, period lower bounds);
//! * an executable form of the Appendix A rule sets
//!   ([`validate_oplist`]) used by every scheduler and test in the workspace.
//!
//! ```
//! use fsw_core::{Application, CommModel, ExecutionGraph, PlanMetrics};
//!
//! // Section 2.3 of the paper: five services of cost 4 and selectivity 1.
//! let app = Application::independent(&[(4.0, 1.0); 5]);
//! let graph = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
//! let metrics = PlanMetrics::compute(&app, &graph).unwrap();
//! assert_eq!(metrics.period_lower_bound(CommModel::Overlap), 4.0);
//! assert_eq!(metrics.period_lower_bound(CommModel::InOrder), 7.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod canonical;
pub mod error;
pub mod fingerprint;
pub mod graph;
pub mod metrics;
pub mod model;
pub mod oplist;
pub mod service;
pub mod validate;

pub use canonical::{
    bound_ordered_shape_plan, canonical_classed_form, canonical_classed_member,
    canonical_forest_form, classed_class_count, classed_class_count_within,
    classed_forest_representatives, classed_forest_representatives_within, forest_classes,
    labelled_forests, pack_level_code, unpack_level_code, walk_canonical_colorings,
    CanonicalForests, ClassedCount, ClassedGeneration, ClassedRepresentative, ColoringVisitor,
    ForestClass, ShapeBounder, ShapeObjective, ShapePlan, ShapeScan, WeightClasses,
    COUNT_DENSE_LIMIT,
};
pub use error::{CoreError, CoreResult};
pub use fingerprint::{AppFingerprint, CanonicalApplication};
pub use graph::ExecutionGraph;
pub use metrics::{in_edges, out_edges, plan_edges, PartialForestMetrics, PlanMetrics};
pub use model::CommModel;
pub use oplist::{EdgeRef, Interval, OperationList, Plan};
pub use service::{Application, ApplicationBuilder, Service, ServiceId};
pub use validate::{
    validate_oplist, validate_oplist_with, ValidationOptions, Violation, DEFAULT_EPSILON,
};
