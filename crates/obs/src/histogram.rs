//! Fixed-bucket log₂-scale histograms (HDR-style): constant memory,
//! lock-free atomic recording, deterministic mergeable state and
//! nearest-rank quantile queries.
//!
//! The value axis has two regions:
//!
//! * **exact region** — values below [`EXACT_LIMIT`] (= 1024) get one
//!   bucket each, so small integer measurements (logical-tick latencies,
//!   queue depths, shed levels) are recorded *losslessly* and quantile
//!   queries over them return the exact nearest-rank sample.  This is the
//!   property that lets registry-backed histograms replace sorted-vector
//!   percentile code bit-for-bit wherever the observed values stay small.
//! * **log region** — every power-of-two decade `[2^k, 2^{k+1})` above the
//!   exact region splits into [`SUB_BUCKETS`] (= 128) equal sub-buckets,
//!   bounding the relative quantisation error of a reported quantile by
//!   `2^-7 < 1%` while keeping the whole histogram a fixed
//!   [`BUCKETS`]-slot array whatever the value range.
//!
//! Merging is element-wise `u64` addition of bucket counts (plus count,
//! sum, and max folds) — associative and commutative bit-for-bit, so a
//! sharded recording pass merged in any order equals the serial recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this limit are recorded exactly (one bucket per value).
pub const EXACT_LIMIT: u64 = 1 << EXACT_BITS;
/// log₂ of [`EXACT_LIMIT`].
const EXACT_BITS: u32 = 10;
/// Sub-buckets per power-of-two decade in the log region.
pub const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// log₂ of [`SUB_BUCKETS`].
const SUB_BUCKET_BITS: u32 = 7;
/// Total bucket count: one per exact value, plus `128` per decade for the
/// decades `2^10 ..= 2^63`.
pub const BUCKETS: usize = EXACT_LIMIT as usize + (64 - EXACT_BITS as usize) * SUB_BUCKETS as usize;

/// The bucket index of `value`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < EXACT_LIMIT {
        return value as usize;
    }
    let k = 63 - value.leading_zeros(); // k >= EXACT_BITS
    let sub = (value - (1u64 << k)) >> (k - SUB_BUCKET_BITS);
    EXACT_LIMIT as usize + ((k - EXACT_BITS) as usize) * SUB_BUCKETS as usize + sub as usize
}

/// The inclusive `[low, high]` value range of bucket `index`.
fn bucket_range(index: usize) -> (u64, u64) {
    if index < EXACT_LIMIT as usize {
        return (index as u64, index as u64);
    }
    let rest = index - EXACT_LIMIT as usize;
    let k = EXACT_BITS + (rest / SUB_BUCKETS as usize) as u32;
    let sub = (rest % SUB_BUCKETS as usize) as u64;
    let low = (1u64 << k) + (sub << (k - SUB_BUCKET_BITS));
    let width = 1u64 << (k - SUB_BUCKET_BITS);
    (low, low + (width - 1))
}

/// A mergeable fixed-memory log₂-scale histogram of `u64` samples.
///
/// Recording is one relaxed atomic increment per sample (plus count / sum
/// adds and a max fold), so hot paths can record without locks.  All
/// derived state (quantiles, snapshots) is computed on demand.
#[derive(Debug)]
pub struct LogHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram (allocates the fixed bucket array).
    pub fn new() -> Self {
        LogHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum() as f64 / count as f64
    }

    /// The nearest-rank `p`-th percentile (`p` in `0 ..= 100`).
    ///
    /// The rank rule is the classic sorted-vector one — index
    /// `round(p/100 · (n−1))` of the ascending sample vector — so on
    /// samples confined to the exact region the result is **identical**
    /// to sorting and indexing.  In the log region the bucket's inclusive
    /// upper edge is reported, capped at the recorded max (≤ `2^-7`
    /// relative overshoot).
    pub fn quantile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * (count - 1) as f64).round() as u64 + 1;
        let mut seen = 0u64;
        for (index, slot) in self.counts.iter().enumerate() {
            let c = slot.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let (_, high) = bucket_range(index);
                return high.min(self.max());
            }
        }
        self.max()
    }

    /// Folds `other` into `self`: element-wise bucket addition plus
    /// count/sum adds and a max fold.  Addition is associative and
    /// commutative, so any merge tree over any sharding of a sample set
    /// produces bit-identical state to serial recording.
    pub fn merge(&self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter().zip(&other.counts) {
            let c = theirs.load(Ordering::Relaxed);
            if c != 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// `(count, sum, max, bucket counts)` — the full mergeable state, for
    /// tests asserting bit-identity of merge orders.
    pub fn state(&self) -> (u64, u64, u64, Vec<u64>) {
        (
            self.count(),
            self.sum(),
            self.max(),
            self.counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        )
    }

    /// The fixed summary exported by snapshots.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(50.0),
            p90: self.quantile(90.0),
            p99: self.quantile(99.0),
        }
    }
}

/// The exported summary of one histogram: counts and the standard
/// `p50/p90/p99/max` quantile set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Nearest-rank 50th percentile.
    pub p50: u64,
    /// Nearest-rank 90th percentile.
    pub p90: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_below_the_limit() {
        for v in 0..EXACT_LIMIT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_range(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_ranges_tile_the_axis() {
        // Every bucket's range starts right after the previous bucket's.
        let mut next = 0u64;
        for index in 0..BUCKETS {
            let (low, high) = bucket_range(index);
            assert_eq!(low, next, "bucket {index} must start at {next}");
            assert!(high >= low);
            if high == u64::MAX {
                assert_eq!(index, BUCKETS - 1, "only the last bucket may saturate");
                return;
            }
            next = high + 1;
        }
        panic!("the last bucket must reach u64::MAX");
    }

    #[test]
    fn boundary_values_map_into_their_own_bucket() {
        for k in EXACT_BITS..64 {
            let v = 1u64 << k;
            let (low, high) = bucket_range(bucket_index(v));
            assert!(low <= v && v <= high, "2^{k} out of its bucket");
            let (plow, phigh) = bucket_range(bucket_index(v - 1));
            assert!(plow < v && v - 1 <= phigh, "2^{k}-1 out of its bucket");
            assert!(phigh < low, "2^{k}-1 and 2^{k} share a bucket");
        }
        let (_, top) = bucket_range(bucket_index(u64::MAX));
        assert_eq!(top, u64::MAX);
    }

    #[test]
    fn log_region_relative_error_is_bounded() {
        for v in [1024, 1500, 4097, 1 << 20, (1 << 33) + 12345, u64::MAX / 3] {
            let (low, high) = bucket_range(bucket_index(v));
            assert!(low <= v && v <= high);
            // Bucket width is low / 128 (up to rounding), so reporting the
            // upper edge overshoots by < 2^-7 of the value.
            assert!((high - low) as f64 <= low as f64 / 127.0);
        }
    }
}
