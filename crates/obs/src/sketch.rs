//! Sketch-based per-tenant traffic accounting via **sparse graph
//! counters** (counter sharing).
//!
//! Every tenant hashes to one counter per row (`depth` rows of `width`
//! counters), so recording a request is `depth` relaxed atomic adds —
//! O(1) memory per request, O(depth · width) total, independent of the
//! tenant population.  Decoding exploits the *sparse incidence structure*
//! between tenants and counters: a counter touched by exactly one
//! still-unresolved tenant reveals that tenant's **exact** tally, which is
//! then subtracted from its other counters, possibly exposing further
//! singletons — the peeling decode of the sparse-graph-counters
//! construction.  Tenants left in the unpeelable residue fall back to the
//! count-min estimate (the minimum over their counters), which **never
//! undercounts**: every counter is the tenant's exact tally plus a
//! non-negative sum of colliding residual tenants.
//!
//! Determinism: the per-row hash is a fixed splitmix64 finalizer over
//! `tenant ⊕ row seed` — no `RandomState`, no process entropy — so the
//! incidence structure, the peeling order and every estimate are pure
//! functions of the recorded multiset.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The splitmix64 finalizer: a deterministic 64-bit mixer.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// One per-tenant estimate decoded from the sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantEstimate {
    /// The estimated tally.  Never below the exact tally.
    pub estimate: u64,
    /// `true` when the peeling decode resolved this tenant from a
    /// singleton counter chain — the estimate is then **exact**.
    pub exact: bool,
}

/// A counter-sharing sketch of per-tenant event tallies.
#[derive(Debug)]
pub struct TrafficSketch {
    depth: usize,
    width: usize,
    rows: Vec<AtomicU64>,
    total: AtomicU64,
}

impl TrafficSketch {
    /// A sketch of `depth` rows × `width` counters (both clamped to ≥ 1).
    pub fn new(depth: usize, width: usize) -> Self {
        let depth = depth.max(1);
        let width = width.max(1);
        TrafficSketch {
            depth,
            width,
            rows: (0..depth * width).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
        }
    }

    /// Rows of the sketch.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total amount recorded across all tenants.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The counter cell of `tenant` in `row`.
    #[inline]
    fn cell(&self, row: usize, tenant: u64) -> usize {
        let h = mix(tenant ^ mix(row as u64 + 1));
        row * self.width + (h % self.width as u64) as usize
    }

    /// Records `amount` events for `tenant`: `depth` relaxed atomic adds.
    #[inline]
    pub fn record(&self, tenant: u64, amount: u64) {
        for row in 0..self.depth {
            self.rows[self.cell(row, tenant)].fetch_add(amount, Ordering::Relaxed);
        }
        self.total.fetch_add(amount, Ordering::Relaxed);
    }

    /// The count-min estimate of `tenant`'s tally (no peeling): the
    /// minimum over its counters.  Never undercounts.
    pub fn estimate(&self, tenant: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.rows[self.cell(row, tenant)].load(Ordering::Relaxed))
            .min()
            .unwrap_or(0)
    }

    /// Decodes estimates for `tenants` (the known tenant population) by
    /// **peeling** the sparse incidence structure: counters incident to
    /// exactly one unresolved tenant yield that tenant's exact tally,
    /// which is subtracted from its remaining counters; the process
    /// repeats until no singleton is left, and residual tenants get the
    /// count-min fallback over the peeled residue.
    ///
    /// Estimates never undercount; peeled tenants (flagged `exact`) match
    /// the true tally precisely.  Duplicate tenant ids are collapsed.
    pub fn decode(&self, tenants: &[u64]) -> BTreeMap<u64, TenantEstimate> {
        // Residual counter values and the incidence lists (cell → tenants).
        let mut residual: Vec<u64> = self
            .rows
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let mut unresolved: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut incidence: Vec<Vec<u64>> = vec![Vec::new(); self.rows.len()];
        for &tenant in tenants {
            if unresolved.contains_key(&tenant) {
                continue;
            }
            let cells: Vec<usize> = (0..self.depth).map(|row| self.cell(row, tenant)).collect();
            for &cell in &cells {
                incidence[cell].push(tenant);
            }
            unresolved.insert(tenant, cells);
        }
        let mut out: BTreeMap<u64, TenantEstimate> = BTreeMap::new();
        // Peel: scan for singleton cells until a full pass finds none.
        // (Cell order is fixed, so the decode is deterministic; peeling
        // order cannot change a peeled value — each is the exact tally.)
        loop {
            let mut peeled_any = false;
            for cell in 0..self.rows.len() {
                if incidence[cell].len() != 1 {
                    continue;
                }
                let tenant = incidence[cell][0];
                let exact = residual[cell];
                let cells = match unresolved.remove(&tenant) {
                    Some(cells) => cells,
                    None => continue,
                };
                for &c in &cells {
                    residual[c] = residual[c].saturating_sub(exact);
                    incidence[c].retain(|&t| t != tenant);
                }
                out.insert(
                    tenant,
                    TenantEstimate {
                        estimate: exact,
                        exact: true,
                    },
                );
                peeled_any = true;
            }
            if !peeled_any {
                break;
            }
        }
        // Count-min fallback over the peeled residue for whatever is left.
        for (tenant, cells) in unresolved {
            let estimate = cells.iter().map(|&c| residual[c]).min().unwrap_or(0);
            out.insert(
                tenant,
                TenantEstimate {
                    estimate,
                    exact: false,
                },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic splitmix64 stream (test-local RNG).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            mix(self.0)
        }
    }

    #[test]
    fn estimates_never_undercount_and_peeled_tenants_are_exact() {
        let sketch = TrafficSketch::new(4, 64);
        let mut rng = Rng(0x0b5e_c0de);
        let tenants: Vec<u64> = (0..32).map(|t| t * 7 + 3).collect();
        let mut exact: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..10_000 {
            let tenant = tenants[(rng.next() % 32) as usize];
            let amount = rng.next() % 5;
            sketch.record(tenant, amount);
            *exact.entry(tenant).or_default() += amount;
        }
        let decoded = sketch.decode(&tenants);
        assert_eq!(decoded.len(), tenants.len());
        let mut peeled = 0;
        for (&tenant, est) in &decoded {
            let truth = exact.get(&tenant).copied().unwrap_or(0);
            assert!(
                est.estimate >= truth,
                "tenant {tenant}: estimate {} under exact {truth}",
                est.estimate
            );
            if est.exact {
                assert_eq!(est.estimate, truth, "peeled tenant {tenant} must be exact");
                peeled += 1;
            }
            // Count-min residue bound: the overshoot of any estimate is at
            // most the total traffic of the colliding residue, itself at
            // most the sketch total.
            assert!(est.estimate - truth <= sketch.total());
        }
        assert!(
            peeled >= tenants.len() / 2,
            "a 4×64 sketch of 32 tenants must peel most of the population, got {peeled}"
        );
    }

    #[test]
    fn count_min_estimate_matches_single_tenant_traffic() {
        let sketch = TrafficSketch::new(3, 16);
        sketch.record(42, 7);
        sketch.record(42, 3);
        assert_eq!(sketch.estimate(42), 10);
        assert_eq!(sketch.total(), 10);
        let decoded = sketch.decode(&[42]);
        assert_eq!(decoded[&42].estimate, 10);
        assert!(decoded[&42].exact);
    }

    #[test]
    fn decode_is_deterministic() {
        let build = || {
            let sketch = TrafficSketch::new(4, 32);
            for t in 0..100u64 {
                sketch.record(t % 17, 1 + t % 3);
            }
            sketch
        };
        let tenants: Vec<u64> = (0..17).collect();
        assert_eq!(build().decode(&tenants), build().decode(&tenants));
    }
}
