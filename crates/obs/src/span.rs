//! Lightweight tracing spans: RAII guards recording a call count and a
//! wall-clock duration histogram per pipeline stage.
//!
//! A [`SpanTimer`] is the per-stage handle — two `Arc`s resolved from the
//! registry once (`{name}.calls` counter, `{name}.micros` histogram) — and
//! [`SpanTimer::start`] returns a guard whose `Drop` records the elapsed
//! microseconds.  Hot paths cache the timer at construction; the
//! [`span!`](crate::span!) macro is the inline convenience form for cold
//! paths.
//!
//! Wall-clock span durations are **observability-only**: nothing derived
//! from them may feed a replay digest (logical-timeline metrics use
//! explicitly recorded histograms instead), which is what keeps
//! instrumented replays bit-identical across worker counts.

use std::sync::Arc;
use std::time::Instant;

use crate::histogram::LogHistogram;
use crate::registry::{Counter, MetricsRegistry};

/// The cached instruments of one span stage (`{name}.calls`,
/// `{name}.micros`).
#[derive(Clone, Debug)]
pub struct SpanTimer {
    calls: Arc<Counter>,
    micros: Arc<LogHistogram>,
}

impl SpanTimer {
    /// Resolves (or creates) the stage's instruments in `registry`.
    pub fn new(registry: &MetricsRegistry, name: &str) -> Self {
        SpanTimer {
            calls: registry.counter(&format!("{name}.calls")),
            micros: registry.histogram(&format!("{name}.micros")),
        }
    }

    /// Starts one span; the returned guard records on drop.
    pub fn start(&self) -> SpanGuard {
        SpanGuard {
            calls: Some(self.calls.clone()),
            micros: self.micros.clone(),
            started: Instant::now(),
        }
    }

    /// Counts one call unconditionally but opens a timed guard for only
    /// one call in [`SAMPLE_EVERY`]: saturated per-request paths pay a
    /// single atomic increment per call instead of two clock reads plus a
    /// histogram record, keeping instrumentation overhead inside the
    /// replay overhead budget.  `{name}.calls` stays an exact call count;
    /// `{name}.micros` holds the deterministic 1-in-[`SAMPLE_EVERY`]
    /// sample (by call ordinal, so replays sample identically).
    #[inline]
    pub fn start_sampled(&self) -> Option<SpanGuard> {
        let ordinal = self.calls.inc_ordinal();
        if ordinal % SAMPLE_EVERY != 0 {
            return None;
        }
        Some(SpanGuard {
            calls: None,
            micros: self.micros.clone(),
            started: Instant::now(),
        })
    }

    /// Number of completed spans so far.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }
}

impl MetricsRegistry {
    /// The span timer for stage `name` (get-or-create; cache the result
    /// on hot paths).
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer::new(self, name)
    }
}

/// Sampled spans ([`SpanTimer::start_sampled`]) time one call in this
/// many (by call ordinal — deterministic across replays).
pub const SAMPLE_EVERY: u64 = 64;

/// An in-flight span; dropping it records its wall duration in
/// microseconds (plus one call, unless the call was already counted by
/// [`SpanTimer::start_sampled`]).
#[derive(Debug)]
pub struct SpanGuard {
    calls: Option<Arc<Counter>>,
    micros: Arc<LogHistogram>,
    started: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(calls) = &self.calls {
            calls.inc();
        }
        self.micros
            .record(self.started.elapsed().as_micros() as u64);
    }
}

/// Opens a span guard on `registry` for the named stage:
///
/// ```
/// use fsw_obs::MetricsRegistry;
/// let registry = MetricsRegistry::new();
/// {
///     let _span = fsw_obs::span!(registry, "solve.stream");
///     // … stage body …
/// }
/// assert_eq!(registry.snapshot().counter("solve.stream.calls"), Some(1));
/// ```
///
/// The guard must be bound (`let _span = …`), not discarded (`let _ = …`),
/// or it records immediately.  On hot paths prefer a cached
/// [`SpanTimer`].
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $registry.span($name).start()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_calls_and_durations() {
        let registry = MetricsRegistry::new();
        let timer = registry.span("stage.x");
        for _ in 0..3 {
            let _guard = timer.start();
        }
        {
            let _guard = crate::span!(registry, "stage.x");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("stage.x.calls"), Some(4));
        assert_eq!(snap.histogram("stage.x.micros").unwrap().count, 4);
    }

    #[test]
    fn sampled_spans_count_every_call_but_time_one_in_the_sample() {
        let registry = MetricsRegistry::new();
        let timer = registry.span("stage.hot");
        let calls = 3 * SAMPLE_EVERY + 1;
        for _ in 0..calls {
            let _guard = timer.start_sampled();
        }
        let snap = registry.snapshot();
        // Exact call count, deterministically sampled durations (call
        // ordinals 0, 64, 128, 192 → 4 samples).
        assert_eq!(snap.counter("stage.hot.calls"), Some(calls));
        assert_eq!(snap.histogram("stage.hot.micros").unwrap().count, 4);
    }
}
