//! The metrics registry: named counters, gauges, log-scale histograms and
//! traffic sketches, with a sorted [`Snapshot`] serialising to text and
//! JSON.
//!
//! Instruments are handed out as `Arc` handles from a get-or-create map:
//! components look their instruments up **once** at construction and
//! record through the cached handle afterwards, so the registry lock is
//! never on a hot path — recording is a relaxed atomic operation on the
//! instrument itself.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::histogram::{HistogramSummary, LogHistogram};
use crate::sketch::TrafficSketch;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(std::sync::atomic::AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments the counter by one and returns the *previous* value
    /// (the zero-based ordinal of this increment) — the hook sampled
    /// span timers use to pick every `2^k`-th call.
    #[inline]
    pub fn inc_ordinal(&self) -> u64 {
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A last-value-wins gauge with a high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: std::sync::atomic::AtomicU64,
    peak: std::sync::atomic::AtomicU64,
}

impl Gauge {
    /// Sets the gauge (and folds the high-water mark).
    #[inline]
    pub fn set(&self, value: u64) {
        self.value
            .store(value, std::sync::atomic::Ordering::Relaxed);
        self.peak
            .fetch_max(value, std::sync::atomic::Ordering::Relaxed);
    }

    /// The last value set.
    pub fn get(&self) -> u64 {
        self.value.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The largest value ever set.
    pub fn peak(&self) -> u64 {
        self.peak.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// The unified registry of named instruments.
///
/// Lookup methods get-or-create and return shared handles; names are kept
/// sorted (`BTreeMap`), so snapshots are deterministic in layout.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<LogHistogram>>>,
    sketches: Mutex<BTreeMap<String, Arc<TrafficSketch>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry mutex poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry mutex poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        let mut map = self.histograms.lock().expect("registry mutex poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(LogHistogram::new()))
            .clone()
    }

    /// The traffic sketch named `name`, created on first use with the
    /// given shape (an existing sketch keeps its original shape).
    pub fn sketch(&self, name: &str, depth: usize, width: usize) -> Arc<TrafficSketch> {
        let mut map = self.sketches.lock().expect("registry mutex poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(TrafficSketch::new(depth, width)))
            .clone()
    }

    /// A point-in-time snapshot of every instrument, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry mutex poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry mutex poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), (g.get(), g.peak())))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry mutex poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.summary()))
            .collect();
        let sketches = self
            .sketches
            .lock()
            .expect("registry mutex poisoned")
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    SketchSummary {
                        depth: s.depth(),
                        width: s.width(),
                        total: s.total(),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            sketches,
        }
    }
}

/// The exported shape of one sketch (counters live on the handle).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SketchSummary {
    /// Rows.
    pub depth: usize,
    /// Counters per row.
    pub width: usize,
    /// Total amount recorded.
    pub total: u64,
}

/// A point-in-time export of a [`MetricsRegistry`], sorted by instrument
/// name, serialisable to a line-oriented text format and to JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, (value, peak))` for every gauge.
    pub gauges: Vec<(String, (u64, u64))>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// `(name, summary)` for every sketch.
    pub sketches: Vec<(String, SketchSummary)>,
}

impl Snapshot {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The `(value, peak)` of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<(u64, u64)> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The summary of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Line-oriented text rendering (one instrument per line, sorted).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter   {name} = {value}\n"));
        }
        for (name, (value, peak)) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {value} (peak {peak})\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} sum={} p50={} p90={} p99={} max={}\n",
                h.count, h.sum, h.p50, h.p90, h.p99, h.max
            ));
        }
        for (name, s) in &self.sketches {
            out.push_str(&format!(
                "sketch    {name} depth={} width={} total={}\n",
                s.depth, s.width, s.total
            ));
        }
        out
    }

    /// JSON rendering (hand-rolled — the crate has no dependencies; names
    /// are escaped for quotes and backslashes).
    pub fn to_json(&self) -> String {
        fn esc(name: &str) -> String {
            name.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut parts: Vec<String> = Vec::new();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("\"{}\":{}", esc(n), v))
            .collect();
        parts.push(format!("\"counters\":{{{}}}", counters.join(",")));
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(n, (v, p))| format!("\"{}\":{{\"value\":{},\"peak\":{}}}", esc(n), v, p))
            .collect();
        parts.push(format!("\"gauges\":{{{}}}", gauges.join(",")));
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(n, h)| {
                format!(
                    "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                    esc(n),
                    h.count,
                    h.sum,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.max
                )
            })
            .collect();
        parts.push(format!("\"histograms\":{{{}}}", histograms.join(",")));
        let sketches: Vec<String> = self
            .sketches
            .iter()
            .map(|(n, s)| {
                format!(
                    "\"{}\":{{\"depth\":{},\"width\":{},\"total\":{}}}",
                    esc(n),
                    s.depth,
                    s.width,
                    s.total
                )
            })
            .collect();
        parts.push(format!("\"sketches\":{{{}}}", sketches.join(",")));
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_snapshots_sorted() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("b.second");
        let b = registry.counter("b.second");
        a.inc();
        b.add(2);
        registry.counter("a.first").inc();
        registry.histogram("lat").record(5);
        registry.gauge("depth").set(3);
        registry.sketch("tenants", 2, 8).record(7, 4);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("b.second"), Some(3), "one shared instrument");
        assert_eq!(
            snap.counters
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["a.first", "b.second"]
        );
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        assert_eq!(snap.gauge("depth"), Some((3, 3)));
        let text = snap.to_text();
        assert!(text.contains("counter   a.first = 1"));
        assert!(text.contains("sketch    tenants depth=2 width=8 total=4"));
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.first\":1"));
        assert!(json.contains("\"lat\":{\"count\":1"));
    }
}
