//! # fsw-obs — unified observability layer
//!
//! Dependency-free metrics substrate shared by every layer of the stack:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, fixed-bucket
//!   log₂-scale [`LogHistogram`]s (HDR-style: constant memory, lock-free
//!   atomic recording, bit-for-bit mergeable, nearest-rank
//!   `p50/p90/p99/max` queries) and [`TrafficSketch`]es, exported as a
//!   sorted [`Snapshot`] serialising to text and JSON.
//! * [`span!`] / [`SpanTimer`] — RAII tracing spans recording per-stage
//!   call counts and wall-duration histograms through the whole request
//!   path (frontend tick loop → admission → store → engine stages).
//! * [`TrafficSketch`] — sketch-based per-tenant traffic accounting via
//!   sparse graph counters (counter sharing): O(1) memory per request,
//!   peeling decode recovering exact tallies from singleton counters,
//!   count-min fallback that never undercounts.
//!
//! ### Determinism contract
//!
//! Two kinds of instruments coexist and must not be conflated:
//!
//! * **logical-timeline** metrics (tick-latency histograms, decision
//!   counters, sketches fed by admission decisions) are pure functions of
//!   the replayed timeline — identical across worker counts and safe to
//!   assert against replay digests;
//! * **wall-clock** metrics (span duration histograms) are
//!   observability-only and must never feed a digest.
//!
//! Everything in this crate is deterministic given the recorded multiset:
//! no process entropy, no `RandomState` hashing, no background threads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod histogram;
pub mod registry;
pub mod sketch;
pub mod span;

pub use histogram::{HistogramSummary, LogHistogram};
pub use registry::{Counter, Gauge, MetricsRegistry, SketchSummary, Snapshot};
pub use sketch::{TenantEstimate, TrafficSketch};
pub use span::{SpanGuard, SpanTimer};
