//! Period orchestration for the `OVERLAP` (bounded multi-port) model.
//!
//! Theorem 1 / Proposition 1 of the paper: given an execution graph, an
//! operation list achieving the period lower bound
//! `max_k max(Cin(k), Ccomp(k), Cout(k))` can be built in polynomial time.
//! The construction assigns every communication of volume `t` a constant
//! bandwidth fraction `t / T` (so every communication lasts exactly `T` time
//! units) and lets the first data set traverse the graph greedily.

use fsw_core::{
    in_edges, out_edges, plan_edges, Application, CommModel, CoreResult, ExecutionGraph, Interval,
    OperationList, PlanMetrics,
};

/// The period lower bound `max_k Cexec(k)` for the `OVERLAP` model
/// (achievable by [`overlap_period_oplist`]).
pub fn overlap_period_lower_bound(app: &Application, graph: &ExecutionGraph) -> CoreResult<f64> {
    Ok(PlanMetrics::compute(app, graph)?.period_lower_bound(CommModel::Overlap))
}

/// Builds the Proposition 1 operation list for the `OVERLAP` model.
///
/// The returned schedule has period exactly
/// [`overlap_period_lower_bound`]`(app, graph)` and is valid for the
/// multi-port bandwidth constraints (every server's aggregate incoming and
/// outgoing rate never exceeds the capacity).
///
/// The latency of this schedule is *not* optimised: every communication is
/// stretched over a full period, which is what makes the bandwidth argument
/// work.  Use the latency module for latency-oriented operation lists.
pub fn overlap_period_oplist(
    app: &Application,
    graph: &ExecutionGraph,
) -> CoreResult<OperationList> {
    let metrics = PlanMetrics::compute(app, graph)?;
    let period = metrics.period_lower_bound(CommModel::Overlap);
    // Degenerate case: a single service with no work still needs a positive period.
    let period = if period > 0.0 { period } else { 1.0 };
    let n = graph.n();
    let mut oplist = OperationList::new(n, period);

    // Greedy traversal in topological order: every communication lasts exactly
    // `period`; a computation starts once all its incoming communications are
    // complete; an outgoing communication starts once the computation is done.
    let order = graph.topological_order()?;
    let mut calc_end = vec![0.0f64; n];
    for &k in &order {
        let mut ready = 0.0f64;
        for e in in_edges(graph, k) {
            let begin = match e {
                fsw_core::EdgeRef::Input(_) => 0.0,
                fsw_core::EdgeRef::Link(i, _) => calc_end[i],
                fsw_core::EdgeRef::Output(_) => unreachable!("output edge cannot be incoming"),
            };
            let iv = Interval::with_duration(begin, period);
            ready = ready.max(iv.end);
            oplist.set_comm(e, iv);
        }
        let begin = ready;
        let end = begin + metrics.c_comp(k);
        oplist.set_calc(k, Interval::new(begin, end));
        calc_end[k] = end;
        for e in out_edges(graph, k) {
            if matches!(e, fsw_core::EdgeRef::Output(_)) {
                oplist.set_comm(e, Interval::with_duration(end, period));
            }
            // Link edges are written when the *receiver* is processed, so that
            // their begin time is the sender's computation end (stored above).
        }
    }
    // Second pass: exit-node output edges were set above; link edges were set
    // when visiting receivers.  Verify coverage defensively.
    debug_assert_eq!(oplist.comm.len(), plan_edges(graph).len());
    Ok(oplist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_core::validate_oplist;

    fn section23() -> (Application, ExecutionGraph) {
        let app = Application::independent(&[(4.0, 1.0); 5]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
        (app, g)
    }

    #[test]
    fn section23_overlap_period_is_four() {
        let (app, g) = section23();
        assert_eq!(overlap_period_lower_bound(&app, &g).unwrap(), 4.0);
        let ol = overlap_period_oplist(&app, &g).unwrap();
        assert_eq!(ol.period(), 4.0);
        validate_oplist(&app, &g, &ol, CommModel::Overlap).unwrap();
    }

    #[test]
    fn heavier_communication_drives_the_period() {
        // One service with large selectivity fanning out to three successors:
        // its outgoing volume dominates.
        let app = Application::independent(&[(1.0, 3.0), (1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        let g = ExecutionGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        // Cout(0) = 3 successors x volume 3 = 9.
        assert_eq!(overlap_period_lower_bound(&app, &g).unwrap(), 9.0);
        let ol = overlap_period_oplist(&app, &g).unwrap();
        assert_eq!(ol.period(), 9.0);
        validate_oplist(&app, &g, &ol, CommModel::Overlap).unwrap();
    }

    #[test]
    fn empty_execution_graph_gets_unit_period() {
        let app = Application::independent(&[(0.5, 0.5)]);
        let g = ExecutionGraph::new(1);
        let ol = overlap_period_oplist(&app, &g).unwrap();
        assert!(ol.period() >= 1.0);
        validate_oplist(&app, &g, &ol, CommModel::Overlap).unwrap();
    }

    #[test]
    fn selective_services_shrink_downstream_volumes() {
        // A filter with selectivity 0.1 in front of an expensive service keeps
        // the period low even though the expensive service costs 10.
        let app = Application::independent(&[(1.0, 0.1), (10.0, 1.0)]);
        let g = ExecutionGraph::from_edges(2, &[(0, 1)]).unwrap();
        let lb = overlap_period_lower_bound(&app, &g).unwrap();
        assert!((lb - 1.0).abs() < 1e-12);
        let ol = overlap_period_oplist(&app, &g).unwrap();
        validate_oplist(&app, &g, &ol, CommModel::Overlap).unwrap();
    }

    #[test]
    fn oplist_valid_on_random_style_dag() {
        let app = Application::independent(&[
            (2.0, 0.5),
            (3.0, 2.0),
            (1.0, 1.0),
            (4.0, 0.3),
            (2.0, 1.5),
            (1.0, 0.9),
        ]);
        let g = ExecutionGraph::from_edges(
            6,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5)],
        )
        .unwrap();
        let ol = overlap_period_oplist(&app, &g).unwrap();
        validate_oplist(&app, &g, &ol, CommModel::Overlap).unwrap();
        let lb = overlap_period_lower_bound(&app, &g).unwrap();
        assert!((ol.period() - lb).abs() < 1e-9);
    }
}
