//! Communication orderings.
//!
//! Under the one-port models a server must serialise its communications; the
//! *order* in which it performs its receptions and its emissions is the
//! combinatorial heart of the orchestration problems (Theorems 1 and 3 of the
//! paper show that choosing these orders optimally is NP-hard for the
//! non-overlap models).  A [`CommOrderings`] value fixes one such choice for
//! every server.

use fsw_core::{in_edges, out_edges, EdgeRef, ExecutionGraph, ServiceId};

/// A fixed ordering of the incoming and outgoing communications of every server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommOrderings {
    /// `incoming[k]` lists the plan edges received by server `k`, in reception order.
    pub incoming: Vec<Vec<EdgeRef>>,
    /// `outgoing[k]` lists the plan edges sent by server `k`, in emission order.
    pub outgoing: Vec<Vec<EdgeRef>>,
}

impl CommOrderings {
    /// The natural ordering: edges sorted by the identifier of the peer service.
    pub fn natural(graph: &ExecutionGraph) -> Self {
        let n = graph.n();
        CommOrderings {
            incoming: (0..n).map(|k| in_edges(graph, k)).collect(),
            outgoing: (0..n).map(|k| out_edges(graph, k)).collect(),
        }
    }

    /// A deadlock-free ordering: every server sorts its communications by the
    /// topological position of the peer service.  Because every sequence
    /// constraint then strictly increases the global (sender position,
    /// receiver position) key, no token-free cycle can appear, whatever the
    /// execution graph.
    pub fn topological(graph: &ExecutionGraph) -> Self {
        let order = graph
            .topological_order()
            .expect("execution graphs are acyclic");
        let mut position = vec![0usize; graph.n()];
        for (pos, &k) in order.iter().enumerate() {
            position[k] = pos;
        }
        let key = |e: &EdgeRef| -> (usize, usize) {
            let sender = e.sender().map_or(0, |s| position[s] + 1);
            let receiver = e.receiver().map_or(usize::MAX, |r| position[r] + 1);
            (sender, receiver)
        };
        let mut ords = CommOrderings::natural(graph);
        for lists in [&mut ords.incoming, &mut ords.outgoing] {
            for list in lists.iter_mut() {
                list.sort_by_key(key);
            }
        }
        ords
    }

    /// Number of servers covered.
    pub fn n(&self) -> usize {
        self.incoming.len()
    }

    /// Checks that the orderings are permutations of the plan edges of `graph`.
    pub fn is_consistent_with(&self, graph: &ExecutionGraph) -> bool {
        if self.incoming.len() != graph.n() || self.outgoing.len() != graph.n() {
            return false;
        }
        for k in 0..graph.n() {
            let mut expected = in_edges(graph, k);
            let mut got = self.incoming[k].clone();
            expected.sort();
            got.sort();
            if expected != got {
                return false;
            }
            let mut expected = out_edges(graph, k);
            let mut got = self.outgoing[k].clone();
            expected.sort();
            got.sort();
            if expected != got {
                return false;
            }
        }
        true
    }

    /// Total number of distinct orderings for `graph`
    /// (`Π_k |in(k)|! · |out(k)|!`), saturating at `usize::MAX`.
    pub fn search_space_size(graph: &ExecutionGraph) -> usize {
        let mut total = 1usize;
        for k in 0..graph.n() {
            for degree in [in_edges(graph, k).len(), out_edges(graph, k).len()] {
                for f in 2..=degree {
                    total = total.saturating_mul(f);
                }
            }
        }
        total
    }

    /// Enumerates every distinct ordering of `graph`, up to `limit` of them.
    ///
    /// Returns `None` if the search space exceeds `limit` (use a heuristic
    /// instead in that case).  Prefer [`OrderingSpace`] in hot loops: it
    /// addresses the same sequence without materialising every element.
    pub fn enumerate_all(graph: &ExecutionGraph, limit: usize) -> Option<Vec<CommOrderings>> {
        let space = OrderingSpace::new(graph, limit)?;
        Some((0..space.len()).map(|i| space.get(i)).collect())
    }

    /// A uniformly random ordering.
    pub fn random<R: FnMut(usize) -> usize>(graph: &ExecutionGraph, mut pick: R) -> Self {
        let mut ords = CommOrderings::natural(graph);
        for lists in [&mut ords.incoming, &mut ords.outgoing] {
            for list in lists.iter_mut() {
                // Fisher-Yates with the caller-provided index picker.
                for i in (1..list.len()).rev() {
                    let j = pick(i + 1);
                    list.swap(i, j);
                }
            }
        }
        ords
    }

    /// Swaps two adjacent entries of one server's incoming or outgoing list
    /// (used by local search).  Returns `false` if the position is out of range.
    pub fn swap_adjacent(&mut self, server: ServiceId, outgoing: bool, pos: usize) -> bool {
        let list = if outgoing {
            &mut self.outgoing[server]
        } else {
            &mut self.incoming[server]
        };
        if pos + 1 >= list.len() {
            return false;
        }
        list.swap(pos, pos + 1);
        true
    }
}

/// The communication-ordering space of an execution graph, addressable by
/// index without materialising it.
///
/// Index `i` corresponds to the `i`-th element of the sequence produced by
/// [`CommOrderings::enumerate_all`] (a mixed-radix odometer over per-server
/// permutation slots, least-significant slot first), so searches that switch
/// from the materialised vector to this accessor visit candidates in the
/// exact same order — a prerequisite for bit-identical first-minimum-wins
/// reductions.  The point of the indirection is allocation: an exhaustive
/// ordering search over thousands of candidates per graph no longer clones
/// the whole space up front.
pub struct OrderingSpace {
    n: usize,
    /// `2n` slots: the permutations of every server's incoming edge list,
    /// then of every server's outgoing edge list.
    per_slot: Vec<Vec<Vec<EdgeRef>>>,
    size: usize,
}

impl OrderingSpace {
    /// Builds the space accessor, or `None` when the space exceeds `limit`.
    pub fn new(graph: &ExecutionGraph, limit: usize) -> Option<Self> {
        if CommOrderings::search_space_size(graph) > limit {
            return None;
        }
        let n = graph.n();
        let mut per_slot: Vec<Vec<Vec<EdgeRef>>> = Vec::with_capacity(2 * n);
        for k in 0..n {
            per_slot.push(permutations(&in_edges(graph, k)));
        }
        for k in 0..n {
            per_slot.push(permutations(&out_edges(graph, k)));
        }
        let size = per_slot.iter().map(Vec::len).product();
        Some(OrderingSpace { n, per_slot, size })
    }

    /// Number of distinct orderings.
    pub fn len(&self) -> usize {
        self.size
    }

    /// `true` when the space is empty (never for a well-formed graph).
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The `index`-th ordering of the enumeration sequence.
    pub fn get(&self, index: usize) -> CommOrderings {
        debug_assert!(index < self.size);
        let mut rest = index;
        let mut pick = |slot: &Vec<Vec<EdgeRef>>| {
            let digit = rest % slot.len();
            rest /= slot.len();
            slot[digit].clone()
        };
        let incoming: Vec<Vec<EdgeRef>> = self.per_slot[..self.n].iter().map(&mut pick).collect();
        let outgoing: Vec<Vec<EdgeRef>> = self.per_slot[self.n..].iter().map(&mut pick).collect();
        CommOrderings { incoming, outgoing }
    }
}

/// All permutations of a slice (in lexicographic-ish order).
pub(crate) fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut result = Vec::new();
    let mut current = Vec::with_capacity(items.len());
    let mut used = vec![false; items.len()];
    fn rec<T: Clone>(
        items: &[T],
        used: &mut [bool],
        current: &mut Vec<T>,
        result: &mut Vec<Vec<T>>,
    ) {
        if current.len() == items.len() {
            result.push(current.clone());
            return;
        }
        for i in 0..items.len() {
            if !used[i] {
                used[i] = true;
                current.push(items[i].clone());
                rec(items, used, current, result);
                current.pop();
                used[i] = false;
            }
        }
    }
    rec(items, &mut used, &mut current, &mut result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fork_join() -> ExecutionGraph {
        // 0 -> {1,2,3} -> 4
        ExecutionGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)]).unwrap()
    }

    #[test]
    fn natural_orderings_are_consistent() {
        let g = fork_join();
        let ords = CommOrderings::natural(&g);
        assert!(ords.is_consistent_with(&g));
        assert_eq!(ords.outgoing[0].len(), 3);
        assert_eq!(ords.incoming[4].len(), 3);
        assert_eq!(ords.incoming[0], vec![EdgeRef::Input(0)]);
        assert_eq!(ords.outgoing[4], vec![EdgeRef::Output(4)]);
    }

    #[test]
    fn search_space_size_counts_permutations() {
        let g = fork_join();
        // 3! at the fork's output, 3! at the join's input, everything else degree 1.
        assert_eq!(CommOrderings::search_space_size(&g), 36);
        let chain = ExecutionGraph::chain_of(4, &[0, 1, 2, 3]).unwrap();
        assert_eq!(CommOrderings::search_space_size(&chain), 1);
    }

    #[test]
    fn enumerate_all_respects_limit() {
        let g = fork_join();
        let all = CommOrderings::enumerate_all(&g, 100).unwrap();
        assert_eq!(all.len(), 36);
        assert!(all.iter().all(|o| o.is_consistent_with(&g)));
        // All enumerated orderings are distinct.
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
        assert!(CommOrderings::enumerate_all(&g, 10).is_none());
    }

    #[test]
    fn ordering_space_matches_enumerate_all() {
        let g = fork_join();
        let all = CommOrderings::enumerate_all(&g, 100).unwrap();
        let space = OrderingSpace::new(&g, 100).unwrap();
        assert_eq!(space.len(), all.len());
        for (i, ords) in all.iter().enumerate() {
            assert_eq!(&space.get(i), ords, "index {i}");
        }
        assert!(OrderingSpace::new(&g, 10).is_none());
    }

    #[test]
    fn random_orderings_are_consistent() {
        let g = fork_join();
        let mut state = 12345u64;
        let ords = CommOrderings::random(&g, |m| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize % m
        });
        assert!(ords.is_consistent_with(&g));
    }

    #[test]
    fn swap_adjacent_keeps_consistency() {
        let g = fork_join();
        let mut ords = CommOrderings::natural(&g);
        assert!(ords.swap_adjacent(0, true, 0));
        assert!(ords.is_consistent_with(&g));
        assert!(!ords.swap_adjacent(0, true, 5));
        assert!(!ords.swap_adjacent(1, false, 0));
    }

    #[test]
    fn permutation_helper() {
        assert_eq!(permutations::<u32>(&[]).len(), 1);
        assert_eq!(permutations(&[1]).len(), 1);
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
    }
}
