//! The no-communication baseline of Srivastava et al.
//!
//! The paper's starting point ([1, 2] in its bibliography) ignores
//! communication costs altogether: the period of a plan is
//! `max_k Π_{j ∈ Ancest_k} σ_j · c_k` and the latency is the longest path of
//! computation costs.  With homogeneous servers MINPERIOD is then polynomial:
//! all the filters (σ ≤ 1) are chained (a greedy exchange order is optimal)
//! and every expander (σ > 1) is attached directly after the last filter, so
//! that it benefits from the full filtering but adds no selectivity to anyone
//! else.  Counter-example B.1 of the paper (experiment E2) shows this optimal
//! structure can be a factor-2 loss once communication costs are modelled.

use fsw_core::{Application, CoreError, CoreResult, ExecutionGraph, PlanMetrics, ServiceId};

/// Period of an execution graph when communications are free
/// (`max_k Ccomp(k)`).
pub fn nocomm_period(app: &Application, graph: &ExecutionGraph) -> CoreResult<f64> {
    let metrics = PlanMetrics::compute(app, graph)?;
    Ok((0..graph.n())
        .map(|k| metrics.c_comp(k))
        .fold(0.0, f64::max))
}

/// Latency of an execution graph when communications are free: the longest
/// path of computation costs from an entry node to an exit node.
pub fn nocomm_latency(app: &Application, graph: &ExecutionGraph) -> CoreResult<f64> {
    let metrics = PlanMetrics::compute(app, graph)?;
    let order = graph.topological_order()?;
    let mut done = vec![0.0f64; graph.n()];
    let mut best = 0.0f64;
    for &k in &order {
        let ready = graph
            .preds(k)
            .iter()
            .map(|&p| done[p])
            .fold(0.0f64, f64::max);
        done[k] = ready + metrics.c_comp(k);
        best = best.max(done[k]);
    }
    Ok(best)
}

/// The optimal MINPERIOD plan when communication costs are ignored
/// (only valid for applications without precedence constraints).
///
/// Structure: a chain of all the filters (σ ≤ 1) ordered by the greedy
/// exchange rule `max(c_i, σ_i c_j) ≤ max(c_j, σ_j c_i)`, followed by every
/// expander attached as a direct successor of the last filter.
pub fn nocomm_minperiod_plan(app: &Application) -> CoreResult<ExecutionGraph> {
    if app.has_constraints() {
        return Err(CoreError::NotAChain);
    }
    let mut filters: Vec<ServiceId> = (0..app.n())
        .filter(|&k| app.selectivity(k) <= 1.0)
        .collect();
    let expanders: Vec<ServiceId> = (0..app.n()).filter(|&k| app.selectivity(k) > 1.0).collect();
    // Exchange rule specialised to the no-communication case (weight = c_k):
    // filters by non-decreasing cost "normalised" by how much they filter.
    filters.sort_by(|&a, &b| {
        let left = app.cost(a).max(app.selectivity(a) * app.cost(b));
        let right = app.cost(b).max(app.selectivity(b) * app.cost(a));
        left.partial_cmp(&right).expect("finite costs")
    });
    let mut graph = ExecutionGraph::new(app.n());
    for w in filters.windows(2) {
        graph.add_edge(w[0], w[1])?;
    }
    if let Some(&last) = filters.last() {
        for &e in &expanders {
            graph.add_edge(last, e)?;
        }
    }
    Ok(graph)
}

/// Optimal no-communication period over all plans (the value achieved by
/// [`nocomm_minperiod_plan`]); provided for convenience in experiments.
pub fn nocomm_optimal_period(app: &Application) -> CoreResult<f64> {
    let graph = nocomm_minperiod_plan(app)?;
    nocomm_period(app, &graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_core::CommModel;

    #[test]
    fn nocomm_period_and_latency_of_a_chain() {
        let app = Application::independent(&[(2.0, 0.5), (4.0, 1.0)]);
        let g = ExecutionGraph::chain_of(2, &[0, 1]).unwrap();
        assert_eq!(nocomm_period(&app, &g).unwrap(), 2.0);
        assert_eq!(nocomm_latency(&app, &g).unwrap(), 4.0);
    }

    #[test]
    fn filters_chain_before_expanders() {
        let app = Application::independent(&[(1.0, 0.5), (2.0, 0.5), (3.0, 2.0), (4.0, 3.0)]);
        let g = nocomm_minperiod_plan(&app).unwrap();
        assert!(g.is_forest());
        // Both expanders hang off the last filter; they are not chained together.
        assert_eq!(g.preds(2), g.preds(3));
        assert!(g.succs(2).is_empty() && g.succs(3).is_empty());
        // Filters benefit every expander: period = max(1, 0.5*2, 0.25*3, 0.25*4) = 1.
        assert_eq!(nocomm_period(&app, &g).unwrap(), 1.0);
    }

    #[test]
    fn exhaustive_check_on_small_instances() {
        // The greedy no-communication plan matches exhaustive search over
        // forests for small instances.
        let apps = [
            Application::independent(&[(1.0, 0.9), (2.0, 0.3), (5.0, 1.5)]),
            Application::independent(&[(4.0, 0.5), (1.0, 0.5), (2.0, 2.0), (3.0, 0.7)]),
            Application::independent(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]),
        ];
        for app in apps {
            let greedy = nocomm_optimal_period(&app).unwrap();
            let exhaustive = crate::minperiod::exhaustive_forest_best(&app, |g| {
                nocomm_period(&app, g).unwrap_or(f64::INFINITY)
            })
            .unwrap()
            .0;
            assert!(
                greedy <= exhaustive + 1e-9,
                "greedy {greedy} vs exhaustive {exhaustive}"
            );
        }
    }

    #[test]
    fn counterexample_b1_structure_degrades_with_communication() {
        // A miniature version of counter-example B.1: two cheap filters with
        // selectivity close to 1 and several expensive services.  Without
        // communication the optimal plan chains the filters in front of
        // everything; with communication the fan-out of the second filter
        // makes its outgoing volume the bottleneck.
        let mut specs = vec![(10.0, 0.99), (10.0, 0.99)];
        for _ in 0..20 {
            specs.push((10.0 / 0.99, 10.0));
        }
        let app = Application::independent(&specs);
        let nocomm_plan = nocomm_minperiod_plan(&app).unwrap();
        let nocomm = nocomm_period(&app, &nocomm_plan).unwrap();
        let metrics = PlanMetrics::compute(&app, &nocomm_plan).unwrap();
        let with_comm = metrics.period_lower_bound(CommModel::Overlap);
        assert!(with_comm > 1.9 * nocomm, "{with_comm} vs {nocomm}");
    }
}
