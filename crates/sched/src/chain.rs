//! Plans restricted to linear chains (Propositions 8 and 16).
//!
//! When the execution graph is forced to be a single linear chain (and the
//! application has no precedence constraints), both MINPERIOD and MINLATENCY
//! become polynomial: a greedy exchange-argument ordering is optimal.
//!
//! * **Period** (Proposition 8): on a chain every server reaches its execution
//!   bound, so the period of the chain `π` is
//!   `max_k Π_{j<k} σ_{π_j} · w(π_k)` with
//!   `w(i) = 1 + c_i + σ_i` for the one-port models and
//!   `w(i) = max(1, c_i, σ_i)` for `OVERLAP`.  The optimal order places the
//!   filters (σ ≤ 1) first by non-decreasing `w`, then the expanders (σ > 1)
//!   by non-decreasing `σ / w`.
//! * **Latency** (Proposition 16): the latency of a chain is
//!   `1 + Σ_k Π_{j<k} σ_{π_j} (c_{π_k} + σ_{π_k})`; ordering by non-increasing
//!   `(1 − σ) / (1 + c)` is optimal, for every model.

use fsw_core::{Application, CommModel, CoreError, CoreResult, ExecutionGraph, ServiceId};

/// Per-service weight used by the chain period formula.
fn chain_weight(app: &Application, k: ServiceId, model: CommModel) -> f64 {
    let c = app.cost(k);
    let s = app.selectivity(k);
    match model {
        CommModel::Overlap => 1.0f64.max(c).max(s),
        CommModel::OutOrder | CommModel::InOrder => 1.0 + c + s,
    }
}

/// Period of the chain `order` under `model`.
///
/// On a chain the one-port lower bound `max_k (Cin + Ccomp + Cout)` is always
/// achievable (there is no ordering freedom), so this value is exact for the
/// three models.
pub fn chain_period(app: &Application, order: &[ServiceId], model: CommModel) -> f64 {
    let mut prefix = 1.0f64;
    let mut best = 0.0f64;
    for &k in order {
        best = best.max(prefix * chain_weight(app, k, model));
        prefix *= app.selectivity(k);
    }
    best
}

/// Latency of the chain `order` (identical for the three models).
pub fn chain_latency(app: &Application, order: &[ServiceId]) -> f64 {
    let mut prefix = 1.0f64;
    let mut total = 1.0f64; // the input transfer of size δ0 = 1
    for &k in order {
        total += prefix * app.cost(k);
        prefix *= app.selectivity(k);
        total += prefix; // transfer towards the next service (or the output node)
    }
    if order.is_empty() {
        0.0
    } else {
        total
    }
}

/// Greedy optimal chain for MINPERIOD restricted to chains (Proposition 8).
///
/// Only meaningful for applications without precedence constraints (an error
/// is returned otherwise, because an arbitrary chain may not respect them).
pub fn chain_minperiod_order(app: &Application, model: CommModel) -> CoreResult<Vec<ServiceId>> {
    if app.has_constraints() {
        return Err(CoreError::NotAChain);
    }
    let mut filters: Vec<ServiceId> = (0..app.n())
        .filter(|&k| app.selectivity(k) <= 1.0)
        .collect();
    let mut expanders: Vec<ServiceId> =
        (0..app.n()).filter(|&k| app.selectivity(k) > 1.0).collect();
    filters.sort_by(|&a, &b| {
        chain_weight(app, a, model)
            .partial_cmp(&chain_weight(app, b, model))
            .expect("finite weights")
    });
    expanders.sort_by(|&a, &b| {
        let ra = app.selectivity(a) / chain_weight(app, a, model);
        let rb = app.selectivity(b) / chain_weight(app, b, model);
        ra.partial_cmp(&rb).expect("finite ratios")
    });
    filters.extend(expanders);
    Ok(filters)
}

/// Greedy optimal chain for MINLATENCY restricted to chains (Proposition 16):
/// non-increasing `(1 − σ_i) / (1 + c_i)`.
pub fn chain_minlatency_order(app: &Application) -> CoreResult<Vec<ServiceId>> {
    if app.has_constraints() {
        return Err(CoreError::NotAChain);
    }
    let mut order: Vec<ServiceId> = (0..app.n()).collect();
    order.sort_by(|&a, &b| {
        let ka = (1.0 - app.selectivity(a)) / (1.0 + app.cost(a));
        let kb = (1.0 - app.selectivity(b)) / (1.0 + app.cost(b));
        kb.partial_cmp(&ka).expect("finite keys")
    });
    Ok(order)
}

/// The execution graph corresponding to a chain order.
pub fn chain_graph(n: usize, order: &[ServiceId]) -> CoreResult<ExecutionGraph> {
    ExecutionGraph::chain_of(n, order)
}

/// Exhaustive optimum over all chain orders (for cross-checking the greedy
/// algorithms on small instances).  Returns `(best value, best order)`.
pub fn chain_exhaustive<F: Fn(&[ServiceId]) -> f64>(
    n: usize,
    objective: F,
) -> Option<(f64, Vec<ServiceId>)> {
    if n == 0 {
        return None;
    }
    let mut best: Option<(f64, Vec<ServiceId>)> = None;
    let mut order: Vec<ServiceId> = (0..n).collect();
    permute(&mut order, 0, &mut |perm| {
        let value = objective(perm);
        if best.as_ref().is_none_or(|(b, _)| value < *b) {
            best = Some((value, perm.to_vec()));
        }
    });
    best
}

fn permute<F: FnMut(&[ServiceId])>(items: &mut Vec<ServiceId>, start: usize, visit: &mut F) {
    if start == items.len() {
        visit(items);
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute(items, start + 1, visit);
        items.swap(start, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_apps(count: usize, n: usize) -> Vec<Application> {
        let mut state = 0xDEADBEEFCAFEu64;
        let mut next = move |m: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 33) as usize % m
        };
        (0..count)
            .map(|_| {
                let specs: Vec<(f64, f64)> = (0..n)
                    .map(|_| {
                        let cost = 0.5 + next(8) as f64 * 0.5;
                        let sel = [0.25, 0.5, 0.8, 1.0, 1.5, 2.0][next(6)];
                        (cost, sel)
                    })
                    .collect();
                Application::independent(&specs)
            })
            .collect()
    }

    #[test]
    fn chain_period_formula() {
        let app = Application::independent(&[(2.0, 0.5), (3.0, 2.0)]);
        // order [0, 1]: weights one-port: 1+2+0.5=3.5 ; prefix 0.5 * (1+3+2)=3.0 -> max 3.5
        assert_eq!(chain_period(&app, &[0, 1], CommModel::InOrder), 3.5);
        // order [1, 0]: 6.0 ; 2*(3.5)=7 -> 7
        assert_eq!(chain_period(&app, &[1, 0], CommModel::InOrder), 7.0);
        // overlap: [0,1]: max(1,2,0.5)=2 ; 0.5*max(1,3,2)=1.5 -> 2
        assert_eq!(chain_period(&app, &[0, 1], CommModel::Overlap), 2.0);
    }

    #[test]
    fn chain_latency_formula() {
        let app = Application::independent(&[(2.0, 0.5), (3.0, 1.0)]);
        assert_eq!(chain_latency(&app, &[0, 1]), 5.5);
        assert_eq!(chain_latency(&app, &[1, 0]), 1.0 + 3.0 + 1.0 + 2.0 + 0.5);
        assert_eq!(chain_latency(&app, &[]), 0.0);
    }

    #[test]
    fn greedy_period_matches_exhaustive() {
        for model in CommModel::ALL {
            for app in pseudo_random_apps(25, 6) {
                let greedy = chain_minperiod_order(&app, model).unwrap();
                let greedy_period = chain_period(&app, &greedy, model);
                let (best, best_order) =
                    chain_exhaustive(app.n(), |o| chain_period(&app, o, model)).unwrap();
                assert!(
                    greedy_period <= best + 1e-9,
                    "{model}: greedy {greedy_period} vs exhaustive {best} (order {best_order:?})"
                );
            }
        }
    }

    #[test]
    fn greedy_latency_matches_exhaustive() {
        for app in pseudo_random_apps(25, 6) {
            let greedy = chain_minlatency_order(&app).unwrap();
            let greedy_latency = chain_latency(&app, &greedy);
            let (best, best_order) = chain_exhaustive(app.n(), |o| chain_latency(&app, o)).unwrap();
            assert!(
                greedy_latency <= best + 1e-9,
                "greedy {greedy_latency} vs exhaustive {best} (order {best_order:?})"
            );
        }
    }

    #[test]
    fn chain_latency_agrees_with_the_latency_module() {
        use crate::latency::oneport_latency_search;
        let app = Application::independent(&[(2.0, 0.5), (3.0, 2.0), (1.0, 0.8)]);
        let order = vec![2, 0, 1];
        let g = chain_graph(3, &order).unwrap();
        let closed_form = chain_latency(&app, &order);
        let searched = oneport_latency_search(&app, &g, 10).unwrap();
        assert!((closed_form - searched.latency).abs() < 1e-9);
    }

    #[test]
    fn chain_period_agrees_with_the_oneport_module() {
        use crate::oneport::{oneport_period_search, OnePortStyle};
        let app = Application::independent(&[(2.0, 0.5), (3.0, 2.0), (1.0, 0.8)]);
        let order = vec![0, 2, 1];
        let g = chain_graph(3, &order).unwrap();
        let closed_form = chain_period(&app, &order, CommModel::InOrder);
        let searched = oneport_period_search(&app, &g, OnePortStyle::InOrder, 10).unwrap();
        assert!((closed_form - searched.period).abs() < 1e-9);
    }

    #[test]
    fn constrained_applications_are_rejected() {
        let mut app = Application::independent(&[(1.0, 1.0), (1.0, 1.0)]);
        app.add_constraint(0, 1).unwrap();
        assert!(chain_minperiod_order(&app, CommModel::Overlap).is_err());
        assert!(chain_minlatency_order(&app).is_err());
    }
}
