//! Execution strategy for the search engines: thread fan-out and deadlines.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! usual `rayon` dependency is replaced by a deliberately small work-splitting
//! helper on `std::thread::scope`.  Every parallel search in this crate is
//! written so that its result is **bit-identical to the serial run**: work is
//! split into contiguous chunks that preserve the serial enumeration order,
//! each chunk is reduced with the same strictly-less comparison the serial
//! loop uses, and the per-chunk winners are folded left-to-right — so the
//! first minimum of the serial enumeration always wins, whatever the thread
//! count.

use std::time::Instant;

/// How a search is executed: how many worker threads to fan out to and an
/// optional wall-clock deadline after which the search returns its best
/// result so far (flagged as non-exhaustive).
#[derive(Clone, Copy, Debug, Default)]
pub struct Exec {
    /// Number of worker threads; `0` means "use available parallelism",
    /// `1` means fully serial.
    pub threads: usize,
    /// Absolute deadline; enumeration stops once it has passed.
    pub deadline: Option<Instant>,
    /// How many enumeration levels the exhaustive searches expand into
    /// parallel tasks: `1` keeps the legacy first-level split (≈ `n` tasks),
    /// `2` splits the first two levels (≈ `n²` tasks, much better load
    /// balance on many-core machines — the shared incumbent makes the deeper
    /// split cheap to reduce), `0` picks automatically (two levels whenever
    /// more than one worker is in play).  Results are bit-identical for
    /// every value: tasks are reduced in serial enumeration order.
    pub split_levels: usize,
}

impl Exec {
    /// Fully serial execution with no deadline (the legacy behaviour).
    pub fn serial() -> Self {
        Exec {
            threads: 1,
            deadline: None,
            split_levels: 0,
        }
    }

    /// Execution on `threads` workers (`0` = auto) with no deadline.
    pub fn threaded(threads: usize) -> Self {
        Exec {
            threads,
            deadline: None,
            split_levels: 0,
        }
    }

    /// The concrete worker count this strategy resolves to.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            t => t,
        }
    }

    /// The concrete task-split depth this strategy resolves to (`0` = auto:
    /// two levels when fanning out, one when serial).
    pub fn effective_split_levels(&self) -> usize {
        match self.split_levels {
            0 => {
                if self.effective_threads() > 1 {
                    2
                } else {
                    1
                }
            }
            l => l.min(2),
        }
    }

    /// `true` once the deadline (if any) has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Applies `f` to contiguous chunks of `items` (at most `threads` of them, in
/// order) and returns the per-chunk results in chunk order.  `f` receives the
/// chunk's base index into `items` so chunk-local winners can be reported as
/// global indices.
///
/// With `threads <= 1` or fewer than two items this degenerates to a single
/// call of `f(0, items)` on the current thread, so serial and parallel
/// callers share one code path.
pub fn par_chunks<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return vec![f(0, items)];
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, chunk)| scope.spawn(move || f(i * chunk_len, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    })
}

/// [`par_chunks`] with **weighted** splitting: chunk boundaries are chosen
/// so that every chunk carries roughly `Σ weight / threads` of the total
/// weight instead of an equal item count.  Canonical orbit streams use this
/// with the orbit size as the weight — representatives standing for large
/// orbits cluster at one end of the stream, so equal-count chunks
/// load-imbalance badly as `n` grows.  Chunks stay contiguous and in order,
/// so any fold that is correct for [`par_chunks`] (first-minimum-wins in
/// particular) is bit-identical here too.
pub fn par_chunks_weighted<T, R, F, W>(threads: usize, items: &[T], weight: W, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
    W: Fn(&T) -> u64,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return vec![f(0, items)];
    }
    let total: u128 = items.iter().map(|t| weight(t) as u128).sum();
    let per_chunk = (total / threads as u128).max(1);
    // Greedy contiguous split: close a chunk once its weight reaches the
    // per-chunk share (always keeping at least one item per chunk).
    let mut bounds: Vec<usize> = Vec::with_capacity(threads + 1);
    bounds.push(0);
    let mut acc: u128 = 0;
    for (i, item) in items.iter().enumerate() {
        acc += weight(item) as u128;
        if acc >= per_chunk && bounds.len() < threads && i + 1 < items.len() {
            bounds.push(i + 1);
            acc = 0;
        }
    }
    bounds.push(items.len());
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0], w[1]);
                let chunk = &items[lo..hi];
                scope.spawn(move || f(lo, chunk))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    })
}

/// Folds per-chunk `(value, payload)` winners left-to-right with a strict
/// `<` comparison, reproducing the "first minimum wins" rule of a serial
/// enumeration loop.
pub fn fold_min<P>(parts: Vec<Option<(f64, P)>>) -> Option<(f64, P)> {
    let mut best: Option<(f64, P)> = None;
    for part in parts.into_iter().flatten() {
        if best.as_ref().is_none_or(|(b, _)| part.0 < *b) {
            best = Some(part);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_preserves_order_and_offsets() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 2, 3, 7] {
            let chunks = par_chunks(threads, &items, |base, chunk| (base, chunk.to_vec()));
            let mut flat = Vec::new();
            for (base, chunk) in chunks {
                assert_eq!(flat.len(), base);
                flat.extend(chunk);
            }
            assert_eq!(flat, items);
        }
    }

    #[test]
    fn weighted_chunks_preserve_order_and_balance_weight() {
        // Heavily skewed weights: the first item dwarfs the rest.
        let items: Vec<u64> = std::iter::once(1_000)
            .chain(std::iter::repeat_n(1, 99))
            .collect();
        for threads in [1, 2, 4, 7] {
            let chunks = par_chunks_weighted(
                threads,
                &items,
                |&w| w,
                |base, chunk| (base, chunk.to_vec()),
            );
            assert!(chunks.len() <= threads.max(1));
            let mut flat = Vec::new();
            for (base, chunk) in &chunks {
                assert_eq!(flat.len(), *base);
                assert!(!chunk.is_empty());
                flat.extend(chunk.iter().copied());
            }
            assert_eq!(flat, items);
            if threads >= 2 {
                // The heavy head is isolated into its own chunk.
                assert_eq!(chunks[0].1, vec![1_000]);
            }
        }
    }

    #[test]
    fn fold_min_takes_first_of_ties() {
        let parts = vec![Some((2.0, "a")), Some((1.0, "b")), Some((1.0, "c")), None];
        assert_eq!(fold_min(parts), Some((1.0, "b")));
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert!(Exec::threaded(0).effective_threads() >= 1);
        assert_eq!(Exec::serial().effective_threads(), 1);
    }
}
