//! MINPERIOD: choosing the execution graph that minimises the period.
//!
//! All three variants (OVERLAP, OUTORDER, INORDER) are NP-hard (Theorem 2),
//! so this module offers a ladder of solvers:
//!
//! * exhaustive enumeration of forest execution graphs — justified by
//!   Proposition 4: without precedence constraints there is always an optimal
//!   plan whose execution graph is a forest;
//! * exhaustive enumeration of *all* DAGs for very small instances (used to
//!   validate Proposition 4 experimentally, experiment E9);
//! * constructive seeds (independent services, the Proposition 8 chain, the
//!   no-communication structure) followed by hill-climbing local search over
//!   parent reassignments;
//! * the period of a candidate graph is measured by a pluggable
//!   [`PeriodEvaluation`] — the exact polynomial value for OVERLAP, and either
//!   the one-port lower bound or an actual ordering search for the one-port
//!   models.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use fsw_core::{
    canonical_classed_member, Application, CommModel, CoreResult, ExecutionGraph,
    PartialForestMetrics, PlanMetrics, ServiceId, WeightClasses,
};

use crate::chain::{chain_graph, chain_minperiod_order};
use crate::engine::frontier::{
    best_first_forest_search_stats, streamed_canonical_search_observed, EngineMetrics, StreamProbe,
    StreamStats, DEFAULT_FRONTIER_CAP,
};
use crate::engine::{
    prune_threshold, tags, CanonicalRep, CanonicalSpace, EvalCache, ForestCursor, Incumbent,
    PartialPrune, SearchStrategy, Symmetry,
};
use crate::oneport::{oneport_period_search, oneport_period_search_prepared, OnePortStyle};
use crate::orderings::CommOrderings;
use crate::outorder::{outorder_period_search, outorder_period_search_bounded, OutOrderOptions};
use crate::par::{fold_min, par_chunks, par_chunks_weighted, Exec};

/// How the period of a candidate execution graph is evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeriodEvaluation {
    /// `max_k Cexec(k)` — exact for OVERLAP (Theorem 1), a lower bound for the
    /// one-port models.  Cheap; used inside search loops.
    LowerBound,
    /// Run the orchestration machinery for the chosen model: exact for
    /// OVERLAP, ordering search for INORDER, cyclic-scheduling search for
    /// OUTORDER.  More faithful, considerably more expensive.
    Orchestrated {
        /// Bound on the ordering space enumerated exhaustively.
        exhaustive_limit: usize,
    },
}

/// Options for the MINPERIOD solvers.
#[derive(Clone, Copy, Debug)]
pub struct MinPeriodOptions {
    /// Target communication model.
    pub model: CommModel,
    /// Evaluation used while searching.
    pub evaluation: PeriodEvaluation,
    /// Upper bound on the number of parent functions enumerated by the
    /// exhaustive forest solver.
    pub forest_enumeration_cap: usize,
    /// Number of hill-climbing passes of the local search.
    pub local_search_passes: usize,
    /// How the exhaustive searches walk their candidate space (depth-first
    /// branch-and-bound vs best-first over the partial bound); both return
    /// bit-identical solutions, see [`SearchStrategy`].
    pub strategy: SearchStrategy,
}

impl Default for MinPeriodOptions {
    fn default() -> Self {
        MinPeriodOptions {
            model: CommModel::Overlap,
            evaluation: PeriodEvaluation::LowerBound,
            forest_enumeration_cap: 2_000_000,
            local_search_passes: 32,
            strategy: SearchStrategy::Auto,
        }
    }
}

impl MinPeriodOptions {
    /// Convenience constructor for a given model with default effort.
    pub fn for_model(model: CommModel) -> Self {
        MinPeriodOptions {
            model,
            ..MinPeriodOptions::default()
        }
    }
}

/// Result of a MINPERIOD solve.
#[derive(Clone, Debug)]
pub struct MinPeriodResult {
    /// The best period found (as measured by the requested evaluation).
    pub period: f64,
    /// The execution graph achieving it.
    pub graph: ExecutionGraph,
    /// `true` when the result comes from an exhaustive enumeration (optimal
    /// for the requested evaluation), `false` for heuristics.
    pub exhaustive: bool,
}

/// Evaluates the period of a candidate execution graph under the requested model.
pub fn evaluate_period(
    app: &Application,
    graph: &ExecutionGraph,
    model: CommModel,
    evaluation: PeriodEvaluation,
) -> CoreResult<f64> {
    let metrics = PlanMetrics::compute(app, graph)?;
    let lower = metrics.period_lower_bound(model);
    match evaluation {
        PeriodEvaluation::LowerBound => Ok(lower),
        PeriodEvaluation::Orchestrated { exhaustive_limit } => match model {
            CommModel::Overlap => Ok(lower),
            CommModel::InOrder => {
                Ok(
                    oneport_period_search(app, graph, OnePortStyle::InOrder, exhaustive_limit)?
                        .period,
                )
            }
            CommModel::OutOrder => {
                let opts = OutOrderOptions {
                    inorder_exhaustive_limit: exhaustive_limit,
                    ..OutOrderOptions::default()
                };
                Ok(outorder_period_search(app, graph, &opts)?.period)
            }
        },
    }
}

/// Outcome of a budgeted exhaustive search: the best candidate found and
/// whether the enumeration ran to completion (`complete == false` means a
/// deadline interrupted it, so the value is only an upper bound on the
/// optimum of the enumerated space).
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Best objective value found.
    pub value: f64,
    /// The execution graph achieving it.
    pub graph: ExecutionGraph,
    /// `true` when every candidate of the space was examined.
    pub complete: bool,
}

/// Enumerates every forest execution graph (as a parent function) compatible
/// with the application's precedence constraints and returns the one
/// minimising `eval`.  Returns `None` when the search space exceeds the
/// default cap or when no feasible forest exists.
pub fn exhaustive_forest_best<F: FnMut(&ExecutionGraph) -> f64>(
    app: &Application,
    mut eval: F,
) -> Option<(f64, ExecutionGraph)> {
    exhaustive_forest_best_capped(app, 2_000_000, &mut eval)
}

/// [`exhaustive_forest_best`] with an explicit cap on the number of parent
/// functions examined.
pub fn exhaustive_forest_best_capped<F: FnMut(&ExecutionGraph) -> f64>(
    app: &Application,
    cap: usize,
    eval: &mut F,
) -> Option<(f64, ExecutionGraph)> {
    if forest_space_size(app.n())? > cap {
        return None;
    }
    let mut parents: Vec<Option<ServiceId>> = vec![None; app.n()];
    let mut best: Option<(f64, ExecutionGraph)> = None;
    enumerate_parents(app, &mut parents, 0, &mut best, eval, None);
    best
}

/// The budgeted, parallel, branch-and-bound variant of
/// [`exhaustive_forest_best_capped`]: the first one or two enumeration
/// levels (see [`Exec::split_levels`]) are expanded into tasks, split over
/// `exec.effective_threads()` workers and reduced in enumeration order, so
/// the result is bit-identical to the serial run; an optional deadline
/// interrupts the enumeration (flagged via [`SearchOutcome::complete`]).
///
/// `eval` receives the current incumbent as a *cutoff*: it may return any
/// value above the cutoff (typically `∞`) for candidates it can prove cannot
/// beat it, and must return the exact value otherwise.  `prune` selects the
/// admissible partial-assignment bound (maintained incrementally by
/// [`PartialForestMetrics`]) used to discard whole subtrees; subtrees are
/// pruned only when their bound *strictly* clears the shared incumbent, so
/// the first-minimum winner of the brute-force enumeration always survives,
/// whatever the thread count.
///
/// Under [`Symmetry::Auto`] on a reducible instance (uniform weights, no
/// constraints — see [`CanonicalSpace`]) the search enumerates **canonical
/// forest representatives** instead of all `n^n` parent functions: the cap
/// is then measured against the class count (1 842 classes at `n = 10`
/// versus `10^10` parent functions), the optimum *value* is unchanged, and
/// the winner is the canonical tie-break representative.  Callers passing
/// `Auto` assert that `eval` is label-invariant on uniform weights.
///
/// [`Symmetry::Classes`] extends the reduction to **multi-weight-class**
/// instances (class-preserving relabelling orbits, cap measured against the
/// coloured class count): callers assert the stronger class-invariance of
/// `eval` — see the bit-safety discussion on [`Symmetry`].  When the
/// coloured space exceeds the cap the search falls back to the raw labelled
/// enumeration (value-exact by construction) before giving up.
///
/// `strategy` picks the walk ([`SearchStrategy`]): depth-first
/// branch-and-bound or best-first over the partial bound (bounded frontier,
/// spill-to-DFS).  Solutions are bit-identical either way; `Auto` uses
/// best-first on the canonical orbit spaces and depth-first on the raw
/// labelled space.
pub fn exhaustive_forest_search<F>(
    app: &Application,
    cap: usize,
    exec: Exec,
    prune: PartialPrune,
    symmetry: Symmetry,
    strategy: SearchStrategy,
    eval: &F,
) -> Option<SearchOutcome>
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    exhaustive_forest_search_seeded(
        app,
        cap,
        exec,
        prune,
        symmetry,
        strategy,
        f64::INFINITY,
        eval,
    )
}

/// [`exhaustive_forest_search`] with the shared incumbent **seeded** with a
/// known upper bound (the warm-start entry of the serving layer: the value
/// of a previous plan adapted to the mutated instance).
///
/// Seeding preserves bit-identity as long as `seed` is an upper bound on
/// the searched space's optimum (any feasible candidate's value is): both
/// the subtree pruning and the bound-clearance certificate fire only on a
/// *strict* clearance of the incumbent, so every candidate tying the
/// optimum is still evaluated and the first-minimum winner is unchanged —
/// the search merely skips the hopeless region it would otherwise have
/// walked to re-discover the bound.  `f64::INFINITY` recovers the cold
/// search exactly.
#[allow(clippy::too_many_arguments)]
pub fn exhaustive_forest_search_seeded<F>(
    app: &Application,
    cap: usize,
    exec: Exec,
    prune: PartialPrune,
    symmetry: Symmetry,
    strategy: SearchStrategy,
    incumbent_seed: f64,
    eval: &F,
) -> Option<SearchOutcome>
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    exhaustive_forest_search_probed(
        app,
        cap,
        exec,
        prune,
        symmetry,
        strategy,
        incumbent_seed,
        eval,
        None,
    )
}

/// [`exhaustive_forest_search_seeded`] with an optional [`StreamProbe`]
/// recording the lazy walk's [`StreamStats`](crate::engine::frontier::StreamStats)
/// when the search resolves to the streamed canonical path — the telemetry
/// channel behind `SolveStats::stream`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exhaustive_forest_search_probed<F>(
    app: &Application,
    cap: usize,
    exec: Exec,
    prune: PartialPrune,
    symmetry: Symmetry,
    strategy: SearchStrategy,
    incumbent_seed: f64,
    eval: &F,
    probe: Option<&StreamProbe>,
) -> Option<SearchOutcome>
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    let n = app.n();
    if n == 0 {
        return None;
    }
    // Stage spans resolve once per solve, and only when the probe carries a
    // registry — the plain path pays nothing.
    let engine_obs = probe
        .and_then(|p| p.metrics())
        .map(|registry| EngineMetrics::new(registry));
    if symmetry != Symmetry::Full && CanonicalSpace::reducible(app) {
        if CanonicalSpace::forest_class_count(n) > cap as u128 {
            return None;
        }
        // Every strategy resolves to the streamed walk on the uniform
        // canonical space: the single-class partition degenerates the
        // colouring walk to a linear pass with one canonical colouring per
        // shape, so nothing is ever materialised (the old depth-first path
        // collected the full representative list up front), telemetry lands
        // on every uniform solve, and the `(value, canonical index)` winner
        // is bit-identical to the retired materialised scan — serial,
        // parallel, depth-first or best-first alike.
        let classes = WeightClasses::of(app);
        let (outcome, stats) = streamed_canonical_search_observed(
            app,
            &classes,
            exec,
            prune,
            DEFAULT_FRONTIER_CAP,
            incumbent_seed,
            eval,
            engine_obs.as_ref(),
        );
        if let Some(p) = probe {
            p.record(stats);
        }
        return outcome;
    }
    if symmetry == Symmetry::Classes && CanonicalSpace::class_reducible(app) {
        if strategy == SearchStrategy::DepthFirst {
            match CanonicalSpace::classed_representatives_within(app, cap, exec.deadline) {
                crate::engine::ClassedGeneration::Generated(reps) => {
                    // Telemetry attaches on every strategy (see
                    // `SolveStats::stream`): the materialised walk reports
                    // the whole representative list as resident — the
                    // honest contrast with the streamed walk's bounded
                    // residency — and the coloured-orbit total these
                    // representatives stand for.
                    let expanded = AtomicU64::new(0);
                    let counted = |graph: &ExecutionGraph, incumbent: f64| {
                        expanded.fetch_add(1, Ordering::Relaxed);
                        eval(graph, incumbent)
                    };
                    let orbits = reps
                        .iter()
                        .try_fold(0u128, |acc, rep| acc.checked_add(rep.orbit));
                    let outcome =
                        canonical_forest_search(app, &reps, exec, prune, incumbent_seed, &counted);
                    if let Some(p) = probe {
                        p.record(StreamStats {
                            shapes: reps.len(),
                            orbits,
                            expanded: expanded.load(Ordering::Relaxed),
                            peak_resident: reps.len(),
                            certified_shapes: 0,
                        });
                    }
                    return outcome;
                }
                // Deadline passed before the space was even materialised: no
                // candidate was examined, so degrade to the heuristic
                // fallback (flagged non-exhaustive by the caller) instead of
                // blocking.
                crate::engine::ClassedGeneration::DeadlineExpired => return None,
                // Coloured class space over the cap: fall through to the raw
                // space, which may still fit.
                crate::engine::ClassedGeneration::CapExceeded => {}
            }
        } else if CanonicalSpace::forest_class_count(n) <= cap as u128 {
            // The streamed best-first walk never materialises the coloured
            // space, so its budget gate is the *shape* count (A000081,
            // 32 973 at n = 13) rather than the coloured class count that
            // bounds the depth-first materialisation — tiered spaces whose
            // coloured count dwarfs the cap stay exhaustively searchable.
            // Beyond the shape cap, fall through to the raw-space gates.
            let classes = WeightClasses::of(app);
            let (outcome, stats) = streamed_canonical_search_observed(
                app,
                &classes,
                exec,
                prune,
                DEFAULT_FRONTIER_CAP,
                incumbent_seed,
                eval,
                engine_obs.as_ref(),
            );
            if let Some(p) = probe {
                p.record(stats);
            }
            // `None` means the deadline expired before any candidate was
            // examined: degrade to the heuristic fallback, not the raw walk.
            return outcome;
        }
    }
    let space = forest_space_size(n)?;
    if space > cap {
        return None;
    }
    // Raw labelled walks carry telemetry too (`shapes` stays 0 — no shape
    // plan exists on the labelled space — and `orbits` reports the labelled
    // space size itself, every orbit being trivial).
    let expanded = AtomicU64::new(0);
    let counted = |graph: &ExecutionGraph, incumbent: f64| {
        expanded.fetch_add(1, Ordering::Relaxed);
        eval(graph, incumbent)
    };
    if strategy == SearchStrategy::BestFirst {
        let (outcome, frontier) = best_first_forest_search_stats(
            app,
            exec,
            prune,
            DEFAULT_FRONTIER_CAP,
            incumbent_seed,
            &counted,
        );
        if let Some(p) = probe {
            p.record(StreamStats {
                shapes: 0,
                orbits: Some(space as u128),
                expanded: expanded.load(Ordering::Relaxed),
                peak_resident: frontier.peak,
                certified_shapes: 0,
            });
        }
        return outcome;
    }
    let incumbent = Incumbent::seeded(incumbent_seed);
    let prefixes = forest_task_prefixes(n, exec.effective_split_levels());
    let parts = par_chunks(exec.effective_threads(), &prefixes, |_base, chunk| {
        let mut best: Option<(f64, ExecutionGraph)> = None;
        let mut complete = true;
        let mut partial = PartialForestMetrics::new(app);
        for prefix in chunk {
            for &p in prefix {
                partial.push(p);
            }
            let ok = enumerate_parents_pruned(
                app,
                &mut partial,
                &mut best,
                &incumbent,
                prune,
                &counted,
                exec.deadline,
            );
            for _ in prefix {
                partial.pop();
            }
            if !ok {
                complete = false;
                break;
            }
        }
        (best, complete)
    });
    let complete = parts.iter().all(|(_, c)| *c);
    let best = fold_min(parts.into_iter().map(|(b, _)| b).collect());
    if let Some(p) = probe {
        p.record(StreamStats {
            shapes: 0,
            orbits: Some(space as u128),
            expanded: expanded.load(Ordering::Relaxed),
            peak_resident: exec.effective_threads(),
            certified_shapes: 0,
        });
    }
    best.map(|(value, graph)| SearchOutcome {
        value,
        graph,
        complete,
    })
}

/// Choices for service `k`'s parent, in the order the serial enumeration
/// tries them: entry node first, then every other service.
fn parent_choices(n: usize, k: usize) -> impl Iterator<Item = Option<ServiceId>> {
    std::iter::once(None).chain((0..n).filter(move |&p| p != k).map(Some))
}

/// The task prefixes of the forest enumeration: its first one or two levels
/// expanded in serial enumeration order (`n` or `n²` tasks), so per-chunk
/// winners fold back to the exact serial result.
fn forest_task_prefixes(n: usize, levels: usize) -> Vec<Vec<Option<ServiceId>>> {
    if levels >= 2 && n >= 2 {
        let mut prefixes = Vec::with_capacity(n * n);
        for c0 in parent_choices(n, 0) {
            for c1 in parent_choices(n, 1) {
                prefixes.push(vec![c0, c1]);
            }
        }
        prefixes
    } else {
        parent_choices(n, 0).map(|c| vec![c]).collect()
    }
}

/// The depth-first symmetry-reduced forest search over a **materialised**
/// canonical orbit stream (uniform or class-coloured): one evaluation per
/// representative, with the partial-assignment bound applied by a
/// [`ForestCursor`] *before* a representative is materialised.
///
/// The stream is scanned in canonical order, chunked by **orbit weight**
/// ([`par_chunks_weighted`]) so that representatives standing for huge
/// orbits — which cluster early in the stream — stop load-imbalancing the
/// workers; chunks keep the enumeration order, so the fold is deterministic
/// for every thread count and the winner is the first optimum in canonical
/// order.  The `Auto` / `BestFirst` strategies never materialise the stream
/// at all — they walk it lazily bound-first ([`streamed_canonical_search`]),
/// which reaches the same winner (the `(value, enumeration index)` minimum)
/// after expanding far fewer orbits.
fn canonical_forest_search<F>(
    app: &Application,
    reps: &[CanonicalRep],
    exec: Exec,
    prune: PartialPrune,
    incumbent_seed: f64,
    eval: &F,
) -> Option<SearchOutcome>
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    let incumbent = Incumbent::seeded(incumbent_seed);
    let weight_of = |rep: &CanonicalRep| u64::try_from(rep.orbit).unwrap_or(u64::MAX);
    let parts = par_chunks_weighted(exec.effective_threads(), reps, weight_of, |_base, chunk| {
        let mut best: Option<(f64, ExecutionGraph)> = None;
        let mut complete = true;
        let mut cursor = ForestCursor::new(app, prune);
        for rep in chunk {
            if exec.deadline.is_some_and(|d| Instant::now() >= d) {
                complete = false;
                break;
            }
            let Some(graph) = cursor.advance_rep(rep, incumbent.get()) else {
                continue; // pruned before materialisation
            };
            let value = eval(&graph, incumbent.get());
            if best.as_ref().is_none_or(|(b, _)| value < *b) {
                incumbent.offer(value);
                best = Some((value, graph));
            }
        }
        (best, complete)
    });
    let complete = parts.iter().all(|(_, c)| *c);
    let best = fold_min(parts.into_iter().map(|(b, _)| b).collect());
    best.map(|(value, graph)| SearchOutcome {
        value,
        graph,
        complete,
    })
}

/// Branch-and-bound enumeration of parent functions from the current prefix
/// of `partial`.  Returns `false` when the deadline interrupted this subtree.
///
/// The best-first spill path (`engine::frontier::dfs_complete`) mirrors this
/// walker's prune rule and choice order to keep the two strategies
/// bit-identical — change them together.
fn enumerate_parents_pruned<F>(
    app: &Application,
    partial: &mut PartialForestMetrics<'_>,
    best: &mut Option<(f64, ExecutionGraph)>,
    incumbent: &Incumbent,
    prune: PartialPrune,
    eval: &F,
    deadline: Option<Instant>,
) -> bool
where
    F: Fn(&ExecutionGraph, f64) -> f64,
{
    if prune != PartialPrune::Off && partial.assigned() > 0 {
        let bound = match prune {
            PartialPrune::Off => unreachable!(),
            PartialPrune::Period(model) => partial.period_bound(model),
            PartialPrune::Latency => partial.latency_bound(),
        };
        // An infinite bound flags a cycle inside the prefix: no completion is
        // feasible.  Otherwise prune only on a strict clearance of the
        // incumbent, so optimum-tying subtrees are never discarded.
        if bound == f64::INFINITY || bound > prune_threshold(incumbent.get()) {
            return true;
        }
    }
    let n = app.n();
    let k = partial.assigned();
    if k >= n {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return false;
        }
        let Ok(graph) = ExecutionGraph::from_parents(partial.parents()) else {
            return true; // the parent function contains a cycle
        };
        if graph.respects(app).is_err() {
            return true;
        }
        let value = eval(&graph, incumbent.get());
        if best.as_ref().is_none_or(|(b, _)| value < *b) {
            incumbent.offer(value);
            *best = Some((value, graph));
        }
        return true;
    }
    partial.push(None);
    let ok = enumerate_parents_pruned(app, partial, best, incumbent, prune, eval, deadline);
    partial.pop();
    if !ok {
        return false;
    }
    for p in 0..n {
        if p == k {
            continue;
        }
        partial.push(Some(p));
        let ok = enumerate_parents_pruned(app, partial, best, incumbent, prune, eval, deadline);
        partial.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// Size of the parent-function space (`n^n`, saturating); `None` for `n == 0`.
fn forest_space_size(n: usize) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let mut size = 1usize;
    for _ in 0..n {
        size = size.saturating_mul(n);
    }
    Some(size)
}

/// Recursive enumeration of parent functions from level `k`.  Returns `false`
/// when the deadline interrupted the enumeration of this subtree.
fn enumerate_parents<F: FnMut(&ExecutionGraph) -> f64>(
    app: &Application,
    parents: &mut Vec<Option<ServiceId>>,
    k: usize,
    best: &mut Option<(f64, ExecutionGraph)>,
    eval: &mut F,
    deadline: Option<Instant>,
) -> bool {
    let n = app.n();
    if k >= n {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return false;
        }
        let Ok(graph) = ExecutionGraph::from_parents(parents) else {
            return true; // the parent function contains a cycle
        };
        if graph.respects(app).is_err() {
            return true;
        }
        let value = eval(&graph);
        if best.as_ref().is_none_or(|(b, _)| value < *b) {
            *best = Some((value, graph));
        }
        return true;
    }
    parents[k] = None;
    if !enumerate_parents(app, parents, k + 1, best, eval, deadline) {
        return false;
    }
    for p in 0..n {
        if p == k {
            continue;
        }
        parents[k] = Some(p);
        if !enumerate_parents(app, parents, k + 1, best, eval, deadline) {
            return false;
        }
    }
    parents[k] = None;
    true
}

/// Largest instance size the DAG enumeration supports: the forward-edge
/// subsets of a permutation are encoded as a `u64` mask, so `n(n-1)/2` must
/// stay below 64 (and the space is astronomically large well before that).
pub const DAG_ENUMERATION_HARD_MAX_N: usize = 11;

/// Enumerates every DAG execution graph on at most `max_n` services (tiny
/// instances only) and returns the one minimising `eval`.
///
/// DAGs are generated as (topological permutation, subset of forward edges),
/// which enumerates every DAG at least once.  Instances larger than
/// [`DAG_ENUMERATION_HARD_MAX_N`] return `None` regardless of `max_n` (the
/// edge-subset mask would overflow its 64-bit encoding).
pub fn exhaustive_dag_best<F: FnMut(&ExecutionGraph) -> f64>(
    app: &Application,
    max_n: usize,
    mut eval: F,
) -> Option<(f64, ExecutionGraph)> {
    let n = app.n();
    if n == 0 || n > max_n.min(DAG_ENUMERATION_HARD_MAX_N) {
        return None;
    }
    let mut order: Vec<ServiceId> = (0..n).collect();
    let mut best: Option<(f64, ExecutionGraph)> = None;
    permute_orders(&mut order, 0, &mut |perm| {
        visit_dags_of_permutation(app, perm, &mut best, &mut eval, None)
    });
    best
}

/// The budgeted, parallel, branch-and-bound variant of
/// [`exhaustive_dag_best`]: the first one or two permutation positions (see
/// [`Exec::split_levels`]) are expanded into tasks, split over
/// `exec.effective_threads()` workers and reduced in enumeration order,
/// so the result is bit-identical to the serial run; an optional deadline
/// interrupts the enumeration.  Instances larger than
/// [`DAG_ENUMERATION_HARD_MAX_N`] return `None` regardless of `max_n`.
///
/// `eval` receives the current incumbent as a *cutoff* (see
/// [`exhaustive_forest_search`]).  `incumbent_seed` pre-loads the shared
/// incumbent with an upper bound from an earlier phase (e.g. the forest
/// optimum): candidates that cannot strictly beat the seed may then be
/// valued `∞`, so when the outcome's value is not below the seed only the
/// seed phase's result is meaningful.  Pass `f64::INFINITY` for an
/// unseeded, self-contained search (its value is then always exact).
///
/// Under [`Symmetry::Auto`] (or [`Symmetry::Classes`], which the DAG space
/// treats identically — coloured DAG canonicalisation is not implemented,
/// and DAG joins are exactly where cross-class sums could tie-break
/// differently) on a reducible instance (uniform weights, no constraints)
/// only the DAGs whose edges are forward edges of the **identity
/// permutation** are enumerated: every DAG is isomorphic to one of those,
/// so with a label-invariant `eval` the optimum value is unchanged while
/// the `n!` topological-permutation factor disappears.  The
/// winner is the first optimum in ascending edge-mask order (the canonical
/// tie-break).  Caveat on exactness: joins of in-degree ≥ 3 accumulate
/// their `Cin` sum in label order, so across relabellings the value can
/// move by an ulp — the reduced optimum matches the full enumeration up to
/// that summation-order rounding (exactly, whenever the weights make the
/// sums exact, e.g. dyadic values or selectivity 1).
pub fn exhaustive_dag_search<F>(
    app: &Application,
    max_n: usize,
    exec: Exec,
    incumbent_seed: f64,
    symmetry: Symmetry,
    eval: &F,
) -> Option<SearchOutcome>
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    let n = app.n();
    if n == 0 || n > max_n.min(DAG_ENUMERATION_HARD_MAX_N) {
        return None;
    }
    let incumbent = Incumbent::seeded(incumbent_seed);
    if symmetry != Symmetry::Full && CanonicalSpace::reducible(app) {
        return canonical_dag_search(app, exec, &incumbent, eval);
    }
    // Task prefixes: positions swapped into the first one or two permutation
    // slots, in the order the serial recursion (`items.swap(level, i)`)
    // visits them.
    let prefixes: Vec<Vec<usize>> = if exec.effective_split_levels() >= 2 && n >= 2 {
        (0..n)
            .flat_map(|i| (1..n).map(move |j| vec![i, j]))
            .collect()
    } else {
        (0..n).map(|i| vec![i]).collect()
    };
    let parts = par_chunks(exec.effective_threads(), &prefixes, |_base, chunk| {
        let mut best: Option<(f64, ExecutionGraph)> = None;
        let mut complete = true;
        // Per-worker duplicate filter over labelled edge sets: a DAG is
        // generated once per linear extension (≈4× over-visitation at
        // n = 5), and a repeat visit of a deterministic `eval` can never
        // displace a first-strict-minimum, so skipping repeats inside one
        // worker's enumeration-ordered chunk is bit-safe.
        let mut seen = std::collections::HashSet::new();
        for prefix in chunk {
            let mut order: Vec<ServiceId> = (0..n).collect();
            for (level, &pos) in prefix.iter().enumerate() {
                order.swap(level, pos);
            }
            let ok = permute_orders(&mut order, prefix.len(), &mut |perm| {
                visit_dags_of_permutation_pruned(
                    app,
                    perm,
                    &mut best,
                    &incumbent,
                    eval,
                    exec.deadline,
                    &mut seen,
                )
            });
            if !ok {
                complete = false;
                break;
            }
        }
        (best, complete)
    });
    let complete = parts.iter().all(|(_, c)| *c);
    let best = fold_min(parts.into_iter().map(|(b, _)| b).collect());
    best.map(|(value, graph)| SearchOutcome {
        value,
        graph,
        complete,
    })
}

/// The symmetry-reduced DAG search: enumerates the forward-edge masks of
/// the identity permutation only (ascending, chunked into contiguous ranges
/// per worker so the fold reproduces the serial first-minimum).
fn canonical_dag_search<F>(
    app: &Application,
    exec: Exec,
    incumbent: &Incumbent,
    eval: &F,
) -> Option<SearchOutcome>
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    let n = app.n();
    let m = n * (n - 1) / 2;
    debug_assert!(m < 64, "callers bound n by DAG_ENUMERATION_HARD_MAX_N");
    let total = 1u64 << m;
    let workers = (exec.effective_threads() as u64).clamp(1, total);
    let span = total.div_ceil(workers);
    let ranges: Vec<(u64, u64)> = (0..workers)
        .map(|w| (w * span, ((w + 1) * span).min(total)))
        .filter(|(lo, hi)| lo < hi)
        .collect();
    let identity: Vec<ServiceId> = (0..n).collect();
    let parts = par_chunks(ranges.len(), &ranges, |_base, chunk| {
        let mut best: Option<(f64, ExecutionGraph)> = None;
        let mut complete = true;
        'ranges: for &(lo, hi) in chunk {
            for mask in lo..hi {
                if exec.deadline.is_some_and(|d| Instant::now() >= d) {
                    complete = false;
                    break 'ranges;
                }
                // Reducible instances have no precedence constraints, so
                // every forward-edge DAG is feasible.
                let graph = ExecutionGraph::from_permutation_mask(&identity, mask);
                let value = eval(&graph, incumbent.get());
                if best.as_ref().is_none_or(|(b, _)| value < *b) {
                    incumbent.offer(value);
                    best = Some((value, graph));
                }
            }
        }
        (best, complete)
    });
    let complete = parts.iter().all(|(_, c)| *c);
    let best = fold_min(parts.into_iter().map(|(b, _)| b).collect());
    best.map(|(value, graph)| SearchOutcome {
        value,
        graph,
        complete,
    })
}

/// Evaluates every DAG whose edges are forward edges of `perm`, threading the
/// shared incumbent into every evaluation.  Returns `false` when the deadline
/// interrupted the mask enumeration.
fn visit_dags_of_permutation_pruned<F>(
    app: &Application,
    perm: &[ServiceId],
    best: &mut Option<(f64, ExecutionGraph)>,
    incumbent: &Incumbent,
    eval: &F,
    deadline: Option<Instant>,
    seen: &mut std::collections::HashSet<u64>,
) -> bool
where
    F: Fn(&ExecutionGraph, f64) -> f64,
{
    let n = perm.len();
    let m = n * (n - 1) / 2;
    debug_assert!(m < 64, "callers bound n by DAG_ENUMERATION_HARD_MAX_N");
    for mask in 0u64..(1u64 << m) {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return false;
        }
        // A labelled edge set reappears once per linear extension; key it
        // by directed label pairs (two bits per unordered pair) and skip
        // repeats before paying for graph construction and evaluation.
        let mut key = 0u64;
        let mut bit = 0u32;
        for a in 0..n {
            for c in (a + 1)..n {
                if mask & (1u64 << bit) != 0 {
                    let (u, v) = (perm[a], perm[c]);
                    let (lo, hi, dir) = if u < v { (u, v, 0) } else { (v, u, 1) };
                    // Unordered pair index in the a < c triangular order.
                    let pair = lo * (2 * n - lo - 1) / 2 + (hi - lo - 1);
                    key |= 1u64 << (2 * pair as u32 + dir);
                }
                bit += 1;
            }
        }
        if !seen.insert(key) {
            continue;
        }
        let graph = ExecutionGraph::from_permutation_mask(perm, mask);
        if graph.respects(app).is_err() {
            continue;
        }
        let value = eval(&graph, incumbent.get());
        if best.as_ref().is_none_or(|(b, _)| value < *b) {
            incumbent.offer(value);
            *best = Some((value, graph));
        }
    }
    true
}

/// Evaluates every DAG whose edges are forward edges of `perm`.  Returns
/// `false` when the deadline interrupted the mask enumeration.
fn visit_dags_of_permutation<F: FnMut(&ExecutionGraph) -> f64>(
    app: &Application,
    perm: &[ServiceId],
    best: &mut Option<(f64, ExecutionGraph)>,
    eval: &mut F,
    deadline: Option<Instant>,
) -> bool {
    let n = perm.len();
    let pairs: Vec<(ServiceId, ServiceId)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .collect();
    let m = pairs.len();
    debug_assert!(m < 64, "callers bound n by DAG_ENUMERATION_HARD_MAX_N");
    for mask in 0u64..(1u64 << m) {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return false;
        }
        let mut graph = ExecutionGraph::new(n);
        for (bit, &(a, b)) in pairs.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                graph
                    .add_edge(perm[a], perm[b])
                    .expect("forward edges of a permutation are acyclic");
            }
        }
        if graph.respects(app).is_err() {
            continue;
        }
        let value = eval(&graph);
        if best.as_ref().is_none_or(|(b, _)| value < *b) {
            *best = Some((value, graph));
        }
    }
    true
}

/// Visits every permutation of `items[start..]`; `visit` returns `false` to
/// abort the whole enumeration (deadline), which is propagated to the caller.
fn permute_orders<F: FnMut(&[ServiceId]) -> bool>(
    items: &mut Vec<ServiceId>,
    start: usize,
    visit: &mut F,
) -> bool {
    if start >= items.len() {
        return visit(items);
    }
    for i in start..items.len() {
        items.swap(start, i);
        let ok = permute_orders(items, start + 1, visit);
        items.swap(start, i);
        if !ok {
            return false;
        }
    }
    true
}

/// Constructive seeds for the heuristic search.
fn seed_graphs(app: &Application, model: CommModel) -> Vec<ExecutionGraph> {
    let n = app.n();
    let mut seeds = Vec::new();
    if app.has_constraints() {
        // The minimal graph containing exactly the precedence constraints.
        if let Ok(g) = ExecutionGraph::from_edges(n, app.constraints()) {
            seeds.push(g);
        }
        return seeds;
    }
    // All services independent.
    seeds.push(ExecutionGraph::new(n));
    // The Proposition 8 chain.
    if let Ok(order) = chain_minperiod_order(app, model) {
        if let Ok(g) = chain_graph(n, &order) {
            seeds.push(g);
        }
    }
    // The no-communication optimal structure (filters chained, expanders attached).
    if let Ok(g) = crate::baseline::nocomm_minperiod_plan(app) {
        seeds.push(g);
    }
    seeds
}

/// Heuristic MINPERIOD: best seed followed by hill climbing over single-parent
/// reassignments (`set parent of k to None / to p`), keeping the application's
/// precedence constraints satisfied.
pub fn minperiod_local_search(
    app: &Application,
    options: &MinPeriodOptions,
) -> CoreResult<MinPeriodResult> {
    let eval = |g: &ExecutionGraph| -> f64 {
        evaluate_period(app, g, options.model, options.evaluation).unwrap_or(f64::INFINITY)
    };
    let mut best_graph = ExecutionGraph::new(app.n());
    let mut best_value = f64::INFINITY;
    for seed in seed_graphs(app, options.model) {
        let value = eval(&seed);
        if value < best_value {
            best_value = value;
            best_graph = seed;
        }
    }
    let n = app.n();
    for _pass in 0..options.local_search_passes {
        let mut improved = false;
        for k in 0..n {
            // Candidate moves: make k an entry node, or give it any other parent.
            let current_preds: Vec<ServiceId> = best_graph.preds(k).to_vec();
            let mut candidates: Vec<Option<ServiceId>> = vec![None];
            for p in 0..n {
                if p != k {
                    candidates.push(Some(p));
                }
            }
            for cand in candidates {
                let mut graph = best_graph.clone();
                for &p in &current_preds {
                    graph.remove_edge(p, k);
                }
                if let Some(p) = cand {
                    if graph.add_edge(p, k).is_err() {
                        continue;
                    }
                }
                if graph.respects(app).is_err() {
                    continue;
                }
                let value = eval(&graph);
                if value + 1e-12 < best_value {
                    best_value = value;
                    best_graph = graph;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(MinPeriodResult {
        period: best_value,
        graph: best_graph,
        exhaustive: false,
    })
}

/// Full MINPERIOD solver: exhaustive forest enumeration when the instance is
/// small enough (optimal for the requested evaluation, by Proposition 4),
/// falling back to the local-search heuristic otherwise.
pub fn minimize_period(
    app: &Application,
    options: &MinPeriodOptions,
) -> CoreResult<MinPeriodResult> {
    minimize_period_exec(app, options, Exec::serial())
}

/// [`minimize_period`] under an explicit execution strategy: the exhaustive
/// phases fan out over `exec` worker threads (bit-identical to the serial
/// run) and honour its deadline, returning the best graph found so far with
/// `exhaustive == false` when the deadline interrupts the enumeration.
pub fn minimize_period_exec(
    app: &Application,
    options: &MinPeriodOptions,
    exec: Exec,
) -> CoreResult<MinPeriodResult> {
    minimize_period_engine(app, options, exec, &EvalCache::new(app))
}

/// Bounded (branch-and-bound aware) candidate evaluation: like
/// [`evaluate_period`], but may return `∞` for candidates whose structural
/// lower bound already clears `cutoff`, and memoises the expensive ordering
/// searches in `cache`.
fn evaluate_period_bounded(
    app: &Application,
    graph: &ExecutionGraph,
    model: CommModel,
    evaluation: PeriodEvaluation,
    cache: &EvalCache,
    cutoff: f64,
    deadline: Option<Instant>,
) -> f64 {
    let Ok(metrics) = PlanMetrics::compute(app, graph) else {
        return f64::INFINITY;
    };
    let lower = metrics.period_lower_bound(model);
    let PeriodEvaluation::Orchestrated { exhaustive_limit } = evaluation else {
        return lower;
    };
    if model == CommModel::Overlap {
        // Theorem 1: the lower bound is achieved.
        return lower;
    }
    // Every orchestrated period dominates the structural bound, so a bound
    // above the cutoff proves the candidate cannot improve the incumbent.
    if lower > prune_threshold(cutoff) {
        return f64::INFINITY;
    }
    // With a deadline, inner searches may return deadline-truncated values:
    // honour the time limit inside the candidate evaluation, but never
    // memoise a value that depends on the wall clock.
    let inner_exec = Exec {
        threads: 1,
        deadline,
        split_levels: 1,
    };
    match model {
        CommModel::Overlap => unreachable!("handled above"),
        CommModel::InOrder => {
            let search = |c: f64| match oneport_period_search_prepared(
                app,
                graph,
                &metrics,
                OnePortStyle::InOrder,
                exhaustive_limit,
                inner_exec,
                c,
            ) {
                Ok(Some(result)) => result.period,
                Ok(None) | Err(_) => f64::INFINITY,
            };
            if deadline.is_some() {
                return search(cutoff);
            }
            let exhaustive = CommOrderings::search_space_size(graph) <= exhaustive_limit;
            cache.get_or_compute(tags::INORDER_PERIOD, graph, exhaustive, cutoff, search)
        }
        CommModel::OutOrder => {
            // The OUTORDER backtracker is label-dependent (its trajectory
            // follows node ids), so its raw value is shared between
            // identical labelled graphs only.  On instances with weight
            // symmetry the evaluation therefore **canonicalises the graph
            // first** (`fsw_core::canonical_classed_member`: the
            // deterministic member of the candidate's class-preserving
            // orbit) and evaluates that member instead: the value becomes a
            // pure function of the orbit — a faithful feasible period for
            // every member, since class-preserving isomorphisms map
            // schedules to schedules — and the memo collapses to one
            // backtracking search per canonical shape + class signature,
            // which is what lets repeated orbit evaluations across a
            // `solve_all` sweep hit the cache.  The search stays
            // incumbent-aware: the shared incumbent is threaded in as a
            // cutoff that skips candidates whose lower bound clears it and
            // stops the bisection once every remaining probe provably sits
            // above it.
            let opts = OutOrderOptions {
                inorder_exhaustive_limit: exhaustive_limit,
                deadline,
                ..OutOrderOptions::default()
            };
            // The partition comes from the cache (computed once per solve),
            // not per candidate — this branch runs for every enumerated
            // graph.  Reduced-path candidates are already their own
            // canonical member, so for them the canonicalisation merely
            // re-derives the input; that O(n² log n) is noise next to the
            // backtracking search each evaluation runs, and paying it
            // unconditionally keeps the memo key correct on the raw
            // (cap-overflow) path too.
            let classes = cache.weight_classes();
            let canonical =
                if deadline.is_none() && CanonicalSpace::class_reducible_with(app, classes) {
                    canonical_classed_member(classes, graph).ok()
                } else {
                    None
                };
            let eval_graph = canonical.as_ref().unwrap_or(graph);
            let search = |c: f64| match outorder_period_search_bounded(
                app,
                eval_graph,
                &opts,
                Exec {
                    threads: 1,
                    deadline,
                    split_levels: 1,
                },
                c,
            ) {
                Ok(Some(result)) => result.period,
                Ok(None) | Err(_) => f64::INFINITY,
            };
            if deadline.is_some() {
                return search(cutoff);
            }
            cache.get_or_compute(tags::OUTORDER_PERIOD, eval_graph, false, cutoff, search)
        }
    }
}

/// [`minimize_period_exec`] with a caller-provided evaluation cache, so a
/// batch sweep ([`crate::orchestrator::solve_all`]) can share one memo.
pub(crate) fn minimize_period_engine(
    app: &Application,
    options: &MinPeriodOptions,
    exec: Exec,
    cache: &EvalCache,
) -> CoreResult<MinPeriodResult> {
    minimize_period_engine_seeded(
        app,
        options,
        exec,
        cache,
        f64::INFINITY,
        &std::sync::atomic::AtomicUsize::new(0),
        None,
    )
}

/// [`minimize_period_engine`] with a warm-start incumbent seed and an
/// evaluation counter: `incumbent_seed` pre-loads every exhaustive phase's
/// incumbent (pass the value of a previous plan adapted to the instance;
/// `∞` for a cold solve — winners are bit-identical either way, see
/// [`exhaustive_forest_search_seeded`]), and `evals` is incremented once per
/// full candidate evaluation, so callers can measure how much of the space a
/// warm start skipped.
#[allow(clippy::too_many_arguments)]
pub(crate) fn minimize_period_engine_seeded(
    app: &Application,
    options: &MinPeriodOptions,
    exec: Exec,
    cache: &EvalCache,
    incumbent_seed: f64,
    evals: &std::sync::atomic::AtomicUsize,
    probe: Option<&StreamProbe>,
) -> CoreResult<MinPeriodResult> {
    let eval = |g: &ExecutionGraph, cutoff: f64| -> f64 {
        evals.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        evaluate_period_bounded(
            app,
            g,
            options.model,
            options.evaluation,
            cache,
            cutoff,
            exec.deadline,
        )
    };
    if !app.has_constraints() {
        // Both evaluations dominate the model's structural period bound, so
        // the incremental period bound is an admissible subtree pruner.
        let prune = PartialPrune::Period(options.model);
        // Symmetry reduction is engaged only when the candidate evaluation
        // is provably invariant under the matching relabelling group (the
        // bit-safety gate on `Symmetry`): the structural bounds are
        // class-invariant since the metrics rework (path-order input
        // factors, no cross-class sums on forests), and so is the OUTORDER
        // orchestrated evaluation — it canonicalises the candidate graph
        // before backtracking, making its value a pure function of the
        // orbit.  The INORDER ordering search's schedule accumulation
        // follows node ids, so it engages the uniform-only reduction when
        // every forest's ordering search stays exhaustive and falls back to
        // the value-exact full enumeration on multi-class instances.
        let symmetry = match options.evaluation {
            PeriodEvaluation::LowerBound => Symmetry::Classes,
            PeriodEvaluation::Orchestrated { exhaustive_limit } => match options.model {
                CommModel::Overlap => Symmetry::Classes,
                CommModel::OutOrder => Symmetry::Classes,
                CommModel::InOrder
                    if CanonicalSpace::max_forest_ordering_space(app.n()) <= exhaustive_limit =>
                {
                    Symmetry::Auto
                }
                CommModel::InOrder => Symmetry::Full,
            },
        };
        if let Some(out) = exhaustive_forest_search_probed(
            app,
            options.forest_enumeration_cap,
            exec,
            prune,
            symmetry,
            options.strategy,
            incumbent_seed,
            &eval,
            probe,
        ) {
            return Ok(MinPeriodResult {
                period: out.value,
                graph: out.graph,
                exhaustive: out.complete,
            });
        }
    } else {
        // With precedence constraints the optimal plan need not be a forest;
        // use the DAG enumeration for tiny instances.  (Constraints break
        // reducibility, so the symmetry flag is moot here.)
        if app.n() <= 5 {
            if let Some(out) =
                exhaustive_dag_search(app, 5, exec, incumbent_seed, Symmetry::Full, &eval)
            {
                return Ok(MinPeriodResult {
                    period: out.value,
                    graph: out.graph,
                    exhaustive: out.complete,
                });
            }
        }
    }
    minperiod_local_search(app, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_filter_chain_beats_independence() {
        // One strong filter in front of an expensive service: the optimal plan
        // chains them (OVERLAP model).
        let app = Application::independent(&[(1.0, 0.1), (10.0, 1.0)]);
        let result = minimize_period(&app, &MinPeriodOptions::default()).unwrap();
        assert!(result.exhaustive);
        assert!(result.graph.has_edge(0, 1));
        assert!((result.period - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expensive_communication_prevents_chaining() {
        // A filter whose selectivity is close to 1 brings almost nothing, but
        // its outgoing communication would become the bottleneck if it fed
        // many successors (miniature counter-example B.1, OVERLAP model).
        // Parameters are tuned so that the only period-2 plans split the four
        // expensive services evenly between the two filters.
        let mut specs = vec![(2.0, 0.9), (2.0, 0.9)];
        for _ in 0..4 {
            specs.push((2.0 / 0.9, 2.2));
        }
        let app = Application::independent(&specs);
        let result = minimize_period(&app, &MinPeriodOptions::default()).unwrap();
        assert!(result.exhaustive);
        assert!((result.period - 2.0).abs() < 1e-9);
        // The two filters must not be chained one behind the other: each keeps
        // exactly half of the expensive services.
        assert!(!result.graph.has_edge(0, 1) && !result.graph.has_edge(1, 0));
        let out0 = result.graph.succs(0).len();
        let out1 = result.graph.succs(1).len();
        assert_eq!(out0 + out1, 4);
        assert!(out0 >= 2 && out1 >= 2);
    }

    #[test]
    fn forest_optimum_matches_dag_optimum_without_constraints() {
        // Proposition 4: forests suffice for MINPERIOD without constraints.
        let apps = [
            Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8)]),
            Application::independent(&[(1.0, 1.0), (2.0, 0.4), (1.5, 1.6), (0.5, 0.9)]),
        ];
        for app in apps {
            for model in CommModel::ALL {
                let options = MinPeriodOptions::for_model(model);
                let eval = |g: &ExecutionGraph| {
                    evaluate_period(&app, g, model, PeriodEvaluation::LowerBound)
                        .unwrap_or(f64::INFINITY)
                };
                let forest = exhaustive_forest_best(&app, eval).unwrap();
                let dag = exhaustive_dag_best(&app, 5, eval).unwrap();
                assert!(
                    forest.0 <= dag.0 + 1e-9,
                    "{model}: forest {} vs dag {}",
                    forest.0,
                    dag.0
                );
                let _ = options;
            }
        }
    }

    #[test]
    fn local_search_matches_exhaustive_on_small_instances() {
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8), (1.0, 0.6)]);
        let options = MinPeriodOptions::default();
        let exhaustive = minimize_period(&app, &options).unwrap();
        assert!(exhaustive.exhaustive);
        let local = minperiod_local_search(&app, &options).unwrap();
        assert!(local.period <= exhaustive.period * 1.2 + 1e-9);
        assert!(local.period >= exhaustive.period - 1e-9);
    }

    #[test]
    fn constraints_are_respected() {
        let mut app = Application::independent(&[(1.0, 0.5), (2.0, 0.5), (3.0, 1.0)]);
        app.add_constraint(2, 0).unwrap();
        let result = minimize_period(&app, &MinPeriodOptions::default()).unwrap();
        result.graph.respects(&app).unwrap();
        // Service 0 must be (transitively) after service 2.
        assert!(result.graph.ancestors(0).contains(&2));
    }

    #[test]
    fn canonical_forest_search_matches_brute_force_on_uniform_weights() {
        // Uniform weights: the symmetry-reduced enumeration must return the
        // same optimum value as the raw n^n space, for filters and expanders.
        for specs in [(2.0, 0.5), (1.0, 1.5), (4.0, 1.0)] {
            for n in [3usize, 5] {
                let app = Application::independent(&vec![specs; n]);
                assert!(CanonicalSpace::reducible(&app));
                for model in CommModel::ALL {
                    let eval = |g: &ExecutionGraph| {
                        PlanMetrics::compute(&app, g)
                            .map(|m| m.period_lower_bound(model))
                            .unwrap_or(f64::INFINITY)
                    };
                    let brute = exhaustive_forest_best(&app, eval).unwrap();
                    let reduced = exhaustive_forest_search(
                        &app,
                        2_000_000,
                        Exec::serial(),
                        PartialPrune::Period(model),
                        Symmetry::Auto,
                        SearchStrategy::Auto,
                        &|g, _| eval(g),
                    )
                    .unwrap();
                    assert_eq!(brute.0, reduced.value, "{specs:?} n={n} {model}");
                    assert!(reduced.complete);
                    // The canonical winner evaluates to the optimum too.
                    assert_eq!(eval(&reduced.graph), reduced.value);
                }
            }
        }
    }

    #[test]
    fn canonical_dag_search_matches_brute_force_on_uniform_weights() {
        let app = Application::independent(&[(4.0, 1.0); 4]);
        for model in CommModel::ALL {
            let eval = |g: &ExecutionGraph| {
                PlanMetrics::compute(&app, g)
                    .map(|m| m.period_lower_bound(model))
                    .unwrap_or(f64::INFINITY)
            };
            let brute = exhaustive_dag_best(&app, 4, eval).unwrap();
            let reduced = exhaustive_dag_search(
                &app,
                4,
                Exec::serial(),
                f64::INFINITY,
                Symmetry::Auto,
                &|g, _| eval(g),
            )
            .unwrap();
            assert_eq!(brute.0, reduced.value, "{model}");
            assert_eq!(eval(&reduced.graph), reduced.value);
        }
    }

    #[test]
    fn uniform_minperiod_clears_n10_within_the_default_budget() {
        // n^n = 10^10 parent functions dwarf the 2M cap, but the canonical
        // space holds 1 842 classes: the default budget is now exhaustive.
        let app = Application::independent(&[(3.0, 0.9); 10]);
        let result = minimize_period(&app, &MinPeriodOptions::default()).unwrap();
        assert!(result.exhaustive, "canonical space fits the default cap");
        // Sanity: never worse than the all-independent plan.
        let independent = evaluate_period(
            &app,
            &ExecutionGraph::new(10),
            CommModel::Overlap,
            PeriodEvaluation::LowerBound,
        )
        .unwrap();
        assert!(result.period <= independent + 1e-9);
    }

    #[test]
    fn two_level_split_is_bit_identical_to_serial() {
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8), (1.0, 0.6)]);
        let eval = |g: &ExecutionGraph, _c: f64| {
            PlanMetrics::compute(&app, g)
                .map(|m| m.period_lower_bound(CommModel::InOrder))
                .unwrap_or(f64::INFINITY)
        };
        let serial = exhaustive_forest_search(
            &app,
            2_000_000,
            Exec::serial(),
            PartialPrune::Period(CommModel::InOrder),
            Symmetry::Full,
            SearchStrategy::Auto,
            &eval,
        )
        .unwrap();
        for threads in [2, 5] {
            for split_levels in [1, 2] {
                let exec = Exec {
                    threads,
                    deadline: None,
                    split_levels,
                };
                let par = exhaustive_forest_search(
                    &app,
                    2_000_000,
                    exec,
                    PartialPrune::Period(CommModel::InOrder),
                    Symmetry::Full,
                    SearchStrategy::Auto,
                    &eval,
                )
                .unwrap();
                assert_eq!(serial.value, par.value, "x{threads} lvl{split_levels}");
                assert_eq!(
                    serial.graph.edges().collect::<Vec<_>>(),
                    par.graph.edges().collect::<Vec<_>>(),
                    "x{threads} lvl{split_levels}: winner"
                );
            }
        }
    }

    #[test]
    fn orchestrated_evaluation_is_at_least_the_lower_bound() {
        let app = Application::independent(&[(1.0, 1.0); 4]);
        let g = ExecutionGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        for model in CommModel::ALL {
            let lb = evaluate_period(&app, &g, model, PeriodEvaluation::LowerBound).unwrap();
            let orch = evaluate_period(
                &app,
                &g,
                model,
                PeriodEvaluation::Orchestrated {
                    exhaustive_limit: 1000,
                },
            )
            .unwrap();
            assert!(orch >= lb - 1e-9, "{model}: {orch} < {lb}");
        }
    }
}
