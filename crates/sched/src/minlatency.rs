//! MINLATENCY: choosing the execution graph that minimises the latency.
//!
//! All three variants are NP-hard (Theorem 4), and the restriction to forests
//! is NP-hard too (Proposition 17, by reduction from 2-Partition), while the
//! restriction to chains is polynomial (Proposition 16).  The solvers mirror
//! the MINPERIOD module:
//!
//! * exhaustive enumeration of forests (exact latency by Algorithm 1 /
//!   Proposition 12) and of all DAGs for tiny instances (the optimal graph
//!   need not be a forest for the latency — the Proposition 13 gadget is a
//!   fork-join);
//! * the Proposition 16 chain and the independent plan as constructive seeds,
//!   followed by hill-climbing local search over parent reassignments;
//! * latency of a candidate graph measured exactly for forests, and by the
//!   one-port / multi-port orchestration searches for general DAGs.

use std::time::Instant;

use fsw_core::{Application, CommModel, CoreResult, ExecutionGraph, PlanMetrics, ServiceId};

use crate::chain::{chain_graph, chain_minlatency_order};
use crate::engine::frontier::StreamProbe;
use crate::engine::{
    prune_threshold, tags, CanonicalSpace, EvalCache, PartialPrune, SearchStrategy, Symmetry,
};
use crate::latency::{
    latency_lower_bound_with, multiport_proportional_latency, oneport_latency_search,
    oneport_latency_search_prepared, LatencyEvaluator,
};
use crate::minperiod::{exhaustive_dag_search, exhaustive_forest_search};
use crate::orderings::CommOrderings;
use crate::par::Exec;
use crate::tree::tree_latency;

/// Options for the MINLATENCY solvers.
#[derive(Clone, Copy, Debug)]
pub struct MinLatencyOptions {
    /// Target communication model (`Overlap` allows bounded multi-port
    /// schedules; the one-port models share the same latency machinery).
    pub model: CommModel,
    /// Ordering-space bound for exhaustive orchestration of non-forest graphs.
    pub ordering_exhaustive_limit: usize,
    /// Upper bound on the number of parent functions enumerated by the
    /// exhaustive forest solver.
    pub forest_enumeration_cap: usize,
    /// Number of hill-climbing passes of the local search.
    pub local_search_passes: usize,
    /// Instances up to this size are also searched over all DAGs.
    pub dag_enumeration_max_n: usize,
    /// How the exhaustive forest search walks its candidate space (see
    /// [`SearchStrategy`]); solutions are bit-identical either way.
    pub strategy: SearchStrategy,
}

impl Default for MinLatencyOptions {
    fn default() -> Self {
        MinLatencyOptions {
            model: CommModel::Overlap,
            ordering_exhaustive_limit: 5_000,
            forest_enumeration_cap: 2_000_000,
            local_search_passes: 32,
            dag_enumeration_max_n: 5,
            strategy: SearchStrategy::Auto,
        }
    }
}

impl MinLatencyOptions {
    /// Convenience constructor for a given model with default effort.
    pub fn for_model(model: CommModel) -> Self {
        MinLatencyOptions {
            model,
            ..MinLatencyOptions::default()
        }
    }
}

/// Result of a MINLATENCY solve.
#[derive(Clone, Debug)]
pub struct MinLatencyResult {
    /// The best latency found.
    pub latency: f64,
    /// The execution graph achieving it.
    pub graph: ExecutionGraph,
    /// `true` when the result comes from an exhaustive enumeration.
    pub exhaustive: bool,
}

/// Evaluates the latency of a candidate execution graph under the requested model.
///
/// Forests are evaluated exactly (Proposition 12); general DAGs use the
/// ordering search (exhaustive within `ordering_exhaustive_limit`, hill
/// climbing beyond), and the `Overlap` model additionally considers the
/// proportional multi-port schedule.
pub fn evaluate_latency(
    app: &Application,
    graph: &ExecutionGraph,
    options: &MinLatencyOptions,
) -> CoreResult<f64> {
    if graph.is_forest() {
        return tree_latency(app, graph);
    }
    let oneport = oneport_latency_search(app, graph, options.ordering_exhaustive_limit)?;
    let mut best = oneport.latency;
    if options.model == CommModel::Overlap {
        let (fluid, _) = multiport_proportional_latency(app, graph)?;
        best = best.min(fluid);
    }
    Ok(best)
}

/// Exact latency of a forest candidate (Algorithm 1), `∞` when infeasible —
/// the single evaluation shared by every forest-space MINLATENCY search.
fn forest_latency_eval(app: &Application, graph: &ExecutionGraph) -> f64 {
    tree_latency(app, graph).unwrap_or(f64::INFINITY)
}

/// Enumerates every forest execution graph compatible with the precedence
/// constraints and returns the latency-optimal one (exact evaluation by
/// Algorithm 1, subtrees pruned on the incremental critical-path bound).
pub fn exhaustive_forest_minlatency(
    app: &Application,
    cap: usize,
) -> Option<(f64, ExecutionGraph)> {
    exhaustive_forest_search(
        app,
        cap,
        Exec::serial(),
        PartialPrune::Latency,
        // Algorithm 1 is exact and purely structural (children combine in
        // value order), hence invariant under class-preserving relabellings.
        Symmetry::Classes,
        SearchStrategy::Auto,
        &|g, _| forest_latency_eval(app, g),
    )
    .map(|out| (out.value, out.graph))
}

/// Bounded (branch-and-bound aware) candidate evaluation: like
/// [`evaluate_latency`], but may return `∞` for candidates whose critical
/// path already clears `cutoff`, and memoises the one-port ordering searches
/// in `cache` (one search per canonical equivalence class).
fn evaluate_latency_bounded(
    app: &Application,
    graph: &ExecutionGraph,
    options: &MinLatencyOptions,
    cache: &EvalCache,
    cutoff: f64,
    deadline: Option<Instant>,
) -> f64 {
    if graph.is_forest() {
        // Exact by Algorithm 1 — cheap enough to skip the cache entirely.
        return tree_latency(app, graph).unwrap_or(f64::INFINITY);
    }
    // Every one-port or multi-port schedule dominates the critical path, so
    // a critical path above the cutoff proves the candidate cannot improve
    // the incumbent.  The metrics are computed once here and shared with the
    // ordering search on a cache miss.
    let Ok(metrics) = PlanMetrics::compute(app, graph) else {
        return f64::INFINITY;
    };
    let Ok(lower) = latency_lower_bound_with(app, graph, &metrics) else {
        return f64::INFINITY;
    };
    if lower > prune_threshold(cutoff) {
        return f64::INFINITY;
    }
    // The (cheap, exact) proportional multi-port schedule further tightens
    // the cutoff handed to the expensive one-port ordering search.
    let fluid = if options.model == CommModel::Overlap {
        multiport_proportional_latency(app, graph)
            .ok()
            .map(|(value, _)| value)
    } else {
        None
    };
    let inner_cutoff = fluid.map_or(cutoff, |f| cutoff.min(f));
    // The evaluator (operation skeleton) is built lazily so cache hits never
    // pay for it; it reuses the metrics computed above.
    let search = |c: f64| {
        let Ok(evaluator) = LatencyEvaluator::with_metrics(app, graph, &metrics) else {
            return f64::INFINITY;
        };
        let inner_exec = Exec {
            threads: 1,
            deadline,
            split_levels: 1,
        };
        match oneport_latency_search_prepared(
            graph,
            &evaluator,
            options.ordering_exhaustive_limit,
            inner_exec,
            c,
        ) {
            Ok(Some(result)) => result.latency,
            Ok(None) | Err(_) => f64::INFINITY,
        }
    };
    // With a deadline, inner searches may return deadline-truncated values:
    // honour the time limit, but never memoise wall-clock-dependent results.
    let oneport = if deadline.is_some() {
        search(inner_cutoff)
    } else {
        let exhaustive =
            CommOrderings::search_space_size(graph) <= options.ordering_exhaustive_limit;
        cache.get_or_compute(
            tags::ONEPORT_LATENCY,
            graph,
            exhaustive,
            inner_cutoff,
            search,
        )
    };
    fluid.map_or(oneport, |f| f.min(oneport))
}

/// Constructive seeds for the heuristic search.
fn seed_graphs(app: &Application) -> Vec<ExecutionGraph> {
    let n = app.n();
    let mut seeds = Vec::new();
    if app.has_constraints() {
        if let Ok(g) = ExecutionGraph::from_edges(n, app.constraints()) {
            seeds.push(g);
        }
        return seeds;
    }
    seeds.push(ExecutionGraph::new(n));
    if let Ok(order) = chain_minlatency_order(app) {
        if let Ok(g) = chain_graph(n, &order) {
            seeds.push(g);
        }
    }
    seeds
}

/// Heuristic MINLATENCY: best seed followed by hill climbing over
/// single-parent reassignments.
pub fn minlatency_local_search(
    app: &Application,
    options: &MinLatencyOptions,
) -> CoreResult<MinLatencyResult> {
    let eval =
        |g: &ExecutionGraph| -> f64 { evaluate_latency(app, g, options).unwrap_or(f64::INFINITY) };
    let mut best_graph = ExecutionGraph::new(app.n());
    let mut best_value = f64::INFINITY;
    for seed in seed_graphs(app) {
        let value = eval(&seed);
        if value < best_value {
            best_value = value;
            best_graph = seed;
        }
    }
    let n = app.n();
    for _pass in 0..options.local_search_passes {
        let mut improved = false;
        for k in 0..n {
            let current_preds: Vec<ServiceId> = best_graph.preds(k).to_vec();
            let mut candidates: Vec<Option<ServiceId>> = vec![None];
            for p in 0..n {
                if p != k {
                    candidates.push(Some(p));
                }
            }
            for cand in candidates {
                let mut graph = best_graph.clone();
                for &p in &current_preds {
                    graph.remove_edge(p, k);
                }
                if let Some(p) = cand {
                    if graph.add_edge(p, k).is_err() {
                        continue;
                    }
                }
                if graph.respects(app).is_err() {
                    continue;
                }
                let value = eval(&graph);
                if value + 1e-12 < best_value {
                    best_value = value;
                    best_graph = graph;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(MinLatencyResult {
        latency: best_value,
        graph: best_graph,
        exhaustive: false,
    })
}

/// Full MINLATENCY solver.
///
/// For unconstrained instances the forest space is enumerated exhaustively
/// when small enough; tiny instances are additionally searched over all DAGs
/// (the latency optimum may require a join, unlike the period).  Larger
/// instances fall back to the local-search heuristic.
pub fn minimize_latency(
    app: &Application,
    options: &MinLatencyOptions,
) -> CoreResult<MinLatencyResult> {
    minimize_latency_exec(app, options, Exec::serial())
}

/// [`minimize_latency`] under an explicit execution strategy: the exhaustive
/// phases fan out over `exec` worker threads (bit-identical to the serial
/// run) and honour its deadline, returning the best graph found so far with
/// `exhaustive == false` when the deadline interrupts the enumeration.
pub fn minimize_latency_exec(
    app: &Application,
    options: &MinLatencyOptions,
    exec: Exec,
) -> CoreResult<MinLatencyResult> {
    minimize_latency_engine(app, options, exec, &EvalCache::new(app))
}

/// [`minimize_latency_exec`] with a caller-provided evaluation cache, so a
/// batch sweep ([`crate::orchestrator::solve_all`]) can share one memo.
pub(crate) fn minimize_latency_engine(
    app: &Application,
    options: &MinLatencyOptions,
    exec: Exec,
    cache: &EvalCache,
) -> CoreResult<MinLatencyResult> {
    minimize_latency_engine_seeded(
        app,
        options,
        exec,
        cache,
        f64::INFINITY,
        &std::sync::atomic::AtomicUsize::new(0),
        None,
    )
}

/// [`minimize_latency_engine`] with a warm-start incumbent seed and an
/// evaluation counter (the latency twin of
/// `minimize_period_engine_seeded`): `incumbent_seed` pre-loads the forest
/// phase's incumbent and tightens the DAG phase's seed, `evals` counts full
/// candidate evaluations.  Winners are bit-identical to the cold solve for
/// any seed that upper-bounds the **forest** optimum (callers seed from
/// forest plans only — `orchestrator::warm_seed` enforces this; a DAG value
/// below every forest would starve the forest phase and flip the near-tie
/// arbitration between the two phases).
#[allow(clippy::too_many_arguments)]
pub(crate) fn minimize_latency_engine_seeded(
    app: &Application,
    options: &MinLatencyOptions,
    exec: Exec,
    cache: &EvalCache,
    incumbent_seed: f64,
    evals: &std::sync::atomic::AtomicUsize,
    probe: Option<&StreamProbe>,
) -> CoreResult<MinLatencyResult> {
    use std::sync::atomic::Ordering;
    let mut best: Option<MinLatencyResult> = None;
    if !app.has_constraints() {
        let eval = |g: &ExecutionGraph, _cutoff: f64| {
            evals.fetch_add(1, Ordering::Relaxed);
            forest_latency_eval(app, g)
        };
        if let Some(out) = crate::minperiod::exhaustive_forest_search_probed(
            app,
            options.forest_enumeration_cap,
            exec,
            PartialPrune::Latency,
            // Algorithm 1 is exact and purely structural, hence invariant
            // under class-preserving relabellings (the `Classes` gate).
            Symmetry::Classes,
            options.strategy,
            incumbent_seed,
            &eval,
            probe,
        ) {
            best = Some(MinLatencyResult {
                latency: out.value,
                graph: out.graph,
                exhaustive: out.complete,
            });
        }
    }
    if app.n() <= options.dag_enumeration_max_n {
        // Seed the DAG phase's incumbent with the forest optimum (tightened
        // by the warm-start seed): a DAG only matters when it strictly beats
        // every forest, so candidates whose critical path already clears the
        // seed skip their ordering search.
        let seed = best
            .as_ref()
            .map_or(f64::INFINITY, |b| b.latency)
            .min(incumbent_seed);
        let eval = |g: &ExecutionGraph, cutoff: f64| {
            evals.fetch_add(1, Ordering::Relaxed);
            evaluate_latency_bounded(app, g, options, cache, cutoff, exec.deadline)
        };
        // The DAG evaluation is label-invariant only while every candidate's
        // ordering search stays exhaustive (beyond the budget it falls back
        // to label-following hill climbing), so the symmetry reduction is
        // gated on the worst DAG's ordering space fitting the budget.
        let symmetry = if CanonicalSpace::max_dag_ordering_space(app.n())
            <= options.ordering_exhaustive_limit
        {
            Symmetry::Auto
        } else {
            Symmetry::Full
        };
        let dag = exhaustive_dag_search(
            app,
            options.dag_enumeration_max_n,
            exec,
            seed,
            symmetry,
            &eval,
        );
        if let Some(out) = dag {
            if best.as_ref().is_none_or(|b| out.value < b.latency - 1e-12) {
                best = Some(MinLatencyResult {
                    latency: out.value,
                    graph: out.graph,
                    exhaustive: out.complete,
                });
            }
        }
    }
    match best {
        Some(b) => Ok(b),
        None => minlatency_local_search(app, options),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_filter_is_chained_in_front() {
        let app = Application::independent(&[(1.0, 0.1), (10.0, 1.0)]);
        let result = minimize_latency(&app, &MinLatencyOptions::default()).unwrap();
        assert!(result.exhaustive);
        assert!(result.graph.has_edge(0, 1));
        // in(1) + c0(1) + comm(0.1) + c1(0.1*10=1) + out(0.1)
        assert!((result.latency - 3.2).abs() < 1e-9);
    }

    #[test]
    fn expanders_are_not_chained_for_latency() {
        // Chaining an expander in front of anything only increases the latency.
        let app = Application::independent(&[(1.0, 3.0), (1.0, 3.0)]);
        let result = minimize_latency(&app, &MinLatencyOptions::default()).unwrap();
        assert!(result.exhaustive);
        assert_eq!(result.graph.edge_count(), 0);
        // Each runs independently: 1 + 1 + 3 = 5.
        assert!((result.latency - 5.0).abs() < 1e-9);
    }

    #[test]
    fn chain_restriction_matches_greedy() {
        let app = Application::independent(&[(2.0, 0.5), (1.0, 0.8), (3.0, 0.2)]);
        let order = chain_minlatency_order(&app).unwrap();
        let chain_value = crate::chain::chain_latency(&app, &order);
        // The unrestricted optimum can only be better or equal.
        let result = minimize_latency(&app, &MinLatencyOptions::default()).unwrap();
        assert!(result.latency <= chain_value + 1e-9);
    }

    #[test]
    fn local_search_close_to_exhaustive() {
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8), (1.0, 0.6)]);
        let options = MinLatencyOptions::default();
        let exhaustive = minimize_latency(&app, &options).unwrap();
        assert!(exhaustive.exhaustive);
        let local = minlatency_local_search(&app, &options).unwrap();
        assert!(local.latency >= exhaustive.latency - 1e-9);
        assert!(local.latency <= exhaustive.latency * 1.25 + 1e-9);
    }

    #[test]
    fn constraints_are_respected() {
        let mut app = Application::independent(&[(1.0, 0.5), (2.0, 0.5), (3.0, 1.0)]);
        app.add_constraint(1, 2).unwrap();
        let result = minimize_latency(&app, &MinLatencyOptions::default()).unwrap();
        result.graph.respects(&app).unwrap();
    }

    #[test]
    fn forest_evaluation_matches_orchestration_for_trees() {
        // For a tree the exact Algorithm-1 value and the ordering search agree.
        let app = Application::independent(&[(1.0, 1.0), (2.0, 0.5), (3.0, 2.0), (1.0, 1.0)]);
        let g = ExecutionGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3)]).unwrap();
        let opts = MinLatencyOptions::default();
        let by_tree = tree_latency(&app, &g).unwrap();
        let by_search = oneport_latency_search(&app, &g, 10_000).unwrap();
        assert!(by_search.exhaustive);
        assert!((by_tree - by_search.latency).abs() < 1e-9);
        assert!((evaluate_latency(&app, &g, &opts).unwrap() - by_tree).abs() < 1e-9);
    }
}
