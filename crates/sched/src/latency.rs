//! Latency orchestration.
//!
//! The latency (response time) of a plan is the completion time of a single
//! data set.  For the one-port models the distinction between `INORDER` and
//! `OUTORDER` disappears (only one data set is in flight), but the *order* in
//! which every server performs its receptions and its emissions still matters
//! and choosing it optimally is NP-hard (Theorem 3).  For the multi-port
//! model, bandwidth sharing can strictly beat any one-port schedule
//! (counter-example B.2 of the paper).
//!
//! This module provides:
//!
//! * [`oneport_latency_for_orderings`] — the exact makespan of a fixed
//!   ordering (a longest-path computation over the operation DAG, with
//!   deadlock detection for inconsistent rendezvous orders);
//! * [`oneport_latency_search`] — exhaustive search over orderings when the
//!   space is small, hill climbing otherwise;
//! * [`multiport_proportional_latency`] — a constructive bounded multi-port
//!   schedule in which every transfer of server `k` reserves a
//!   `volume / max(Cout(k), Cin(recv))` bandwidth share, so all transfers of a
//!   port may proceed concurrently (this reproduces the strict multi-port
//!   advantage of counter-example B.2);
//! * [`multiport_latency`] — the better of the two (any one-port schedule is
//!   also a valid multi-port schedule);
//! * [`latency_lower_bound`] — the critical-path lower bound valid for every model.

use std::collections::BTreeMap;

use fsw_core::{
    in_edges, out_edges, plan_edges, Application, CoreError, CoreResult, EdgeRef, ExecutionGraph,
    Interval, OperationList, PlanMetrics,
};

use crate::engine::prune_threshold;
use crate::orderings::{CommOrderings, OrderingSpace};
use crate::par::{fold_min, par_chunks, Exec};

/// Critical-path lower bound on the latency, valid for every communication model.
///
/// The weight of a path is the sum of the communication volumes and
/// computation costs along it, starting with the input transfer and ending
/// with the output transfer of an exit node.
pub fn latency_lower_bound(app: &Application, graph: &ExecutionGraph) -> CoreResult<f64> {
    let metrics = PlanMetrics::compute(app, graph)?;
    latency_lower_bound_with(app, graph, &metrics)
}

/// [`latency_lower_bound`] with pre-computed plan metrics.
pub(crate) fn latency_lower_bound_with(
    app: &Application,
    graph: &ExecutionGraph,
    metrics: &PlanMetrics,
) -> CoreResult<f64> {
    let order = graph.topological_order()?;
    let mut done = vec![0.0f64; graph.n()];
    let mut best = 0.0f64;
    for &k in &order {
        let mut ready = 0.0f64;
        for e in in_edges(graph, k) {
            let volume = metrics.edge_volume(app, e);
            let from = match e {
                EdgeRef::Input(_) => 0.0,
                EdgeRef::Link(i, _) => done[i],
                EdgeRef::Output(_) => unreachable!("output edges are never incoming"),
            };
            ready = ready.max(from + volume);
        }
        done[k] = ready + metrics.c_comp(k);
        if graph.succs(k).is_empty() {
            best = best.max(done[k] + metrics.edge_volume(app, EdgeRef::Output(k)));
        }
    }
    Ok(best)
}

/// An operation of the single-data-set schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum LatOp {
    Comm(EdgeRef),
    Calc(usize),
}

/// Pre-computed state for evaluating many communication orderings of one
/// `(application, graph)` pair.
///
/// The operation set, its durations and the plan metrics do not depend on
/// the ordering — only the per-server sequence arcs do — so an exhaustive
/// ordering search builds this once and pays only the longest-path run per
/// candidate, instead of recomputing `PlanMetrics` (ancestor sets and all)
/// for every one of thousands of orderings.
pub struct LatencyEvaluator<'a> {
    graph: &'a ExecutionGraph,
    ops: Vec<LatOp>,
    index: BTreeMap<LatOp, usize>,
    durations: Vec<f64>,
    lower_bound: f64,
}

impl<'a> LatencyEvaluator<'a> {
    /// Precomputes the operation DAG skeleton for `graph`.
    pub fn new(app: &Application, graph: &'a ExecutionGraph) -> CoreResult<Self> {
        let metrics = PlanMetrics::compute(app, graph)?;
        Self::with_metrics(app, graph, &metrics)
    }

    /// [`LatencyEvaluator::new`] with caller-provided plan metrics, so a
    /// caller that already computed them does not pay for them twice.
    pub fn with_metrics(
        app: &Application,
        graph: &'a ExecutionGraph,
        metrics: &PlanMetrics,
    ) -> CoreResult<Self> {
        let lower_bound = latency_lower_bound_with(app, graph, metrics)?;
        // Operation set:
        //  * per server: receptions, the computation, emissions;
        //  * rendezvous: a transfer is a single operation shared by both
        //    sequences — data flow is implied by the per-server sequences.
        let mut ops: Vec<LatOp> = Vec::new();
        let mut index: BTreeMap<LatOp, usize> = BTreeMap::new();
        let mut add = |op: LatOp| {
            index.entry(op).or_insert_with(|| {
                ops.push(op);
                ops.len() - 1
            });
        };
        for edge in plan_edges(graph) {
            add(LatOp::Comm(edge));
        }
        for k in 0..graph.n() {
            add(LatOp::Calc(k));
        }
        let durations: Vec<f64> = ops
            .iter()
            .map(|op| match op {
                LatOp::Comm(e) => metrics.edge_volume(app, *e),
                LatOp::Calc(k) => metrics.c_comp(*k),
            })
            .collect();
        Ok(LatencyEvaluator {
            graph,
            ops,
            index,
            durations,
            lower_bound,
        })
    }

    /// The critical-path latency lower bound of the underlying graph
    /// ([`latency_lower_bound`], computed once at construction).
    pub fn lower_bound(&self) -> f64 {
        self.lower_bound
    }

    /// Longest path over the operation DAG induced by `ords` (Kahn), with
    /// cycle (deadlock) detection.
    ///
    /// Returns `Ok(None)` when some operation provably ends after `cutoff` —
    /// every operation end bounds the makespan from below, so the true
    /// latency then exceeds `cutoff` and the caller can abandon the
    /// candidate early.  With `cutoff = ∞` the result is always exact.
    fn run(
        &self,
        ords: &CommOrderings,
        cutoff: f64,
        starts_out: Option<&mut Vec<f64>>,
    ) -> CoreResult<Option<f64>> {
        let m = self.ops.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut indeg: Vec<usize> = vec![0; m];
        for k in 0..self.graph.n() {
            let mut seq: Vec<usize> =
                Vec::with_capacity(ords.incoming[k].len() + 1 + ords.outgoing[k].len());
            for e in &ords.incoming[k] {
                seq.push(self.index[&LatOp::Comm(*e)]);
            }
            seq.push(self.index[&LatOp::Calc(k)]);
            for e in &ords.outgoing[k] {
                seq.push(self.index[&LatOp::Comm(*e)]);
            }
            for w in seq.windows(2) {
                succs[w[0]].push(w[1]);
                indeg[w[1]] += 1;
            }
        }
        let mut start = vec![0.0f64; m];
        let mut stack: Vec<usize> = (0..m).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0usize;
        let mut makespan = 0.0f64;
        while let Some(i) = stack.pop() {
            visited += 1;
            let end = start[i] + self.durations[i];
            if end > cutoff {
                return Ok(None);
            }
            makespan = makespan.max(end);
            for &j in &succs[i] {
                if end > start[j] {
                    start[j] = end;
                }
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    stack.push(j);
                }
            }
        }
        if visited != m {
            return Err(CoreError::CyclicGraph);
        }
        if let Some(out) = starts_out {
            *out = start;
        }
        Ok(Some(makespan))
    }

    /// Latency of a fixed ordering, abandoning early (`Ok(None)`) once it
    /// provably exceeds `cutoff`; `Err(CyclicGraph)` on deadlock.
    pub fn value(&self, ords: &CommOrderings, cutoff: f64) -> CoreResult<Option<f64>> {
        self.run(ords, cutoff, None)
    }

    /// Latency *and* concrete operation list of a fixed ordering.
    pub fn schedule(&self, ords: &CommOrderings) -> CoreResult<(f64, OperationList)> {
        let mut start = Vec::new();
        let makespan = self
            .run(ords, f64::INFINITY, Some(&mut start))?
            .expect("an infinite cutoff never abandons");
        // Assemble the operation list; its period is set to the makespan so
        // the schedule trivially has no cross-data-set conflict (the "fully
        // serialise each data set" strategy of Section 2.2 for the latency).
        let lambda = if makespan > 0.0 { makespan } else { 1.0 };
        let mut oplist = OperationList::new(self.graph.n(), lambda);
        for (i, op) in self.ops.iter().enumerate() {
            let iv = Interval::with_duration(start[i], self.durations[i]);
            match op {
                LatOp::Comm(e) => oplist.set_comm(*e, iv),
                LatOp::Calc(k) => oplist.set_calc(*k, iv),
            }
        }
        Ok((oplist.latency(), oplist))
    }
}

/// Latency (and operation list) achieved by a fixed communication ordering
/// under one-port communications.
///
/// Returns `Err(CoreError::CyclicGraph)` when the orderings dead-lock (the
/// rendezvous orders of two servers are mutually inconsistent).
pub fn oneport_latency_for_orderings(
    app: &Application,
    graph: &ExecutionGraph,
    ords: &CommOrderings,
) -> CoreResult<(f64, OperationList)> {
    if !ords.is_consistent_with(graph) {
        return Err(CoreError::SizeMismatch {
            expected: graph.n(),
            found: ords.n(),
        });
    }
    LatencyEvaluator::new(app, graph)?.schedule(ords)
}

/// Result of a latency ordering search.
#[derive(Clone, Debug)]
pub struct LatencySearchResult {
    /// Best latency found.
    pub latency: f64,
    /// Operation list achieving it.
    pub oplist: OperationList,
    /// Ordering achieving it.
    pub orderings: CommOrderings,
    /// `true` when the whole ordering space was enumerated.
    pub exhaustive: bool,
}

/// Searches the communication orderings minimising the one-port latency.
///
/// Exhaustive when the ordering space does not exceed `exhaustive_limit`;
/// otherwise hill climbing over adjacent swaps from the natural ordering.
pub fn oneport_latency_search(
    app: &Application,
    graph: &ExecutionGraph,
    exhaustive_limit: usize,
) -> CoreResult<LatencySearchResult> {
    oneport_latency_search_exec(app, graph, exhaustive_limit, Exec::serial())
}

/// [`oneport_latency_search`] under an explicit execution strategy: the
/// exhaustive enumeration is split over `exec` worker threads (chunks in
/// enumeration order, reduced with the serial tie-breaking rule, so the
/// result is bit-identical to the serial run) and honours its deadline.
pub fn oneport_latency_search_exec(
    app: &Application,
    graph: &ExecutionGraph,
    exhaustive_limit: usize,
    exec: Exec,
) -> CoreResult<LatencySearchResult> {
    Ok(
        oneport_latency_search_bounded(app, graph, exhaustive_limit, exec, f64::INFINITY)?
            .expect("an infinite cutoff never prunes the search"),
    )
}

/// Branch-and-bound variant of [`oneport_latency_search_exec`]: a `cutoff`
/// carried in from an incumbent lets the search abandon work that cannot
/// matter.
///
/// * Returns `Ok(None)` when every ordering provably exceeds `cutoff`
///   (including the cheap case where already the critical-path lower bound
///   does) — the caller's incumbent cannot be improved by this graph.
/// * Otherwise the result is exactly what the unbounded search would have
///   returned (value, winning ordering and schedule are bit-identical):
///   partial schedules are abandoned only once some operation provably ends
///   after both the cutoff and the best latency found so far.
pub fn oneport_latency_search_bounded(
    app: &Application,
    graph: &ExecutionGraph,
    exhaustive_limit: usize,
    exec: Exec,
    cutoff: f64,
) -> CoreResult<Option<LatencySearchResult>> {
    let evaluator = LatencyEvaluator::new(app, graph)?;
    oneport_latency_search_prepared(graph, &evaluator, exhaustive_limit, exec, cutoff)
}

/// [`oneport_latency_search_bounded`] with a caller-provided evaluator, so a
/// caller that already built one (e.g. the memoised MINLATENCY candidate
/// evaluation) does not recompute the plan metrics.
pub(crate) fn oneport_latency_search_prepared(
    graph: &ExecutionGraph,
    evaluator: &LatencyEvaluator<'_>,
    exhaustive_limit: usize,
    exec: Exec,
    cutoff: f64,
) -> CoreResult<Option<LatencySearchResult>> {
    if evaluator.lower_bound() > prune_threshold(cutoff) {
        return Ok(None);
    }
    if let Some(space) = OrderingSpace::new(graph, exhaustive_limit) {
        let indices: Vec<usize> = (0..space.len()).collect();
        let parts = par_chunks(exec.effective_threads(), &indices, |_base, chunk| {
            let mut best: Option<(f64, usize)> = None;
            let mut complete = true;
            for &i in chunk {
                if exec.expired() {
                    complete = false;
                    break;
                }
                let ords = space.get(i);
                // Anything that cannot strictly beat both the cutoff and the
                // chunk's own best is abandoned mid-evaluation; ties are
                // evaluated in full so first-minimum-wins is preserved.
                let dynamic_cutoff = best.map_or(cutoff, |(b, _)| cutoff.min(b));
                match evaluator.value(&ords, dynamic_cutoff) {
                    Err(_) => continue,   // dead-locked ordering
                    Ok(None) => continue, // provably above the bar
                    // No early exit at the critical-path bound: a computed
                    // makespan can land an ulp below it (different float
                    // paths), so stopping there could miss the bitwise
                    // minimum and break serial/parallel equivalence.
                    Ok(Some(latency)) => {
                        if best.is_none_or(|(b, _)| latency < b) {
                            best = Some((latency, i));
                        }
                    }
                }
            }
            (best, complete)
        });
        let complete = parts.iter().all(|(_, c)| *c);
        let best = fold_min(parts.into_iter().map(|(b, _)| b).collect());
        match best {
            Some((latency, winner)) => {
                if latency > cutoff {
                    return Ok(None);
                }
                // Rebuild the winning operation list (deterministic for a
                // fixed ordering, so this matches the serial run exactly).
                let orderings = space.get(winner);
                let (_, oplist) = evaluator.schedule(&orderings)?;
                return Ok(Some(LatencySearchResult {
                    latency,
                    oplist,
                    orderings,
                    exhaustive: complete,
                }));
            }
            None if complete => {
                if cutoff.is_finite() {
                    // Everything was either dead-locked or above the cutoff.
                    return Ok(None);
                }
                return Err(CoreError::CyclicGraph);
            }
            // Deadline expired before anything was evaluated: fall through to
            // the (cheap) topological-ordering fallback below.
            None => {}
        }
    }
    // Start the hill climbing from the (always feasible) topological
    // ordering.  The climb itself is not cutoff-bounded: its value must stay
    // bit-identical to the legacy heuristic whatever incumbent is carried in.
    let mut current = CommOrderings::topological(graph);
    let (mut current_latency, mut current_oplist) = evaluator.schedule(&current)?;
    let mut improved = true;
    while improved && !exec.expired() {
        improved = false;
        for server in 0..graph.n() {
            for outgoing in [false, true] {
                let len = if outgoing {
                    current.outgoing[server].len()
                } else {
                    current.incoming[server].len()
                };
                for pos in 0..len.saturating_sub(1) {
                    let mut candidate = current.clone();
                    candidate.swap_adjacent(server, outgoing, pos);
                    if let Ok((latency, oplist)) = evaluator.schedule(&candidate) {
                        if latency + 1e-12 < current_latency {
                            current = candidate;
                            current_latency = latency;
                            current_oplist = oplist;
                            improved = true;
                        }
                    }
                }
            }
        }
    }
    Ok(Some(LatencySearchResult {
        latency: current_latency,
        oplist: current_oplist,
        orderings: current,
        exhaustive: false,
    }))
}

/// Constructive bounded multi-port latency schedule.
///
/// Every transfer leaving server `i` towards server `j` reserves the bandwidth
/// fraction `volume / D` with `D = max(Cout(i), Cin(j))` (input and output
/// transfers use the one-sided bound), so all transfers of a port can be in
/// flight simultaneously without exceeding the capacity; transfers start as
/// soon as their data is available and computations start once all inputs have
/// arrived.  The schedule is always a valid `OVERLAP` operation list.
pub fn multiport_proportional_latency(
    app: &Application,
    graph: &ExecutionGraph,
) -> CoreResult<(f64, OperationList)> {
    let metrics = PlanMetrics::compute(app, graph)?;
    let order = graph.topological_order()?;
    let n = graph.n();
    let mut calc_end = vec![0.0f64; n];
    let lambda_placeholder = 1.0;
    let mut oplist = OperationList::new(n, lambda_placeholder);
    for &k in &order {
        let mut ready = 0.0f64;
        for e in in_edges(graph, k) {
            let volume = metrics.edge_volume(app, e);
            let duration = match e {
                EdgeRef::Input(_) => metrics.c_in(k).max(volume),
                EdgeRef::Link(i, _) => metrics.c_out(i).max(metrics.c_in(k)).max(volume),
                EdgeRef::Output(_) => unreachable!("output edges are never incoming"),
            };
            let begin = match e {
                EdgeRef::Input(_) => 0.0,
                EdgeRef::Link(i, _) => calc_end[i],
                EdgeRef::Output(_) => unreachable!(),
            };
            let iv = Interval::with_duration(begin, duration);
            ready = ready.max(iv.end);
            oplist.set_comm(e, iv);
        }
        let begin = ready;
        let end = begin + metrics.c_comp(k);
        oplist.set_calc(k, Interval::new(begin, end));
        calc_end[k] = end;
        for e in out_edges(graph, k) {
            if let EdgeRef::Output(_) = e {
                let volume = metrics.edge_volume(app, e);
                let duration = metrics.c_out(k).max(volume);
                oplist.set_comm(e, Interval::with_duration(end, duration));
            }
        }
    }
    let latency = oplist.latency();
    let oplist = oplist.with_lambda(latency.max(1e-9));
    Ok((latency, oplist))
}

/// Best multi-port latency schedule available: the better of the proportional
/// multi-port construction and the best one-port schedule (any one-port
/// schedule is also multi-port feasible).
pub fn multiport_latency(
    app: &Application,
    graph: &ExecutionGraph,
    exhaustive_limit: usize,
) -> CoreResult<(f64, OperationList)> {
    let (fluid_latency, fluid_oplist) = multiport_proportional_latency(app, graph)?;
    let oneport = oneport_latency_search(app, graph, exhaustive_limit)?;
    if fluid_latency <= oneport.latency {
        Ok((fluid_latency, fluid_oplist))
    } else {
        Ok((oneport.latency, oneport.oplist))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_core::{validate_oplist, CommModel};

    fn section23() -> (Application, ExecutionGraph) {
        let app = Application::independent(&[(4.0, 1.0); 5]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
        (app, g)
    }

    #[test]
    fn section23_optimal_latency_is_21() {
        let (app, g) = section23();
        let result = oneport_latency_search(&app, &g, 1000).unwrap();
        assert!(result.exhaustive);
        assert!(
            (result.latency - 21.0).abs() < 1e-9,
            "got {}",
            result.latency
        );
        // The schedule is valid for every model (one data set at a time).
        for model in CommModel::ALL {
            validate_oplist(&app, &g, &result.oplist, model)
                .unwrap_or_else(|v| panic!("{model}: {v:?}"));
        }
        // Multi-port does not improve the latency on this example (the paper
        // notes this).
        let (multi, _) = multiport_latency(&app, &g, 1000).unwrap();
        assert!((multi - 21.0).abs() < 1e-9);
    }

    #[test]
    fn latency_lower_bound_is_a_lower_bound() {
        let (app, g) = section23();
        let lb = latency_lower_bound(&app, &g).unwrap();
        // Longest path: in->C1(1) + C1(4) + C1->C2(1) + C2(4) + C2->C3(1) + C3(4)
        //               + C3->C5(1) + C5(4) + C5->out(1) = 21
        assert!((lb - 21.0).abs() < 1e-9);
        let result = oneport_latency_search(&app, &g, 1000).unwrap();
        assert!(result.latency >= lb - 1e-9);
    }

    #[test]
    fn chain_latency_matches_closed_form() {
        // Chain 0 -> 1 with costs (2, 3) and selectivities (0.5, 1):
        // latency = 1 + 2 + 0.5 + 0.5*3 + 0.5*1 = 5.5
        let app = Application::independent(&[(2.0, 0.5), (3.0, 1.0)]);
        let g = ExecutionGraph::chain_of(2, &[0, 1]).unwrap();
        let result = oneport_latency_search(&app, &g, 10).unwrap();
        assert!((result.latency - 5.5).abs() < 1e-9);
        validate_oplist(&app, &g, &result.oplist, CommModel::InOrder).unwrap();
        let lb = latency_lower_bound(&app, &g).unwrap();
        assert!((lb - 5.5).abs() < 1e-9);
    }

    #[test]
    fn star_latency_orders_children_longest_first() {
        // A root feeding three children with very different costs: the best
        // ordering sends to the expensive child first.
        let app = Application::independent(&[(1.0, 1.0), (9.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        let g = ExecutionGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let result = oneport_latency_search(&app, &g, 1000).unwrap();
        assert!(result.exhaustive);
        // in->C0: 1, C0: 1, send to C1 at 2..3, C1 computes 3..12, C1->out 12..13.
        assert!(
            (result.latency - 13.0).abs() < 1e-9,
            "got {}",
            result.latency
        );
        // A bad ordering (expensive child last) costs 2 more.
        let mut bad = CommOrderings::natural(&g);
        bad.outgoing[0] = vec![
            EdgeRef::Link(0, 2),
            EdgeRef::Link(0, 3),
            EdgeRef::Link(0, 1),
        ];
        let (bad_latency, _) = oneport_latency_for_orderings(&app, &g, &bad).unwrap();
        assert!((bad_latency - 15.0).abs() < 1e-9, "got {bad_latency}");
    }

    #[test]
    fn deadlocked_orderings_are_detected() {
        // Two senders (0, 1) and two receivers (2, 3) with crossing priorities.
        let app = Application::independent(&[(1.0, 1.0); 4]);
        let g = ExecutionGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let mut ords = CommOrderings::natural(&g);
        ords.outgoing[0] = vec![EdgeRef::Link(0, 2), EdgeRef::Link(0, 3)];
        ords.outgoing[1] = vec![EdgeRef::Link(1, 3), EdgeRef::Link(1, 2)];
        ords.incoming[2] = vec![EdgeRef::Link(1, 2), EdgeRef::Link(0, 2)];
        ords.incoming[3] = vec![EdgeRef::Link(0, 3), EdgeRef::Link(1, 3)];
        assert!(matches!(
            oneport_latency_for_orderings(&app, &g, &ords),
            Err(CoreError::CyclicGraph)
        ));
        // The exhaustive search skips dead-locked orderings and still finds one.
        let result = oneport_latency_search(&app, &g, 10000).unwrap();
        assert!(result.latency.is_finite());
    }

    #[test]
    fn multiport_proportional_schedule_is_valid_overlap() {
        let (app, g) = section23();
        let (latency, ol) = multiport_proportional_latency(&app, &g).unwrap();
        assert!(latency >= 21.0 - 1e-9);
        validate_oplist(&app, &g, &ol, CommModel::Overlap).unwrap_or_else(|v| panic!("{v:?}"));
    }
}
