//! Best-first search over the partial-assignment lower bound.
//!
//! The depth-first branch-and-bound enumerations explore candidates in
//! *generation* order: the incumbent tightens whenever the walk happens to
//! stumble on a good candidate, and everything visited before that point is
//! evaluated against a weak bound.  This module flips the exploration
//! around: a **priority frontier** of partial forests ordered by their
//! admissible [`PartialForestMetrics`](fsw_core::PartialForestMetrics) bound
//! (a binary heap with deterministic tie-breaking by enumeration rank)
//! always expands the most promising prefix next, so the incumbent drops to
//! the optimum almost immediately — and because the heap is bound-ordered,
//! the first popped node whose bound clears the incumbent is a
//! **bound-clearance certificate** for every node still enqueued: the
//! search ends by discarding the whole frontier in one step instead of
//! walking millions of hopeless subtrees to re-prove it one bound at a
//! time.
//!
//! Memory stays bounded: the frontier never grows past a hard cap
//! ([`DEFAULT_FRONTIER_CAP`] unless the caller chooses otherwise).  When a
//! batch of expansions could overflow it, the popped nodes are
//! **spilled** — their subtrees are completed depth-first on the spot
//! (inheriting the incumbent, so the spill is as pruned as the classic
//! walk) and contribute no frontier nodes at all.  In the worst case the
//! search degenerates into the depth-first enumeration it replaces, never
//! into an out-of-memory condition.
//!
//! ### Bit-identical to depth-first
//!
//! Both strategies prune a candidate only when its admissible bound
//! *strictly* clears the shared incumbent, so every candidate tying the
//! optimum is evaluated under either walk, whatever the thread count.  The
//! depth-first winner is the first minimum in enumeration order; the
//! best-first walk reproduces it exactly by minimising `(value, rank)`
//! lexicographically, where `rank` is that same enumeration order (the
//! node's choice sequence for labelled spaces, the canonical stream index
//! for orbit spaces).  `tests/partial_symmetry_equivalence.rs` asserts the
//! equality on every equivalence suite, serial and parallel, including the
//! spill path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use fsw_core::{Application, ExecutionGraph, PartialForestMetrics, ServiceId};

use crate::engine::{prune_threshold, CanonicalRep, ForestCursor, Incumbent, PartialPrune};
use crate::minperiod::SearchOutcome;
use crate::par::{par_chunks, Exec};

/// Hard cap on the number of partial forests held in the priority frontier
/// (~a few MB of prefixes at the deepest useful instance sizes); beyond it
/// the search spills to depth-first completion, so memory stays bounded
/// however large the space is.
pub const DEFAULT_FRONTIER_CAP: usize = 1 << 16;

/// Telemetry of one best-first run, for tests and tuning.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrontierStats {
    /// Largest number of nodes the frontier ever held.
    pub peak: usize,
    /// Number of pop batches completed depth-first because expanding them
    /// could have overflowed the cap.
    pub spills: usize,
}

/// One frontier node: a prefix of parent choices and its admissible bound.
/// The heap orders by `(bound, key)` — `key` is the prefix's choice sequence
/// (`0` = entry node, `p + 1` = parent `p`), whose lexicographic order *is*
/// the serial enumeration order, making tie-breaks deterministic.
#[derive(Clone, Debug, PartialEq)]
struct Node {
    bound: f64,
    key: Vec<u8>,
}

impl Eq for Node {}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| self.key.cmp(&other.key))
    }
}

/// The best complete candidate seen so far, with its enumeration rank.
struct Best {
    value: f64,
    key: Vec<u8>,
    graph: ExecutionGraph,
}

/// `(value, key)` beats the current best lexicographically — the rule that
/// reproduces the depth-first "first minimum wins" winner.
fn improves(value: f64, key: &[u8], best: &Option<Best>) -> bool {
    match best {
        None => true,
        Some(b) => value < b.value || (value == b.value && key < b.key.as_slice()),
    }
}

fn merge_best(best: &mut Option<Best>, candidate: Option<Best>) {
    if let Some(c) = candidate {
        if improves(c.value, &c.key, best) {
            *best = Some(c);
        }
    }
}

fn decode(choice: u8) -> Option<ServiceId> {
    match choice {
        0 => None,
        p => Some(p as usize - 1),
    }
}

/// Best-first enumeration of the labelled forest space (all parent
/// functions compatible with `app`'s constraints): bit-identical winners to
/// the depth-first walk, most promising prefixes first, frontier bounded by
/// `frontier_cap`.
pub fn best_first_forest_search<F>(
    app: &Application,
    exec: Exec,
    prune: PartialPrune,
    frontier_cap: usize,
    incumbent_seed: f64,
    eval: &F,
) -> Option<SearchOutcome>
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    best_first_forest_search_stats(app, exec, prune, frontier_cap, incumbent_seed, eval).0
}

/// [`best_first_forest_search`] with the run's [`FrontierStats`] (tests
/// assert the cap is respected and the spill path fires).
///
/// `incumbent_seed` pre-loads the shared incumbent with a known upper bound
/// on the space's optimum (`f64::INFINITY` for a cold search): pruning and
/// the bound-clearance certificate stay strict, so the winner is unchanged
/// while the hopeless region is skipped — the warm-start contract of
/// `exhaustive_forest_search_seeded`.
pub fn best_first_forest_search_stats<F>(
    app: &Application,
    exec: Exec,
    prune: PartialPrune,
    frontier_cap: usize,
    incumbent_seed: f64,
    eval: &F,
) -> (Option<SearchOutcome>, FrontierStats)
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    let n = app.n();
    let mut stats = FrontierStats::default();
    if n == 0 {
        return (None, stats);
    }
    // Keys encode a choice per position as one byte (`0` = entry node,
    // `p + 1` = parent `p`); enumerable spaces sit far below this, but the
    // encoding must never truncate silently.
    assert!(
        n < u8::MAX as usize,
        "frontier keys encode parents as u8: n = {n} is out of range"
    );
    let frontier_cap = frontier_cap.max(1);
    let threads = exec.effective_threads();
    let batch_len = (threads * 4).max(1);
    let incumbent = Incumbent::seeded(incumbent_seed);
    let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
    heap.push(Reverse(Node {
        bound: 0.0,
        key: Vec::new(),
    }));
    stats.peak = 1;
    let mut best: Option<Best> = None;
    let mut complete = true;
    'search: loop {
        if exec.deadline.is_some_and(|d| Instant::now() >= d) {
            complete = heap.is_empty();
            break;
        }
        // Pop a bound-ordered batch.  The first node whose bound clears the
        // incumbent certifies every node still enqueued prunable (the heap
        // holds nothing smaller), so the whole frontier is discarded at once.
        let mut nodes: Vec<Node> = Vec::with_capacity(batch_len);
        while nodes.len() < batch_len {
            match heap.pop() {
                Some(Reverse(node)) => {
                    if node.bound > prune_threshold(incumbent.get()) {
                        heap.clear(); // bound-clearance certificate
                        break;
                    }
                    nodes.push(node);
                }
                None => break,
            }
        }
        if nodes.is_empty() {
            break;
        }
        // Expanding a node adds up to `n + 1` children; spill the batch to
        // depth-first completion when that could overflow the cap.
        let spill = heap.len() + nodes.len() * (n + 1) > frontier_cap;
        if spill {
            stats.spills += 1;
        }
        let parts = par_chunks(threads, &nodes, |_base, chunk| {
            let mut children: Vec<Node> = Vec::new();
            let mut local: Option<Best> = None;
            let mut metrics = PartialForestMetrics::new(app);
            let mut interrupted = false;
            for node in chunk {
                for &choice in &node.key {
                    metrics.push(decode(choice));
                }
                let ok = if node.key.len() == n {
                    evaluate_leaf(
                        app,
                        &metrics,
                        &node.key,
                        &incumbent,
                        eval,
                        exec.deadline,
                        &mut local,
                    )
                } else if spill {
                    let mut key = node.key.clone();
                    dfs_complete(
                        app,
                        &mut metrics,
                        &mut key,
                        &incumbent,
                        prune,
                        eval,
                        exec.deadline,
                        &mut local,
                    )
                } else {
                    expand(app, &mut metrics, node, prune, &incumbent, &mut children);
                    true
                };
                for _ in &node.key {
                    metrics.pop();
                }
                if !ok {
                    interrupted = true;
                    break;
                }
            }
            (children, local, interrupted)
        });
        let mut interrupted = false;
        for (children, local, part_interrupted) in parts {
            for child in children {
                heap.push(Reverse(child));
            }
            merge_best(&mut best, local);
            interrupted |= part_interrupted;
        }
        stats.peak = stats.peak.max(heap.len());
        if interrupted {
            complete = false;
            break 'search;
        }
    }
    let outcome = best.map(|b| SearchOutcome {
        value: b.value,
        graph: b.graph,
        complete,
    });
    (outcome, stats)
}

/// Evaluates a complete parent function against the shared incumbent.
/// Returns `false` when the deadline interrupted before the evaluation.
#[allow(clippy::too_many_arguments)]
fn evaluate_leaf<F>(
    app: &Application,
    metrics: &PartialForestMetrics<'_>,
    key: &[u8],
    incumbent: &Incumbent,
    eval: &F,
    deadline: Option<Instant>,
    best: &mut Option<Best>,
) -> bool
where
    F: Fn(&ExecutionGraph, f64) -> f64,
{
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return false;
    }
    let Ok(graph) = ExecutionGraph::from_parents(metrics.parents()) else {
        return true; // the parent function contains a cycle
    };
    if graph.respects(app).is_err() {
        return true;
    }
    let value = eval(&graph, incumbent.get());
    if improves(value, key, best) {
        incumbent.offer(value);
        *best = Some(Best {
            value,
            key: key.to_vec(),
            graph,
        });
    }
    true
}

/// Expands a frontier node: every next-position choice whose admissible
/// bound survives the incumbent becomes a child node.
fn expand(
    app: &Application,
    metrics: &mut PartialForestMetrics<'_>,
    node: &Node,
    prune: PartialPrune,
    incumbent: &Incumbent,
    children: &mut Vec<Node>,
) {
    let n = app.n();
    let k = metrics.assigned();
    debug_assert_eq!(k, node.key.len());
    for choice in 0..=(n as u8) {
        let parent = decode(choice);
        if parent == Some(k) {
            continue; // self-loops are never enumerated
        }
        metrics.push(parent);
        let bound = match prune {
            PartialPrune::Off => 0.0,
            PartialPrune::Period(model) => metrics.period_bound(model),
            PartialPrune::Latency => metrics.latency_bound(),
        };
        metrics.pop();
        // An infinite bound flags a cycle inside the prefix; a bound above
        // the incumbent's threshold proves the subtree hopeless — the same
        // two prunes the depth-first walk applies at node entry.
        if bound == f64::INFINITY || bound > prune_threshold(incumbent.get()) {
            continue;
        }
        let mut key = Vec::with_capacity(node.key.len() + 1);
        key.extend_from_slice(&node.key);
        key.push(choice);
        children.push(Node { bound, key });
    }
}

/// Depth-first completion of a spilled subtree, tracking `(value, key)` so
/// spilled winners merge deterministically with frontier winners.  Returns
/// `false` when the deadline interrupted the walk.
///
/// Mirror of `minperiod::enumerate_parents_pruned` plus the key tracking:
/// the bit-identity contract between the strategies requires the prune rule
/// (infinite bound = cycle, strict `prune_threshold` clearance) and the
/// choice order (`None` first, then ascending parents) to stay in lockstep
/// with that walker — change them together.
#[allow(clippy::too_many_arguments)]
fn dfs_complete<F>(
    app: &Application,
    metrics: &mut PartialForestMetrics<'_>,
    key: &mut Vec<u8>,
    incumbent: &Incumbent,
    prune: PartialPrune,
    eval: &F,
    deadline: Option<Instant>,
    best: &mut Option<Best>,
) -> bool
where
    F: Fn(&ExecutionGraph, f64) -> f64,
{
    if prune != PartialPrune::Off && metrics.assigned() > 0 {
        let bound = match prune {
            PartialPrune::Off => unreachable!(),
            PartialPrune::Period(model) => metrics.period_bound(model),
            PartialPrune::Latency => metrics.latency_bound(),
        };
        if bound == f64::INFINITY || bound > prune_threshold(incumbent.get()) {
            return true;
        }
    }
    let n = app.n();
    let k = metrics.assigned();
    if k >= n {
        return evaluate_leaf(app, metrics, key, incumbent, eval, deadline, best);
    }
    for choice in 0..=(n as u8) {
        let parent = decode(choice);
        if parent == Some(k) {
            continue;
        }
        metrics.push(parent);
        key.push(choice);
        let ok = dfs_complete(app, metrics, key, incumbent, prune, eval, deadline, best);
        key.pop();
        metrics.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// Best-first walk of a canonical orbit space: the representatives are
/// ordered by their structural lower bound (computed incrementally with a
/// [`ForestCursor`] in stream order, then sorted with the stream index as
/// the deterministic tie-break) and evaluated most-promising-first in
/// parallel batches.  Because the order is bound-ascending, the first
/// representative whose bound clears the incumbent certifies all remaining
/// ones prunable and ends the search — the optimum's bound-clearance
/// certificate is reached after evaluating a handful of orbits instead of
/// the whole stream.
pub fn best_first_canonical_search<F>(
    app: &Application,
    reps: &[CanonicalRep],
    exec: Exec,
    prune: PartialPrune,
    incumbent_seed: f64,
    eval: &F,
) -> Option<SearchOutcome>
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    let mut cursor = ForestCursor::new(app, prune);
    let mut order: Vec<(f64, usize)> = Vec::with_capacity(reps.len());
    for (idx, rep) in reps.iter().enumerate() {
        // The bound prelude walks the whole stream; honour the deadline at a
        // coarse granularity so a tight `time_limit` cannot block on it.
        if idx & 0xFFF == 0 && exec.deadline.is_some_and(|d| Instant::now() >= d) {
            return None; // nothing evaluated yet: degrade to the fallback
        }
        order.push((cursor.bound(&rep.parents, &rep.weights), idx));
    }
    order.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let incumbent = Incumbent::seeded(incumbent_seed);
    let threads = exec.effective_threads();
    let batch_len = (threads * 8).max(1);
    let mut best: Option<(f64, usize, ExecutionGraph)> = None;
    let mut complete = true;
    let mut at = 0;
    while at < order.len() {
        if exec.deadline.is_some_and(|d| Instant::now() >= d) {
            complete = false;
            break;
        }
        // Bound-ascending order: the head clearing the incumbent is the
        // certificate that every remaining representative is prunable.
        if order[at].0 > prune_threshold(incumbent.get()) {
            break;
        }
        let hi = (at + batch_len).min(order.len());
        let parts = par_chunks(threads, &order[at..hi], |_base, items| {
            let mut local: Option<(f64, usize, ExecutionGraph)> = None;
            for &(bound, idx) in items {
                if bound > prune_threshold(incumbent.get()) {
                    continue;
                }
                let graph = reps[idx].graph();
                let value = eval(&graph, incumbent.get());
                let improves = local
                    .as_ref()
                    .is_none_or(|&(bv, bi, _)| value < bv || (value == bv && idx < bi));
                if improves {
                    incumbent.offer(value);
                    local = Some((value, idx, graph));
                }
            }
            local
        });
        for part in parts.into_iter().flatten() {
            let improves = best
                .as_ref()
                .is_none_or(|&(bv, bi, _)| part.0 < bv || (part.0 == bv && part.1 < bi));
            if improves {
                best = Some(part);
            }
        }
        at = hi;
    }
    best.map(|(value, _, graph)| SearchOutcome {
        value,
        graph,
        complete,
    })
}
