//! Best-first search over the partial-assignment lower bound.
//!
//! The depth-first branch-and-bound enumerations explore candidates in
//! *generation* order: the incumbent tightens whenever the walk happens to
//! stumble on a good candidate, and everything visited before that point is
//! evaluated against a weak bound.  This module flips the exploration
//! around: a **priority frontier** of partial forests ordered by their
//! admissible [`PartialForestMetrics`](fsw_core::PartialForestMetrics) bound
//! (a binary heap with deterministic tie-breaking by enumeration rank)
//! always expands the most promising prefix next, so the incumbent drops to
//! the optimum almost immediately — and because the heap is bound-ordered,
//! the first popped node whose bound clears the incumbent is a
//! **bound-clearance certificate** for every node still enqueued: the
//! search ends by discarding the whole frontier in one step instead of
//! walking millions of hopeless subtrees to re-prove it one bound at a
//! time.
//!
//! Memory stays bounded: the frontier never grows past a hard cap
//! ([`DEFAULT_FRONTIER_CAP`] unless the caller chooses otherwise).  When a
//! batch of expansions could overflow it, the popped nodes are
//! **spilled** — their subtrees are completed depth-first on the spot
//! (inheriting the incumbent, so the spill is as pruned as the classic
//! walk) and contribute no frontier nodes at all.  In the worst case the
//! search degenerates into the depth-first enumeration it replaces, never
//! into an out-of-memory condition.
//!
//! ### Bit-identical to depth-first
//!
//! Both strategies prune a candidate only when its admissible bound
//! *strictly* clears the shared incumbent, so every candidate tying the
//! optimum is evaluated under either walk, whatever the thread count.  The
//! depth-first winner is the first minimum in enumeration order; the
//! best-first walk reproduces it exactly by minimising `(value, rank)`
//! lexicographically, where `rank` is that same enumeration order (the
//! node's choice sequence for labelled spaces, the canonical stream index
//! for orbit spaces).  On top of the strict rule the streamed walk adds a
//! **tie-dominance** prune: a subtree whose bound already *reaches* the
//! walker's local best value and whose completions are all canonically
//! later than the local best's rank is discarded non-strictly — every
//! candidate in it loses the `(value, rank)` comparison outright, so the
//! winner is untouched while optimum-tying plateaus (common when the
//! optimum sits on the input-rate floor) stop being walked.
//! `tests/partial_symmetry_equivalence.rs` asserts the equality on every
//! equivalence suite, serial and parallel, including the spill path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use fsw_core::{
    bound_ordered_shape_plan, walk_canonical_colorings, Application, ColoringVisitor,
    ExecutionGraph, PartialForestMetrics, ServiceId, ShapeBounder, ShapeObjective, ShapePlan,
    ShapeScan, WeightClasses,
};

use crate::engine::{prune_threshold, CanonicalRep, Incumbent, PartialPrune};
use crate::minperiod::SearchOutcome;
use crate::par::{par_chunks, par_chunks_weighted, Exec};

/// Hard cap on the number of partial forests held in the priority frontier
/// (~a few MB of prefixes at the deepest useful instance sizes); beyond it
/// the search spills to depth-first completion, so memory stays bounded
/// however large the space is.
pub const DEFAULT_FRONTIER_CAP: usize = 1 << 16;

/// Telemetry of one best-first run, for tests and tuning.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrontierStats {
    /// Largest number of nodes the frontier ever held.
    pub peak: usize,
    /// Number of pop batches completed depth-first because expanding them
    /// could have overflowed the cap.
    pub spills: usize,
}

/// One frontier node: a prefix of parent choices and its admissible bound.
/// The heap orders by `(bound, key)` — `key` is the prefix's choice sequence
/// (`0` = entry node, `p + 1` = parent `p`), whose lexicographic order *is*
/// the serial enumeration order, making tie-breaks deterministic.
#[derive(Clone, Debug, PartialEq)]
struct Node {
    bound: f64,
    key: Vec<u8>,
}

impl Eq for Node {}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| self.key.cmp(&other.key))
    }
}

/// The best complete candidate seen so far, with its enumeration rank.
struct Best {
    value: f64,
    key: Vec<u8>,
    graph: ExecutionGraph,
}

/// `(value, key)` beats the current best lexicographically — the rule that
/// reproduces the depth-first "first minimum wins" winner.
fn improves(value: f64, key: &[u8], best: &Option<Best>) -> bool {
    match best {
        None => true,
        Some(b) => value < b.value || (value == b.value && key < b.key.as_slice()),
    }
}

fn merge_best(best: &mut Option<Best>, candidate: Option<Best>) {
    if let Some(c) = candidate {
        if improves(c.value, &c.key, best) {
            *best = Some(c);
        }
    }
}

fn decode(choice: u8) -> Option<ServiceId> {
    match choice {
        0 => None,
        p => Some(p as usize - 1),
    }
}

/// Best-first enumeration of the labelled forest space (all parent
/// functions compatible with `app`'s constraints): bit-identical winners to
/// the depth-first walk, most promising prefixes first, frontier bounded by
/// `frontier_cap`.
pub fn best_first_forest_search<F>(
    app: &Application,
    exec: Exec,
    prune: PartialPrune,
    frontier_cap: usize,
    incumbent_seed: f64,
    eval: &F,
) -> Option<SearchOutcome>
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    best_first_forest_search_stats(app, exec, prune, frontier_cap, incumbent_seed, eval).0
}

/// [`best_first_forest_search`] with the run's [`FrontierStats`] (tests
/// assert the cap is respected and the spill path fires).
///
/// `incumbent_seed` pre-loads the shared incumbent with a known upper bound
/// on the space's optimum (`f64::INFINITY` for a cold search): pruning and
/// the bound-clearance certificate stay strict, so the winner is unchanged
/// while the hopeless region is skipped — the warm-start contract of
/// `exhaustive_forest_search_seeded`.
pub fn best_first_forest_search_stats<F>(
    app: &Application,
    exec: Exec,
    prune: PartialPrune,
    frontier_cap: usize,
    incumbent_seed: f64,
    eval: &F,
) -> (Option<SearchOutcome>, FrontierStats)
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    let n = app.n();
    let mut stats = FrontierStats::default();
    if n == 0 {
        return (None, stats);
    }
    // Keys encode a choice per position as one byte (`0` = entry node,
    // `p + 1` = parent `p`); enumerable spaces sit far below this, but the
    // encoding must never truncate silently.
    assert!(
        n < u8::MAX as usize,
        "frontier keys encode parents as u8: n = {n} is out of range"
    );
    let frontier_cap = frontier_cap.max(1);
    let threads = exec.effective_threads();
    let batch_len = (threads * 4).max(1);
    let incumbent = Incumbent::seeded(incumbent_seed);
    let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
    heap.push(Reverse(Node {
        bound: 0.0,
        key: Vec::new(),
    }));
    stats.peak = 1;
    let mut best: Option<Best> = None;
    let mut complete = true;
    'search: loop {
        if exec.deadline.is_some_and(|d| Instant::now() >= d) {
            complete = heap.is_empty();
            break;
        }
        // Pop a bound-ordered batch.  The first node whose bound clears the
        // incumbent certifies every node still enqueued prunable (the heap
        // holds nothing smaller), so the whole frontier is discarded at once.
        let mut nodes: Vec<Node> = Vec::with_capacity(batch_len);
        while nodes.len() < batch_len {
            match heap.pop() {
                Some(Reverse(node)) => {
                    if node.bound > prune_threshold(incumbent.get()) {
                        heap.clear(); // bound-clearance certificate
                        break;
                    }
                    nodes.push(node);
                }
                None => break,
            }
        }
        if nodes.is_empty() {
            break;
        }
        // Expanding a node adds up to `n + 1` children; spill the batch to
        // depth-first completion when that could overflow the cap.
        let spill = heap.len() + nodes.len() * (n + 1) > frontier_cap;
        if spill {
            stats.spills += 1;
        }
        let parts = par_chunks(threads, &nodes, |_base, chunk| {
            let mut children: Vec<Node> = Vec::new();
            let mut local: Option<Best> = None;
            let mut metrics = PartialForestMetrics::new(app);
            let mut interrupted = false;
            for node in chunk {
                for &choice in &node.key {
                    metrics.push(decode(choice));
                }
                let ok = if node.key.len() == n {
                    evaluate_leaf(
                        app,
                        &metrics,
                        &node.key,
                        &incumbent,
                        eval,
                        exec.deadline,
                        &mut local,
                    )
                } else if spill {
                    let mut key = node.key.clone();
                    dfs_complete(
                        app,
                        &mut metrics,
                        &mut key,
                        &incumbent,
                        prune,
                        eval,
                        exec.deadline,
                        &mut local,
                    )
                } else {
                    expand(app, &mut metrics, node, prune, &incumbent, &mut children);
                    true
                };
                for _ in &node.key {
                    metrics.pop();
                }
                if !ok {
                    interrupted = true;
                    break;
                }
            }
            (children, local, interrupted)
        });
        let mut interrupted = false;
        for (children, local, part_interrupted) in parts {
            for child in children {
                heap.push(Reverse(child));
            }
            merge_best(&mut best, local);
            interrupted |= part_interrupted;
        }
        stats.peak = stats.peak.max(heap.len());
        if interrupted {
            complete = false;
            break 'search;
        }
    }
    let outcome = best.map(|b| SearchOutcome {
        value: b.value,
        graph: b.graph,
        complete,
    });
    (outcome, stats)
}

/// Evaluates a complete parent function against the shared incumbent.
/// Returns `false` when the deadline interrupted before the evaluation.
#[allow(clippy::too_many_arguments)]
fn evaluate_leaf<F>(
    app: &Application,
    metrics: &PartialForestMetrics<'_>,
    key: &[u8],
    incumbent: &Incumbent,
    eval: &F,
    deadline: Option<Instant>,
    best: &mut Option<Best>,
) -> bool
where
    F: Fn(&ExecutionGraph, f64) -> f64,
{
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return false;
    }
    let Ok(graph) = ExecutionGraph::from_parents(metrics.parents()) else {
        return true; // the parent function contains a cycle
    };
    if graph.respects(app).is_err() {
        return true;
    }
    let value = eval(&graph, incumbent.get());
    if improves(value, key, best) {
        incumbent.offer(value);
        *best = Some(Best {
            value,
            key: key.to_vec(),
            graph,
        });
    }
    true
}

/// Expands a frontier node: every next-position choice whose admissible
/// bound survives the incumbent becomes a child node.
fn expand(
    app: &Application,
    metrics: &mut PartialForestMetrics<'_>,
    node: &Node,
    prune: PartialPrune,
    incumbent: &Incumbent,
    children: &mut Vec<Node>,
) {
    let n = app.n();
    let k = metrics.assigned();
    debug_assert_eq!(k, node.key.len());
    for choice in 0..=(n as u8) {
        let parent = decode(choice);
        if parent == Some(k) {
            continue; // self-loops are never enumerated
        }
        metrics.push(parent);
        let bound = match prune {
            PartialPrune::Off => 0.0,
            PartialPrune::Period(model) => metrics.period_bound(model),
            PartialPrune::Latency => metrics.latency_bound(),
        };
        metrics.pop();
        // An infinite bound flags a cycle inside the prefix; a bound above
        // the incumbent's threshold proves the subtree hopeless — the same
        // two prunes the depth-first walk applies at node entry.
        if bound == f64::INFINITY || bound > prune_threshold(incumbent.get()) {
            continue;
        }
        let mut key = Vec::with_capacity(node.key.len() + 1);
        key.extend_from_slice(&node.key);
        key.push(choice);
        children.push(Node { bound, key });
    }
}

/// Depth-first completion of a spilled subtree, tracking `(value, key)` so
/// spilled winners merge deterministically with frontier winners.  Returns
/// `false` when the deadline interrupted the walk.
///
/// Mirror of `minperiod::enumerate_parents_pruned` plus the key tracking:
/// the bit-identity contract between the strategies requires the prune rule
/// (infinite bound = cycle, strict `prune_threshold` clearance) and the
/// choice order (`None` first, then ascending parents) to stay in lockstep
/// with that walker — change them together.
#[allow(clippy::too_many_arguments)]
fn dfs_complete<F>(
    app: &Application,
    metrics: &mut PartialForestMetrics<'_>,
    key: &mut Vec<u8>,
    incumbent: &Incumbent,
    prune: PartialPrune,
    eval: &F,
    deadline: Option<Instant>,
    best: &mut Option<Best>,
) -> bool
where
    F: Fn(&ExecutionGraph, f64) -> f64,
{
    if prune != PartialPrune::Off && metrics.assigned() > 0 {
        let bound = match prune {
            PartialPrune::Off => unreachable!(),
            PartialPrune::Period(model) => metrics.period_bound(model),
            PartialPrune::Latency => metrics.latency_bound(),
        };
        if bound == f64::INFINITY || bound > prune_threshold(incumbent.get()) {
            return true;
        }
    }
    let n = app.n();
    let k = metrics.assigned();
    if k >= n {
        return evaluate_leaf(app, metrics, key, incumbent, eval, deadline, best);
    }
    for choice in 0..=(n as u8) {
        let parent = decode(choice);
        if parent == Some(k) {
            continue;
        }
        metrics.push(parent);
        key.push(choice);
        let ok = dfs_complete(app, metrics, key, incumbent, prune, eval, deadline, best);
        key.pop();
        metrics.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// Telemetry of one streamed canonical run, for tests, tuning and the
/// benchmark rows.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// Number of shapes (forest-isomorphism classes) in the plan.
    pub shapes: usize,
    /// Total coloured-orbit count, when the counting pass was tractable for
    /// the weight partition.
    pub orbits: Option<u128>,
    /// Number of representatives materialised and evaluated.
    pub expanded: u64,
    /// Peak number of representatives concurrently materialised (one per
    /// active worker, never more than the frontier cap).
    pub peak_resident: usize,
    /// Number of shapes discarded wholesale by the final bound-clearance
    /// certificate, without expanding a single representative.
    pub certified_shapes: usize,
}

/// A write-once sink for the [`StreamStats`] of the plan search buried
/// inside a solve: the orchestrator threads one through its engine calls so
/// telemetry surfaces in `SolveStats` without widening every search
/// signature on the way down.  Every `SearchStrategy` branch records —
/// streamed, materialised depth-first, raw best-first and raw labelled
/// walks alike.
///
/// A probe built with [`StreamProbe::with_metrics`] additionally publishes
/// each recorded run into the registry (`engine.stream.*` histograms and
/// the `engine.stream.peak_resident` gauge) and exposes the registry to
/// the engine for stage spans ([`EngineMetrics`]).
#[derive(Debug, Default)]
pub struct StreamProbe {
    stats: std::sync::Mutex<Option<StreamStats>>,
    metrics: Option<std::sync::Arc<fsw_obs::MetricsRegistry>>,
}

impl StreamProbe {
    /// A probe that also publishes recorded runs into `registry`.
    pub fn with_metrics(registry: std::sync::Arc<fsw_obs::MetricsRegistry>) -> Self {
        StreamProbe {
            stats: std::sync::Mutex::new(None),
            metrics: Some(registry),
        }
    }

    /// The registry this probe publishes to, if any.
    pub fn metrics(&self) -> Option<&std::sync::Arc<fsw_obs::MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Records the stats of a plan search (the last run wins when a solve
    /// performs several, e.g. a forest phase followed by a DAG phase).
    pub fn record(&self, stats: StreamStats) {
        if let Some(registry) = &self.metrics {
            registry
                .histogram("engine.stream.shapes")
                .record(stats.shapes as u64);
            registry
                .histogram("engine.stream.expanded")
                .record(stats.expanded);
            registry
                .histogram("engine.stream.certified_shapes")
                .record(stats.certified_shapes as u64);
            registry
                .gauge("engine.stream.peak_resident")
                .set(stats.peak_resident as u64);
        }
        *self.stats.lock().expect("stream probe poisoned") = Some(stats);
    }

    /// The recorded stats, if a plan search ran.
    pub fn snapshot(&self) -> Option<StreamStats> {
        *self.stats.lock().expect("stream probe poisoned")
    }
}

/// Cached span timers of the engine's streamed-walk stages, resolved once
/// per solve from the probe's registry: `engine.shape_stream` (bound-ordered
/// shape-plan generation), `engine.expand` (one span per expansion batch)
/// and `engine.certify` (the head bound-clearance certificate ending a
/// search).  Span durations are wall-clock and observability-only — no
/// digest-feeding value derives from them.
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    shape_stream: fsw_obs::SpanTimer,
    expand: fsw_obs::SpanTimer,
    certify: fsw_obs::SpanTimer,
}

impl EngineMetrics {
    /// Resolves the stage timers in `registry`.
    pub fn new(registry: &fsw_obs::MetricsRegistry) -> Self {
        EngineMetrics {
            shape_stream: registry.span("engine.shape_stream"),
            expand: registry.span("engine.expand"),
            certify: registry.span("engine.certify"),
        }
    }
}

/// Prune-aware [`ColoringVisitor`]: replays the colour assignment of one
/// shape against an incrementally maintained [`PartialForestMetrics`],
/// pinning each position to a concrete service of its class (smallest
/// unused id — bit-identical to `WeightClasses::service_assignment`), and
/// refuses every prefix whose admissible bound strictly clears the shared
/// incumbent, so whole colour subtrees die without a representative ever
/// being materialised.
struct StreamWalker<'a, F> {
    metrics: PartialForestMetrics<'a>,
    prune: PartialPrune,
    incumbent: &'a Incumbent,
    eval: &'a F,
    deadline: Option<Instant>,
    /// Ascending service ids per weight class; `pool[c][used[c]]` is the
    /// next id handed out, replaying `service_assignment` incrementally.
    pool: &'a [Vec<ServiceId>],
    used: Vec<usize>,
    parents: Vec<Option<ServiceId>>,
    weights: Vec<ServiceId>,
    shape_ordinal: u64,
    /// Completions reached so far within the current shape: pruned
    /// colourings are strictly worse than the incumbent so they never tie
    /// for the minimum, and reached completions keep their relative walk
    /// order in every run — `(value, idx)` minimisation therefore
    /// reproduces the materialised first-minimum winner exactly.
    reached: u64,
    ticks: u32,
    interrupted: bool,
    expanded: u64,
    local: Option<(f64, u128, ExecutionGraph)>,
}

impl<F> ColoringVisitor for StreamWalker<'_, F>
where
    F: Fn(&ExecutionGraph, f64) -> f64,
{
    fn descend(&mut self, _pos: usize, parent: Option<usize>, class: usize) -> bool {
        if self.interrupted {
            return false;
        }
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks & 0x3FF == 0 && self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.interrupted = true;
            return false;
        }
        let service = self.pool[class][self.used[class]];
        self.metrics.push_weighted(parent, service);
        if self.prune != PartialPrune::Off {
            let bound = match self.prune {
                PartialPrune::Off => unreachable!(),
                PartialPrune::Period(model) => self.metrics.period_bound(model),
                PartialPrune::Latency => self.metrics.latency_bound(),
            };
            // Strict clearance only, so optimum-tying colourings always
            // survive — the rule every other walker prunes with.
            if bound > prune_threshold(self.incumbent.get()) {
                self.metrics.pop();
                return false;
            }
            // Tie dominance: once this walker holds a local best `(v, i)`,
            // a subtree whose admissible bound already reaches `v` and whose
            // every completion is canonically later than `i` cannot contain
            // the `(value, idx)` minimum — each candidate in it has
            // `value ≥ bound ≥ v` and `idx > i`, so it loses the
            // lexicographic comparison even on an exact value tie.  This is
            // what collapses the tie plateau of instances whose optimum sits
            // on the input-rate floor: after the first optimal completion,
            // the millions of orbits tying it die here without being
            // materialised.  (Local best only: it never races with other
            // workers, and the cross-worker merge still minimises
            // `(value, idx)`.)
            if let Some((bv, bi, _)) = self.local.as_ref() {
                let floor = ((self.shape_ordinal as u128) << 64) | self.reached as u128;
                if bound >= *bv && floor > *bi {
                    self.metrics.pop();
                    return false;
                }
            }
        }
        self.used[class] += 1;
        self.parents.push(parent);
        self.weights.push(service);
        true
    }

    fn ascend(&mut self, _pos: usize, class: usize) {
        self.metrics.pop();
        self.used[class] -= 1;
        self.parents.pop();
        self.weights.pop();
    }

    fn complete(&mut self, _colors: &[usize], _aut: u128) -> bool {
        if self.interrupted || self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.interrupted = true;
            return false;
        }
        let idx = ((self.shape_ordinal as u128) << 64) | self.reached as u128;
        self.reached += 1;
        self.expanded += 1;
        let graph = CanonicalRep::labelled_graph(&self.parents, &self.weights);
        let value = (self.eval)(&graph, self.incumbent.get());
        let improves = self
            .local
            .as_ref()
            .is_none_or(|&(bv, bi, _)| value < bv || (value == bv && idx < bi));
        if improves {
            self.incumbent.offer(value);
            self.local = Some((value, idx, graph));
        }
        true
    }
}

/// Best-first walk of a canonical orbit space **without materialising it**:
/// a count-only prelude streams every shape once
/// ([`fsw_core::bound_ordered_shape_plan`]), attaches a shape-level
/// admissible bound ([`ShapeBounder`]) and sorts the shapes bound-ascending;
/// the expansion loop then walks the canonical colourings of each shape on
/// demand ([`walk_canonical_colorings`]), pruning colour prefixes against
/// the shared incumbent, so memory holds the O(shapes) plan plus at most
/// one representative per worker — never the coloured space.  Because the
/// shape order is bound-ascending, the first shape whose bound clears the
/// incumbent certifies every remaining shape prunable and ends the search
/// in one step.
///
/// The winner is the `(value, global index)` lexicographic minimum, where
/// the global index orders candidates by `(canonical shape ordinal, walk
/// order within the shape)` — exactly the materialised enumeration order —
/// so complete runs are bit-identical to the depth-first scan of the
/// materialised stream, serial or parallel.  `frontier_cap` bounds the
/// number of shapes expanded per batch (hence the resident representative
/// count); the packed level sequence in each [`ShapePlan`] is the resumable
/// cursor, so throttling never re-materialises anything.
pub fn streamed_canonical_search<F>(
    app: &Application,
    classes: &WeightClasses,
    exec: Exec,
    prune: PartialPrune,
    frontier_cap: usize,
    incumbent_seed: f64,
    eval: &F,
) -> (Option<SearchOutcome>, StreamStats)
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    streamed_canonical_search_observed(
        app,
        classes,
        exec,
        prune,
        frontier_cap,
        incumbent_seed,
        eval,
        None,
    )
}

/// [`streamed_canonical_search`] with optional per-stage tracing spans
/// ([`EngineMetrics`]): shape-plan generation, expansion batches and the
/// bound-clearance certificate each record a call count and a wall-duration
/// histogram.  The walk itself is untouched — instrumented and plain runs
/// return bit-identical outcomes and stats.
#[allow(clippy::too_many_arguments)]
pub fn streamed_canonical_search_observed<F>(
    app: &Application,
    classes: &WeightClasses,
    exec: Exec,
    prune: PartialPrune,
    frontier_cap: usize,
    incumbent_seed: f64,
    eval: &F,
    obs: Option<&EngineMetrics>,
) -> (Option<SearchOutcome>, StreamStats)
where
    F: Fn(&ExecutionGraph, f64) -> f64 + Sync,
{
    let mut stats = StreamStats::default();
    let objective = match prune {
        PartialPrune::Off => None,
        PartialPrune::Period(model) => Some(ShapeObjective::Period(model)),
        PartialPrune::Latency => Some(ShapeObjective::Latency),
    };
    let bounder = objective.map(|o| ShapeBounder::new(app, o));
    // Bounded-Dijkstra-style cutoff reuse: a warm incumbent seed is an upper
    // bound on the optimum, so its prune threshold can already certify
    // shapes at *emission* — they are counted, never stored or sorted.  A
    // cold search (infinite seed) keeps every shape, and the threshold is
    // the same strict-clearance rule every walker prunes with, so winners
    // are bit-identical either way.
    let cutoff = prune_threshold(incumbent_seed);
    let shape_span = obs.map(|m| m.shape_stream.start());
    let plan = match bound_ordered_shape_plan(classes, bounder.as_ref(), cutoff, exec.deadline) {
        // Nothing evaluated yet: degrade to the fallback like any
        // interrupted search.
        ShapeScan::DeadlineExpired => return (None, stats),
        ShapeScan::Planned {
            shapes,
            orbits,
            pruned,
        } => {
            stats.shapes = shapes.len() + pruned as usize;
            stats.orbits = orbits;
            stats.certified_shapes = pruned as usize;
            shapes
        }
    };
    drop(shape_span);
    let mut pool: Vec<Vec<ServiceId>> = vec![Vec::new(); classes.class_count()];
    for k in 0..classes.n() {
        pool[classes.class_of(k)].push(k);
    }
    let incumbent = Incumbent::seeded(incumbent_seed);
    let threads = exec.effective_threads();
    let batch_len = (threads * 2).max(1).min(frontier_cap.max(1));
    let weight_of = |s: &ShapePlan| u64::try_from(s.colorings.max(1)).unwrap_or(u64::MAX);
    let mut best: Option<(f64, u128, ExecutionGraph)> = None;
    let mut complete = true;
    let mut at = 0;
    while at < plan.len() {
        if exec.deadline.is_some_and(|d| Instant::now() >= d) {
            complete = false;
            break;
        }
        // Bound-ascending order: the head clearing the incumbent is the
        // certificate that every remaining shape is prunable.
        if plan[at].bound > prune_threshold(incumbent.get()) {
            let _certify_span = obs.map(|m| m.certify.start());
            stats.certified_shapes += plan.len() - at;
            break;
        }
        let expand_span = obs.map(|m| m.expand.start());
        let hi = (at + batch_len).min(plan.len());
        let batch = &plan[at..hi];
        let parts = par_chunks_weighted(threads, batch, weight_of, |_base, chunk| {
            let mut walker = StreamWalker {
                metrics: PartialForestMetrics::new(app),
                prune,
                incumbent: &incumbent,
                eval,
                deadline: exec.deadline,
                pool: &pool,
                used: vec![0; pool.len()],
                parents: Vec::with_capacity(classes.n()),
                weights: Vec::with_capacity(classes.n()),
                shape_ordinal: 0,
                reached: 0,
                ticks: 0,
                interrupted: false,
                expanded: 0,
                local: None,
            };
            for shape in chunk {
                // Re-check against the live incumbent: shapes admitted when
                // the batch was cut may have become hopeless since.
                if shape.bound > prune_threshold(incumbent.get()) {
                    continue;
                }
                // Shape-level tie dominance (the same rule the walker
                // applies per colour prefix): every completion of a
                // later-ordinal shape is canonically later than the local
                // best, so a bound reaching its value certifies the whole
                // shape a lexicographic loser.
                if walker.local.as_ref().is_some_and(|(bv, bi, _)| {
                    shape.bound >= *bv && ((shape.ordinal as u128) << 64) > *bi
                }) {
                    continue;
                }
                walker.shape_ordinal = shape.ordinal;
                walker.reached = 0;
                if !walk_canonical_colorings(&shape.decode_levels(), classes, &mut walker) {
                    break; // deadline interrupted mid-walk
                }
            }
            (walker.local, walker.expanded, walker.interrupted)
        });
        // Peak residency is measured, not estimated: each walker holds at
        // most one materialised representative at a time, so the batch's
        // residency is the number of workers that expanded anything — the
        // same accounting on the classed walk and the single-class fast
        // path, so `SolveStats::stream` is trustworthy for uniform solves.
        let resident = parts
            .iter()
            .filter(|(_, expanded, _)| *expanded > 0)
            .count();
        stats.peak_resident = stats.peak_resident.max(resident);
        for (local, expanded, part_interrupted) in parts {
            stats.expanded += expanded;
            if let Some((value, idx, graph)) = local {
                let improves = best
                    .as_ref()
                    .is_none_or(|&(bv, bi, _)| value < bv || (value == bv && idx < bi));
                if improves {
                    best = Some((value, idx, graph));
                }
            }
            complete &= !part_interrupted;
        }
        drop(expand_span);
        if !complete {
            break;
        }
        at = hi;
    }
    let outcome = best.map(|(value, _, graph)| SearchOutcome {
        value,
        graph,
        complete,
    });
    (outcome, stats)
}
