//! Period orchestration for the `OUTORDER` model.
//!
//! `OUTORDER` keeps the one-port, no-overlap server discipline of `INORDER`
//! but allows a server to interleave operations belonging to *different* data
//! sets; finding the optimal operation list for a given execution graph is
//! NP-hard (Proposition 2).  This module provides:
//!
//! * the period lower bound `max_k (Cin + Ccomp + Cout)`;
//! * a backtracking *cyclic (modulo) scheduler* that, for a candidate period
//!   `λ`, searches for start times such that every server's operations are
//!   pairwise disjoint modulo `λ` while respecting the per-data-set precedence
//!   constraints (receive → compute → send) and the rendezvous rule (a
//!   transfer occupies the sender and the receiver simultaneously);
//! * a search driver that tries the lower bound first and falls back to an
//!   `INORDER` schedule (always `OUTORDER`-feasible) when the bound cannot be
//!   reached within the search budget.
//!
//! The backtracking scheduler explores start times that are either the
//! operation's data-ready time or abut (modulo `λ`) the end of an operation
//! already placed on one of the involved servers; this "active schedule"
//! dominance rule is standard for machine scheduling and makes the search
//! finite, at the cost of completeness only within that class (documented in
//! DESIGN.md).
//!
//! Since the incumbent-aware engine pass, the scheduler additionally runs an
//! **admissible per-node completion bound** (forward checking): after every
//! placement it verifies that each still-unplaced operation touching the
//! affected servers retains a feasible start — a gap of its duration in the
//! merged modular occupancy of its resources.  Occupancy only grows along a
//! branch, so an operation without a slot *now* can never be placed deeper
//! in the branch and the node is a proven dead end; the prune removes no
//! solution, so complete searches return bit-identical verdicts while
//! infeasibility (the expensive case) is detected exponentially earlier.
//! The period search on top is cutoff-aware
//! ([`outorder_period_search_bounded`]): the plan-search incumbent is
//! threaded in as a cutoff that (a) skips candidates whose lower bound
//! already clears it and (b) stops the bisection once every remaining probe
//! provably sits above it, and each bisection probe is **warm-started** from
//! the feasibility witness of the previous one instead of rebuilding the
//! schedule from scratch.

use std::time::Instant;

use fsw_core::{
    in_edges, Application, CommModel, CoreResult, EdgeRef, ExecutionGraph, Interval, OperationList,
    PlanMetrics, ServiceId,
};

use crate::engine::prune_threshold;
use crate::oneport::{inorder_oplist_for_orderings, oneport_period_search_exec, OnePortStyle};
use crate::par::Exec;

/// Options controlling the `OUTORDER` search.
#[derive(Clone, Copy, Debug)]
pub struct OutOrderOptions {
    /// Maximum number of backtracking nodes explored per feasibility call.
    pub node_budget: usize,
    /// Number of intermediate candidate periods tried between the lower bound
    /// and the `INORDER` fallback when the lower bound is infeasible.
    pub refinement_steps: usize,
    /// Ordering-search budget used for the `INORDER` fallback.
    pub inorder_exhaustive_limit: usize,
    /// Optional wall-clock deadline: the backtracking scheduler checks it
    /// every few hundred nodes and gives up the current feasibility call once
    /// it has passed (treated like an exhausted node budget), so a
    /// [`crate::orchestrator::SearchBudget::time_limit`] now bounds OUTORDER
    /// solves too.
    pub deadline: Option<Instant>,
}

impl Default for OutOrderOptions {
    fn default() -> Self {
        OutOrderOptions {
            node_budget: 200_000,
            refinement_steps: 8,
            inorder_exhaustive_limit: 20_000,
            deadline: None,
        }
    }
}

/// Result of an `OUTORDER` period search.
#[derive(Clone, Debug)]
pub struct OutOrderResult {
    /// The best period achieved.
    pub period: f64,
    /// A valid operation list realising [`OutOrderResult::period`].
    pub oplist: OperationList,
    /// The `max_k (Cin + Ccomp + Cout)` lower bound.
    pub lower_bound: f64,
    /// `true` when the returned period equals the lower bound (hence optimal).
    pub optimal: bool,
}

/// Period lower bound for the `OUTORDER` (and `INORDER`) models.
pub fn outorder_period_lower_bound(app: &Application, graph: &ExecutionGraph) -> CoreResult<f64> {
    Ok(PlanMetrics::compute(app, graph)?.period_lower_bound(CommModel::OutOrder))
}

/// One operation of the cyclic scheduling problem.
#[derive(Clone, Debug)]
struct Op {
    /// `None` for a computation, `Some(edge)` for a communication.
    edge: Option<EdgeRef>,
    service: ServiceId,
    duration: f64,
    /// Servers whose (single) port/CPU this operation occupies.
    resources: Vec<ServiceId>,
}

/// Builds the operation sequence of the cyclic scheduling problem in
/// data-flow order: for every service, its incoming transfers, then its
/// computation, then (if it is an exit node) its output transfer.
/// Service-to-service transfers are emitted when the receiver is visited so
/// that the sender's computation is already placed.  The order is a pure
/// function of the graph, which lets a bisection driver map one probe's
/// placements onto the next probe's operations (warm starts).
fn build_ops(app: &Application, graph: &ExecutionGraph) -> CoreResult<Vec<Op>> {
    let metrics = PlanMetrics::compute(app, graph)?;
    let order = graph.topological_order()?;
    let mut ops: Vec<Op> = Vec::new();
    for &k in &order {
        for e in in_edges(graph, k) {
            let mut resources = vec![k];
            if let Some(s) = e.sender() {
                resources.push(s);
            }
            ops.push(Op {
                edge: Some(e),
                service: k,
                duration: metrics.edge_volume(app, e),
                resources,
            });
        }
        ops.push(Op {
            edge: None,
            service: k,
            duration: metrics.c_comp(k),
            resources: vec![k],
        });
        if graph.succs(k).is_empty() {
            ops.push(Op {
                edge: Some(EdgeRef::Output(k)),
                service: k,
                duration: metrics.edge_volume(app, EdgeRef::Output(k)),
                resources: vec![k],
            });
        }
    }
    Ok(ops)
}

/// Attempts to build a valid `OUTORDER` operation list with period exactly `lambda`.
///
/// Returns `Ok(None)` when the backtracking search (limited to
/// `opts.node_budget` nodes) finds no schedule.
pub fn outorder_schedule_at(
    app: &Application,
    graph: &ExecutionGraph,
    lambda: f64,
    opts: &OutOrderOptions,
) -> CoreResult<Option<OperationList>> {
    outorder_schedule_at_warm(app, graph, lambda, opts, None)
}

/// [`outorder_schedule_at`] with optional warm-start hints: `warm[i]` is a
/// preferred start time for operation `i` of the [`build_ops`] sequence
/// (typically the placement found by a previous probe at a nearby period).
fn outorder_schedule_at_warm(
    app: &Application,
    graph: &ExecutionGraph,
    lambda: f64,
    opts: &OutOrderOptions,
    warm: Option<&[Option<f64>]>,
) -> CoreResult<Option<OperationList>> {
    let ops = build_ops(app, graph)?;
    Ok(schedule_prepared(graph.n(), &ops, lambda, opts, warm))
}

/// The backtracking feasibility search itself, over a pre-built operation
/// sequence — the bisection driver builds the (graph-determined, immutable)
/// sequence once and probes many periods against it.
fn schedule_prepared(
    n: usize,
    ops: &[Op],
    lambda: f64,
    opts: &OutOrderOptions,
    warm: Option<&[Option<f64>]>,
) -> Option<OperationList> {
    // Any single operation longer than the period is an immediate contradiction.
    if ops.iter().any(|op| op.duration > lambda + 1e-9) {
        return None;
    }
    // When every duration and the period are integral (the case of all the
    // paper's constructions and reductions), start times can be restricted to
    // the integer grid without loss of generality, which makes the
    // backtracking search much more thorough than the "abutting starts"
    // dominance rule alone.
    let integral = lambda <= 256.0
        && (lambda - lambda.round()).abs() < 1e-9
        && ops
            .iter()
            .all(|op| (op.duration - op.duration.round()).abs() < 1e-9);
    let mut state = SearchState {
        lambda,
        eps: 1e-9,
        grid: if integral { Some(1.0) } else { None },
        occupancy: vec![Vec::new(); n],
        calc_end: vec![0.0; n],
        comm_end: std::collections::BTreeMap::new(),
        placements: Vec::new(),
        nodes: 0,
        budget: opts.node_budget,
        deadline: opts.deadline,
        warm: warm.map(|w| w.to_vec()).unwrap_or_default(),
        slot_scratch: Vec::new(),
    };
    if !schedule_ops(ops, 0, &mut state) {
        return None;
    }
    let mut oplist = OperationList::new(n, lambda);
    for (op_idx, start) in &state.placements {
        let op = &ops[*op_idx];
        let iv = Interval::with_duration(*start, op.duration);
        match op.edge {
            Some(e) => oplist.set_comm(e, iv),
            None => oplist.set_calc(op.service, iv),
        }
    }
    Some(oplist)
}

struct SearchState {
    lambda: f64,
    eps: f64,
    /// Candidate-start granularity when the instance is integral.
    grid: Option<f64>,
    /// Per server: occupied intervals as (start, duration) of data set 0.
    occupancy: Vec<Vec<(f64, f64)>>,
    calc_end: Vec<f64>,
    comm_end: std::collections::BTreeMap<EdgeRef, f64>,
    placements: Vec<(usize, f64)>,
    nodes: usize,
    budget: usize,
    deadline: Option<Instant>,
    /// Per-operation preferred starts from a previous probe's witness
    /// (empty when cold): tried first, so a nearby feasible schedule is
    /// usually re-found without backtracking.
    warm: Vec<Option<f64>>,
    /// Scratch for the forward-checking gap computation.
    slot_scratch: Vec<(f64, f64)>,
}

impl SearchState {
    /// `true` once the node budget is exhausted or the deadline (checked
    /// every 256 nodes to keep the hot loop cheap) has passed.
    fn out_of_budget(&self) -> bool {
        self.nodes >= self.budget
            || (self.nodes & 0xFF == 0 && self.deadline.is_some_and(|d| Instant::now() >= d))
    }
}

impl SearchState {
    fn ready_time(&self, op: &Op, graph_has_preds: bool) -> f64 {
        let _ = graph_has_preds;
        match op.edge {
            Some(EdgeRef::Input(_)) => 0.0,
            Some(EdgeRef::Link(i, _)) => self.calc_end[i],
            Some(EdgeRef::Output(k)) => self.calc_end[k],
            None => 0.0, // refined below using comm_end
        }
    }

    fn fits(&self, op: &Op, start: f64) -> bool {
        for &r in &op.resources {
            for &(b, d) in &self.occupancy[r] {
                if !cyclically_disjoint(b, d, start, op.duration, self.lambda, self.eps) {
                    return false;
                }
            }
        }
        true
    }

    fn place(&mut self, op_idx: usize, op: &Op, start: f64) {
        for &r in &op.resources {
            self.occupancy[r].push((start, op.duration));
        }
        match op.edge {
            Some(e) => {
                self.comm_end.insert(e, start + op.duration);
            }
            None => {
                self.calc_end[op.service] = start + op.duration;
            }
        }
        self.placements.push((op_idx, start));
    }

    fn unplace(&mut self, op: &Op) {
        for &r in &op.resources {
            self.occupancy[r].pop();
        }
        match op.edge {
            Some(e) => {
                self.comm_end.remove(&e);
            }
            None => {
                self.calc_end[op.service] = 0.0;
            }
        }
        self.placements.pop();
    }

    /// Admissible completion check for a not-yet-placed operation: does the
    /// merged modular occupancy of its resources still leave a gap of the
    /// operation's duration?  Starts are free modulo `λ` (any residue is
    /// reachable at or after the ready time, and every gap's left edge is an
    /// "abutting" candidate of the search), so no slot *now* means no slot
    /// in any extension of the current branch — occupancy only grows.
    fn has_feasible_slot(&mut self, op: &Op) -> bool {
        if op.duration <= self.eps {
            return true;
        }
        let mut intervals = std::mem::take(&mut self.slot_scratch);
        intervals.clear();
        for &r in &op.resources {
            for &(b, d) in &self.occupancy[r] {
                if d <= self.eps {
                    continue;
                }
                let begin = b.rem_euclid(self.lambda);
                let end = begin + d;
                if end > self.lambda + self.eps {
                    // The interval wraps around the period boundary.
                    intervals.push((begin, self.lambda));
                    intervals.push((0.0, end - self.lambda));
                } else {
                    intervals.push((begin, end));
                }
            }
        }
        let feasible = if intervals.is_empty() {
            op.duration <= self.lambda + self.eps
        } else {
            intervals.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            let first_begin = intervals[0].0;
            let mut merged_end = intervals[0].1;
            let mut max_gap = 0.0f64;
            for &(b, e) in &intervals[1..] {
                if b > merged_end + self.eps {
                    max_gap = max_gap.max(b - merged_end);
                }
                merged_end = merged_end.max(e);
            }
            // The cyclic gap closing the circle, from the last merged end
            // back to the first begin one period later.
            max_gap = max_gap.max(first_begin + self.lambda - merged_end);
            max_gap >= op.duration - self.eps
        };
        self.slot_scratch = intervals;
        feasible
    }
}

/// `true` when `a` and `b` occupy at least one common server.
fn shares_resource(a: &Op, b: &Op) -> bool {
    a.resources.iter().any(|r| b.resources.contains(r))
}

fn cyclically_disjoint(b1: f64, d1: f64, b2: f64, d2: f64, lambda: f64, eps: f64) -> bool {
    if d1 <= eps || d2 <= eps {
        return true;
    }
    if d1 + d2 > lambda + eps {
        return false;
    }
    let delta = (b2 - b1).rem_euclid(lambda);
    delta >= d1 - eps && lambda - delta >= d2 - eps
}

fn schedule_ops(ops: &[Op], idx: usize, state: &mut SearchState) -> bool {
    if idx == ops.len() {
        return true;
    }
    if state.out_of_budget() {
        return false;
    }
    state.nodes += 1;
    let op = &ops[idx];
    // Data-ready time: communications wait for the sender's computation;
    // computations wait for all incoming communications of their service.
    let ready = match op.edge {
        Some(_) => state.ready_time(op, true),
        None => state
            .comm_end
            .iter()
            .filter(|(e, _)| e.receiver() == Some(op.service))
            .map(|(_, &t)| t)
            .fold(0.0f64, f64::max),
    };
    // Candidate starts: the ready time itself, plus every start that abuts
    // (modulo λ) the end of an already-placed operation on an involved server,
    // plus — for integral instances — every grid point of one period window.
    let mut candidates = vec![ready];
    for &r in &op.resources {
        for &(b, d) in &state.occupancy[r] {
            let end = b + d;
            // Smallest t >= ready with t ≡ end (mod λ).
            let delta = (end - ready).rem_euclid(state.lambda);
            candidates.push(ready + delta);
        }
    }
    if let Some(grid) = state.grid {
        let mut t = ready.ceil();
        while t < ready + state.lambda - state.eps {
            candidates.push(t);
            t += grid;
        }
    }
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    candidates.dedup_by(|a, b| (*a - *b).abs() <= state.eps);
    // A warm hint (the previous probe's witness, re-based to the current
    // period) jumps the queue.  Hint residues are generally *outside* the
    // abutting-starts dominance class, so a warm probe searches a strictly
    // larger candidate set than a cold one: every placement is still
    // validated by `fits`, so found schedules remain sound — a warm probe
    // can only find schedules a cold probe would miss, never the converse
    // per candidate explored.
    if let Some(hint) = state.warm.get(idx).copied().flatten() {
        let start = ready + (hint - ready).rem_euclid(state.lambda);
        candidates.retain(|c| (*c - start).abs() > state.eps);
        candidates.insert(0, start);
    }
    for start in candidates {
        if !state.fits(op, start) {
            continue;
        }
        state.place(idx, op, start);
        // Forward checking (admissible): if some remaining operation on the
        // servers just occupied no longer has a feasible slot, no extension
        // of this placement can complete — skip the recursion entirely.
        let dead = ops[idx + 1..]
            .iter()
            .any(|o| shares_resource(o, op) && !state.has_feasible_slot(o));
        if !dead && schedule_ops(ops, idx + 1, state) {
            return true;
        }
        state.unplace(op);
        if state.out_of_budget() {
            return false;
        }
    }
    false
}

/// Searches for the smallest `OUTORDER` period for the given execution graph.
///
/// Tries the lower bound first (optimal when it succeeds); otherwise bisects
/// between the lower bound and an `INORDER` fallback schedule, keeping the
/// best feasible operation list found.
pub fn outorder_period_search(
    app: &Application,
    graph: &ExecutionGraph,
    opts: &OutOrderOptions,
) -> CoreResult<OutOrderResult> {
    outorder_period_search_exec(app, graph, opts, Exec::serial())
}

/// [`outorder_period_search`] under an explicit execution strategy: the
/// `INORDER` fallback search fans out over `exec` worker threads, and
/// `exec.deadline` (combined with any [`OutOrderOptions::deadline`]) bounds
/// the backtracking scheduler and the bisection refinement — when it passes,
/// the best feasible operation list found so far is returned (flagged
/// non-optimal unless it already reached the lower bound).
pub fn outorder_period_search_exec(
    app: &Application,
    graph: &ExecutionGraph,
    opts: &OutOrderOptions,
    exec: Exec,
) -> CoreResult<OutOrderResult> {
    Ok(
        outorder_period_search_bounded(app, graph, opts, exec, f64::INFINITY)?
            .expect("an infinite cutoff never prunes"),
    )
}

/// The incumbent-aware variant of [`outorder_period_search_exec`], the
/// OUTORDER evaluation of the branch-and-bound plan searches.
///
/// `cutoff` is the shared incumbent at call time.  The contract mirrors the
/// other bounded searches: the result is the *exact* value of the unbounded
/// search whenever that value is `<= cutoff`; otherwise the search may stop
/// early and report any value above the cutoff (`Ok(None)` stands for `∞`).
/// Concretely the cutoff is used twice, both times behind admissible
/// reasoning only, so values at or below it are bit-identical to the
/// unbounded search:
///
/// * every feasible `OUTORDER` period dominates the structural lower bound,
///   so `lb > cutoff` proves the candidate cannot beat the incumbent before
///   any scheduling work happens;
/// * the bisection keeps the invariant that its final value is at least
///   `lo`; once `lo` clears the cutoff (and no feasible period `<= cutoff`
///   was found), every remaining probe is provably wasted and the
///   refinement stops — the blind fixed-step probing of the legacy search
///   is replaced by these cutoff-seeded probes.
///
/// Each probe is warm-started from the previous feasibility witness (the
/// `INORDER` fallback schedule for the first one), so successive probes
/// re-find nearby schedules instead of rebuilding them from scratch.
pub fn outorder_period_search_bounded(
    app: &Application,
    graph: &ExecutionGraph,
    opts: &OutOrderOptions,
    exec: Exec,
    cutoff: f64,
) -> CoreResult<Option<OutOrderResult>> {
    let opts = OutOrderOptions {
        deadline: match (opts.deadline, exec.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
        ..*opts
    };
    let lower_bound = outorder_period_lower_bound(app, graph)?;
    let lb = if lower_bound > 0.0 { lower_bound } else { 1.0 };
    if lb > prune_threshold(cutoff) {
        // Admissible: any feasible period is >= lb, which clears the cutoff.
        return Ok(None);
    }
    // The operation sequence is a pure function of the graph: build it once
    // and probe every candidate period against it.
    let ops = build_ops(app, graph)?;
    let n = graph.n();
    if let Some(oplist) = schedule_prepared(n, &ops, lb, &opts, None) {
        return Ok(Some(OutOrderResult {
            period: lb,
            oplist,
            lower_bound: lb,
            optimal: true,
        }));
    }
    // Fallback: the best INORDER schedule found is always OUTORDER-feasible.
    let inorder = oneport_period_search_exec(
        app,
        graph,
        OnePortStyle::InOrder,
        opts.inorder_exhaustive_limit,
        exec,
    )?;
    let mut best_period = inorder.period;
    let mut best_oplist = inorder_oplist_for_orderings(app, graph, &inorder.orderings)?;
    // Bisection between the lower bound and the fallback, warm-starting each
    // probe from the best feasibility witness so far.
    let mut warm = warm_hints(&ops, &best_oplist);
    let mut lo = lb;
    let mut hi = best_period;
    for _ in 0..opts.refinement_steps {
        if hi - lo <= 1e-9 * hi.max(1.0) {
            break;
        }
        if opts.deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        if lo > prune_threshold(cutoff) && best_period > prune_threshold(cutoff) {
            // Every remaining probe lies in (lo, hi) with lo above the
            // cutoff: the final value cannot come back below it.  Stop; the
            // caller sees a value above its cutoff, exactly as contracted.
            break;
        }
        let mid = 0.5 * (lo + hi);
        match schedule_prepared(n, &ops, mid, &opts, Some(&warm)) {
            Some(oplist) => {
                warm = warm_hints(&ops, &oplist);
                best_period = mid;
                best_oplist = oplist;
                hi = mid;
            }
            None => {
                lo = mid;
            }
        }
    }
    Ok(Some(OutOrderResult {
        period: best_period,
        oplist: best_oplist,
        lower_bound: lb,
        optimal: (best_period - lb).abs() <= 1e-9 * lb.max(1.0),
    }))
}

/// Maps an operation list back onto its [`build_ops`] sequence as per-op
/// start-time hints for a warm-started probe.
fn warm_hints(ops: &[Op], oplist: &OperationList) -> Vec<Option<f64>> {
    ops.iter()
        .map(|op| match op.edge {
            Some(e) => oplist.comm(e).map(|iv| iv.begin),
            None => Some(oplist.calc(op.service).begin),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_core::validate_oplist;

    fn section23() -> (Application, ExecutionGraph) {
        let app = Application::independent(&[(4.0, 1.0); 5]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
        (app, g)
    }

    #[test]
    fn section23_outorder_reaches_the_lower_bound_of_7() {
        let (app, g) = section23();
        let result = outorder_period_search(&app, &g, &OutOrderOptions::default()).unwrap();
        assert_eq!(result.lower_bound, 7.0);
        assert!(result.optimal, "expected the bound 7 to be reached");
        assert!((result.period - 7.0).abs() < 1e-9);
        validate_oplist(&app, &g, &result.oplist, CommModel::OutOrder)
            .unwrap_or_else(|v| panic!("{v:?}"));
    }

    #[test]
    fn chain_outorder_equals_lower_bound() {
        let app = Application::independent(&[(2.0, 0.5), (3.0, 2.0), (1.0, 1.0)]);
        let g = ExecutionGraph::chain_of(3, &[0, 1, 2]).unwrap();
        let result = outorder_period_search(&app, &g, &OutOrderOptions::default()).unwrap();
        assert!(result.optimal);
        validate_oplist(&app, &g, &result.oplist, CommModel::OutOrder).unwrap();
    }

    #[test]
    fn infeasible_period_rejected() {
        let (app, g) = section23();
        // Below the largest single operation (a computation of 4) nothing fits.
        assert!(
            outorder_schedule_at(&app, &g, 3.5, &OutOrderOptions::default())
                .unwrap()
                .is_none()
        );
        // At the lower bound a schedule exists.
        let ol = outorder_schedule_at(&app, &g, 7.0, &OutOrderOptions::default())
            .unwrap()
            .unwrap();
        validate_oplist(&app, &g, &ol, CommModel::OutOrder).unwrap();
    }

    #[test]
    fn schedules_at_larger_periods_also_exist() {
        let (app, g) = section23();
        for lambda in [8.0, 10.0, 21.0] {
            let ol = outorder_schedule_at(&app, &g, lambda, &OutOrderOptions::default())
                .unwrap()
                .unwrap_or_else(|| panic!("no schedule at {lambda}"));
            validate_oplist(&app, &g, &ol, CommModel::OutOrder)
                .unwrap_or_else(|v| panic!("lambda {lambda}: {v:?}"));
        }
    }

    #[test]
    fn bounded_search_never_prunes_a_reachable_optimum() {
        let (app, g) = section23();
        let opts = OutOrderOptions::default();
        let unbounded = outorder_period_search(&app, &g, &opts).unwrap();
        // A cutoff at or above the true value must return it exactly.
        for slack in [0.0, 0.5, 100.0] {
            let bounded = outorder_period_search_bounded(
                &app,
                &g,
                &opts,
                Exec::serial(),
                unbounded.period + slack,
            )
            .unwrap()
            .expect("optimum within cutoff");
            assert_eq!(bounded.period, unbounded.period, "slack {slack}");
            assert_eq!(bounded.optimal, unbounded.optimal);
            validate_oplist(&app, &g, &bounded.oplist, CommModel::OutOrder).unwrap();
        }
        // A cutoff below the structural lower bound prunes outright…
        let pruned =
            outorder_period_search_bounded(&app, &g, &opts, Exec::serial(), unbounded.lower_bound)
                .unwrap();
        // …only when the bound strictly clears it (here period == lb == 7,
        // so cutoff == lb must NOT prune).
        assert!(pruned.is_some());
        let pruned = outorder_period_search_bounded(
            &app,
            &g,
            &opts,
            Exec::serial(),
            unbounded.lower_bound - 1.0,
        )
        .unwrap();
        assert!(
            pruned.is_none(),
            "lb > cutoff proves the candidate hopeless"
        );
    }

    #[test]
    fn bounded_search_value_above_cutoff_is_still_faithful() {
        // A single-node backtracking budget makes every probe fail, pinning
        // the search to the INORDER fallback above the lower bound — the
        // deterministic setting in which the cutoff abort engages.  Aborted
        // refinements must only ever report values above the cutoff.
        let (app, g) = section23();
        let opts = OutOrderOptions {
            node_budget: 1,
            ..OutOrderOptions::default()
        };
        let unbounded = outorder_period_search(&app, &g, &opts).unwrap();
        assert!(unbounded.period > unbounded.lower_bound + 1e-9);
        // Cutoff halfway between lb and the optimum: the probe ladder may
        // stop early, but whatever comes back must exceed the cutoff (the
        // cache contract) — and a cutoff above the optimum must be exact.
        let cutoff = 0.5 * (unbounded.lower_bound + unbounded.period);
        match outorder_period_search_bounded(&app, &g, &opts, Exec::serial(), cutoff).unwrap() {
            None => {}
            Some(result) => assert!(result.period > cutoff, "faithful above-cutoff value"),
        }
        let exact = outorder_period_search_bounded(&app, &g, &opts, Exec::serial(), f64::INFINITY)
            .unwrap()
            .unwrap();
        assert_eq!(exact.period, unbounded.period);
    }

    #[test]
    fn fork_join_outorder_between_bound_and_inorder() {
        let app = Application::independent(&[(1.0, 1.0); 5]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)])
            .unwrap();
        let result = outorder_period_search(&app, &g, &OutOrderOptions::default()).unwrap();
        validate_oplist(&app, &g, &result.oplist, CommModel::OutOrder).unwrap();
        assert!(result.period >= result.lower_bound - 1e-9);
    }
}
