//! Period orchestration for the `OUTORDER` model.
//!
//! `OUTORDER` keeps the one-port, no-overlap server discipline of `INORDER`
//! but allows a server to interleave operations belonging to *different* data
//! sets; finding the optimal operation list for a given execution graph is
//! NP-hard (Proposition 2).  This module provides:
//!
//! * the period lower bound `max_k (Cin + Ccomp + Cout)`;
//! * a backtracking *cyclic (modulo) scheduler* that, for a candidate period
//!   `λ`, searches for start times such that every server's operations are
//!   pairwise disjoint modulo `λ` while respecting the per-data-set precedence
//!   constraints (receive → compute → send) and the rendezvous rule (a
//!   transfer occupies the sender and the receiver simultaneously);
//! * a search driver that tries the lower bound first and falls back to an
//!   `INORDER` schedule (always `OUTORDER`-feasible) when the bound cannot be
//!   reached within the search budget.
//!
//! The backtracking scheduler explores start times that are either the
//! operation's data-ready time or abut (modulo `λ`) the end of an operation
//! already placed on one of the involved servers; this "active schedule"
//! dominance rule is standard for machine scheduling and makes the search
//! finite, at the cost of completeness only within that class (documented in
//! DESIGN.md).

use std::time::Instant;

use fsw_core::{
    in_edges, Application, CommModel, CoreResult, EdgeRef, ExecutionGraph, Interval, OperationList,
    PlanMetrics, ServiceId,
};

use crate::oneport::{inorder_oplist_for_orderings, oneport_period_search_exec, OnePortStyle};
use crate::par::Exec;

/// Options controlling the `OUTORDER` search.
#[derive(Clone, Copy, Debug)]
pub struct OutOrderOptions {
    /// Maximum number of backtracking nodes explored per feasibility call.
    pub node_budget: usize,
    /// Number of intermediate candidate periods tried between the lower bound
    /// and the `INORDER` fallback when the lower bound is infeasible.
    pub refinement_steps: usize,
    /// Ordering-search budget used for the `INORDER` fallback.
    pub inorder_exhaustive_limit: usize,
    /// Optional wall-clock deadline: the backtracking scheduler checks it
    /// every few hundred nodes and gives up the current feasibility call once
    /// it has passed (treated like an exhausted node budget), so a
    /// [`crate::orchestrator::SearchBudget::time_limit`] now bounds OUTORDER
    /// solves too.
    pub deadline: Option<Instant>,
}

impl Default for OutOrderOptions {
    fn default() -> Self {
        OutOrderOptions {
            node_budget: 200_000,
            refinement_steps: 8,
            inorder_exhaustive_limit: 20_000,
            deadline: None,
        }
    }
}

/// Result of an `OUTORDER` period search.
#[derive(Clone, Debug)]
pub struct OutOrderResult {
    /// The best period achieved.
    pub period: f64,
    /// A valid operation list realising [`OutOrderResult::period`].
    pub oplist: OperationList,
    /// The `max_k (Cin + Ccomp + Cout)` lower bound.
    pub lower_bound: f64,
    /// `true` when the returned period equals the lower bound (hence optimal).
    pub optimal: bool,
}

/// Period lower bound for the `OUTORDER` (and `INORDER`) models.
pub fn outorder_period_lower_bound(app: &Application, graph: &ExecutionGraph) -> CoreResult<f64> {
    Ok(PlanMetrics::compute(app, graph)?.period_lower_bound(CommModel::OutOrder))
}

/// One operation of the cyclic scheduling problem.
#[derive(Clone, Debug)]
struct Op {
    /// `None` for a computation, `Some(edge)` for a communication.
    edge: Option<EdgeRef>,
    service: ServiceId,
    duration: f64,
    /// Servers whose (single) port/CPU this operation occupies.
    resources: Vec<ServiceId>,
}

/// Attempts to build a valid `OUTORDER` operation list with period exactly `lambda`.
///
/// Returns `Ok(None)` when the backtracking search (limited to
/// `opts.node_budget` nodes) finds no schedule.
pub fn outorder_schedule_at(
    app: &Application,
    graph: &ExecutionGraph,
    lambda: f64,
    opts: &OutOrderOptions,
) -> CoreResult<Option<OperationList>> {
    let metrics = PlanMetrics::compute(app, graph)?;
    let order = graph.topological_order()?;
    // Build the operation sequence in data-flow order: for every service, its
    // incoming transfers, then its computation, then (if it is an exit node)
    // its output transfer.  Service-to-service transfers are emitted when the
    // receiver is visited so that the sender's computation is already placed.
    let mut ops: Vec<Op> = Vec::new();
    for &k in &order {
        for e in in_edges(graph, k) {
            let mut resources = vec![k];
            if let Some(s) = e.sender() {
                resources.push(s);
            }
            ops.push(Op {
                edge: Some(e),
                service: k,
                duration: metrics.edge_volume(app, e),
                resources,
            });
        }
        ops.push(Op {
            edge: None,
            service: k,
            duration: metrics.c_comp(k),
            resources: vec![k],
        });
        if graph.succs(k).is_empty() {
            ops.push(Op {
                edge: Some(EdgeRef::Output(k)),
                service: k,
                duration: metrics.edge_volume(app, EdgeRef::Output(k)),
                resources: vec![k],
            });
        }
    }
    // Any single operation longer than the period is an immediate contradiction.
    if ops.iter().any(|op| op.duration > lambda + 1e-9) {
        return Ok(None);
    }

    let n = graph.n();
    // When every duration and the period are integral (the case of all the
    // paper's constructions and reductions), start times can be restricted to
    // the integer grid without loss of generality, which makes the
    // backtracking search much more thorough than the "abutting starts"
    // dominance rule alone.
    let integral = lambda <= 256.0
        && (lambda - lambda.round()).abs() < 1e-9
        && ops
            .iter()
            .all(|op| (op.duration - op.duration.round()).abs() < 1e-9);
    let mut state = SearchState {
        lambda,
        eps: 1e-9,
        grid: if integral { Some(1.0) } else { None },
        occupancy: vec![Vec::new(); n],
        calc_end: vec![0.0; n],
        comm_end: std::collections::BTreeMap::new(),
        placements: Vec::new(),
        nodes: 0,
        budget: opts.node_budget,
        deadline: opts.deadline,
    };
    if !schedule_ops(&ops, 0, &mut state) {
        return Ok(None);
    }
    let mut oplist = OperationList::new(n, lambda);
    for (op_idx, start) in &state.placements {
        let op = &ops[*op_idx];
        let iv = Interval::with_duration(*start, op.duration);
        match op.edge {
            Some(e) => oplist.set_comm(e, iv),
            None => oplist.set_calc(op.service, iv),
        }
    }
    Ok(Some(oplist))
}

struct SearchState {
    lambda: f64,
    eps: f64,
    /// Candidate-start granularity when the instance is integral.
    grid: Option<f64>,
    /// Per server: occupied intervals as (start, duration) of data set 0.
    occupancy: Vec<Vec<(f64, f64)>>,
    calc_end: Vec<f64>,
    comm_end: std::collections::BTreeMap<EdgeRef, f64>,
    placements: Vec<(usize, f64)>,
    nodes: usize,
    budget: usize,
    deadline: Option<Instant>,
}

impl SearchState {
    /// `true` once the node budget is exhausted or the deadline (checked
    /// every 256 nodes to keep the hot loop cheap) has passed.
    fn out_of_budget(&self) -> bool {
        self.nodes >= self.budget
            || (self.nodes & 0xFF == 0 && self.deadline.is_some_and(|d| Instant::now() >= d))
    }
}

impl SearchState {
    fn ready_time(&self, op: &Op, graph_has_preds: bool) -> f64 {
        let _ = graph_has_preds;
        match op.edge {
            Some(EdgeRef::Input(_)) => 0.0,
            Some(EdgeRef::Link(i, _)) => self.calc_end[i],
            Some(EdgeRef::Output(k)) => self.calc_end[k],
            None => 0.0, // refined below using comm_end
        }
    }

    fn fits(&self, op: &Op, start: f64) -> bool {
        for &r in &op.resources {
            for &(b, d) in &self.occupancy[r] {
                if !cyclically_disjoint(b, d, start, op.duration, self.lambda, self.eps) {
                    return false;
                }
            }
        }
        true
    }

    fn place(&mut self, op_idx: usize, op: &Op, start: f64) {
        for &r in &op.resources {
            self.occupancy[r].push((start, op.duration));
        }
        match op.edge {
            Some(e) => {
                self.comm_end.insert(e, start + op.duration);
            }
            None => {
                self.calc_end[op.service] = start + op.duration;
            }
        }
        self.placements.push((op_idx, start));
    }

    fn unplace(&mut self, op: &Op) {
        for &r in &op.resources {
            self.occupancy[r].pop();
        }
        match op.edge {
            Some(e) => {
                self.comm_end.remove(&e);
            }
            None => {
                self.calc_end[op.service] = 0.0;
            }
        }
        self.placements.pop();
    }
}

fn cyclically_disjoint(b1: f64, d1: f64, b2: f64, d2: f64, lambda: f64, eps: f64) -> bool {
    if d1 <= eps || d2 <= eps {
        return true;
    }
    if d1 + d2 > lambda + eps {
        return false;
    }
    let delta = (b2 - b1).rem_euclid(lambda);
    delta >= d1 - eps && lambda - delta >= d2 - eps
}

fn schedule_ops(ops: &[Op], idx: usize, state: &mut SearchState) -> bool {
    if idx == ops.len() {
        return true;
    }
    if state.out_of_budget() {
        return false;
    }
    state.nodes += 1;
    let op = &ops[idx];
    // Data-ready time: communications wait for the sender's computation;
    // computations wait for all incoming communications of their service.
    let ready = match op.edge {
        Some(_) => state.ready_time(op, true),
        None => state
            .comm_end
            .iter()
            .filter(|(e, _)| e.receiver() == Some(op.service))
            .map(|(_, &t)| t)
            .fold(0.0f64, f64::max),
    };
    // Candidate starts: the ready time itself, plus every start that abuts
    // (modulo λ) the end of an already-placed operation on an involved server,
    // plus — for integral instances — every grid point of one period window.
    let mut candidates = vec![ready];
    for &r in &op.resources {
        for &(b, d) in &state.occupancy[r] {
            let end = b + d;
            // Smallest t >= ready with t ≡ end (mod λ).
            let delta = (end - ready).rem_euclid(state.lambda);
            candidates.push(ready + delta);
        }
    }
    if let Some(grid) = state.grid {
        let mut t = ready.ceil();
        while t < ready + state.lambda - state.eps {
            candidates.push(t);
            t += grid;
        }
    }
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    candidates.dedup_by(|a, b| (*a - *b).abs() <= state.eps);
    for start in candidates {
        if !state.fits(op, start) {
            continue;
        }
        state.place(idx, op, start);
        if schedule_ops(ops, idx + 1, state) {
            return true;
        }
        state.unplace(op);
        if state.out_of_budget() {
            return false;
        }
    }
    false
}

/// Searches for the smallest `OUTORDER` period for the given execution graph.
///
/// Tries the lower bound first (optimal when it succeeds); otherwise bisects
/// between the lower bound and an `INORDER` fallback schedule, keeping the
/// best feasible operation list found.
pub fn outorder_period_search(
    app: &Application,
    graph: &ExecutionGraph,
    opts: &OutOrderOptions,
) -> CoreResult<OutOrderResult> {
    outorder_period_search_exec(app, graph, opts, Exec::serial())
}

/// [`outorder_period_search`] under an explicit execution strategy: the
/// `INORDER` fallback search fans out over `exec` worker threads, and
/// `exec.deadline` (combined with any [`OutOrderOptions::deadline`]) bounds
/// the backtracking scheduler and the bisection refinement — when it passes,
/// the best feasible operation list found so far is returned (flagged
/// non-optimal unless it already reached the lower bound).
pub fn outorder_period_search_exec(
    app: &Application,
    graph: &ExecutionGraph,
    opts: &OutOrderOptions,
    exec: Exec,
) -> CoreResult<OutOrderResult> {
    let opts = OutOrderOptions {
        deadline: match (opts.deadline, exec.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
        ..*opts
    };
    let lower_bound = outorder_period_lower_bound(app, graph)?;
    let lb = if lower_bound > 0.0 { lower_bound } else { 1.0 };
    if let Some(oplist) = outorder_schedule_at(app, graph, lb, &opts)? {
        return Ok(OutOrderResult {
            period: lb,
            oplist,
            lower_bound: lb,
            optimal: true,
        });
    }
    // Fallback: the best INORDER schedule found is always OUTORDER-feasible.
    let inorder = oneport_period_search_exec(
        app,
        graph,
        OnePortStyle::InOrder,
        opts.inorder_exhaustive_limit,
        exec,
    )?;
    let mut best_period = inorder.period;
    let mut best_oplist = inorder_oplist_for_orderings(app, graph, &inorder.orderings)?;
    // Bisection between the lower bound and the fallback.
    let mut lo = lb;
    let mut hi = best_period;
    for _ in 0..opts.refinement_steps {
        if hi - lo <= 1e-9 * hi.max(1.0) {
            break;
        }
        if opts.deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        match outorder_schedule_at(app, graph, mid, &opts)? {
            Some(oplist) => {
                best_period = mid;
                best_oplist = oplist;
                hi = mid;
            }
            None => {
                lo = mid;
            }
        }
    }
    Ok(OutOrderResult {
        period: best_period,
        oplist: best_oplist,
        lower_bound: lb,
        optimal: (best_period - lb).abs() <= 1e-9 * lb.max(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_core::validate_oplist;

    fn section23() -> (Application, ExecutionGraph) {
        let app = Application::independent(&[(4.0, 1.0); 5]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
        (app, g)
    }

    #[test]
    fn section23_outorder_reaches_the_lower_bound_of_7() {
        let (app, g) = section23();
        let result = outorder_period_search(&app, &g, &OutOrderOptions::default()).unwrap();
        assert_eq!(result.lower_bound, 7.0);
        assert!(result.optimal, "expected the bound 7 to be reached");
        assert!((result.period - 7.0).abs() < 1e-9);
        validate_oplist(&app, &g, &result.oplist, CommModel::OutOrder)
            .unwrap_or_else(|v| panic!("{v:?}"));
    }

    #[test]
    fn chain_outorder_equals_lower_bound() {
        let app = Application::independent(&[(2.0, 0.5), (3.0, 2.0), (1.0, 1.0)]);
        let g = ExecutionGraph::chain_of(3, &[0, 1, 2]).unwrap();
        let result = outorder_period_search(&app, &g, &OutOrderOptions::default()).unwrap();
        assert!(result.optimal);
        validate_oplist(&app, &g, &result.oplist, CommModel::OutOrder).unwrap();
    }

    #[test]
    fn infeasible_period_rejected() {
        let (app, g) = section23();
        // Below the largest single operation (a computation of 4) nothing fits.
        assert!(
            outorder_schedule_at(&app, &g, 3.5, &OutOrderOptions::default())
                .unwrap()
                .is_none()
        );
        // At the lower bound a schedule exists.
        let ol = outorder_schedule_at(&app, &g, 7.0, &OutOrderOptions::default())
            .unwrap()
            .unwrap();
        validate_oplist(&app, &g, &ol, CommModel::OutOrder).unwrap();
    }

    #[test]
    fn schedules_at_larger_periods_also_exist() {
        let (app, g) = section23();
        for lambda in [8.0, 10.0, 21.0] {
            let ol = outorder_schedule_at(&app, &g, lambda, &OutOrderOptions::default())
                .unwrap()
                .unwrap_or_else(|| panic!("no schedule at {lambda}"));
            validate_oplist(&app, &g, &ol, CommModel::OutOrder)
                .unwrap_or_else(|v| panic!("lambda {lambda}: {v:?}"));
        }
    }

    #[test]
    fn fork_join_outorder_between_bound_and_inorder() {
        let app = Application::independent(&[(1.0, 1.0); 5]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)])
            .unwrap();
        let result = outorder_period_search(&app, &g, &OutOrderOptions::default()).unwrap();
        validate_oplist(&app, &g, &result.oplist, CommModel::OutOrder).unwrap();
        assert!(result.period >= result.lower_bound - 1e-9);
    }
}
