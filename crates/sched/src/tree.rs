//! Latency of tree-shaped execution graphs (Algorithm 1 / Proposition 12).
//!
//! When the execution graph is an out-tree (every service has at most one
//! direct predecessor and a single entry node), the optimal one-port latency
//! can be computed in `O(n log n)`: at every node, the children's subtrees
//! must be fed by decreasing residual latency.  For tree-shaped graphs all
//! three communication models are equivalent with respect to the latency
//! (one-port emissions dominate — Proposition 12), so the value returned here
//! is the model-independent optimum.

use fsw_core::{Application, CoreError, CoreResult, EdgeRef, ExecutionGraph, ServiceId};

use crate::orderings::CommOrderings;

/// Optimal latency of a tree (or forest) execution graph.
///
/// For a forest the latency is the maximum over its trees (each tree receives
/// its own input data set and produces its own outputs concurrently).
/// Fails with [`CoreError::NotAForest`] if some service has several direct
/// predecessors.
pub fn tree_latency(app: &Application, graph: &ExecutionGraph) -> CoreResult<f64> {
    if !graph.is_forest() {
        return Err(CoreError::NotAForest);
    }
    let mut best = 0.0f64;
    for root in graph.entry_nodes() {
        // The root's incoming data set has size δ0 = 1.
        best = best.max(subtree_latency(app, graph, root));
    }
    Ok(best)
}

/// Optimal latency of the subtree rooted at `node`, *normalised to an incoming
/// data size of 1*: the duration from the instant the incoming communication
/// into `node` starts until every operation of the subtree (including the
/// final output transfers of its exit nodes) completes.
fn subtree_latency(app: &Application, graph: &ExecutionGraph, node: ServiceId) -> f64 {
    let sigma = app.selectivity(node);
    let children = graph.succs(node);
    if children.is_empty() {
        // Receive (1), compute, send the result to the outside world.
        return 1.0 + app.cost(node) + sigma;
    }
    // Feed the children by non-increasing residual latency: the child fed in
    // p-th position (0-indexed) starts receiving after the p earlier emissions
    // of length σ, and then needs σ·L(child) to finish (L(child) includes its
    // own incoming transfer).
    let mut subs: Vec<f64> = children
        .iter()
        .map(|&c| subtree_latency(app, graph, c))
        .collect();
    subs.sort_by(|a, b| b.partial_cmp(a).expect("finite latencies"));
    let tail = subs
        .iter()
        .enumerate()
        .map(|(p, l)| p as f64 + l)
        .fold(0.0f64, f64::max);
    1.0 + app.cost(node) + sigma * tail
}

/// The communication orderings realising [`tree_latency`]: every node emits
/// towards its children by non-increasing subtree latency (receptions have no
/// freedom on a tree).
pub fn tree_latency_orderings(
    app: &Application,
    graph: &ExecutionGraph,
) -> CoreResult<CommOrderings> {
    if !graph.is_forest() {
        return Err(CoreError::NotAForest);
    }
    let mut ords = CommOrderings::natural(graph);
    for k in 0..graph.n() {
        let succs = graph.succs(k);
        if succs.len() > 1 {
            let mut order: Vec<(f64, ServiceId)> = succs
                .iter()
                .map(|&c| (subtree_latency(app, graph, c), c))
                .collect();
            order.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite latencies"));
            ords.outgoing[k] = order
                .into_iter()
                .map(|(_, c)| EdgeRef::Link(k, c))
                .collect();
        }
    }
    Ok(ords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{oneport_latency_for_orderings, oneport_latency_search};

    #[test]
    fn single_node_tree() {
        let app = Application::independent(&[(3.0, 0.5)]);
        let g = ExecutionGraph::new(1);
        // receive 1, compute 3, send 0.5
        assert_eq!(tree_latency(&app, &g).unwrap(), 4.5);
    }

    #[test]
    fn chain_tree_latency() {
        let app = Application::independent(&[(2.0, 0.5), (3.0, 1.0)]);
        let g = ExecutionGraph::chain_of(2, &[0, 1]).unwrap();
        // 1 + 2 + 0.5*(1 + 3 + 1) = 5.5
        assert_eq!(tree_latency(&app, &g).unwrap(), 5.5);
    }

    #[test]
    fn star_feeds_longest_child_first() {
        let app = Application::independent(&[(1.0, 1.0), (9.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        let g = ExecutionGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        // Same instance as the latency-module test: optimum 13.
        assert_eq!(tree_latency(&app, &g).unwrap(), 13.0);
        // The ordering extracted from the algorithm achieves exactly that value.
        let ords = tree_latency_orderings(&app, &g).unwrap();
        let (lat, _) = oneport_latency_for_orderings(&app, &g, &ords).unwrap();
        assert!((lat - 13.0).abs() < 1e-9);
    }

    #[test]
    fn forest_latency_is_max_over_trees() {
        let app = Application::independent(&[(1.0, 1.0), (5.0, 1.0), (2.0, 1.0)]);
        let g = ExecutionGraph::from_edges(3, &[(0, 2)]).unwrap();
        // Tree {0 -> 2}: 1 + 1 + 1*(1 + 2 + 1) = 6 ; tree {1}: 1 + 5 + 1 = 7.
        assert_eq!(tree_latency(&app, &g).unwrap(), 7.0);
    }

    #[test]
    fn non_forest_rejected() {
        let app = Application::independent(&[(1.0, 1.0); 3]);
        let g = ExecutionGraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        assert!(matches!(tree_latency(&app, &g), Err(CoreError::NotAForest)));
    }

    #[test]
    fn algorithm_matches_exhaustive_search_on_random_trees() {
        // Deterministic pseudo-random trees; the greedy tree algorithm must
        // match the exhaustive ordering search (Proposition 12).
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move |m: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 33) as usize % m
        };
        for trial in 0..20 {
            let n = 3 + next(4); // 3..=6 services
            let mut parents: Vec<Option<usize>> = vec![None];
            for k in 1..n {
                parents.push(Some(next(k)));
            }
            let g = ExecutionGraph::from_parents(&parents).unwrap();
            let specs: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    let cost = 1.0 + next(5) as f64;
                    let sel = [0.5, 1.0, 2.0][next(3)];
                    (cost, sel)
                })
                .collect();
            let app = Application::independent(&specs);
            let algo = tree_latency(&app, &g).unwrap();
            let search = oneport_latency_search(&app, &g, 50_000).unwrap();
            assert!(search.exhaustive, "trial {trial}: search space too large");
            assert!(
                (algo - search.latency).abs() < 1e-9,
                "trial {trial}: algorithm {algo} vs exhaustive {}",
                search.latency
            );
        }
    }
}
