//! Shared machinery of the prune-and-memoise exhaustive searches.
//!
//! The exhaustive MINPERIOD / MINLATENCY enumerations used to be brute force:
//! every candidate execution graph paid a full evaluation, and the ~120k
//! candidate DAGs of a five-service MINLATENCY search each paid a fresh
//! one-port ordering search.  This module provides the three ingredients that
//! collapse that cost while keeping results **bit-identical** to the brute
//! force (see `crate::par` for the first-minimum-wins reduction rule):
//!
//! * [`Incumbent`] — a lock-free, monotonically decreasing bound shared by
//!   all worker threads.  Enumerators prune a subtree only when its
//!   admissible lower bound *strictly* exceeds the incumbent (plus a small
//!   relative safety margin, [`prune_threshold`]), so a candidate that ties
//!   the optimum is never pruned and the serial first-minimum winner is
//!   preserved whatever the thread count;
//! * [`PartialPrune`] — which partial-assignment bound the forest enumerator
//!   should maintain (period or latency, from
//!   [`fsw_core::PartialForestMetrics`]);
//! * [`EvalCache`] — a concurrent memo of expensive candidate evaluations
//!   (one-port ordering searches) keyed by a canonical shape-plus-weights
//!   signature, so the members of an equivalence class share a single search;
//! * [`CanonicalSpace`] / [`ForestCursor`] / [`Symmetry`] — the
//!   symmetry-reduced *enumeration* layer: on constraint-free instances the
//!   plan searches iterate canonical representatives of weight-class orbits
//!   (with the partial bounds applied before a representative is
//!   materialised) instead of the full labelled space — full relabelling
//!   symmetry on uniform weights, **class-preserving** relabelling (the
//!   product of per-weight-class symmetric groups) on multi-class instances
//!   — falling back to the bit-identical full enumeration otherwise;
//! * [`SearchStrategy`] / [`frontier`] — how the candidate space is walked:
//!   the classic depth-first branch-and-bound, or a **best-first** search
//!   over the partial-assignment lower bound (a bounded priority frontier
//!   with deterministic tie-breaking and spill-to-DFS, see the [`frontier`]
//!   module) that expands the most promising candidates first and turns the
//!   incumbent into an early bound-clearance certificate.
//!
//! ### Canonical signatures and bit-exactness
//!
//! Two labelled DAGs are merged only when the merge provably cannot change a
//! single output bit:
//!
//! * every graph is keyed by its exact edge set plus the weight-class
//!   partition's signature (the DAG enumeration visits each labelled DAG
//!   once per topological permutation, a ~4–10× collapse on its own; the
//!   partition in the key keeps class-reduced and full-path entries from
//!   ever colliding should one cache serve several applications);
//! * when **all services carry identical cost and selectivity**, the key is
//!   additionally canonicalised over node relabellings (the lexicographically
//!   smallest edge mask over all permutations).  With uniform weights every
//!   intermediate float of an evaluation is a function of structure alone, so
//!   isomorphic graphs evaluate to bit-identical values.  On multi-class
//!   instances the exhaustive one-port searches are *not* class-invariant
//!   (their internal sums follow node ids over per-class terms and can drift
//!   by an ulp across orbit members), so cross-label sharing stays disabled
//!   there — correctness over compression;
//! * heuristic (hill-climbing) evaluations are label-dependent even with
//!   uniform weights, so keys carry an *exhaustive?* flag and canonicalised
//!   sharing applies only to exhaustively searched classes.  The OUTORDER
//!   backtracker is label-dependent too, but its plan-search evaluation
//!   canonicalises the *graph* before evaluating (see
//!   `fsw_core::canonical_classed_member`), which turns the value into a
//!   pure function of the orbit and makes the memo key one entry per
//!   canonical shape + class signature.
//!
//! ### Cutoff-aware memoisation
//!
//! Cached evaluations are *bounded*: an evaluator called with cutoff `c`
//! must return the exact value when it is `<= c` and any value `> c`
//! (typically `∞`) otherwise.  The cache stores which of the two happened,
//! so a truncated entry is reused only under a cutoff it still covers and is
//! transparently recomputed when a later caller needs more precision (this
//! is what makes one cache shareable across a `solve_all` sweep, where each
//! solve has its own incumbent trajectory).

pub mod frontier;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use fsw_core::{
    Application, CanonicalForests, ExecutionGraph, PartialForestMetrics, ServiceId, WeightClasses,
};

use crate::orderings::permutations;

/// Relative safety margin for pruning decisions: admissible bounds and full
/// evaluations may accumulate floating-point error along different operation
/// orders, so a subtree is pruned only when its bound clears the incumbent by
/// more than this relative slack.  Pruning less than theoretically possible
/// costs a few extra evaluations; pruning more would break bit-identity.
const PRUNE_EPSILON: f64 = 1e-9;

/// The value a lower bound must strictly exceed before its subtree (or
/// candidate) may be pruned against incumbent `cut`.
pub fn prune_threshold(cut: f64) -> f64 {
    if cut.is_finite() {
        cut + PRUNE_EPSILON * cut.abs().max(1.0)
    } else {
        cut
    }
}

/// A monotonically decreasing objective bound shared across search threads.
///
/// `offer` never raises the stored value, so every reader observes a valid
/// upper bound on the optimum at all times; stale reads only weaken pruning,
/// never correctness.
#[derive(Debug)]
pub struct Incumbent(AtomicU64);

impl Incumbent {
    /// A fresh incumbent at `+∞` (no bound known yet).
    pub fn new() -> Self {
        Incumbent::seeded(f64::INFINITY)
    }

    /// An incumbent seeded with a known upper bound (e.g. the optimum of an
    /// earlier search phase over a subspace).
    pub fn seeded(value: f64) -> Self {
        Incumbent(AtomicU64::new(value.to_bits()))
    }

    /// The current bound.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Lowers the bound to `value` if it improves on the current one.
    pub fn offer(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let mut current = self.0.load(Ordering::Relaxed);
        while value < f64::from_bits(current) {
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }
}

impl Default for Incumbent {
    fn default() -> Self {
        Incumbent::new()
    }
}

/// Whether an exhaustive search may enumerate canonical representatives of
/// weight-class orbits instead of the full labelled space.
///
/// The reduction is engaged only when **both** hold:
///
/// * the caller passes [`Symmetry::Auto`] or [`Symmetry::Classes`],
///   asserting an invariance property of its candidate evaluation (see the
///   variants); hill-climbing and backtracking evaluations, whose search
///   trajectory follows node ids, satisfy neither;
/// * the instance admits the corresponding symmetry:
///   [`CanonicalSpace::reducible`] (uniform weights, no constraints) for
///   `Auto`, the weaker [`CanonicalSpace::class_reducible`] (some weight
///   class with at least two members, no constraints) for `Classes`.
///
/// Otherwise the search runs the bit-identical full enumeration, so
/// instances outside the gate keep the exact legacy semantics (value *and*
/// first-minimum winner).  Under a reduction the value is unchanged but the
/// winning graph follows the **canonical tie-break**: the first optimum in
/// canonical enumeration order (see `fsw_core::canonical`).
///
/// ### The bit-safety gate
///
/// `Classes` is the stronger claim, so it is gated on the stricter
/// invariance: every float of the evaluation must be a function of the
/// *class-coloured* structure alone.  This holds bit-exactly for every
/// forest evaluation whose arithmetic follows the structure — the
/// structural period bounds (input factors are path-order products since
/// the metrics rework, single-predecessor volumes involve no multi-term
/// sums, `Cout` multiplies rather than sums) and the tree-latency recursion
/// (children combine in value order).  Evaluations whose internal sums
/// could associate differently across orbit members — the one-port ordering
/// searches, whose schedule accumulation follows node ids, and every DAG
/// bound with joins — must **fall back**: pass `Auto` (uniform-only, the
/// regime where those sums are over identical terms) or `Full`.  The
/// `tests/partial_symmetry_equivalence.rs` suite guards both directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Symmetry {
    /// Always enumerate the full labelled space.
    Full,
    /// Enumerate canonical representatives when the instance is
    /// [`CanonicalSpace::reducible`] (uniform weights); the caller
    /// guarantees its evaluation is label-invariant there.
    Auto,
    /// Additionally enumerate **class-preserving** canonical representatives
    /// when the instance is [`CanonicalSpace::class_reducible`] (several
    /// weight classes, at least one with two or more members); the caller
    /// guarantees its evaluation is invariant under class-preserving
    /// relabellings — a strictly stronger claim than `Auto`'s.
    Classes,
}

/// How an exhaustive plan search walks its candidate space.
///
/// Both strategies return **bit-identical solutions** (value and winning
/// graph) on complete runs, for every thread count: the depth-first walk
/// keeps the first minimum in enumeration order, and the best-first walk
/// tie-breaks value ties by that same enumeration rank.  They differ in
/// *when* the optimum is reached and how much of the space is materialised:
/// best-first expands the most promising candidates (smallest
/// partial-assignment lower bound) first, so the incumbent drops to the
/// optimum early and the remaining frontier is killed wholesale by a single
/// bound-clearance certificate, at the cost of a bounded priority frontier
/// (see [`frontier`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Pick per space: best-first on the (small, fully materialised)
    /// canonical orbit spaces, depth-first on the raw labelled spaces.
    #[default]
    Auto,
    /// The classic depth-first branch-and-bound enumeration.
    DepthFirst,
    /// Best-first over the partial-assignment lower bound, with a bounded
    /// priority frontier that spills to depth-first when full.
    BestFirst,
}

/// The symmetry-reduced candidate spaces: which instances admit the orbit
/// collapse and how large the reduced spaces are.
pub struct CanonicalSpace;

impl CanonicalSpace {
    /// `true` when relabelling symmetry applies to the whole instance:
    /// at least two services, all in one weight class, no precedence
    /// constraints (constraints distinguish services regardless of weights).
    pub fn reducible(app: &Application) -> bool {
        app.n() >= 2 && !app.has_constraints() && WeightClasses::of(app).is_uniform()
    }

    /// Number of forest-isomorphism classes on `n` nodes — the size of the
    /// reduced forest space (the raw space holds `(n+1)^(n-1)` labelled
    /// forests inside `n^n` parent functions).
    pub fn forest_class_count(n: usize) -> u128 {
        fsw_core::forest_classes(n)
    }

    /// Worst-case communication-ordering space of any *forest* on `n`
    /// nodes (`(n-1)!`, the star), saturating.  When this clears the
    /// exhaustive-ordering budget, every forest candidate's ordering search
    /// is exhaustive — hence label-invariant on uniform weights — and the
    /// orbit reduction is safe for orchestrated evaluations too.
    pub fn max_forest_ordering_space(n: usize) -> usize {
        let mut f = 1usize;
        for k in 2..n {
            f = f.saturating_mul(k);
        }
        f
    }

    /// Worst-case communication-ordering space of any DAG on `n` nodes
    /// (`Π_k max(k,1)!·max(n-1-k,1)!`, the complete DAG), saturating.
    pub fn max_dag_ordering_space(n: usize) -> usize {
        let mut total = 1usize;
        for k in 0..n {
            for degree in [k.max(1), (n - 1 - k).max(1)] {
                for f in 2..=degree {
                    total = total.saturating_mul(f);
                }
            }
        }
        total
    }

    /// Materialises the canonical forest representatives on `n` nodes, in
    /// canonical enumeration order, each with its orbit size, packed as
    /// `2n`-byte level-sequence codes with identity weights — the same
    /// [`CanonicalRep`] contract the classed space uses, so buffers holding
    /// uniform representatives (equivalence tests, orbit audits, spilled
    /// depth-first completions) cost bytes, not `Vec`-of-`Option`
    /// structures.  The searches themselves no longer call this: uniform
    /// solves stream the shape plan lazily and materialise nothing.
    pub fn forest_representatives(n: usize) -> Vec<CanonicalRep> {
        let identity: Vec<ServiceId> = (0..n).collect();
        let mut stream = CanonicalForests::new(n);
        let mut reps = Vec::new();
        while let Some(class) = stream.next() {
            reps.push(CanonicalRep::new(class.parents, &identity, class.orbit));
        }
        reps
    }

    /// `true` when **class-preserving** relabelling symmetry is non-trivial
    /// for the instance: at least two services, no precedence constraints
    /// (constraints distinguish services regardless of weights), and some
    /// weight class holding two or more services.  Uniform instances
    /// ([`CanonicalSpace::reducible`]) are the single-class special case.
    pub fn class_reducible(app: &Application) -> bool {
        CanonicalSpace::class_reducible_with(app, &WeightClasses::of(app))
    }

    /// [`CanonicalSpace::class_reducible`] against a partition the caller
    /// already holds (hot evaluation paths keep one per solve, e.g. in
    /// [`EvalCache::weight_classes`]) — the single definition of the gate.
    pub fn class_reducible_with(app: &Application, classes: &WeightClasses) -> bool {
        app.n() >= 2 && !app.has_constraints() && classes.has_symmetry()
    }

    /// Materialises one representative per **class-preserving** relabelling
    /// orbit (coloured-forest class) of `app`'s forest space, in canonical
    /// enumeration order, with each position already pinned to a concrete
    /// service of its weight class.  Returns `None` once the coloured class
    /// space exceeds `cap` — callers then fall back to the raw enumeration.
    pub fn classed_representatives(app: &Application, cap: usize) -> Option<Vec<CanonicalRep>> {
        match CanonicalSpace::classed_representatives_within(app, cap, None) {
            ClassedGeneration::Generated(reps) => Some(reps),
            ClassedGeneration::CapExceeded | ClassedGeneration::DeadlineExpired => None,
        }
    }

    /// [`CanonicalSpace::classed_representatives`] with an optional
    /// wall-clock deadline (checked per shape), reporting *why* no list came
    /// back: a cap overflow falls back to the raw enumeration, an expired
    /// deadline degrades like any interrupted search.
    pub fn classed_representatives_within(
        app: &Application,
        cap: usize,
        deadline: Option<Instant>,
    ) -> ClassedGeneration {
        let classes = WeightClasses::of(app);
        match fsw_core::classed_forest_representatives_within(&classes, cap, deadline) {
            fsw_core::ClassedGeneration::CapExceeded => ClassedGeneration::CapExceeded,
            fsw_core::ClassedGeneration::DeadlineExpired => ClassedGeneration::DeadlineExpired,
            fsw_core::ClassedGeneration::Generated(reps) => ClassedGeneration::Generated(
                reps.into_iter()
                    .map(|rep| {
                        let weights = classes
                            .service_assignment(&rep.classes)
                            .expect("generator colourings match the partition");
                        CanonicalRep::new(&rep.parents, &weights, rep.orbit)
                    })
                    .collect(),
            ),
        }
    }

    /// `true` when the unconstrained forest plan search provably runs to
    /// completion under a `cap`-sized enumeration budget for **every
    /// labelling** of `app` — the premise behind any claim that two
    /// permuted applications solve to bit-identical values (beyond the cap
    /// the engine falls back to label-following local search, and an
    /// interrupted enumeration depends on the walk order).
    ///
    /// Sufficient conditions only, each O(n²)-cheap so callers can gate per
    /// request (the serving layer checks this on its hot path — the exact
    /// [`fsw_core::classed_class_count`] answer costs milliseconds per
    /// partition, too slow there): the raw `n^n` space fits, the uniform
    /// canonical space fits, or a class-coloured space certainly fits
    /// (`shapes × multinomial(n; sizes)` bounds the coloured class count
    /// from above, so declining a borderline space is the worst case).
    pub fn exhaustively_coverable(app: &Application, cap: usize) -> bool {
        let n = app.n();
        if n == 0 || app.has_constraints() {
            return false;
        }
        let cap = cap as u128;
        let mut raw = 1u128;
        for _ in 0..n {
            raw = raw.saturating_mul(n as u128);
        }
        if raw <= cap {
            return true;
        }
        let classes = WeightClasses::of(app);
        if classes.is_uniform() {
            return fsw_core::forest_classes(n) <= cap;
        }
        if classes.has_symmetry() {
            // Coloured classes <= shapes × colourings-per-shape <= shapes ×
            // multinomial(n; sizes).  The multinomial is built as
            // Π_c C(prefix, size_c) (multiply-then-divide keeps every
            // intermediate an exact integer).
            let mut multinomial = 1u128;
            let mut prefix = 0u128;
            for &size in classes.sizes() {
                for k in 1..=size as u128 {
                    prefix += 1;
                    multinomial = multinomial.saturating_mul(prefix) / k;
                }
            }
            return fsw_core::forest_classes(n).saturating_mul(multinomial) <= cap;
        }
        false
    }
}

/// Outcome of a deadline-bounded classed-representative materialisation
/// ([`CanonicalSpace::classed_representatives_within`]; the engine-level
/// mirror of [`fsw_core::ClassedGeneration`] carrying [`CanonicalRep`]s).
#[derive(Clone, Debug)]
pub enum ClassedGeneration {
    /// The complete representative list, in canonical enumeration order.
    Generated(Vec<CanonicalRep>),
    /// More than the cap exist; fall back to the raw enumeration.
    CapExceeded,
    /// The deadline passed mid-generation; degrade like an interrupted
    /// search.
    DeadlineExpired,
}

/// One canonical orbit representative ready for evaluation, stored as a
/// **packed level-sequence code** (`fsw_core::pack_level_code`: `n` bytes of
/// preorder levels — which alone reconstruct the shape's parent vector — and
/// `n` bytes of concrete service ids, identity on uniform instances).  Cold
/// representatives cost `2n` bytes each and are decoded on demand, so a
/// materialised list holds no `Vec`-of-`Option` structures.
#[derive(Clone, Debug)]
pub struct CanonicalRep {
    code: Box<[u8]>,
    /// Number of labelled forests this representative stands for.
    pub orbit: u128,
}

impl CanonicalRep {
    /// Packs a representative from its parent vector over preorder positions
    /// (`parents[p] < Some(p)`) and the concrete service each position
    /// stands for.
    pub fn new(parents: &[Option<ServiceId>], weights: &[ServiceId], orbit: u128) -> Self {
        CanonicalRep {
            code: fsw_core::pack_level_code(parents, weights),
            orbit,
        }
    }

    /// Decodes `(parents, weights)` from the packed code.
    pub fn decode(&self) -> (Vec<Option<ServiceId>>, Vec<ServiceId>) {
        fsw_core::unpack_level_code(&self.code)
    }

    /// The parent vector over preorder positions.
    pub fn parents(&self) -> Vec<Option<ServiceId>> {
        self.decode().0
    }

    /// The concrete service each position stands for.
    pub fn weights(&self) -> Vec<ServiceId> {
        self.decode().1
    }

    /// The labelled execution graph of a decoded representative (position
    /// `p` becomes service `weights[p]`).
    pub fn labelled_graph(parents: &[Option<ServiceId>], weights: &[ServiceId]) -> ExecutionGraph {
        let mut labelled = vec![None; parents.len()];
        for (pos, &p) in parents.iter().enumerate() {
            labelled[weights[pos]] = p.map(|pp| weights[pp]);
        }
        ExecutionGraph::from_parents(&labelled).expect("canonical parent vectors are acyclic")
    }

    /// The representative as a labelled execution graph over the concrete
    /// services.
    pub fn graph(&self) -> ExecutionGraph {
        let (parents, weights) = self.decode();
        CanonicalRep::labelled_graph(&parents, &weights)
    }
}

/// Replays canonical forest representatives against an incrementally
/// maintained [`PartialForestMetrics`], pruning a representative **before it
/// is materialised** as an [`ExecutionGraph`] whenever its admissible bound
/// already clears the cutoff.  Consecutive representatives share long
/// prefixes (canonical order changes a suffix), so the cursor pops and
/// pushes only the differing tail.
pub struct ForestCursor<'a> {
    metrics: PartialForestMetrics<'a>,
    current: Vec<(Option<ServiceId>, ServiceId)>,
    prune: PartialPrune,
}

impl<'a> ForestCursor<'a> {
    /// A cursor over `app`'s canonical forest space with the given
    /// partial-assignment bound.
    pub fn new(app: &'a Application, prune: PartialPrune) -> Self {
        ForestCursor {
            metrics: PartialForestMetrics::new(app),
            current: Vec::with_capacity(app.n()),
            prune,
        }
    }

    /// Rewinds to the longest prefix shared with `(parents, weights)` and
    /// replays the differing suffix (`weights[p]` pins position `p` to a
    /// concrete service's cost/selectivity; identity on uniform instances).
    fn replay(&mut self, parents: &[Option<ServiceId>], weights: &[ServiceId]) {
        let common = self
            .current
            .iter()
            .zip(parents.iter().zip(weights))
            .take_while(|(&(cp, cw), (&p, &w))| cp == p && cw == w)
            .count();
        while self.current.len() > common {
            self.metrics.pop();
            self.current.pop();
        }
        for (&p, &w) in parents[common..].iter().zip(&weights[common..]) {
            self.metrics.push_weighted(p, w);
            self.current.push((p, w));
        }
    }

    /// The representative's partial-assignment bound (its structural lower
    /// bound once fully replayed); `0.0` under [`PartialPrune::Off`].
    pub fn bound(&mut self, parents: &[Option<ServiceId>], weights: &[ServiceId]) -> f64 {
        self.replay(parents, weights);
        match self.prune {
            PartialPrune::Off => 0.0,
            PartialPrune::Period(model) => self.metrics.period_bound(model),
            PartialPrune::Latency => self.metrics.latency_bound(),
        }
    }

    /// Advances the cursor to a (possibly class-coloured) representative and
    /// returns its **service-labelled** execution graph — or `None` when the
    /// partial bound proves no member of the orbit can beat `cutoff`.  The
    /// packed representative is decoded once, here.
    pub fn advance_rep(&mut self, rep: &CanonicalRep, cutoff: f64) -> Option<ExecutionGraph> {
        let (parents, weights) = rep.decode();
        if self.advance_pruned(&parents, &weights, cutoff) {
            return None;
        }
        Some(CanonicalRep::labelled_graph(&parents, &weights))
    }

    /// Replays and returns `true` when the bound prunes against `cutoff`.
    fn advance_pruned(
        &mut self,
        parents: &[Option<ServiceId>],
        weights: &[ServiceId],
        cutoff: f64,
    ) -> bool {
        self.replay(parents, weights);
        if self.prune != PartialPrune::Off {
            let bound = match self.prune {
                PartialPrune::Off => unreachable!(),
                PartialPrune::Period(model) => self.metrics.period_bound(model),
                PartialPrune::Latency => self.metrics.latency_bound(),
            };
            if bound > prune_threshold(cutoff) {
                return true;
            }
        }
        false
    }
}

/// Which admissible partial-assignment bound the forest enumerator maintains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartialPrune {
    /// No partial pruning: the enumeration degenerates to the brute force
    /// (used by the reference solvers the property tests compare against).
    Off,
    /// Prune on [`fsw_core::PartialForestMetrics::period_bound`] for the
    /// given model.  Valid whenever the candidate evaluation is at least the
    /// model's structural period lower bound (both the `LowerBound` and the
    /// `Orchestrated` evaluations are).
    Period(fsw_core::CommModel),
    /// Prune on [`fsw_core::PartialForestMetrics::latency_bound`].  Valid for
    /// the exact forest latency (Algorithm 1) and every one-port/multi-port
    /// schedule value, all of which dominate the critical path.
    Latency,
}

/// What a bounded evaluation reported for a cache key.
#[derive(Clone, Copy, Debug)]
enum CacheEntry {
    /// The exact value (the evaluation came back at or below its cutoff).
    Exact(f64),
    /// The value is known only to exceed this cutoff.
    AboveCutoff(f64),
}

/// A concurrent memo of bounded candidate evaluations keyed by canonical
/// shape-plus-weights signatures (see the module docs for the merge rules).
///
/// One instance serves one [`Application`]; `solve_all` shares an instance
/// across a whole model × objective sweep, the serving layer (`fsw_serve`)
/// shares one per application fingerprint across a batch's cold solves,
/// and its online sessions retain one across re-plans (rebuilt on
/// mutation, since entries depend on the weights).  The cache **owns** a
/// copy of its application (applications are a few dozen bytes), so
/// long-lived holders need no self-referential lifetimes.
pub struct EvalCache {
    app: Application,
    /// Node relabellings exhaustive entries may be canonicalised over
    /// (always containing the identity, first): the full symmetric group on
    /// uniform instances, just the identity otherwise — multi-class merging
    /// is unsound for the label-following searches cached here (see
    /// `EvalCache::new`).
    perms: Vec<Vec<ServiceId>>,
    /// The application's weight-class partition, computed once per cache so
    /// hot evaluation paths can consult it without rebuilding it per
    /// candidate (see [`EvalCache::weight_classes`]).
    classes: WeightClasses,
    /// Signature of the weight-class partition, mixed into every key so
    /// entries can never collide across applications whose services
    /// partition differently (e.g. when a future service layer shares one
    /// cache across a fleet of `solve_all` applications).
    class_sig: u64,
    map: Mutex<HashMap<(u8, bool, u64, u128), CacheEntry>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// Largest number of relabellings canonicalisation will scan per candidate
/// (7! — beyond that the signature falls back to the exact edge set).
const MAX_CANONICAL_PERMS: usize = 5_040;

impl EvalCache {
    /// A fresh cache for `app`.
    pub fn new(app: &Application) -> Self {
        let n = app.n();
        let classes = WeightClasses::of(app);
        let group = classes.group_order();
        // Cross-label merging of exhaustive entries is enabled on **uniform**
        // instances only: the exhaustive one-port searches cached here follow
        // node ids internally, and on multi-class instances two
        // class-isomorphic graphs can return values an ulp apart (different
        // summation orders over *different* per-class terms), so merging
        // them would break the bit-exact full-enumeration fallback the
        // `Symmetry` gate promises.  Multi-class orbit sharing happens one
        // layer up instead, where it is sound by construction: the OUTORDER
        // evaluation canonicalises the *graph* before evaluating, so all
        // orbit members key (and compute) the identical canonical member.
        let perms = if n > 1 && classes.is_uniform() && group <= MAX_CANONICAL_PERMS as u128 {
            let ids: Vec<ServiceId> = (0..n).collect();
            permutations(&ids)
        } else {
            vec![(0..n).collect()]
        };
        EvalCache {
            app: app.clone(),
            perms,
            class_sig: classes.signature(),
            classes,
            map: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The application this cache serves.
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// The application's weight-class partition (computed once at cache
    /// construction; hot evaluation paths should use this instead of
    /// re-deriving it per candidate).
    pub fn weight_classes(&self) -> &WeightClasses {
        &self.classes
    }

    /// `(hits, misses)` so far — `hits` counts evaluations answered from the
    /// memo without running the underlying search.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The canonical signature of `graph`: its exact edge mask
    /// ([`ExecutionGraph::edge_mask_under`]), minimised over class-preserving
    /// relabellings when those are provably bit-safe.
    fn signature(&self, graph: &ExecutionGraph, exhaustive: bool) -> u128 {
        debug_assert!(graph.n() == self.app.n() && graph.n() * graph.n() <= 128);
        let identity = &self.perms[0];
        let mut best = graph.edge_mask_under(identity);
        if exhaustive {
            for perm in &self.perms[1..] {
                let mask = graph.edge_mask_under(perm);
                if mask < best {
                    best = mask;
                }
            }
        }
        best
    }

    /// Memoised *exact* evaluation of `graph`: `compute` always returns the
    /// true value (it has no cutoff support), so the entry is stored as
    /// exact and reused under every cutoff.
    pub fn get_or_compute_exact(
        &self,
        tag: u8,
        graph: &ExecutionGraph,
        exhaustive: bool,
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        self.get_or_compute(tag, graph, exhaustive, f64::INFINITY, |_| compute())
    }

    /// Memoised bounded evaluation of `graph`.
    ///
    /// `tag` namespaces independent evaluation families sharing the cache
    /// (e.g. one-port latency vs INORDER period).  `exhaustive` must be
    /// `true` iff `compute` performs an exhaustive (label-independent)
    /// search; heuristic evaluations are shared only between identical
    /// labelled graphs.  `compute(c)` must return the exact value when it is
    /// `<= c`, and any value `> c` otherwise.
    pub fn get_or_compute(
        &self,
        tag: u8,
        graph: &ExecutionGraph,
        exhaustive: bool,
        cutoff: f64,
        compute: impl FnOnce(f64) -> f64,
    ) -> f64 {
        let n = graph.n();
        if n * n > 128 {
            // No compact signature: evaluate directly (never reached by the
            // DAG enumeration, which is capped well below this).
            return compute(cutoff);
        }
        let key = (
            tag,
            exhaustive,
            self.class_sig,
            self.signature(graph, exhaustive),
        );
        {
            let map = self.map.lock().expect("cache poisoned");
            match map.get(&key) {
                Some(CacheEntry::Exact(value)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return *value;
                }
                Some(CacheEntry::AboveCutoff(seen)) if cutoff <= *seen => {
                    // The true value exceeds `seen >= cutoff`: anything above
                    // the cutoff is a faithful answer.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return f64::INFINITY;
                }
                _ => {}
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compute outside the lock: concurrent duplicate work is possible but
        // harmless (the evaluation is deterministic per signature).
        let value = compute(cutoff);
        let entry = if value <= cutoff {
            CacheEntry::Exact(value)
        } else {
            CacheEntry::AboveCutoff(cutoff)
        };
        let mut map = self.map.lock().expect("cache poisoned");
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                // Keep the most informative entry.
                match (slot.get(), &entry) {
                    (CacheEntry::Exact(_), _) => {}
                    (_, CacheEntry::Exact(_)) => {
                        slot.insert(entry);
                    }
                    (CacheEntry::AboveCutoff(old), CacheEntry::AboveCutoff(new)) => {
                        if new > old {
                            slot.insert(entry);
                        }
                    }
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(entry);
            }
        }
        value
    }
}

/// Cache tags: independent evaluation families sharing one [`EvalCache`].
pub mod tags {
    /// One-port latency of a candidate DAG (MINLATENCY plan search).
    pub const ONEPORT_LATENCY: u8 = 0;
    /// INORDER period of a candidate DAG (orchestrated MINPERIOD search).
    pub const INORDER_PERIOD: u8 = 1;
    /// OUTORDER period of a candidate DAG (orchestrated MINPERIOD search).
    pub const OUTORDER_PERIOD: u8 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incumbent_is_monotone() {
        let inc = Incumbent::new();
        assert!(inc.get().is_infinite());
        inc.offer(5.0);
        assert_eq!(inc.get(), 5.0);
        inc.offer(7.0);
        assert_eq!(inc.get(), 5.0);
        inc.offer(3.0);
        assert_eq!(inc.get(), 3.0);
        inc.offer(f64::NAN);
        assert_eq!(inc.get(), 3.0);
    }

    #[test]
    fn prune_threshold_adds_relative_slack() {
        assert!(prune_threshold(10.0) > 10.0);
        assert!(prune_threshold(10.0) < 10.0 + 1e-6);
        assert!(prune_threshold(f64::INFINITY).is_infinite());
        assert!(prune_threshold(0.0) > 0.0);
    }

    #[test]
    fn uniform_apps_share_isomorphic_graphs() {
        let app = Application::independent(&[(2.0, 0.5); 4]);
        let cache = EvalCache::new(&app);
        assert!(cache.perms.len() > 1);
        let g1 = ExecutionGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let g2 = ExecutionGraph::from_edges(4, &[(3, 2), (2, 0)]).unwrap();
        // Isomorphic chains share one exhaustive evaluation…
        let v1 = cache.get_or_compute(0, &g1, true, f64::INFINITY, |_| 42.0);
        let v2 = cache.get_or_compute(0, &g2, true, f64::INFINITY, |_| {
            panic!("second member of the class must hit the cache")
        });
        assert_eq!(v1, v2);
        // …but heuristic evaluations are shared by exact labelling only.
        let h1 = cache.get_or_compute(0, &g1, false, f64::INFINITY, |_| 1.0);
        let h2 = cache.get_or_compute(0, &g2, false, f64::INFINITY, |_| 2.0);
        assert_eq!(h1, 1.0);
        assert_eq!(h2, 2.0);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 3);
    }

    #[test]
    fn heterogeneous_apps_share_exact_graphs_only() {
        let app = Application::independent(&[(1.0, 0.5), (2.0, 0.9), (3.0, 1.1)]);
        let cache = EvalCache::new(&app);
        assert_eq!(cache.perms.len(), 1);
        let g1 = ExecutionGraph::from_edges(3, &[(0, 1)]).unwrap();
        let g2 = ExecutionGraph::from_edges(3, &[(1, 0)]).unwrap();
        let v1 = cache.get_or_compute(0, &g1, true, f64::INFINITY, |_| 1.0);
        let v2 = cache.get_or_compute(0, &g2, true, f64::INFINITY, |_| 2.0);
        assert_eq!((v1, v2), (1.0, 2.0));
        // The same labelled graph hits.
        let again = cache.get_or_compute(0, &g1, true, f64::INFINITY, |_| panic!("hit expected"));
        assert_eq!(again, 1.0);
    }

    #[test]
    fn truncated_entries_are_refined_on_demand() {
        let app = Application::independent(&[(1.0, 1.0); 3]);
        let cache = EvalCache::new(&app);
        let g = ExecutionGraph::from_edges(3, &[(0, 1)]).unwrap();
        // First query under a tight cutoff: the evaluator reports "above".
        let v = cache.get_or_compute(1, &g, true, 1.0, |c| {
            assert_eq!(c, 1.0);
            f64::INFINITY
        });
        assert!(v.is_infinite());
        // A query under an even tighter cutoff is answered from the memo.
        let v = cache.get_or_compute(1, &g, true, 0.5, |_| panic!("covered by the memo"));
        assert!(v.is_infinite());
        // A looser cutoff forces a recomputation and upgrades the entry.
        let v = cache.get_or_compute(1, &g, true, 10.0, |_| 4.0);
        assert_eq!(v, 4.0);
        let v = cache.get_or_compute(1, &g, true, 0.1, |_| panic!("exact entry stored"));
        assert_eq!(v, 4.0);
    }
}
