//! The unified solver entry point: one [`solve`] for every communication
//! model and objective.
//!
//! Historically each (model × objective) pair had its own entry point with
//! its own option struct and its own ad-hoc enumeration caps
//! (`MinPeriodOptions`, `MinLatencyOptions`, `OutOrderOptions`, bare
//! `exhaustive_limit` arguments, …).  This module replaces that surface with
//! three small types:
//!
//! * [`Problem`] — *what* to solve: an application, a communication model
//!   ([`CommModel`]), an [`Objective`] (MINPERIOD or MINLATENCY) and
//!   optionally a fixed execution graph (orchestration only) — when no graph
//!   is given the solver also searches the plan space;
//! * [`SearchBudget`] — *how hard* to try: one shared budget bounding every
//!   enumeration (ordering space, graph space, backtracking nodes), an
//!   optional wall-clock time limit, and the worker-thread fan-out.  This
//!   follows the bounded-search-space idea of Van Bemten et al. (Bounded
//!   Dijkstra, arXiv:1903.00436): algorithms take an explicit budget instead
//!   of scattering magic caps through the call tree;
//! * [`Solution`] — *what came back*: the objective value, the execution
//!   graph, a concrete schedule when the model's machinery produces one, and
//!   an `exhaustive` flag telling whether the value is optimal for the
//!   searched space or a heuristic upper bound.
//!
//! All exhaustive searches parallelise over [`SearchBudget::threads`] worker
//! threads and are **bit-identical to their serial runs** (see [`crate::par`]
//! for the reduction rule), so `threads` is purely a throughput knob.
//!
//! ```
//! use fsw_core::{Application, CommModel};
//! use fsw_sched::orchestrator::{solve, Objective, Problem, SearchBudget};
//!
//! // The Section 2.3 example: five identical services, free plan choice.
//! let app = Application::independent(&[(4.0, 1.0); 5]);
//! let solution = solve(
//!     &Problem::new(&app, CommModel::Overlap, Objective::MinPeriod),
//!     &SearchBudget::default(),
//! )
//! .unwrap();
//! assert!(solution.exhaustive);
//! assert!((solution.value - 4.0).abs() < 1e-9);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use fsw_core::{Application, CommModel, CoreResult, ExecutionGraph, OperationList, PlanMetrics};

use crate::engine::{EvalCache, SearchStrategy};
use crate::latency::{
    latency_lower_bound, multiport_proportional_latency, oneport_latency_search_exec,
};
use crate::minlatency::{minimize_latency_engine_seeded, MinLatencyOptions};
use crate::minperiod::{minimize_period_engine_seeded, MinPeriodOptions, PeriodEvaluation};
use crate::oneport::{inorder_oplist_for_orderings, oneport_period_search_exec, OnePortStyle};
use crate::orderings::CommOrderings;
use crate::outorder::{outorder_period_search_exec, OutOrderOptions};
use crate::overlap::overlap_period_oplist;
use crate::par::Exec;

/// The objective a [`Problem`] optimises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimise the period (inverse throughput) of the steady-state schedule.
    MinPeriod,
    /// Minimise the latency (response time) of one data set.
    MinLatency,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::MinPeriod => write!(f, "MINPERIOD"),
            Objective::MinLatency => write!(f, "MINLATENCY"),
        }
    }
}

/// A solver instance: what to optimise, for which application, under which
/// communication model — and optionally on which fixed execution graph.
#[derive(Clone, Copy, Debug)]
pub struct Problem<'a> {
    /// The application (services, selectivities, precedence constraints).
    pub app: &'a Application,
    /// The communication model the schedule must respect.
    pub model: CommModel,
    /// The quantity to minimise.
    pub objective: Objective,
    /// `Some(graph)` restricts the solve to *orchestration*: find the best
    /// schedule for this execution graph.  `None` also searches the plan
    /// space (forests, plus all DAGs on tiny instances).
    pub graph: Option<&'a ExecutionGraph>,
}

impl<'a> Problem<'a> {
    /// A plan-optimisation problem: the solver chooses the execution graph.
    pub fn new(app: &'a Application, model: CommModel, objective: Objective) -> Self {
        Problem {
            app,
            model,
            objective,
            graph: None,
        }
    }

    /// An orchestration problem on a fixed execution graph.
    pub fn on_graph(
        app: &'a Application,
        model: CommModel,
        objective: Objective,
        graph: &'a ExecutionGraph,
    ) -> Self {
        Problem {
            app,
            model,
            objective,
            graph: Some(graph),
        }
    }
}

/// One shared budget for every enumeration a solve may perform.
///
/// The default reproduces the effort of the legacy per-model entry points
/// (`MinPeriodOptions::default()`, `MinLatencyOptions::default()`,
/// `OutOrderOptions::default()`), so `solve(&problem, &SearchBudget::default())`
/// returns bit-identical values to the code it replaces.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchBudget {
    /// Bound on the communication-ordering space enumerated exhaustively;
    /// beyond it the ordering searches fall back to hill climbing.
    pub max_orderings: usize,
    /// Bound on the execution-graph space enumerated exhaustively; beyond
    /// it the plan search falls back to seeded local search.  The space it
    /// measures depends on the walk the search resolves to: parent
    /// functions on the raw labelled space, coloured orbit classes on the
    /// materialised depth-first canonical path, and **shapes** (A000081
    /// forest-isomorphism classes — 32 973 at `n = 13`) on the lazy
    /// streamed path, which never materialises the coloured space and so
    /// stays exhaustive where the coloured count dwarfs the cap.
    pub max_graphs: usize,
    /// Optional wall-clock limit.  When it expires, the graph and ordering
    /// enumerations stop and the best candidate found so far is returned with
    /// `exhaustive == false`; the OUTORDER cyclic backtracker and its
    /// bisection refinement honour it too (on top of
    /// [`SearchBudget::outorder_node_budget`]).
    pub time_limit: Option<Duration>,
    /// Worker threads for the exhaustive searches; `0` = available
    /// parallelism, `1` = serial.  Results are identical for every value.
    pub threads: usize,
    /// Passes of the hill-climbing local search used beyond `max_graphs`.
    pub local_search_passes: usize,
    /// How candidate graphs are valued during a MINPERIOD plan search
    /// (cheap lower bound vs full orchestration of every candidate).
    pub period_evaluation: PeriodEvaluation,
    /// Backtracking-node budget of the OUTORDER cyclic scheduler.
    pub outorder_node_budget: usize,
    /// Bisection steps of the OUTORDER period refinement.
    pub outorder_refinement_steps: usize,
    /// Instances up to this size also search all DAGs for MINLATENCY (the
    /// latency optimum may require a join, unlike the period).  Hard-capped
    /// at [`crate::minperiod::DAG_ENUMERATION_HARD_MAX_N`] by the engine.
    pub dag_enumeration_max_n: usize,
    /// How the exhaustive plan searches walk their candidate space
    /// (depth-first branch-and-bound vs best-first over the partial bound).
    /// Both return bit-identical solutions; see
    /// [`SearchStrategy`](crate::engine::SearchStrategy).
    pub search_strategy: SearchStrategy,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_orderings: 5_000,
            max_graphs: 2_000_000,
            time_limit: None,
            threads: 1,
            local_search_passes: 32,
            period_evaluation: PeriodEvaluation::LowerBound,
            outorder_node_budget: 200_000,
            outorder_refinement_steps: 8,
            dag_enumeration_max_n: 5,
            search_strategy: SearchStrategy::Auto,
        }
    }
}

impl SearchBudget {
    /// A small budget for interactive use: tighter enumeration caps.
    pub fn quick() -> Self {
        SearchBudget {
            max_orderings: 500,
            max_graphs: 50_000,
            ..SearchBudget::default()
        }
    }

    /// Caps both enumerations explicitly.
    pub fn exhaustive_up_to(max_orderings: usize, max_graphs: usize) -> Self {
        SearchBudget {
            max_orderings,
            max_graphs,
            ..SearchBudget::default()
        }
    }

    /// Returns the budget with a wall-clock time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Returns the budget with an explicit worker-thread fan-out
    /// (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the budget with the given MINPERIOD candidate evaluation.
    pub fn with_period_evaluation(mut self, evaluation: PeriodEvaluation) -> Self {
        self.period_evaluation = evaluation;
        self
    }

    /// Returns the budget with the given search strategy (bit-identical
    /// solutions either way; a pure exploration-order/performance knob).
    pub fn with_search_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.search_strategy = strategy;
        self
    }

    /// Materialises the execution strategy (resolves the deadline now).
    fn exec(&self) -> Exec {
        Exec {
            threads: self.threads,
            deadline: self.time_limit.map(|d| Instant::now() + d),
            split_levels: 0, // auto: two-level (n²) tasks when fanning out
        }
    }

    fn minperiod_options(&self, model: CommModel) -> MinPeriodOptions {
        MinPeriodOptions {
            model,
            evaluation: self.period_evaluation,
            forest_enumeration_cap: self.max_graphs,
            local_search_passes: self.local_search_passes,
            strategy: self.search_strategy,
        }
    }

    fn minlatency_options(&self, model: CommModel) -> MinLatencyOptions {
        MinLatencyOptions {
            model,
            ordering_exhaustive_limit: self.max_orderings,
            forest_enumeration_cap: self.max_graphs,
            local_search_passes: self.local_search_passes,
            dag_enumeration_max_n: self.dag_enumeration_max_n,
            strategy: self.search_strategy,
        }
    }

    fn outorder_options(&self) -> OutOrderOptions {
        OutOrderOptions {
            node_budget: self.outorder_node_budget,
            refinement_steps: self.outorder_refinement_steps,
            inorder_exhaustive_limit: self.max_orderings,
            deadline: None, // supplied per solve through `Exec`
        }
    }
}

/// Result of a [`solve`] call.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The objective that was optimised.
    pub objective: Objective,
    /// The communication model the solution respects.
    pub model: CommModel,
    /// The objective value (period or latency).  For a plan search this is
    /// the value of the search's evaluation (see
    /// [`SearchBudget::period_evaluation`]); for orchestration on a fixed
    /// graph it is the achieved schedule value.
    pub value: f64,
    /// The model's structural lower bound for the returned graph
    /// (`max_k Cexec(k)` / `max_k (Cin+Ccomp+Cout)` for periods, the critical
    /// path for latencies).
    pub lower_bound: f64,
    /// The execution graph of the solution (the fixed one, or the best found).
    pub graph: ExecutionGraph,
    /// A concrete cyclic schedule realising the solve, when the model's
    /// orchestration machinery produces one.  Its `period()` / `latency()`
    /// may sit above [`Solution::value`]: the plan search may have valued
    /// candidates by a lower bound, and the OUTORDER plan search values
    /// candidates on their *canonical orbit member*
    /// (`fsw_core::canonical_classed_member`) — a period the winner
    /// provably admits (relabel the member's schedule back), which the
    /// budget-capped backtracker re-run on the raw winner graph here does
    /// not always re-find.
    pub oplist: Option<OperationList>,
    /// The communication orderings behind [`Solution::oplist`], for the
    /// one-port models.
    pub orderings: Option<CommOrderings>,
    /// `true` when the value is optimal for the searched space (every
    /// enumeration ran to completion within the budget).  For OUTORDER this
    /// reflects the budgeted backtracker reaching the structural lower bound.
    pub exhaustive: bool,
}

/// Solves `problem` within `budget` — the single entry point covering all
/// three communication models for both MINPERIOD and MINLATENCY, with or
/// without a fixed execution graph.
pub fn solve(problem: &Problem<'_>, budget: &SearchBudget) -> CoreResult<Solution> {
    solve_with_cache(problem, budget, &EvalCache::new(problem.app))
}

/// Solves a whole model × objective sweep over one application, sharing a
/// single candidate-evaluation cache ([`crate::engine::EvalCache`]) across
/// the requests: plan metrics signatures are computed once per application
/// and the expensive ordering searches memoised per canonical graph class
/// are reused by every solve of the batch (the one-port latency of a
/// candidate DAG, for instance, is model-independent).  Results are
/// bit-identical to calling [`solve`] once per request; requests are solved
/// in order and each gets its own [`SearchBudget::time_limit`] window.
pub fn solve_all(
    app: &Application,
    requests: &[(CommModel, Objective)],
    budget: &SearchBudget,
) -> CoreResult<Vec<Solution>> {
    let cache = EvalCache::new(app);
    requests
        .iter()
        .map(|&(model, objective)| {
            solve_with_cache(&Problem::new(app, model, objective), budget, &cache)
        })
        .collect()
}

/// [`solve`] with a caller-provided evaluation cache: the building block of
/// every batch path (`solve_all` shares one cache across a model ×
/// objective sweep; the serving layer `fsw_serve` shares one per
/// application fingerprint across a batch's cold solves, and its online
/// sessions retain one across re-plans of an unchanged instance).  Results
/// are bit-identical to [`solve`].
pub fn solve_with_cache(
    problem: &Problem<'_>,
    budget: &SearchBudget,
    cache: &EvalCache,
) -> CoreResult<Solution> {
    solve_warm(problem, budget, cache, None).map(|(solution, _)| solution)
}

/// Telemetry of one plan solve, for the serving layer and its tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Number of candidate execution graphs fully evaluated by the plan
    /// search (pruned candidates are not counted).  `0` for fixed-graph
    /// orchestration problems.
    pub evaluated: usize,
    /// Telemetry of the plan search, attached **uniformly across every
    /// `SearchStrategy` branch**: streamed canonical walks report
    /// shape/orbit counts, expansions, bounded peak residency and
    /// certificate discards; materialised depth-first walks report the
    /// representative list (fully resident) and its coloured-orbit total;
    /// raw labelled walks report the labelled space size as `orbits`
    /// (`shapes` stays 0 — no shape plan exists) with the frontier peak
    /// (best-first) or worker count (depth-first) as residency.  `None`
    /// only for fixed-graph orchestration problems and the non-enumerative
    /// fallbacks (hill climbing, DAG phase), where no plan space is walked.
    pub stream: Option<crate::engine::frontier::StreamStats>,
    /// The warm-start upper bound the search's incumbent was seeded with
    /// (the previous plan's value on the current instance), when one was
    /// supplied and feasible.
    pub warm_value: Option<f64>,
}

/// [`solve_with_cache`] with an optional **warm start**: `warm` is a
/// previously optimal execution graph (e.g. the tenant's plan before a
/// service arrived, adapted to the current service set).  Its value on the
/// *current* instance is a feasible upper bound on the optimum, so the plan
/// search's incumbent is seeded with it and the enumeration prunes the
/// hopeless region from the first candidate on — the online re-planning
/// entry point of the serving layer.
///
/// The returned solution is **bit-identical** to a cold
/// [`solve_with_cache`]: seeding never prunes a candidate that ties the
/// optimum (strict clearance only), so the first-minimum winner and its
/// value are unchanged; only [`SolveStats::evaluated`] shrinks.  An
/// infeasible or wrong-sized `warm` graph is ignored.
pub fn solve_warm(
    problem: &Problem<'_>,
    budget: &SearchBudget,
    cache: &EvalCache,
    warm: Option<&ExecutionGraph>,
) -> CoreResult<(Solution, SolveStats)> {
    solve_warm_observed(problem, budget, cache, warm, None)
}

/// [`solve_warm`] with optional observability: when `metrics` is supplied
/// the solve records tracing spans for its phases (`solve.search` — the
/// plan search, `solve.orchestrate` — scheduling the winning graph, plus
/// the engine-stage spans `engine.shape_stream` / `engine.expand` /
/// `engine.certify` inside the streamed walk) and publishes the plan
/// search's [`StreamStats`] into `engine.stream.*` instruments.  The
/// solve itself is untouched — instrumented and plain runs return
/// bit-identical solutions and stats.
pub fn solve_warm_observed(
    problem: &Problem<'_>,
    budget: &SearchBudget,
    cache: &EvalCache,
    warm: Option<&ExecutionGraph>,
    metrics: Option<&std::sync::Arc<fsw_obs::MetricsRegistry>>,
) -> CoreResult<(Solution, SolveStats)> {
    // The cache key carries the weight-class *partition signature*, not the
    // weight bits themselves (two different applications with the same
    // partition pattern collide), so a cache built for another application
    // would silently serve its memoised evaluations here.  Enforce the
    // pairing the private callers used to guarantee by construction.
    if cache.app() != problem.app {
        return Err(fsw_core::CoreError::Unsupported {
            reason: "evaluation cache was built for a different application",
        });
    }
    let exec = budget.exec();
    let evals = AtomicUsize::new(0);
    let probe = match metrics {
        Some(registry) => crate::engine::frontier::StreamProbe::with_metrics(registry.clone()),
        None => crate::engine::frontier::StreamProbe::default(),
    };
    let search_span = metrics.map(|r| r.span("solve.search"));
    let orchestrate_span = metrics.map(|r| r.span("solve.orchestrate"));
    let orchestrated = |f: &dyn Fn() -> CoreResult<Solution>| -> CoreResult<Solution> {
        let _span = orchestrate_span.as_ref().map(|t| t.start());
        f()
    };
    let mut stats = SolveStats::default();
    let solution = match (problem.graph, problem.objective) {
        (Some(graph), Objective::MinPeriod) => {
            orchestrated(&|| orchestrate_period(problem.app, problem.model, graph, budget, exec))?
        }
        (Some(graph), Objective::MinLatency) => {
            orchestrated(&|| orchestrate_latency(problem.app, problem.model, graph, budget, exec))?
        }
        (None, Objective::MinPeriod) => {
            let options = budget.minperiod_options(problem.model);
            let seed = warm_seed(problem, budget, warm);
            stats.warm_value = seed;
            let searched = search_span.as_ref().map(|t| t.start());
            let result = minimize_period_engine_seeded(
                problem.app,
                &options,
                exec,
                cache,
                seed.unwrap_or(f64::INFINITY),
                &evals,
                Some(&probe),
            )?;
            drop(searched);
            let mut solution = orchestrated(&|| {
                orchestrate_period(problem.app, problem.model, &result.graph, budget, exec)
            })?;
            // Report the search's own value (bit-identical to the legacy
            // `minimize_period`); the orchestrated schedule stays available
            // through `oplist`.
            solution.value = result.period;
            solution.exhaustive = result.exhaustive && solution.exhaustive;
            solution
        }
        (None, Objective::MinLatency) => {
            let options = budget.minlatency_options(problem.model);
            let seed = warm_seed(problem, budget, warm);
            stats.warm_value = seed;
            let searched = search_span.as_ref().map(|t| t.start());
            let result = minimize_latency_engine_seeded(
                problem.app,
                &options,
                exec,
                cache,
                seed.unwrap_or(f64::INFINITY),
                &evals,
                Some(&probe),
            )?;
            drop(searched);
            let mut solution = orchestrated(&|| {
                orchestrate_latency(problem.app, problem.model, &result.graph, budget, exec)
            })?;
            solution.value = result.latency;
            solution.exhaustive = result.exhaustive && solution.exhaustive;
            solution
        }
    };
    stats.evaluated = evals.load(Ordering::Relaxed);
    stats.stream = probe.snapshot();
    Ok((solution, stats))
}

/// The warm-start seed: the warm graph's value under the problem's own
/// candidate evaluation, when the graph fits the instance.  Not counted in
/// [`SolveStats::evaluated`] (it is a single re-pricing outside the search;
/// `warm_value` records that it happened), so `evaluated` compares
/// like-for-like against a cold search and a warm solve can never report
/// more evaluations than the cold solve it shadows.
fn warm_seed(
    problem: &Problem<'_>,
    budget: &SearchBudget,
    warm: Option<&ExecutionGraph>,
) -> Option<f64> {
    let graph = warm?;
    if graph.n() != problem.app.n() || graph.respects(problem.app).is_err() {
        return None;
    }
    // The orchestrated OUTORDER plan search values every orbit at its
    // *canonical member's* backtracker value (see
    // `minperiod::evaluate_period_bounded`), while `evaluate_period` below
    // prices the warm graph on its raw labelling — the label-dependent
    // backtracker does not guarantee the raw value upper-bounds the
    // search's own measure, so refuse to seed that path.
    if problem.objective == Objective::MinPeriod
        && problem.model == CommModel::OutOrder
        && matches!(
            budget.period_evaluation,
            PeriodEvaluation::Orchestrated { .. }
        )
    {
        return None;
    }
    // Only **forest** warm graphs may seed.  A seed must never undercut a
    // candidate the search would otherwise have kept: the unconstrained
    // MINPERIOD plan space is forests (Proposition 4 makes any forest value
    // a safe upper bound), and MINLATENCY seeds its *forest phase* with
    // this value — a DAG's latency can undercut every forest and starve
    // that phase, flipping the near-tie arbitration with the DAG phase
    // (cold keeps the forest inside its 1e-12 acceptance band; a
    // DAG-seeded warm solve would not), so non-forest graphs are ignored
    // even where the DAG space is searched.
    if !graph.is_forest() {
        return None;
    }
    let value = match problem.objective {
        Objective::MinPeriod => crate::minperiod::evaluate_period(
            problem.app,
            graph,
            problem.model,
            budget.period_evaluation,
        )
        .ok()?,
        Objective::MinLatency => crate::minlatency::evaluate_latency(
            problem.app,
            graph,
            &budget.minlatency_options(problem.model),
        )
        .ok()?,
    };
    value.is_finite().then_some(value)
}

/// Best schedule for a fixed graph, period objective.
fn orchestrate_period(
    app: &Application,
    model: CommModel,
    graph: &ExecutionGraph,
    budget: &SearchBudget,
    exec: Exec,
) -> CoreResult<Solution> {
    let lower_bound = PlanMetrics::compute(app, graph)?.period_lower_bound(model);
    let (value, oplist, orderings, exhaustive) = match model {
        CommModel::Overlap => {
            // Theorem 1: the lower bound is achieved by an explicit schedule.
            let oplist = overlap_period_oplist(app, graph)?;
            (oplist.period(), Some(oplist), None, true)
        }
        CommModel::InOrder => {
            let search = oneport_period_search_exec(
                app,
                graph,
                OnePortStyle::InOrder,
                budget.max_orderings,
                exec,
            )?;
            let oplist = inorder_oplist_for_orderings(app, graph, &search.orderings)?;
            (
                search.period,
                Some(oplist),
                Some(search.orderings),
                search.exhaustive,
            )
        }
        CommModel::OutOrder => {
            let search = outorder_period_search_exec(app, graph, &budget.outorder_options(), exec)?;
            (search.period, Some(search.oplist), None, search.optimal)
        }
    };
    Ok(Solution {
        objective: Objective::MinPeriod,
        model,
        value,
        lower_bound,
        graph: graph.clone(),
        oplist,
        orderings,
        exhaustive,
    })
}

/// Best schedule for a fixed graph, latency objective.
fn orchestrate_latency(
    app: &Application,
    model: CommModel,
    graph: &ExecutionGraph,
    budget: &SearchBudget,
    exec: Exec,
) -> CoreResult<Solution> {
    let lower_bound = latency_lower_bound(app, graph)?;
    let oneport = oneport_latency_search_exec(app, graph, budget.max_orderings, exec)?;
    let (value, oplist, orderings, exhaustive) = if model == CommModel::Overlap {
        // Bounded multi-port bandwidth sharing can strictly beat every
        // one-port schedule (counter-example B.2).
        let (fluid, fluid_oplist) = multiport_proportional_latency(app, graph)?;
        if fluid <= oneport.latency {
            (fluid, Some(fluid_oplist), None, oneport.exhaustive)
        } else {
            (
                oneport.latency,
                Some(oneport.oplist),
                Some(oneport.orderings),
                oneport.exhaustive,
            )
        }
    } else {
        (
            oneport.latency,
            Some(oneport.oplist),
            Some(oneport.orderings),
            oneport.exhaustive,
        )
    };
    Ok(Solution {
        objective: Objective::MinLatency,
        model,
        value,
        lower_bound,
        graph: graph.clone(),
        oplist,
        orderings,
        exhaustive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::oneport_latency_search;
    use crate::minlatency::minimize_latency;
    use crate::minperiod::minimize_period;
    use crate::oneport::oneport_period_search;
    use crate::outorder::outorder_period_search;
    use fsw_core::validate_oplist;

    fn section23() -> (Application, ExecutionGraph) {
        let app = Application::independent(&[(4.0, 1.0); 5]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
        (app, g)
    }

    #[test]
    fn fixed_graph_covers_all_models_and_objectives() {
        let (app, g) = section23();
        let budget = SearchBudget::default();
        let expectations = [
            (CommModel::Overlap, Objective::MinPeriod, 4.0),
            (CommModel::InOrder, Objective::MinPeriod, 23.0 / 3.0),
            (CommModel::OutOrder, Objective::MinPeriod, 7.0),
            (CommModel::Overlap, Objective::MinLatency, 21.0),
            (CommModel::InOrder, Objective::MinLatency, 21.0),
            (CommModel::OutOrder, Objective::MinLatency, 21.0),
        ];
        for (model, objective, expected) in expectations {
            let solution = solve(&Problem::on_graph(&app, model, objective, &g), &budget).unwrap();
            assert!(
                (solution.value - expected).abs() < 1e-9,
                "{model} {objective}: expected {expected}, got {}",
                solution.value
            );
            assert!(solution.exhaustive, "{model} {objective}");
            assert!(solution.value >= solution.lower_bound - 1e-9);
            let oplist = solution.oplist.expect("orchestration produces a schedule");
            validate_oplist(&app, &g, &oplist, model).unwrap_or_else(|v| panic!("{model}: {v:?}"));
        }
    }

    #[test]
    fn fixed_graph_matches_legacy_entry_points() {
        let (app, g) = section23();
        let budget = SearchBudget::default();
        let inorder = solve(
            &Problem::on_graph(&app, CommModel::InOrder, Objective::MinPeriod, &g),
            &budget,
        )
        .unwrap();
        let legacy = oneport_period_search(&app, &g, OnePortStyle::InOrder, 5_000).unwrap();
        assert_eq!(inorder.value, legacy.period);
        assert_eq!(inorder.orderings.as_ref(), Some(&legacy.orderings));

        let outorder = solve(
            &Problem::on_graph(&app, CommModel::OutOrder, Objective::MinPeriod, &g),
            &budget,
        )
        .unwrap();
        let legacy = outorder_period_search(&app, &g, &OutOrderOptions::default()).unwrap();
        assert_eq!(outorder.value, legacy.period);

        let latency = solve(
            &Problem::on_graph(&app, CommModel::InOrder, Objective::MinLatency, &g),
            &budget,
        )
        .unwrap();
        let legacy = oneport_latency_search(&app, &g, 5_000).unwrap();
        assert_eq!(latency.value, legacy.latency);
    }

    #[test]
    fn plan_search_matches_legacy_solvers() {
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8), (1.0, 0.6)]);
        let budget = SearchBudget::default();
        for model in CommModel::ALL {
            let solution =
                solve(&Problem::new(&app, model, Objective::MinPeriod), &budget).unwrap();
            let legacy = minimize_period(&app, &MinPeriodOptions::for_model(model)).unwrap();
            assert_eq!(solution.value, legacy.period, "{model}");
            assert_eq!(solution.graph.edge_count(), legacy.graph.edge_count());

            let solution =
                solve(&Problem::new(&app, model, Objective::MinLatency), &budget).unwrap();
            let legacy = minimize_latency(&app, &MinLatencyOptions::for_model(model)).unwrap();
            assert_eq!(solution.value, legacy.latency, "{model}");
        }
    }

    #[test]
    fn parallel_solve_is_bit_identical_to_serial() {
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8), (1.0, 0.6)]);
        for model in CommModel::ALL {
            for objective in [Objective::MinPeriod, Objective::MinLatency] {
                let serial = solve(
                    &Problem::new(&app, model, objective),
                    &SearchBudget::default().with_threads(1),
                )
                .unwrap();
                let parallel = solve(
                    &Problem::new(&app, model, objective),
                    &SearchBudget::default().with_threads(4),
                )
                .unwrap();
                assert_eq!(serial.value, parallel.value, "{model} {objective}");
                assert_eq!(
                    serial.graph.edge_count(),
                    parallel.graph.edge_count(),
                    "{model} {objective}"
                );
                assert_eq!(serial.exhaustive, parallel.exhaustive);
            }
        }
    }

    #[test]
    fn time_limit_degrades_gracefully() {
        let (app, g) = section23();
        let budget = SearchBudget::default().with_time_limit(Duration::ZERO);
        let solution = solve(
            &Problem::on_graph(&app, CommModel::InOrder, Objective::MinPeriod, &g),
            &budget,
        )
        .unwrap();
        // With an expired deadline the search still returns a feasible value…
        assert!(solution.value.is_finite());
        assert!(solution.value >= 23.0 / 3.0 - 1e-9);
        // …but cannot claim optimality.
        assert!(!solution.exhaustive);
    }

    #[test]
    fn constrained_apps_route_through_dag_search() {
        let mut app = Application::independent(&[(1.0, 0.5), (2.0, 0.5), (3.0, 1.0)]);
        app.add_constraint(2, 0).unwrap();
        let budget = SearchBudget::default();
        let solution = solve(
            &Problem::new(&app, CommModel::Overlap, Objective::MinPeriod),
            &budget,
        )
        .unwrap();
        solution.graph.respects(&app).unwrap();
        assert!(solution.graph.ancestors(0).contains(&2));
    }

    #[test]
    fn warm_solves_match_cold_solves_and_reject_out_of_space_seeds() {
        let app = Application::independent(&[
            (2.0, 0.5),
            (1.0, 2.0),
            (3.0, 0.8),
            (1.0, 0.6),
            (2.5, 0.7),
            (0.5, 0.9),
        ]);
        let budget = SearchBudget::default(); // dag_enumeration_max_n = 5 < 6
        let cache = EvalCache::new(&app);
        for objective in [Objective::MinPeriod, Objective::MinLatency] {
            let problem = Problem::new(&app, CommModel::Overlap, objective);
            let (cold, cold_stats) = solve_warm(&problem, &budget, &cache, None).unwrap();
            assert!(cold_stats.warm_value.is_none());
            // A feasible forest warm graph: bit-identical result, no more
            // evaluations than cold.
            let (warm, warm_stats) =
                solve_warm(&problem, &budget, &cache, Some(&cold.graph)).unwrap();
            assert_eq!(warm.value.to_bits(), cold.value.to_bits(), "{objective}");
            assert_eq!(warm.exhaustive, cold.exhaustive);
            assert_eq!(warm_stats.warm_value, Some(cold.value));
            assert!(warm_stats.evaluated <= cold_stats.evaluated);
            // A non-forest warm graph sits outside the searched space at
            // this size (forests only): its value must be ignored, not used
            // as a seed that could undercut every searched candidate.
            let dag = ExecutionGraph::from_edges(6, &[(0, 2), (1, 2)]).unwrap();
            let (with_dag, dag_stats) = solve_warm(&problem, &budget, &cache, Some(&dag)).unwrap();
            assert_eq!(
                with_dag.value.to_bits(),
                cold.value.to_bits(),
                "{objective}"
            );
            assert_eq!(with_dag.exhaustive, cold.exhaustive);
            assert!(dag_stats.warm_value.is_none(), "{objective}: seed refused");
        }
    }
}
