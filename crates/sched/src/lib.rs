//! # fsw-sched — scheduling algorithms for filtering streaming workflows
//!
//! This crate implements the algorithmic content of *"Mapping Filtering
//! Streaming Applications With Communication Costs"* (Agrawal, Benoit,
//! Dufossé, Robert, SPAA 2009) on top of the model crate `fsw-core`:
//!
//! | paper result | module |
//! |--------------|--------|
//! | Theorem 1 / Prop. 1 — polynomial period orchestration for `OVERLAP` | [`overlap`] |
//! | Props. 2–3 — one-port period orchestration (NP-hard): event-graph analysis of fixed orderings, ordering search | [`oneport`] |
//! | `OUTORDER` orchestration via cyclic (modulo) scheduling | [`outorder`] |
//! | Theorem 3 — latency orchestration, one-port and bounded multi-port | [`latency`] |
//! | Proposition 12 / Algorithm 1 — tree latency | [`tree`] |
//! | Propositions 8 & 16 — chain-restricted MINPERIOD / MINLATENCY | [`chain`] |
//! | Theorem 2 — MINPERIOD solvers (exhaustive forests, DAGs, heuristics) | [`minperiod`] |
//! | Theorem 4 — MINLATENCY solvers | [`minlatency`] |
//! | Srivastava et al. no-communication baseline | [`baseline`] |
//! | prune-and-memoise search engine (incumbents, canonical ordering cache, symmetry-reduced enumeration) | [`engine`] |
//!
//! ```
//! use fsw_core::{Application, CommModel, ExecutionGraph};
//! use fsw_sched::overlap::overlap_period_oplist;
//! use fsw_sched::latency::oneport_latency_search;
//!
//! // The worked example of Section 2.3 of the paper.
//! let app = Application::independent(&[(4.0, 1.0); 5]);
//! let graph = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
//!
//! let overlap = overlap_period_oplist(&app, &graph).unwrap();
//! assert_eq!(overlap.period(), 4.0);
//!
//! let latency = oneport_latency_search(&app, &graph, 1_000).unwrap();
//! assert_eq!(latency.latency, 21.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod chain;
pub mod engine;
pub mod latency;
pub mod minlatency;
pub mod minperiod;
pub mod oneport;
pub mod orchestrator;
pub mod orderings;
pub mod outorder;
pub mod overlap;
pub mod par;
pub mod tree;

pub use chain::{chain_latency, chain_minlatency_order, chain_minperiod_order, chain_period};
pub use engine::{
    CanonicalRep, CanonicalSpace, EvalCache, ForestCursor, Incumbent, PartialPrune, SearchStrategy,
    Symmetry,
};
pub use latency::{
    latency_lower_bound, multiport_latency, multiport_proportional_latency,
    oneport_latency_for_orderings, oneport_latency_search, oneport_latency_search_bounded,
    oneport_latency_search_exec, LatencyEvaluator, LatencySearchResult,
};
pub use minlatency::{
    minimize_latency, minimize_latency_exec, MinLatencyOptions, MinLatencyResult,
};
pub use minperiod::{
    minimize_period, minimize_period_exec, MinPeriodOptions, MinPeriodResult, PeriodEvaluation,
    SearchOutcome,
};
pub use oneport::{
    inorder_oplist_for_orderings, inorder_period_for_orderings,
    oneport_overlap_period_for_orderings, oneport_period_lower_bound, oneport_period_search,
    oneport_period_search_bounded, oneport_period_search_exec, OnePortStyle, OrderingSearchResult,
};
pub use orchestrator::{solve, solve_all, Objective, Problem, SearchBudget, Solution};
pub use orderings::{CommOrderings, OrderingSpace};
pub use outorder::{
    outorder_period_lower_bound, outorder_period_search, outorder_period_search_bounded,
    outorder_period_search_exec, outorder_schedule_at, OutOrderOptions, OutOrderResult,
};
pub use overlap::{overlap_period_lower_bound, overlap_period_oplist};
pub use par::Exec;
pub use tree::{tree_latency, tree_latency_orderings};
