//! Period orchestration for one-port communication models.
//!
//! Once the communication orderings of every server are fixed, the steady
//! state of a one-port cyclic schedule is a *timed event graph*:
//!
//! * under `INORDER`, all the operations of a server (receptions, computation,
//!   emissions) form a single cycle carrying one token — the server fully
//!   processes a data set before touching the next one;
//! * under the *one-port with overlap* variant used by the counter-examples of
//!   Section 3 (one-port communications, but computation and communication may
//!   overlap), each server has three independent unary resources — its
//!   incoming port, its outgoing port and its CPU — each forming its own
//!   single-token cycle, while per-data-set precedence arcs link them.
//!
//! The period achievable with a given ordering is then the maximum cycle ratio
//! of the event graph (`fsw-eventgraph`), and orchestration reduces to
//! searching over orderings — which Theorem 1 shows is NP-hard, hence the
//! exhaustive search is capped and complemented by heuristics.

use std::collections::BTreeMap;

use fsw_core::{
    Application, CommModel, CoreError, CoreResult, EdgeRef, ExecutionGraph, Interval,
    OperationList, PlanMetrics,
};
use fsw_eventgraph::TimedEventGraph;

use crate::engine::prune_threshold;
use crate::orderings::{CommOrderings, OrderingSpace};
use crate::par::{fold_min, par_chunks, Exec};

/// Which serialisation discipline the event graph should encode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OnePortStyle {
    /// The paper's `INORDER` model: the whole server is a single serial resource
    /// and data sets are processed strictly in order.
    InOrder,
    /// One-port communications with computation/communication overlap: the
    /// incoming port, the outgoing port and the CPU are three separate serial
    /// resources (used by the Section 3 counter-examples).
    OverlapPorts,
}

/// Mapping between plan operations and event-graph transitions.
struct TransitionMap {
    comm: BTreeMap<EdgeRef, usize>,
    calc: Vec<usize>,
}

/// Builds the timed event graph encoding a one-port cyclic schedule with the
/// given communication orderings.
fn build_event_graph(
    app: &Application,
    graph: &ExecutionGraph,
    ords: &CommOrderings,
    style: OnePortStyle,
) -> CoreResult<(TimedEventGraph, TransitionMap)> {
    if !ords.is_consistent_with(graph) {
        return Err(CoreError::SizeMismatch {
            expected: graph.n(),
            found: ords.n(),
        });
    }
    let metrics = PlanMetrics::compute(app, graph)?;
    build_event_graph_with(app, graph, &metrics, ords, style)
}

/// [`build_event_graph`] with pre-computed plan metrics and no consistency
/// check — the hot path of the exhaustive ordering search, whose candidates
/// are consistent by construction.
fn build_event_graph_with(
    app: &Application,
    graph: &ExecutionGraph,
    metrics: &PlanMetrics,
    ords: &CommOrderings,
    style: OnePortStyle,
) -> CoreResult<(TimedEventGraph, TransitionMap)> {
    let mut eg = TimedEventGraph::new();
    let mut map = TransitionMap {
        comm: BTreeMap::new(),
        calc: vec![usize::MAX; graph.n()],
    };
    for edge in fsw_core::plan_edges(graph) {
        let t = eg.add_transition(metrics.edge_volume(app, edge));
        map.comm.insert(edge, t);
    }
    for k in 0..graph.n() {
        map.calc[k] = eg.add_transition(metrics.c_comp(k));
    }

    let arc = |eg: &mut TimedEventGraph, from: usize, to: usize, tokens: u32| {
        eg.add_arc(from, to, tokens)
            .expect("transitions created above");
    };

    for k in 0..graph.n() {
        let ins: Vec<usize> = ords.incoming[k].iter().map(|e| map.comm[e]).collect();
        let outs: Vec<usize> = ords.outgoing[k].iter().map(|e| map.comm[e]).collect();
        let calc = map.calc[k];
        match style {
            OnePortStyle::InOrder => {
                // One cycle: in_1 .. in_p, calc, out_1 .. out_q, back to in_1.
                let mut seq = ins.clone();
                seq.push(calc);
                seq.extend(outs.iter().copied());
                for w in seq.windows(2) {
                    arc(&mut eg, w[0], w[1], 0);
                }
                let first = *seq.first().expect("sequence contains at least calc");
                let last = *seq.last().expect("sequence contains at least calc");
                arc(&mut eg, last, first, 1);
            }
            OnePortStyle::OverlapPorts => {
                // Incoming-port cycle.
                if !ins.is_empty() {
                    for w in ins.windows(2) {
                        arc(&mut eg, w[0], w[1], 0);
                    }
                    arc(&mut eg, *ins.last().unwrap(), ins[0], 1);
                }
                // Outgoing-port cycle.
                if !outs.is_empty() {
                    for w in outs.windows(2) {
                        arc(&mut eg, w[0], w[1], 0);
                    }
                    arc(&mut eg, *outs.last().unwrap(), outs[0], 1);
                }
                // CPU cycle.
                arc(&mut eg, calc, calc, 1);
                // Per-data-set precedence: receive everything, compute, send.
                for &i in &ins {
                    arc(&mut eg, i, calc, 0);
                }
                for &o in &outs {
                    arc(&mut eg, calc, o, 0);
                }
            }
        }
    }
    Ok((eg, map))
}

/// Period achieved by a fixed communication ordering under the `INORDER` model.
pub fn inorder_period_for_orderings(
    app: &Application,
    graph: &ExecutionGraph,
    ords: &CommOrderings,
) -> CoreResult<f64> {
    period_for_orderings(app, graph, ords, OnePortStyle::InOrder)
}

/// Period achieved by a fixed communication ordering under the one-port
/// *with overlap* variant (Section 3 counter-examples).
pub fn oneport_overlap_period_for_orderings(
    app: &Application,
    graph: &ExecutionGraph,
    ords: &CommOrderings,
) -> CoreResult<f64> {
    period_for_orderings(app, graph, ords, OnePortStyle::OverlapPorts)
}

fn period_for_orderings(
    app: &Application,
    graph: &ExecutionGraph,
    ords: &CommOrderings,
    style: OnePortStyle,
) -> CoreResult<f64> {
    let (eg, _) = build_event_graph(app, graph, ords, style)?;
    let period = eg.min_period().map_err(|_| CoreError::CyclicGraph)?;
    Ok(period)
}

fn period_for_orderings_with(
    app: &Application,
    graph: &ExecutionGraph,
    metrics: &PlanMetrics,
    ords: &CommOrderings,
    style: OnePortStyle,
) -> CoreResult<f64> {
    let (eg, _) = build_event_graph_with(app, graph, metrics, ords, style)?;
    let period = eg.min_period().map_err(|_| CoreError::CyclicGraph)?;
    Ok(period)
}

/// The communication model whose structural period bound every schedule of
/// the given one-port style must respect.
fn bounding_model(style: OnePortStyle) -> CommModel {
    match style {
        OnePortStyle::InOrder => CommModel::InOrder,
        // With overlap, ports and CPU are separate unary resources: only the
        // `max(Cin, Ccomp, Cout)` bound applies.
        OnePortStyle::OverlapPorts => CommModel::Overlap,
    }
}

/// Builds a concrete operation list realising the optimal period of a fixed
/// ordering under the `INORDER` model.
pub fn inorder_oplist_for_orderings(
    app: &Application,
    graph: &ExecutionGraph,
    ords: &CommOrderings,
) -> CoreResult<OperationList> {
    oplist_for_orderings(app, graph, ords, OnePortStyle::InOrder)
}

fn oplist_for_orderings(
    app: &Application,
    graph: &ExecutionGraph,
    ords: &CommOrderings,
    style: OnePortStyle,
) -> CoreResult<OperationList> {
    let (eg, map) = build_event_graph(app, graph, ords, style)?;
    let period = eg.min_period().map_err(|_| CoreError::CyclicGraph)?;
    // Guard against degenerate zero-work plans.
    let period = if period > 0.0 { period } else { 1.0 };
    let starts = eg
        .earliest_schedule(period * (1.0 + 1e-12))
        .or_else(|| eg.earliest_schedule(period * (1.0 + 1e-9)))
        .ok_or(CoreError::CyclicGraph)?;
    let metrics = PlanMetrics::compute(app, graph)?;
    let mut oplist = OperationList::new(graph.n(), period);
    for (edge, &t) in &map.comm {
        let begin = starts[t];
        oplist.set_comm(
            *edge,
            Interval::with_duration(begin, metrics.edge_volume(app, *edge)),
        );
    }
    for k in 0..graph.n() {
        let begin = starts[map.calc[k]];
        oplist.set_calc(k, Interval::with_duration(begin, metrics.c_comp(k)));
    }
    Ok(oplist)
}

/// Result of an ordering search.
#[derive(Clone, Debug)]
pub struct OrderingSearchResult {
    /// The best period found.
    pub period: f64,
    /// The ordering achieving it.
    pub orderings: CommOrderings,
    /// `true` if the whole ordering space was enumerated (the value is optimal
    /// over orderings), `false` if a heuristic search was used.
    pub exhaustive: bool,
}

/// Searches for the communication ordering minimising the period.
///
/// If the ordering space has at most `exhaustive_limit` elements it is fully
/// enumerated (optimal result); otherwise a hill-climbing heuristic with
/// adjacent swaps is used, starting from the natural ordering.
pub fn oneport_period_search(
    app: &Application,
    graph: &ExecutionGraph,
    style: OnePortStyle,
    exhaustive_limit: usize,
) -> CoreResult<OrderingSearchResult> {
    oneport_period_search_exec(app, graph, style, exhaustive_limit, Exec::serial())
}

/// [`oneport_period_search`] under an explicit execution strategy: the
/// exhaustive enumeration is split over `exec` worker threads (chunks in
/// enumeration order, reduced with the serial tie-breaking rule, so the
/// result is bit-identical to the serial run) and honours its deadline.
pub fn oneport_period_search_exec(
    app: &Application,
    graph: &ExecutionGraph,
    style: OnePortStyle,
    exhaustive_limit: usize,
    exec: Exec,
) -> CoreResult<OrderingSearchResult> {
    Ok(
        oneport_period_search_bounded(app, graph, style, exhaustive_limit, exec, f64::INFINITY)?
            .expect("an infinite cutoff never prunes the search"),
    )
}

/// Branch-and-bound variant of [`oneport_period_search_exec`]: a `cutoff`
/// carried in from an incumbent lets the search skip work that cannot
/// matter.
///
/// Returns `Ok(None)` when the structural period lower bound of `graph`
/// already exceeds `cutoff` — no ordering of this graph can improve the
/// caller's incumbent.  Otherwise the result is exactly what the unbounded
/// search would have returned (value and winning ordering alike).
pub fn oneport_period_search_bounded(
    app: &Application,
    graph: &ExecutionGraph,
    style: OnePortStyle,
    exhaustive_limit: usize,
    exec: Exec,
    cutoff: f64,
) -> CoreResult<Option<OrderingSearchResult>> {
    let metrics = PlanMetrics::compute(app, graph)?;
    oneport_period_search_prepared(app, graph, &metrics, style, exhaustive_limit, exec, cutoff)
}

/// [`oneport_period_search_bounded`] with caller-provided plan metrics, so a
/// caller that already computed them (e.g. the memoised MINPERIOD candidate
/// evaluation) does not pay for them twice.
pub(crate) fn oneport_period_search_prepared(
    app: &Application,
    graph: &ExecutionGraph,
    metrics: &PlanMetrics,
    style: OnePortStyle,
    exhaustive_limit: usize,
    exec: Exec,
    cutoff: f64,
) -> CoreResult<Option<OrderingSearchResult>> {
    let lower_bound = metrics.period_lower_bound(bounding_model(style));
    if lower_bound > prune_threshold(cutoff) {
        return Ok(None);
    }
    if let Some(space) = OrderingSpace::new(graph, exhaustive_limit) {
        let indices: Vec<usize> = (0..space.len()).collect();
        let parts = par_chunks(exec.effective_threads(), &indices, |_base, chunk| {
            let mut best: Option<(f64, usize)> = None;
            let mut complete = true;
            for &i in chunk {
                if exec.expired() {
                    complete = false;
                    break;
                }
                let ords = space.get(i);
                // Orderings whose rendezvous constraints dead-lock are
                // infeasible (token-free cycle): skip them.
                let Ok(p) = period_for_orderings_with(app, graph, metrics, &ords, style) else {
                    continue;
                };
                // No early exit at the structural lower bound: computed
                // cycle ratios can land an ulp *below* it (different float
                // paths), so stopping there could miss the bitwise minimum
                // and break serial/parallel equivalence.
                if best.as_ref().is_none_or(|(bp, _)| p < *bp) {
                    best = Some((p, i));
                }
            }
            (best, complete)
        });
        let complete = parts.iter().all(|(_, c)| *c);
        let best = fold_min(parts.into_iter().map(|(b, _)| b).collect());
        if let Some((period, winner)) = best {
            return Ok(Some(OrderingSearchResult {
                period,
                orderings: space.get(winner),
                exhaustive: complete,
            }));
        }
        debug_assert!(
            !complete,
            "the topological ordering is always feasible, so a completed \
             enumeration finds at least one period"
        );
    }
    // Hill climbing over adjacent swaps, starting from the (always feasible)
    // topological ordering.  Also the fallback when a deadline expired before
    // the exhaustive enumeration evaluated a single ordering.  The climb is
    // not cutoff-bounded: its value must stay bit-identical to the legacy
    // heuristic whatever incumbent is carried in.
    let mut current = CommOrderings::topological(graph);
    let mut current_period = period_for_orderings_with(app, graph, metrics, &current, style)?;
    let mut improved = true;
    while improved && !exec.expired() {
        improved = false;
        for server in 0..graph.n() {
            for outgoing in [false, true] {
                let len = if outgoing {
                    current.outgoing[server].len()
                } else {
                    current.incoming[server].len()
                };
                for pos in 0..len.saturating_sub(1) {
                    let mut candidate = current.clone();
                    candidate.swap_adjacent(server, outgoing, pos);
                    let Ok(p) = period_for_orderings_with(app, graph, metrics, &candidate, style)
                    else {
                        continue;
                    };
                    if p + 1e-12 < current_period {
                        current = candidate;
                        current_period = p;
                        improved = true;
                    }
                }
            }
        }
    }
    Ok(Some(OrderingSearchResult {
        period: current_period,
        orderings: current,
        exhaustive: false,
    }))
}

/// Convenience: the period lower bound of the one-port models
/// (`max_k Cin + Ccomp + Cout`).
pub fn oneport_period_lower_bound(app: &Application, graph: &ExecutionGraph) -> CoreResult<f64> {
    Ok(PlanMetrics::compute(app, graph)?.period_lower_bound(CommModel::InOrder))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_core::validate_oplist;

    fn section23() -> (Application, ExecutionGraph) {
        let app = Application::independent(&[(4.0, 1.0); 5]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
        (app, g)
    }

    #[test]
    fn section23_inorder_optimal_period_is_23_over_3() {
        let (app, g) = section23();
        let result = oneport_period_search(&app, &g, OnePortStyle::InOrder, 1000).unwrap();
        assert!(result.exhaustive);
        assert!(
            (result.period - 23.0 / 3.0).abs() < 1e-9,
            "expected 23/3, got {}",
            result.period
        );
        // The operation list realising it is a valid INORDER schedule.
        let ol = inorder_oplist_for_orderings(&app, &g, &result.orderings).unwrap();
        assert!((ol.period() - 23.0 / 3.0).abs() < 1e-9);
        validate_oplist(&app, &g, &ol, CommModel::InOrder).unwrap_or_else(|v| panic!("{v:?}"));
        // The INORDER schedule is also a valid OUTORDER schedule.
        validate_oplist(&app, &g, &ol, CommModel::OutOrder).unwrap();
    }

    #[test]
    fn section23_natural_ordering_gives_a_larger_period() {
        // The paper's discussion: with the latency-oriented operation list the
        // INORDER period is 10; orderings matter.  The natural ordering is not
        // necessarily optimal, but every ordering is at least the lower bound 7
        // and at least the optimum 23/3.
        let (app, g) = section23();
        let lb = oneport_period_lower_bound(&app, &g).unwrap();
        assert_eq!(lb, 7.0);
        let natural = CommOrderings::natural(&g);
        let p = inorder_period_for_orderings(&app, &g, &natural).unwrap();
        assert!(p >= 23.0 / 3.0 - 1e-9);
    }

    #[test]
    fn section23_oneport_overlap_achieves_the_multiport_bound() {
        // With computation/communication overlap but one-port communications,
        // the Figure 1 example can still reach the multi-port bound of 4:
        // no server needs more than 4 time units of port activity.
        let (app, g) = section23();
        let result = oneport_period_search(&app, &g, OnePortStyle::OverlapPorts, 1000).unwrap();
        assert!(result.exhaustive);
        assert!((result.period - 4.0).abs() < 1e-9, "got {}", result.period);
    }

    #[test]
    fn chain_period_equals_lower_bound_for_inorder() {
        // On a chain there is no ordering freedom and the one-port lower bound
        // is reached (the building block of Proposition 8).
        let app = Application::independent(&[(2.0, 0.5), (3.0, 2.0), (1.0, 1.0)]);
        let g = ExecutionGraph::chain_of(3, &[0, 1, 2]).unwrap();
        let lb = oneport_period_lower_bound(&app, &g).unwrap();
        let result = oneport_period_search(&app, &g, OnePortStyle::InOrder, 10).unwrap();
        assert!((result.period - lb).abs() < 1e-9);
        let ol = inorder_oplist_for_orderings(&app, &g, &result.orderings).unwrap();
        validate_oplist(&app, &g, &ol, CommModel::InOrder).unwrap();
    }

    #[test]
    fn fork_join_orderings_change_the_period() {
        // A fork-join where the middle branches have very different costs: the
        // ordering of the fork's emissions and of the join's receptions matters.
        let app =
            Application::independent(&[(1.0, 1.0), (6.0, 1.0), (1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)])
            .unwrap();
        let mut periods = Vec::new();
        for ords in CommOrderings::enumerate_all(&g, 1000).unwrap() {
            periods.push(inorder_period_for_orderings(&app, &g, &ords).unwrap());
        }
        let min = periods.iter().copied().fold(f64::INFINITY, f64::min);
        let max = periods.iter().copied().fold(0.0f64, f64::max);
        assert!(max > min + 1e-9, "orderings should matter: {min} vs {max}");
        // The search finds the minimum.
        let result = oneport_period_search(&app, &g, OnePortStyle::InOrder, 1000).unwrap();
        assert!((result.period - min).abs() < 1e-9);
    }

    #[test]
    fn heuristic_search_is_used_beyond_the_limit() {
        let (app, g) = section23();
        let result = oneport_period_search(&app, &g, OnePortStyle::InOrder, 1).unwrap();
        assert!(!result.exhaustive);
        // The hill-climbing result is still a feasible period (>= optimum).
        assert!(result.period >= 23.0 / 3.0 - 1e-9);
    }

    #[test]
    fn inconsistent_orderings_rejected() {
        let (app, g) = section23();
        let other = ExecutionGraph::from_edges(5, &[(0, 1)]).unwrap();
        let ords = CommOrderings::natural(&other);
        assert!(inorder_period_for_orderings(&app, &g, &ords).is_err());
    }
}
