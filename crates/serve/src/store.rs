//! The fingerprint-keyed plan store with cost-aware eviction.
//!
//! A serving tier's cache is only as good as its eviction policy: plans are
//! wildly unequal in what they cost to recompute (a canonical-space
//! exhaustive MINPERIOD solve takes five orders of magnitude longer than a
//! tree-latency evaluation), so plain LRU happily evicts the one entry
//! worth keeping.  [`PlanStore`] therefore weighs every entry by the **wall
//! time its solve cost** and evicts cheapest-first, breaking ties by
//! recency — a 0.2 s exhaustive result outlives any number of millisecond
//! solves, and among equals the least recently used goes first.
//!
//! The store is keyed by [`PlanKey`]: the application's canonical
//! fingerprint ([`fsw_core::AppFingerprint`], content-complete — equal keys
//! *are* equal problems) plus communication model and objective.  Entries
//! hold plans over **canonical labels**; the service relabels them per
//! tenant on the way out.
//!
//! Since the async front end, the store is **sharded by fingerprint-digest
//! prefix**: the hit path takes only a shared (read) lock on one shard and
//! bumps recency through an atomic, so concurrent hits never serialise on
//! each other and a writer stuck in one shard cannot stall lookups in the
//! other fifteen.  Capacity and the eviction order remain *global*: the
//! victim is the cheapest entry across all shards, exactly as before
//! sharding, so the cache contents for a given operation sequence are
//! unchanged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

use fsw_core::{AppFingerprint, CommModel, ExecutionGraph};
use fsw_sched::orchestrator::Objective;

/// Number of fingerprint-prefix shards (power of two).
pub const STORE_SHARDS: usize = 16;

/// The identity of a planning problem: *what* is solved for *whom*.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Canonical identity of the application (content-complete; see
    /// [`fsw_core::AppFingerprint`]).
    pub fingerprint: AppFingerprint,
    /// The communication model of the request.
    pub model: CommModel,
    /// The objective of the request.
    pub objective: Objective,
}

/// A cached plan, over the canonical labelling of its fingerprint.
#[derive(Clone, Debug)]
pub struct StoredPlan {
    /// The objective value (bit-identical to a cold solve of any
    /// application sharing the fingerprint, by the collapse gate).
    pub value: f64,
    /// The winning execution graph over canonical labels.
    pub graph: ExecutionGraph,
    /// Whether the solve was exhaustive for its budget.
    pub exhaustive: bool,
    /// Wall time the solve cost, in microseconds — the eviction weight.
    pub solve_micros: u64,
}

struct Entry {
    plan: StoredPlan,
    /// Logical time of the last hit (eviction tie-break); atomic so the
    /// hit path can refresh it under a shared lock.
    last_used: AtomicU64,
    /// Logical time of insertion (deterministic final tie-break).
    stamp: u64,
}

/// Counters of one [`PlanStore`]'s lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Entries evicted by the cost-aware policy.
    pub evictions: usize,
    /// Entries currently held.
    pub len: usize,
}

type Shard = RwLock<HashMap<PlanKey, Entry>>;

/// Registry-backed mirrors of the store counters (`store.hits`,
/// `store.misses`, `store.evictions`), attached at most once per store.
struct StoreMetrics {
    hits: std::sync::Arc<fsw_obs::Counter>,
    misses: std::sync::Arc<fsw_obs::Counter>,
    evictions: std::sync::Arc<fsw_obs::Counter>,
}

/// A bounded, concurrent, fingerprint-keyed plan cache (see the module
/// docs for the eviction policy and sharding).
pub struct PlanStore {
    capacity: usize,
    shards: Vec<Shard>,
    /// Unstored recomputation cost owed per key: wall micros burnt by
    /// degraded (non-exhaustive) attempts that produced no cache entry.
    /// Folded into the eviction weight when the exact re-solve finally
    /// publishes — the weight stands for *what it costs to get this entry
    /// back*, and that includes the failed attempts on the way.
    attempt_debt: Mutex<HashMap<PlanKey, u64>>,
    clock: AtomicU64,
    len: AtomicUsize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    metrics: OnceLock<StoreMetrics>,
}

impl PlanStore {
    /// A fresh store holding at most `capacity` plans (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        PlanStore {
            capacity: capacity.max(1),
            shards: (0..STORE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            attempt_debt: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            metrics: OnceLock::new(),
        }
    }

    /// Maximum number of plans the store holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mirrors the store counters into `registry` as `store.hits`,
    /// `store.misses` and `store.evictions`.  Idempotent: the first
    /// attachment wins; later calls are no-ops (the store outlives any one
    /// observer and the counters are monotone either way).
    pub fn attach_metrics(&self, registry: &fsw_obs::MetricsRegistry) {
        let _ = self.metrics.set(StoreMetrics {
            hits: registry.counter("store.hits"),
            misses: registry.counter("store.misses"),
            evictions: registry.counter("store.evictions"),
        });
    }

    /// Which shard `key` lives in: the low bits of the fingerprint digest.
    /// Public so the fault-injection layer can key "slow shard" faults the
    /// same way the store routes lookups.
    pub fn shard_index(key: &PlanKey) -> usize {
        (key.fingerprint.digest() as usize) & (STORE_SHARDS - 1)
    }

    fn read_shard(&self, key: &PlanKey) -> RwLockReadGuard<'_, HashMap<PlanKey, Entry>> {
        self.shards[Self::shard_index(key)]
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn write_shard(&self, idx: usize) -> RwLockWriteGuard<'_, HashMap<PlanKey, Entry>> {
        self.shards[idx]
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Looks `key` up, refreshing its recency on a hit.  Hit path: one
    /// shared lock on the key's shard, recency bumped through an atomic —
    /// concurrent hits (even on the same shard) never wait on each other.
    pub fn get(&self, key: &PlanKey) -> Option<StoredPlan> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let shard = self.read_shard(key);
        match shard.get(key) {
            Some(entry) => {
                entry.last_used.store(now, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.hits.inc();
                }
                Some(entry.plan.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.misses.inc();
                }
                None
            }
        }
    }

    /// Records wall time burnt on `key` by an attempt that produced no
    /// cache entry (a degraded, non-exhaustive solve).  The debt is folded
    /// into the eviction weight when the exact re-solve finally
    /// [`insert`](Self::insert)s: recomputing the entry from scratch means
    /// paying for the failed attempts again too.
    pub fn record_attempt_cost(&self, key: &PlanKey, micros: u64) {
        let mut debts = self
            .attempt_debt
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        *debts.entry(key.clone()).or_insert(0) += micros;
    }

    /// Inserts (or refreshes) a plan, then evicts down to capacity:
    /// smallest `solve_micros` first, least recently used among equals,
    /// oldest insertion as the deterministic final tie-break.  The freshly
    /// inserted entry competes like any other — a cheap plan does not
    /// displace an expensive one even when it is newer.  Refreshing an
    /// existing key keeps the **larger** of the old and new eviction
    /// weights: a warm re-plan that re-derives a fingerprint in a
    /// millisecond must not demote the 0.2 s cold solve whose recomputation
    /// cost the weight stands for.  Any attempt debt recorded for the key
    /// ([`record_attempt_cost`](Self::record_attempt_cost)) is added on
    /// top before the comparison.
    pub fn insert(&self, key: PlanKey, mut plan: StoredPlan) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut debts = self
                .attempt_debt
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            if let Some(debt) = debts.remove(&key) {
                plan.solve_micros = plan.solve_micros.saturating_add(debt);
            }
        }
        let idx = Self::shard_index(&key);
        {
            let mut shard = self.write_shard(idx);
            if let Some(existing) = shard.get(&key) {
                plan.solve_micros = plan.solve_micros.max(existing.plan.solve_micros);
            } else {
                self.len.fetch_add(1, Ordering::Relaxed);
            }
            shard.insert(
                key,
                Entry {
                    plan,
                    last_used: AtomicU64::new(now),
                    stamp: now,
                },
            );
        }
        while self.len.load(Ordering::Relaxed) > self.capacity {
            if !self.evict_one() {
                break;
            }
        }
    }

    /// Removes the globally cheapest entry.  Scans shards under shared
    /// locks for the victim, then re-validates under the victim shard's
    /// write lock (the entry may have been refreshed meanwhile — if so,
    /// rescan).  Deterministic for a serialised operation sequence: the
    /// victim order is identical to the pre-sharding single-map scan.
    fn evict_one(&self) -> bool {
        loop {
            let mut victim: Option<(u64, u64, u64, usize, PlanKey)> = None;
            for (idx, lock) in self.shards.iter().enumerate() {
                let shard = lock.read().unwrap_or_else(|poison| poison.into_inner());
                for (key, entry) in shard.iter() {
                    let rank = (
                        entry.plan.solve_micros,
                        entry.last_used.load(Ordering::Relaxed),
                        entry.stamp,
                    );
                    let beats = match &victim {
                        None => true,
                        Some((w, u, s, _, _)) => rank < (*w, *u, *s),
                    };
                    if beats {
                        victim = Some((rank.0, rank.1, rank.2, idx, key.clone()));
                    }
                }
            }
            let Some((_, _, stamp, idx, key)) = victim else {
                return false;
            };
            let mut shard = self.write_shard(idx);
            match shard.get(&key) {
                Some(entry) if entry.stamp == stamp => {
                    shard.remove(&key);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = self.metrics.get() {
                        m.evictions.inc();
                    }
                    return true;
                }
                _ => continue, // refreshed or gone since the scan — rescan
            }
        }
    }

    /// Number of held entries whose plan is **not** exhaustive.  The
    /// service's store-purity invariant says this is always zero (degraded
    /// plans are never cached); the fault-injection harness asserts it.
    pub fn non_exhaustive_len(&self) -> usize {
        self.shards
            .iter()
            .map(|lock| {
                lock.read()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .values()
                    .filter(|entry| !entry.plan.exhaustive)
                    .count()
            })
            .sum()
    }

    /// Lifetime counters plus the current size.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_core::{Application, CanonicalApplication};

    fn key_of(specs: &[(f64, f64)]) -> PlanKey {
        let app = Application::independent(specs);
        PlanKey {
            fingerprint: CanonicalApplication::of(&app).fingerprint,
            model: CommModel::Overlap,
            objective: Objective::MinPeriod,
        }
    }

    fn plan(value: f64, micros: u64) -> StoredPlan {
        StoredPlan {
            value,
            graph: ExecutionGraph::new(2),
            exhaustive: true,
            solve_micros: micros,
        }
    }

    #[test]
    fn get_insert_roundtrip_and_stats() {
        let store = PlanStore::new(4);
        let key = key_of(&[(1.0, 0.5), (2.0, 0.5)]);
        assert!(store.get(&key).is_none());
        store.insert(key.clone(), plan(7.0, 100));
        let hit = store.get(&key).expect("inserted");
        assert_eq!(hit.value, 7.0);
        assert_eq!(hit.solve_micros, 100);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn eviction_is_cost_aware() {
        // Capacity 2: one expensive entry plus a stream of cheap ones — the
        // expensive entry must survive every eviction round, even though it
        // is the oldest and least recently used.
        let store = PlanStore::new(2);
        let expensive = key_of(&[(9.0, 0.9), (9.0, 0.9)]);
        store.insert(expensive.clone(), plan(1.0, 200_000));
        for i in 0..5u32 {
            let cheap = key_of(&[(1.0 + f64::from(i), 0.5)]);
            store.insert(cheap, plan(2.0, 50 + u64::from(i)));
        }
        assert!(store.get(&expensive).is_some(), "expensive entry evicted");
        let stats = store.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 4);
    }

    #[test]
    fn refreshing_a_key_never_demotes_its_eviction_weight() {
        let store = PlanStore::new(2);
        let expensive = key_of(&[(9.0, 0.9), (9.0, 0.9)]);
        store.insert(expensive.clone(), plan(1.0, 200_000));
        // A cheap re-publish of the same fingerprint (e.g. a warm re-plan
        // that re-derived it in a millisecond) keeps the cold-solve weight.
        store.insert(expensive.clone(), plan(1.0, 1_500));
        for i in 0..4u32 {
            store.insert(key_of(&[(1.0 + f64::from(i), 0.5)]), plan(2.0, 50));
        }
        assert!(
            store.get(&expensive).is_some(),
            "a cheap refresh must not demote the entry under eviction"
        );
    }

    #[test]
    fn recency_breaks_cost_ties() {
        let store = PlanStore::new(2);
        let a = key_of(&[(1.0, 0.1)]);
        let b = key_of(&[(2.0, 0.2)]);
        let c = key_of(&[(3.0, 0.3)]);
        store.insert(a.clone(), plan(1.0, 100));
        store.insert(b.clone(), plan(2.0, 100));
        // Touch `a`: `b` becomes the least recently used of the equal-cost
        // pair and must be the victim.
        assert!(store.get(&a).is_some());
        store.insert(c.clone(), plan(3.0, 100));
        assert!(store.get(&a).is_some());
        assert!(store.get(&b).is_none());
        assert!(store.get(&c).is_some());
    }

    #[test]
    fn degraded_then_exact_upgrade_refreshes_eviction_weight() {
        // Regression: a degraded attempt burns real wall time but stores
        // nothing, so the eventual exact re-solve used to carry only its
        // own (possibly small) solve time as the eviction weight — the
        // wasted attempt was invisible to the policy and the entry was
        // evicted as "cheap" even though recomputing it means paying for
        // the failed attempt again.  The debt recorded via
        // `record_attempt_cost` must be folded into the weight on insert.
        let store = PlanStore::new(2);
        let upgraded = key_of(&[(9.0, 0.9), (9.0, 0.9)]);
        // Degraded attempt: 150 ms burnt, nothing stored.
        store.record_attempt_cost(&upgraded, 150_000);
        // Exact re-solve lands quickly (warm cache): 40 µs of its own.
        store.insert(upgraded.clone(), plan(1.0, 40));
        let weight = store.get(&upgraded).expect("inserted").solve_micros;
        assert_eq!(weight, 150_040, "attempt debt folded into the weight");
        // The upgraded entry must now survive a stream of mid-cost inserts
        // that would have evicted a 40 µs entry immediately.
        for i in 0..4u32 {
            store.insert(key_of(&[(1.0 + f64::from(i), 0.5)]), plan(2.0, 5_000));
        }
        assert!(
            store.get(&upgraded).is_some(),
            "degraded-then-exact upgrade must carry the attempt cost"
        );
        // The debt is consumed by the first insert, not applied twice.
        store.insert(upgraded.clone(), plan(1.0, 40));
        assert_eq!(
            store.get(&upgraded).expect("present").solve_micros,
            150_040,
            "debt applies once; refresh keeps the max as before"
        );
    }

    #[test]
    fn sharded_reads_do_not_block_each_other() {
        // Smoke the concurrency story: many threads hammering `get` on a
        // populated store while one inserts — no deadlock, no lost entries.
        use std::sync::Arc;
        let store = Arc::new(PlanStore::new(64));
        let keys: Vec<PlanKey> = (0..16u32)
            .map(|i| key_of(&[(1.0 + f64::from(i), 0.5), (2.0, 0.25)]))
            .collect();
        for key in &keys {
            store.insert(key.clone(), plan(1.0, 1_000));
        }
        let mut handles = Vec::new();
        for t in 0..4usize {
            let store = Arc::clone(&store);
            let keys = keys.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..200usize {
                    let key = &keys[(t * 7 + round) % keys.len()];
                    assert!(store.get(key).is_some());
                }
            }));
        }
        for key in keys.iter().take(8) {
            store.insert(key.clone(), plan(1.0, 2_000));
        }
        for handle in handles {
            handle.join().expect("reader thread panicked");
        }
        assert_eq!(store.stats().len, 16);
    }
}
