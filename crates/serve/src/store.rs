//! The fingerprint-keyed plan store with cost-aware eviction.
//!
//! A serving tier's cache is only as good as its eviction policy: plans are
//! wildly unequal in what they cost to recompute (a canonical-space
//! exhaustive MINPERIOD solve takes five orders of magnitude longer than a
//! tree-latency evaluation), so plain LRU happily evicts the one entry
//! worth keeping.  [`PlanStore`] therefore weighs every entry by the **wall
//! time its solve cost** and evicts cheapest-first, breaking ties by
//! recency — a 0.2 s exhaustive result outlives any number of millisecond
//! solves, and among equals the least recently used goes first.
//!
//! The store is keyed by [`PlanKey`]: the application's canonical
//! fingerprint ([`fsw_core::AppFingerprint`], content-complete — equal keys
//! *are* equal problems) plus communication model and objective.  Entries
//! hold plans over **canonical labels**; the service relabels them per
//! tenant on the way out.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use fsw_core::{AppFingerprint, CommModel, ExecutionGraph};
use fsw_sched::orchestrator::Objective;

/// The identity of a planning problem: *what* is solved for *whom*.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Canonical identity of the application (content-complete; see
    /// [`fsw_core::AppFingerprint`]).
    pub fingerprint: AppFingerprint,
    /// The communication model of the request.
    pub model: CommModel,
    /// The objective of the request.
    pub objective: Objective,
}

/// A cached plan, over the canonical labelling of its fingerprint.
#[derive(Clone, Debug)]
pub struct StoredPlan {
    /// The objective value (bit-identical to a cold solve of any
    /// application sharing the fingerprint, by the collapse gate).
    pub value: f64,
    /// The winning execution graph over canonical labels.
    pub graph: ExecutionGraph,
    /// Whether the solve was exhaustive for its budget.
    pub exhaustive: bool,
    /// Wall time the solve cost, in microseconds — the eviction weight.
    pub solve_micros: u64,
}

struct Entry {
    plan: StoredPlan,
    /// Logical time of the last hit (eviction tie-break).
    last_used: u64,
    /// Logical time of insertion (deterministic final tie-break).
    stamp: u64,
}

/// Counters of one [`PlanStore`]'s lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Entries evicted by the cost-aware policy.
    pub evictions: usize,
    /// Entries currently held.
    pub len: usize,
}

/// A bounded, concurrent, fingerprint-keyed plan cache (see the module
/// docs for the eviction policy).
pub struct PlanStore {
    capacity: usize,
    inner: Mutex<HashMap<PlanKey, Entry>>,
    clock: AtomicU64,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl PlanStore {
    /// A fresh store holding at most `capacity` plans (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        PlanStore {
            capacity: capacity.max(1),
            inner: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// Maximum number of plans the store holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &PlanKey) -> Option<StoredPlan> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = self.inner.lock().expect("plan store poisoned");
        match map.get_mut(key) {
            Some(entry) => {
                entry.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.plan.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a plan, then evicts down to capacity:
    /// smallest `solve_micros` first, least recently used among equals,
    /// oldest insertion as the deterministic final tie-break.  The freshly
    /// inserted entry competes like any other — a cheap plan does not
    /// displace an expensive one even when it is newer.  Refreshing an
    /// existing key keeps the **larger** of the old and new eviction
    /// weights: a warm re-plan that re-derives a fingerprint in a
    /// millisecond must not demote the 0.2 s cold solve whose recomputation
    /// cost the weight stands for.
    pub fn insert(&self, key: PlanKey, mut plan: StoredPlan) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = self.inner.lock().expect("plan store poisoned");
        if let Some(existing) = map.get(&key) {
            plan.solve_micros = plan.solve_micros.max(existing.plan.solve_micros);
        }
        map.insert(
            key,
            Entry {
                plan,
                last_used: now,
                stamp: now,
            },
        );
        while map.len() > self.capacity {
            let victim = map
                .iter()
                .min_by_key(|(_, e)| (e.plan.solve_micros, e.last_used, e.stamp))
                .map(|(k, _)| k.clone())
                .expect("store over capacity implies non-empty");
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of held entries whose plan is **not** exhaustive.  The
    /// service's store-purity invariant says this is always zero (degraded
    /// plans are never cached); the fault-injection harness asserts it.
    pub fn non_exhaustive_len(&self) -> usize {
        self.inner
            .lock()
            .expect("plan store poisoned")
            .values()
            .filter(|entry| !entry.plan.exhaustive)
            .count()
    }

    /// Lifetime counters plus the current size.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.inner.lock().expect("plan store poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_core::{Application, CanonicalApplication};

    fn key_of(specs: &[(f64, f64)]) -> PlanKey {
        let app = Application::independent(specs);
        PlanKey {
            fingerprint: CanonicalApplication::of(&app).fingerprint,
            model: CommModel::Overlap,
            objective: Objective::MinPeriod,
        }
    }

    fn plan(value: f64, micros: u64) -> StoredPlan {
        StoredPlan {
            value,
            graph: ExecutionGraph::new(2),
            exhaustive: true,
            solve_micros: micros,
        }
    }

    #[test]
    fn get_insert_roundtrip_and_stats() {
        let store = PlanStore::new(4);
        let key = key_of(&[(1.0, 0.5), (2.0, 0.5)]);
        assert!(store.get(&key).is_none());
        store.insert(key.clone(), plan(7.0, 100));
        let hit = store.get(&key).expect("inserted");
        assert_eq!(hit.value, 7.0);
        assert_eq!(hit.solve_micros, 100);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn eviction_is_cost_aware() {
        // Capacity 2: one expensive entry plus a stream of cheap ones — the
        // expensive entry must survive every eviction round, even though it
        // is the oldest and least recently used.
        let store = PlanStore::new(2);
        let expensive = key_of(&[(9.0, 0.9), (9.0, 0.9)]);
        store.insert(expensive.clone(), plan(1.0, 200_000));
        for i in 0..5u32 {
            let cheap = key_of(&[(1.0 + f64::from(i), 0.5)]);
            store.insert(cheap, plan(2.0, 50 + u64::from(i)));
        }
        assert!(store.get(&expensive).is_some(), "expensive entry evicted");
        let stats = store.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 4);
    }

    #[test]
    fn refreshing_a_key_never_demotes_its_eviction_weight() {
        let store = PlanStore::new(2);
        let expensive = key_of(&[(9.0, 0.9), (9.0, 0.9)]);
        store.insert(expensive.clone(), plan(1.0, 200_000));
        // A cheap re-publish of the same fingerprint (e.g. a warm re-plan
        // that re-derived it in a millisecond) keeps the cold-solve weight.
        store.insert(expensive.clone(), plan(1.0, 1_500));
        for i in 0..4u32 {
            store.insert(key_of(&[(1.0 + f64::from(i), 0.5)]), plan(2.0, 50));
        }
        assert!(
            store.get(&expensive).is_some(),
            "a cheap refresh must not demote the entry under eviction"
        );
    }

    #[test]
    fn recency_breaks_cost_ties() {
        let store = PlanStore::new(2);
        let a = key_of(&[(1.0, 0.1)]);
        let b = key_of(&[(2.0, 0.2)]);
        let c = key_of(&[(3.0, 0.3)]);
        store.insert(a.clone(), plan(1.0, 100));
        store.insert(b.clone(), plan(2.0, 100));
        // Touch `a`: `b` becomes the least recently used of the equal-cost
        // pair and must be the victim.
        assert!(store.get(&a).is_some());
        store.insert(c.clone(), plan(3.0, 100));
        assert!(store.get(&a).is_some());
        assert!(store.get(&b).is_none());
        assert!(store.get(&c).is_some());
    }
}
