//! The batched request queue: canonicalise → store → dedup → pool.
//!
//! [`PlanService::serve_batch`] is the service's front door.  A batch of
//! tenant requests is processed in four stages:
//!
//! 1. every request is **canonicalised** ([`fsw_core::CanonicalApplication`])
//!    and keyed by its [`PlanKey`] — the permutation collapse engages only
//!    when the solve path is provably label-invariant
//!    ([`permutation_collapse_allowed`]), so a served value is always
//!    bit-identical to a cold solve of the tenant's own application;
//! 2. keys already in the **plan store** are answered immediately
//!    ([`ServeSource::Store`]);
//! 3. the remaining requests are **deduplicated in flight**: the first
//!    request of each distinct missing key becomes its *leader*
//!    ([`ServeSource::Cold`]), later ones become *followers*
//!    ([`ServeSource::Dedup`]) and wait for the leader's result;
//! 4. the leaders drain onto the `fsw_sched::par` worker pool
//!    ([`SearchBudget::threads`] workers, requests stay in submission
//!    order), each cold solve running under its own
//!    [`SearchBudget::time_limit`] deadline; results are inserted into the
//!    store (weighted by their measured wall time) and fanned back out.
//!
//! Responses carry the plan relabelled into the tenant's own service ids.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fsw_core::{
    AppFingerprint, Application, CanonicalApplication, CommModel, CoreResult, ExecutionGraph,
};
use fsw_sched::engine::EvalCache;
use fsw_sched::orchestrator::{solve_with_cache, Objective, Problem, SearchBudget};
use fsw_sched::par::par_chunks;

use crate::store::{PlanKey, PlanStore, StoredPlan};

/// One tenant request: plan this application under this model/objective.
#[derive(Clone, Debug)]
pub struct PlanRequest {
    /// The tenant's application, in its own labelling.
    pub app: Application,
    /// The communication model to plan for.
    pub model: CommModel,
    /// The objective to optimise.
    pub objective: Objective,
}

impl PlanRequest {
    /// Convenience constructor.
    pub fn new(app: Application, model: CommModel, objective: Objective) -> Self {
        PlanRequest {
            app,
            model,
            objective,
        }
    }
}

/// Where a response came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeSource {
    /// Solved cold in this batch (the leader of its fingerprint).
    Cold,
    /// Answered from the plan store (an earlier batch solved it).
    Store,
    /// Deduplicated in flight against a leader of the same batch.
    Dedup,
}

/// The service's answer to one [`PlanRequest`], over tenant labels.
#[derive(Clone, Debug)]
pub struct PlanResponse {
    /// The objective value — bit-identical to a cold solve of the tenant's
    /// own application.
    pub value: f64,
    /// The winning execution graph, relabelled into the tenant's ids.
    pub graph: ExecutionGraph,
    /// Whether the underlying solve was exhaustive for its budget.
    pub exhaustive: bool,
    /// Where the answer came from.
    pub source: ServeSource,
    /// Wall time of the underlying cold solve in microseconds (`0` would
    /// never be stored: served entries report their original solve cost).
    pub solve_micros: u64,
}

/// Lifetime counters of a [`PlanService`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests received.
    pub requests: usize,
    /// Cold solves performed (fingerprint leaders).
    pub cold: usize,
    /// Requests answered from the plan store.
    pub store_hits: usize,
    /// Requests deduplicated in flight against a same-batch leader.
    pub dedup_hits: usize,
}

impl ServiceStats {
    /// Fraction of requests served without a cold solve (store + dedup).
    pub fn served_ratio(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.store_hits + self.dedup_hits) as f64 / self.requests as f64
    }
}

/// `true` when the solve path for `(model, objective)` under `budget` is
/// provably **label-invariant**, i.e. two applications that are service
/// permutations of each other solve to bit-identical values — the gate for
/// collapsing permuted tenants onto one canonical fingerprint.
///
/// The rules mirror the bit-safety story of `fsw_sched::engine::Symmetry`:
///
/// * constrained applications never collapse (constraints name services);
/// * MINPERIOD with the [`LowerBound`](fsw_sched::minperiod::PeriodEvaluation)
///   evaluation (or any evaluation under OVERLAP, where the bound is the
///   value) is a pure function of the weighted plan structure — the plan
///   search is over forests, whose metrics are path-order products with no
///   cross-label sums;
/// * MINLATENCY on the forest-only path (`n > dag_enumeration_max_n`) is
///   exact Algorithm 1, again purely structural;
/// * everything else (orchestrated one-port period evaluations, the
///   MINLATENCY DAG phase) runs ordering searches whose accumulation order
///   follows service ids and may drift by an ulp across relabellings —
///   those requests key by their **exact** labelling instead (identical
///   tenants still share; permuted ones do not);
/// * the invariance claim covers the **exhaustive** searches only, so the
///   collapse additionally requires that the solve provably stays
///   exhaustive: the forest space must fit the enumeration budget
///   ([`CanonicalSpace::exhaustively_coverable`], owned by the engine next
///   to the gating it mirrors — the over-cap fallback is label-following
///   hill climbing) and no `time_limit` may be set (an interrupted
///   enumeration returns a best-so-far that depends on the walk order,
///   hence on labels, and on the wall clock).
pub fn permutation_collapse_allowed(
    app: &Application,
    model: CommModel,
    objective: Objective,
    budget: &SearchBudget,
) -> bool {
    use fsw_sched::engine::CanonicalSpace;
    use fsw_sched::minperiod::PeriodEvaluation;
    if app.has_constraints()
        || budget.time_limit.is_some()
        || !CanonicalSpace::exhaustively_coverable(app, budget.max_graphs)
    {
        return false;
    }
    match objective {
        Objective::MinPeriod => {
            model == CommModel::Overlap
                || matches!(budget.period_evaluation, PeriodEvaluation::LowerBound)
        }
        Objective::MinLatency => app.n() > budget.dag_enumeration_max_n,
    }
}

/// A request canonicalised and keyed, ready for the store.
struct Prepared {
    canon: CanonicalApplication,
    key: PlanKey,
}

/// How one request of a batch is answered.
enum Assignment {
    /// Answered from the store.
    Hit(StoredPlan),
    /// Leader of its key: `solved[slot]` is this request's cold solve.
    Leader(usize),
    /// Follower of the leader filling `solved[slot]`.
    Follower(usize),
}

/// The multi-tenant planning service: one plan store plus one search budget
/// (see the module docs for the batch lifecycle).
pub struct PlanService {
    budget: SearchBudget,
    store: PlanStore,
    /// Evaluation caches **retained across batches**, one per canonical
    /// application fingerprint: a fingerprint that falls out of the plan
    /// store (capacity eviction) and comes back cold re-solves against its
    /// previously memoised ordering searches instead of recomputing every
    /// one.  Entries depend only on the canonical application (which the
    /// fingerprint determines), never on the model/objective — the tags
    /// partition the key space — so retention is always value-safe.
    caches: Mutex<HashMap<AppFingerprint, Arc<EvalCache>>>,
    /// Bound on the number of retained caches; on overflow the map is
    /// cleared wholesale (caches are pure memos, so dropping them costs
    /// recomputation, never correctness).
    cache_capacity: usize,
    requests: AtomicUsize,
    cold: AtomicUsize,
    store_hits: AtomicUsize,
    dedup_hits: AtomicUsize,
}

impl PlanService {
    /// A service answering under `budget`, caching at most `store_capacity`
    /// plans (and retaining at most `store_capacity` per-fingerprint
    /// evaluation caches).
    pub fn new(budget: SearchBudget, store_capacity: usize) -> Self {
        PlanService {
            budget,
            store: PlanStore::new(store_capacity),
            caches: Mutex::new(HashMap::new()),
            cache_capacity: store_capacity.max(1),
            requests: AtomicUsize::new(0),
            cold: AtomicUsize::new(0),
            store_hits: AtomicUsize::new(0),
            dedup_hits: AtomicUsize::new(0),
        }
    }

    /// `(hits, misses)` of the retained evaluation cache that `request`'s
    /// fingerprint resolves to, `None` when no cold solve has created one
    /// yet.  Tests assert cache retention across batches with this.
    pub fn eval_cache_stats(&self, request: &PlanRequest) -> Option<(usize, usize)> {
        let collapse = permutation_collapse_allowed(
            &request.app,
            request.model,
            request.objective,
            &self.budget,
        );
        let canon = CanonicalApplication::with_collapse(&request.app, collapse);
        self.caches
            .lock()
            .expect("cache mutex poisoned")
            .get(&canon.fingerprint)
            .map(|cache| cache.stats())
    }

    /// The budget every cold solve runs under.
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }

    /// The underlying plan store.
    pub fn store(&self) -> &PlanStore {
        &self.store
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            cold: self.cold.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
        }
    }

    /// Serves one request (a batch of one).
    pub fn serve_one(&self, request: &PlanRequest) -> CoreResult<PlanResponse> {
        Ok(self
            .serve_batch(std::slice::from_ref(request))?
            .pop()
            .expect("one request, one response"))
    }

    /// Serves a batch: store lookups, in-flight dedup, cold solves on the
    /// worker pool (see the module docs).  Responses come back in request
    /// order, and every value is bit-identical to a cold solve of the
    /// tenant's own application under the service's budget.
    ///
    /// Every application is **validated before anything is keyed or
    /// solved**: an invalid tenant (NaN cost, negative selectivity, cyclic
    /// constraints, …) fails the whole batch up front rather than poisoning
    /// the fingerprint store with a garbage plan other tenants could then
    /// be served.
    pub fn serve_batch(&self, requests: &[PlanRequest]) -> CoreResult<Vec<PlanResponse>> {
        for request in requests {
            request.app.validate()?;
        }
        self.requests.fetch_add(requests.len(), Ordering::Relaxed);
        // 1. Canonicalise and key.
        let prepared: Vec<Prepared> = requests
            .iter()
            .map(|r| {
                let collapse =
                    permutation_collapse_allowed(&r.app, r.model, r.objective, &self.budget);
                let canon = CanonicalApplication::with_collapse(&r.app, collapse);
                let key = PlanKey {
                    fingerprint: canon.fingerprint.clone(),
                    model: r.model,
                    objective: r.objective,
                };
                Prepared { canon, key }
            })
            .collect();
        // 2. + 3. Store lookups and in-flight dedup (leader per missing key).
        let mut assignments: Vec<Assignment> = Vec::with_capacity(requests.len());
        let mut leaders: Vec<usize> = Vec::new();
        let mut in_flight: std::collections::HashMap<&PlanKey, usize> =
            std::collections::HashMap::new();
        for (idx, prep) in prepared.iter().enumerate() {
            if let Some(slot) = in_flight.get(&prep.key) {
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                assignments.push(Assignment::Follower(*slot));
            } else if let Some(plan) = self.store.get(&prep.key) {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                assignments.push(Assignment::Hit(plan));
            } else {
                let slot = leaders.len();
                leaders.push(idx);
                in_flight.insert(&prep.key, slot);
                self.cold.fetch_add(1, Ordering::Relaxed);
                assignments.push(Assignment::Leader(slot));
            }
        }
        // 4. Drain the leaders onto the pool.  Each cold solve runs serial
        // inside (the fan-out is across requests) under its own deadline,
        // which `solve` arms from `budget.time_limit` at call time.
        let threads = match self.budget.threads {
            0 => std::thread::available_parallelism().map_or(1, |t| t.get()),
            t => t,
        };
        let inner_budget = SearchBudget {
            threads: 1,
            ..self.budget
        };
        // One evaluation cache per distinct fingerprint, **retained across
        // batches**: the fingerprint determines the canonical application,
        // so leaders of the same application — in this batch under other
        // models/objectives, or in a later batch after the plan store
        // evicted the fingerprint — share the memoised ordering searches,
        // exactly like `solve_all`'s per-app sweep.  (`EvalCache` is `Sync`;
        // the workers only read their `Arc`s.)
        let caches: Vec<Arc<EvalCache>> = {
            let mut retained = self.caches.lock().expect("cache mutex poisoned");
            leaders
                .iter()
                .map(|&idx| {
                    let fingerprint = &prepared[idx].key.fingerprint;
                    if !retained.contains_key(fingerprint) {
                        if retained.len() >= self.cache_capacity {
                            retained.clear();
                        }
                        retained.insert(
                            fingerprint.clone(),
                            Arc::new(EvalCache::new(&prepared[idx].canon.app)),
                        );
                    }
                    retained[fingerprint].clone()
                })
                .collect()
        };
        let solved: Vec<StoredPlan> = par_chunks(threads, &leaders, |base, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(offset, &idx)| {
                    let cache = &caches[base + offset];
                    cold_solve(&prepared[idx], requests[idx].model, &inner_budget, cache)
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        // Publish in leader order (deterministic store contents).
        for (slot, &idx) in leaders.iter().enumerate() {
            self.store
                .insert(prepared[idx].key.clone(), solved[slot].clone());
        }
        // Fan the answers back out, relabelled per tenant.
        Ok(assignments
            .into_iter()
            .enumerate()
            .map(|(idx, assignment)| {
                let (plan, source) = match assignment {
                    Assignment::Hit(plan) => (plan, ServeSource::Store),
                    Assignment::Leader(slot) => (solved[slot].clone(), ServeSource::Cold),
                    Assignment::Follower(slot) => (solved[slot].clone(), ServeSource::Dedup),
                };
                let graph = prepared[idx]
                    .canon
                    .graph_to_tenant(&plan.graph)
                    .expect("canonical plans relabel cleanly");
                PlanResponse {
                    value: plan.value,
                    graph,
                    exhaustive: plan.exhaustive,
                    source,
                    solve_micros: plan.solve_micros,
                }
            })
            .collect())
    }

    /// Publishes an externally solved plan (an online re-plan from a
    /// [`crate::online::TenantSession`]) into the store, so later requests
    /// for the same fingerprint are served without a solve.  `graph` and
    /// `value` are in tenant labels; the entry is stored canonically.
    ///
    /// `solved_under` is the budget that produced the plan: a store hit
    /// promises the value a cold solve under *the service's* budget would
    /// return, so plans solved under any other budget (different caps,
    /// evaluation, or a time limit) are silently dropped instead of
    /// poisoning the store with a value the service itself would not
    /// compute.  Returns `true` when the plan was stored.
    #[allow(clippy::too_many_arguments)] // one flat record, not a call protocol
    pub fn publish(
        &self,
        app: &Application,
        model: CommModel,
        objective: Objective,
        solved_under: &SearchBudget,
        value: f64,
        graph: &ExecutionGraph,
        exhaustive: bool,
        solve_micros: u64,
    ) -> bool {
        if *solved_under != self.budget {
            return false;
        }
        let collapse = permutation_collapse_allowed(app, model, objective, &self.budget);
        let canon = CanonicalApplication::with_collapse(app, collapse);
        let Ok(canonical_graph) = canon.graph_to_canonical(graph) else {
            return false;
        };
        let key = PlanKey {
            fingerprint: canon.fingerprint.clone(),
            model,
            objective,
        };
        self.store.insert(
            key,
            StoredPlan {
                value,
                graph: canonical_graph,
                exhaustive,
                solve_micros,
            },
        );
        true
    }
}

/// One cold solve over the canonical application, timed for the store.
fn cold_solve(
    prep: &Prepared,
    model: CommModel,
    budget: &SearchBudget,
    cache: &EvalCache,
) -> StoredPlan {
    let problem = Problem::new(&prep.canon.app, model, prep.key.objective);
    let started = Instant::now();
    let solution = solve_with_cache(&problem, budget, cache)
        .expect("serving requests are validated applications");
    let solve_micros = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    StoredPlan {
        value: solution.value,
        graph: solution.graph,
        exhaustive: solution.exhaustive,
        solve_micros,
    }
}

/// The store-aware batch entry point over a **fleet** of applications: every
/// `(application, model, objective)` combination becomes one request, the
/// whole fleet goes through a transient [`PlanService`] batch (so
/// applications identical after canonicalisation are solved **once**), and
/// the responses come back grouped per application in request order.
///
/// This supersedes looping `fsw_sched::orchestrator::solve_all` over the
/// fleet, which solved every tenant separately even when all twelve were
/// the same canonical problem.
pub fn solve_all(
    apps: &[Application],
    requests: &[(CommModel, Objective)],
    budget: &SearchBudget,
) -> CoreResult<Vec<Vec<PlanResponse>>> {
    let service = PlanService::new(*budget, (apps.len() * requests.len()).max(1));
    let batch: Vec<PlanRequest> = apps
        .iter()
        .flat_map(|app| {
            requests
                .iter()
                .map(|&(model, objective)| PlanRequest::new(app.clone(), model, objective))
        })
        .collect();
    let mut responses = service.serve_batch(&batch)?.into_iter();
    Ok(apps
        .iter()
        .map(|_| responses.by_ref().take(requests.len()).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_sched::orchestrator::solve;

    fn budget() -> SearchBudget {
        SearchBudget::default()
    }

    #[test]
    fn identical_tenants_dedup_in_flight_and_hit_the_store_across_batches() {
        let service = PlanService::new(budget(), 16);
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8)]);
        let request = PlanRequest::new(app.clone(), CommModel::Overlap, Objective::MinPeriod);
        let batch = vec![request.clone(), request.clone(), request.clone()];
        let responses = service.serve_batch(&batch).unwrap();
        assert_eq!(responses[0].source, ServeSource::Cold);
        assert_eq!(responses[1].source, ServeSource::Dedup);
        assert_eq!(responses[2].source, ServeSource::Dedup);
        // All three answers are the same bits.
        let cold = solve(
            &Problem::new(&app, CommModel::Overlap, Objective::MinPeriod),
            &budget(),
        )
        .unwrap();
        for r in &responses {
            assert_eq!(r.value, cold.value);
            assert_eq!(r.exhaustive, cold.exhaustive);
        }
        // A later batch is served from the store.
        let again = service.serve_one(&request).unwrap();
        assert_eq!(again.source, ServeSource::Store);
        assert_eq!(again.value, cold.value);
        let stats = service.stats();
        assert_eq!((stats.cold, stats.dedup_hits, stats.store_hits), (1, 2, 1));
    }

    #[test]
    fn permuted_tenants_share_one_solve_on_invariant_paths() {
        let a = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8)]);
        let b = Application::independent(&[(3.0, 0.8), (2.0, 0.5), (1.0, 2.0)]);
        let service = PlanService::new(budget(), 16);
        let responses = service
            .serve_batch(&[
                PlanRequest::new(a.clone(), CommModel::InOrder, Objective::MinPeriod),
                PlanRequest::new(b.clone(), CommModel::InOrder, Objective::MinPeriod),
            ])
            .unwrap();
        assert_eq!(responses[0].source, ServeSource::Cold);
        assert_eq!(responses[1].source, ServeSource::Dedup);
        // Each tenant's served value equals its own cold solve, bit for bit
        // (the LowerBound MINPERIOD path is label-invariant).
        for (app, response) in [(&a, &responses[0]), (&b, &responses[1])] {
            let cold = solve(
                &Problem::new(app, CommModel::InOrder, Objective::MinPeriod),
                &budget(),
            )
            .unwrap();
            assert_eq!(response.value, cold.value);
            // The served graph is valid for the tenant and achieves the value.
            response.graph.respects(app).unwrap();
        }
    }

    #[test]
    fn publish_refuses_plans_solved_under_a_foreign_budget() {
        let service = PlanService::new(budget(), 8);
        let app = Application::independent(&[(1.0, 0.5), (2.0, 0.6)]);
        let graph = fsw_core::ExecutionGraph::new(2);
        // A starved budget produces values the service's own cold solves
        // would not return: the store must not accept them.
        let starved = SearchBudget {
            max_graphs: 1,
            ..budget()
        };
        assert!(!service.publish(
            &app,
            CommModel::Overlap,
            Objective::MinPeriod,
            &starved,
            9.0,
            &graph,
            false,
            10
        ));
        assert_eq!(service.store().stats().len, 0);
        // The service's own budget is accepted.
        assert!(service.publish(
            &app,
            CommModel::Overlap,
            Objective::MinPeriod,
            &budget(),
            9.0,
            &graph,
            true,
            10
        ));
        assert_eq!(service.store().stats().len, 1);
    }

    #[test]
    fn invalid_applications_are_rejected_before_solving_or_caching() {
        let service = PlanService::new(budget(), 8);
        let bad = Application::independent(&[(f64::NAN, 0.5), (2.0, 0.6), (1.0, -3.0)]);
        let request = PlanRequest::new(bad, CommModel::Overlap, Objective::MinPeriod);
        assert!(service.serve_one(&request).is_err());
        // Nothing was counted, solved or cached — the store cannot be
        // poisoned with a garbage plan other tenants could be served.
        let stats = service.stats();
        assert_eq!((stats.requests, stats.cold), (0, 0));
        assert_eq!(service.store().stats().len, 0);
    }

    #[test]
    fn collapse_gate_requires_exhaustive_coverage_and_no_deadline() {
        // n = 10 with all-distinct weights: the labelled forest space
        // (10^10) dwarfs max_graphs and no symmetry reduction applies, so
        // the solve would fall back to label-following local search —
        // permuted tenants must not collapse there.
        let specs: Vec<(f64, f64)> = (0..10)
            .map(|k| (1.0 + k as f64, 0.5 + 0.01 * k as f64))
            .collect();
        let wide = Application::independent(&specs);
        for objective in [Objective::MinPeriod, Objective::MinLatency] {
            assert!(!permutation_collapse_allowed(
                &wide,
                CommModel::Overlap,
                objective,
                &budget()
            ));
        }
        // A uniform n = 10 instance is covered through the canonical space.
        let uniform = Application::independent(&[(2.0, 0.5); 10]);
        assert!(permutation_collapse_allowed(
            &uniform,
            CommModel::Overlap,
            Objective::MinPeriod,
            &budget()
        ));
        // A time limit makes any interrupted enumeration walk-order (and
        // wall-clock) dependent: no collapse, however small the instance.
        let small = Application::independent(&[(1.0, 0.5), (2.0, 0.6), (3.0, 0.7)]);
        assert!(permutation_collapse_allowed(
            &small,
            CommModel::Overlap,
            Objective::MinPeriod,
            &budget()
        ));
        let limited = budget().with_time_limit(std::time::Duration::from_secs(1));
        assert!(!permutation_collapse_allowed(
            &small,
            CommModel::Overlap,
            Objective::MinPeriod,
            &limited
        ));
    }

    #[test]
    fn label_following_paths_do_not_collapse_permutations() {
        // MINLATENCY at n <= dag_enumeration_max_n runs ordering searches:
        // permuted tenants must keep distinct fingerprints there.
        let a = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8)]);
        let b = Application::independent(&[(3.0, 0.8), (2.0, 0.5), (1.0, 2.0)]);
        assert!(!permutation_collapse_allowed(
            &a,
            CommModel::InOrder,
            Objective::MinLatency,
            &budget()
        ));
        let service = PlanService::new(budget(), 16);
        let responses = service
            .serve_batch(&[
                PlanRequest::new(a, CommModel::InOrder, Objective::MinLatency),
                PlanRequest::new(b, CommModel::InOrder, Objective::MinLatency),
            ])
            .unwrap();
        assert_eq!(responses[0].source, ServeSource::Cold);
        assert_eq!(responses[1].source, ServeSource::Cold);
    }

    #[test]
    fn fleet_solve_all_groups_responses_per_application() {
        let apps = vec![
            Application::independent(&[(1.0, 0.5), (2.0, 0.8)]),
            Application::independent(&[(2.0, 0.8), (1.0, 0.5)]), // permutation of the first
        ];
        let requests = [
            (CommModel::Overlap, Objective::MinPeriod),
            (CommModel::InOrder, Objective::MinPeriod),
        ];
        let grouped = solve_all(&apps, &requests, &budget()).unwrap();
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].len(), 2);
        // The permuted twin is fully deduplicated.
        assert!(grouped[1].iter().all(|r| r.source == ServeSource::Dedup));
        for (app, responses) in apps.iter().zip(&grouped) {
            for (&(model, objective), response) in requests.iter().zip(responses) {
                let cold = solve(&Problem::new(app, model, objective), &budget()).unwrap();
                assert_eq!(response.value, cold.value, "{model} {objective}");
            }
        }
    }
}
