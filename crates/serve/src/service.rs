//! The batched request queue: canonicalise → admit → store → dedup → pool.
//!
//! [`PlanService::serve_batch`] is the service's front door.  A batch of
//! tenant requests is processed in five stages:
//!
//! 1. every request is **canonicalised** ([`fsw_core::CanonicalApplication`])
//!    and keyed by its [`PlanKey`] — the permutation collapse engages only
//!    when the solve path is provably label-invariant
//!    ([`permutation_collapse_allowed`]), so an [`Exact`](ServeOutcome::Exact)
//!    value is always bit-identical to a cold solve of the tenant's own
//!    application;
//! 2. keys already in the **plan store** are answered immediately
//!    ([`ServeSource::Store`]) — the store only ever holds exhaustive
//!    plans, so a hit is always `Exact`;
//! 3. the remaining requests pass the **quarantine** (fingerprints that
//!    panicked the solver are rejected during their backoff, permanently
//!    after repeated failures) and the **admission policy**
//!    ([`crate::admission`]): each distinct key is priced in O(shapes)
//!    before any enumeration, and requests whose structural cost clears
//!    the reject threshold never touch the solve pool;
//! 4. admitted requests are **deduplicated in flight**: the first request
//!    of each distinct missing key becomes its *leader*
//!    ([`ServeSource::Cold`]), later ones become *followers*
//!    ([`ServeSource::Dedup`]) and share the leader's outcome — including
//!    a failure: followers of a panicked leader observe the error instead
//!    of hanging;
//! 5. the leaders drain onto the `fsw_sched::par` worker pool under
//!    `catch_unwind` (a panicking solve is caught, reported as a
//!    [`RejectReason::SolverPanic`] outcome and quarantined — it never
//!    poisons the batch), each cold solve running under its own deadline
//!    (the budget's, tightened by the admission policy's degrade deadline
//!    in the [`AdmitWithDeadline`](crate::admission::AdmissionDecision)
//!    band); **exhaustive** results are inserted into the store and fanned
//!    back out as `Exact`, interrupted or budget-capped ones come back
//!    [`Degraded`](ServeOutcome::Degraded) with an admissible lower bound
//!    and are *never* cached.
//!
//! Responses carry the plan relabelled into the tenant's own service ids.
//!
//! For robustness testing, [`PlanService::with_fault_injection`] installs a
//! deterministic fault hook keyed by **request ordinal** (arrival order
//! across the service's lifetime): injected panics, slowdowns and deadline
//! blowouts fire on the same requests whatever the thread count, so fault
//! replays are reproducible (`fsw_sim`'s `FaultPlan` drives this).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fsw_core::{
    AppFingerprint, Application, CanonicalApplication, CommModel, CoreResult, ExecutionGraph,
};
use fsw_sched::engine::EvalCache;
use fsw_sched::orchestrator::{solve_warm_observed, Objective, Problem, SearchBudget};
use fsw_sched::par::par_chunks;

use crate::admission::{AdmissionDecision, AdmissionPolicy, CostEstimate};
use crate::store::{PlanKey, PlanStore, StoredPlan};

/// One tenant request: plan this application under this model/objective.
#[derive(Clone, Debug)]
pub struct PlanRequest {
    /// The tenant's application, in its own labelling.
    pub app: Application,
    /// The communication model to plan for.
    pub model: CommModel,
    /// The objective to optimise.
    pub objective: Objective,
}

impl PlanRequest {
    /// Convenience constructor.
    pub fn new(app: Application, model: CommModel, objective: Objective) -> Self {
        PlanRequest {
            app,
            model,
            objective,
        }
    }
}

/// Where a response came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeSource {
    /// Solved cold in this batch (the leader of its fingerprint).
    Cold,
    /// Answered from the plan store (an earlier batch solved it).
    Store,
    /// Deduplicated in flight against a leader of the same batch.
    Dedup,
}

/// The served plan behind a [`ServeOutcome`], over tenant labels.
#[derive(Clone, Debug)]
pub struct PlanResponse {
    /// The objective value.  On the [`Exact`](ServeOutcome::Exact) path it
    /// is bit-identical to a cold solve of the tenant's own application;
    /// degraded values carry no such promise (see their `lower_bound`).
    pub value: f64,
    /// The winning execution graph, relabelled into the tenant's ids.
    pub graph: ExecutionGraph,
    /// Whether the underlying solve was exhaustive for its budget.
    pub exhaustive: bool,
    /// Where the answer came from.
    pub source: ServeSource,
    /// Wall time of the underlying cold solve in microseconds (`0` would
    /// never be stored: served entries report their original solve cost).
    pub solve_micros: u64,
}

/// Why a request was rejected without a plan.
#[derive(Clone, Debug, PartialEq)]
pub enum RejectReason {
    /// The admission policy priced the request above its reject threshold.
    AdmissionCost,
    /// The fingerprint previously panicked the solver and is quarantined.
    Quarantined {
        /// `true` once the failure budget is exhausted (no more retries);
        /// `false` during a backoff window.
        permanent: bool,
    },
    /// The solve for this fingerprint panicked in this batch (the request
    /// was its leader, or a follower woken with the leader's error).
    SolverPanic {
        /// The panic payload, when it carried a message.
        message: String,
    },
    /// The tenant's bounded ingress queue was full when the request
    /// arrived (async front end only): shed at ingress, nothing queued.
    QueueFull,
    /// Shed by adaptive backpressure: the request would have been admitted
    /// at baseline thresholds, but the front end's backlog had tightened
    /// them by `level` halvings when it was dequeued.
    Shed {
        /// The shed level in force at the decision (≥ 1).
        level: u32,
    },
    /// The request's deadline had already expired when it was dequeued
    /// (async front end): cancelled instead of solved uselessly.
    DeadlineExpired,
    /// The worker solving this fingerprint stalled past the watchdog and
    /// was timed out; the fingerprint goes to the quarantine.
    WorkerStall,
}

/// A rejected request: the reason, plus the structural price when the
/// admission policy produced one.
#[derive(Clone, Debug, PartialEq)]
pub struct Rejection {
    /// Why the request got no plan.
    pub reason: RejectReason,
    /// The cost estimate that rejected it (admission rejections only).
    pub estimate: Option<CostEstimate>,
}

/// The service's answer to one [`PlanRequest`].
#[derive(Clone, Debug)]
pub enum ServeOutcome {
    /// An exhaustive solve: the value is bit-identical to a cold solve of
    /// the tenant's own application under the service budget.
    Exact(PlanResponse),
    /// The solve was interrupted (degrade deadline, enumeration caps) and
    /// returned its best incumbent instead of a certificate.  Never cached.
    Degraded {
        /// The best incumbent found, relabelled per tenant.
        response: PlanResponse,
        /// Admissible lower bound on the instance optimum (`0.0` when no
        /// nontrivial floor was certified within the pricing budget).
        lower_bound: f64,
        /// Relative optimality gap `(value - lower_bound) / lower_bound`
        /// (`∞` when the floor is trivial).
        gap: f64,
    },
    /// No plan: rejected by admission, quarantine, or a solver panic.
    Rejected(Rejection),
}

impl ServeOutcome {
    /// The served plan, if any ([`Exact`](Self::Exact) or
    /// [`Degraded`](Self::Degraded)).
    pub fn response(&self) -> Option<&PlanResponse> {
        match self {
            ServeOutcome::Exact(response) | ServeOutcome::Degraded { response, .. } => {
                Some(response)
            }
            ServeOutcome::Rejected(_) => None,
        }
    }

    /// The served plan by value, if any.
    pub fn into_response(self) -> Option<PlanResponse> {
        match self {
            ServeOutcome::Exact(response) | ServeOutcome::Degraded { response, .. } => {
                Some(response)
            }
            ServeOutcome::Rejected(_) => None,
        }
    }

    /// The served objective value, if any.
    pub fn value(&self) -> Option<f64> {
        self.response().map(|r| r.value)
    }

    /// `true` for an [`Exact`](Self::Exact) outcome.
    pub fn is_exact(&self) -> bool {
        matches!(self, ServeOutcome::Exact(_))
    }

    /// The rejection, if the request was rejected.
    pub fn rejection(&self) -> Option<&Rejection> {
        match self {
            ServeOutcome::Rejected(rejection) => Some(rejection),
            _ => None,
        }
    }

    /// Unwraps the exact response; panics on degraded or rejected
    /// outcomes (test helper).
    pub fn expect_exact(&self) -> &PlanResponse {
        match self {
            ServeOutcome::Exact(response) => response,
            other => panic!("expected an exact outcome, got {other:?}"),
        }
    }
}

/// Lifetime counters of a [`PlanService`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests received.
    pub requests: usize,
    /// Cold solves performed (fingerprint leaders).
    pub cold: usize,
    /// Requests answered from the plan store.
    pub store_hits: usize,
    /// Requests deduplicated in flight against a same-batch leader.
    pub dedup_hits: usize,
    /// Leaders admitted into the degrade band (solved under a deadline).
    pub deadline_admits: usize,
    /// Degraded responses served (leaders and followers).
    pub degraded: usize,
    /// Requests rejected by the admission policy.
    pub admission_rejects: usize,
    /// Requests rejected by the quarantine (backoff or permanent).
    pub quarantine_rejects: usize,
    /// Solver panics caught (one per failed leader).
    pub panics: usize,
    /// Quarantined fingerprints that completed a retry successfully.
    pub recovered: usize,
}

impl ServiceStats {
    /// Fraction of requests served without a cold solve (store + dedup).
    pub fn served_ratio(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.store_hits + self.dedup_hits) as f64 / self.requests as f64
    }

    /// Requests rejected for any reason (admission + quarantine; panic
    /// rejections are counted by [`Self::panics`] per failed leader).
    pub fn rejected(&self) -> usize {
        self.admission_rejects + self.quarantine_rejects
    }
}

/// One public snapshot of the whole serving tier: the request counters
/// ([`ServiceStats`]), the store counters ([`crate::store::StoreStats`]),
/// and the **quarantine occupancy** — how many fingerprints are currently
/// held in backoff and how many are permanently banned.  Before this
/// snapshot the quarantine and in-flight-dedup state were only observable
/// indirectly (through which outcomes a replay produced); robustness
/// harnesses assert on it directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Request-path lifetime counters (includes `dedup_hits`, the
    /// in-flight dedup counter, and `quarantine_rejects`).
    pub service: ServiceStats,
    /// Plan-store lifetime counters.
    pub store: crate::store::StoreStats,
    /// Fingerprints currently quarantined (in a backoff window or
    /// permanent) — live occupancy, not a lifetime count.
    pub quarantine_active: usize,
    /// Fingerprints whose quarantine is permanent (failure budget spent).
    pub quarantine_permanent: usize,
    /// Shed-level **raises** over the tier's lifetime (each +1 step of the
    /// async front end's backpressure controller).  `0` on the synchronous
    /// batch path, which has no shed controller.
    pub shed_raises: usize,
    /// Shed-level **lowers** (each −1 recovery step of the controller).
    /// `0` on the synchronous batch path.
    pub shed_lowers: usize,
    /// Requests cancelled because their deadline expired before dispatch
    /// (async front end).  `0` on the synchronous batch path, which never
    /// queues.
    pub deadline_cancels: usize,
}

/// A deterministic fault injected into one cold solve (robustness
/// harness; see [`PlanService::with_fault_injection`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// The solver panics before doing any work.
    Panic,
    /// The solve is preceded by an artificial stall.
    Slow(Duration),
    /// The solve runs under an already-expired deadline (`time_limit` of
    /// zero): the search degrades to its deterministic fallback
    /// immediately, modelling a deadline blowout without wall-clock
    /// dependence.
    DeadlineBlowout,
}

/// `true` when the solve path for `(model, objective)` under `budget` is
/// provably **label-invariant**, i.e. two applications that are service
/// permutations of each other solve to bit-identical values — the gate for
/// collapsing permuted tenants onto one canonical fingerprint.
///
/// The rules mirror the bit-safety story of `fsw_sched::engine::Symmetry`:
///
/// * constrained applications never collapse (constraints name services);
/// * MINPERIOD with the [`LowerBound`](fsw_sched::minperiod::PeriodEvaluation)
///   evaluation (or any evaluation under OVERLAP, where the bound is the
///   value) is a pure function of the weighted plan structure — the plan
///   search is over forests, whose metrics are path-order products with no
///   cross-label sums;
/// * MINLATENCY on the forest-only path (`n > dag_enumeration_max_n`) is
///   exact Algorithm 1, again purely structural;
/// * everything else (orchestrated one-port period evaluations, the
///   MINLATENCY DAG phase) runs ordering searches whose accumulation order
///   follows service ids and may drift by an ulp across relabellings —
///   those requests key by their **exact** labelling instead (identical
///   tenants still share; permuted ones do not);
/// * the invariance claim covers the **exhaustive** searches only, so the
///   collapse additionally requires that the solve provably stays
///   exhaustive: the forest space must fit the enumeration budget
///   ([`CanonicalSpace::exhaustively_coverable`], owned by the engine next
///   to the gating it mirrors — the over-cap fallback is label-following
///   hill climbing) and no `time_limit` may be set (an interrupted
///   enumeration returns a best-so-far that depends on the walk order,
///   hence on labels, and on the wall clock).
pub fn permutation_collapse_allowed(
    app: &Application,
    model: CommModel,
    objective: Objective,
    budget: &SearchBudget,
) -> bool {
    use fsw_sched::engine::CanonicalSpace;
    use fsw_sched::minperiod::PeriodEvaluation;
    if app.has_constraints()
        || budget.time_limit.is_some()
        || !CanonicalSpace::exhaustively_coverable(app, budget.max_graphs)
    {
        return false;
    }
    match objective {
        Objective::MinPeriod => {
            model == CommModel::Overlap
                || matches!(budget.period_evaluation, PeriodEvaluation::LowerBound)
        }
        Objective::MinLatency => app.n() > budget.dag_enumeration_max_n,
    }
}

/// A request canonicalised and keyed, ready for the store.
pub(crate) struct Prepared {
    pub(crate) canon: CanonicalApplication,
    pub(crate) key: PlanKey,
}

impl Prepared {
    /// Canonicalises and keys one request under `budget` (the collapse
    /// gate engages only on provably label-invariant paths).
    pub(crate) fn of(request: &PlanRequest, budget: &SearchBudget) -> Prepared {
        let collapse =
            permutation_collapse_allowed(&request.app, request.model, request.objective, budget);
        let canon = CanonicalApplication::with_collapse(&request.app, collapse);
        let key = PlanKey {
            fingerprint: canon.fingerprint.clone(),
            model: request.model,
            objective: request.objective,
        };
        Prepared { canon, key }
    }
}

/// How one request of a batch is answered.
enum Assignment {
    /// Answered from the store.
    Hit(StoredPlan),
    /// Leader of its key: `solved[slot]` is this request's cold solve.
    Leader(usize),
    /// Follower of the leader filling `solved[slot]` — outcomes included:
    /// a follower of a panicked leader observes the same error.
    Follower(usize),
    /// Rejected before the pool (admission or quarantine).
    Rejected(Rejection),
}

/// One admitted leader headed for the solve pool.
struct LeaderTask {
    /// Index of the leading request in the batch.
    idx: usize,
    /// The request's arrival ordinal (fault-injection key).
    ordinal: u64,
    /// Degrade deadline from the admission policy, if any.
    time_limit: Option<Duration>,
    /// Admissible value floor priced at admission, if any.
    floor: Option<f64>,
}

/// The service's cached observability handles: the shared registry plus
/// the span timers the hot paths record through (resolved once at
/// attachment, so serving never takes the registry lock).
pub(crate) struct ServiceMetrics {
    pub(crate) registry: Arc<fsw_obs::MetricsRegistry>,
    /// `admission.decide` — exact count of pricing decisions, durations
    /// sampled 1-in-[`fsw_obs::span::SAMPLE_EVERY`] (per-request path).
    pub(crate) admission: fsw_obs::SpanTimer,
}

/// How many solver panics a fingerprint may accumulate before its
/// quarantine becomes permanent.
const QUARANTINE_MAX_FAILURES: u32 = 3;
/// Backoff after the `k`-th failure: `BASE << (k - 1)` requests of that
/// fingerprint are rejected before the next retry is allowed.
const QUARANTINE_BACKOFF_BASE: u32 = 2;

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct QuarantineState {
    failures: u32,
    cooldown: u32,
}

/// The panic quarantine: a deterministic per-fingerprint state machine.
/// Failures increment a counter and open a backoff window that doubles
/// each time (`2, 4, …` rejected requests between retries); at
/// [`QUARANTINE_MAX_FAILURES`] the fingerprint is rejected permanently.  A
/// successful retry clears the entry.  Time is counted in **requests**,
/// not wall clock, so replays are deterministic.
pub(crate) struct Quarantine {
    entries: Mutex<HashMap<PlanKey, QuarantineState>>,
}

impl Quarantine {
    fn new() -> Self {
        Quarantine {
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Gate one arriving request for `key`: `Ok` to attempt a solve,
    /// `Err(permanent)` to reject.  Each rejected request drains one tick
    /// of the backoff window.
    pub(crate) fn admit(&self, key: &PlanKey) -> Result<(), bool> {
        let mut entries = self.entries.lock().expect("quarantine mutex poisoned");
        match entries.get_mut(key) {
            None => Ok(()),
            Some(state) if state.failures >= QUARANTINE_MAX_FAILURES => Err(true),
            Some(state) if state.cooldown > 0 => {
                state.cooldown -= 1;
                Err(false)
            }
            Some(_) => Ok(()),
        }
    }

    /// Records a solver panic (or stall) for `key`.
    pub(crate) fn record_failure(&self, key: &PlanKey) {
        let mut entries = self.entries.lock().expect("quarantine mutex poisoned");
        let state = entries.entry(key.clone()).or_default();
        state.failures += 1;
        if state.failures < QUARANTINE_MAX_FAILURES {
            state.cooldown = QUARANTINE_BACKOFF_BASE << (state.failures - 1);
        }
    }

    /// Records a completed solve; returns `true` when the key had a
    /// quarantine entry to clear (a recovery).
    pub(crate) fn record_success(&self, key: &PlanKey) -> bool {
        self.entries
            .lock()
            .expect("quarantine mutex poisoned")
            .remove(key)
            .is_some()
    }

    /// `(active, permanent)` occupancy: fingerprints currently held (in
    /// backoff or banned), and the banned subset.
    pub(crate) fn counts(&self) -> (usize, usize) {
        let entries = self.entries.lock().expect("quarantine mutex poisoned");
        let permanent = entries
            .values()
            .filter(|state| state.failures >= QUARANTINE_MAX_FAILURES)
            .count();
        (entries.len(), permanent)
    }
}

/// The multi-tenant planning service: one plan store, one search budget,
/// one admission policy (see the module docs for the batch lifecycle).
pub struct PlanService {
    budget: SearchBudget,
    admission: AdmissionPolicy,
    store: PlanStore,
    /// Evaluation caches **retained across batches**, one per canonical
    /// application fingerprint: a fingerprint that falls out of the plan
    /// store (capacity eviction) and comes back cold re-solves against its
    /// previously memoised ordering searches instead of recomputing every
    /// one.  Entries depend only on the canonical application (which the
    /// fingerprint determines), never on the model/objective — the tags
    /// partition the key space — so retention is always value-safe.  A
    /// fingerprint whose solve panics has its cache dropped defensively
    /// (the unwound solve may have left internal locks poisoned).
    caches: Mutex<HashMap<AppFingerprint, Arc<EvalCache>>>,
    /// Bound on the number of retained caches; on overflow the map is
    /// cleared wholesale (caches are pure memos, so dropping them costs
    /// recomputation, never correctness).
    cache_capacity: usize,
    quarantine: Quarantine,
    /// Observability registry plus pre-resolved span timers, when attached
    /// ([`Self::with_metrics`]).
    metrics: Option<ServiceMetrics>,
    /// Deterministic fault hook keyed by request ordinal (tests/harness).
    fault_hook: Option<Box<dyn Fn(u64) -> Option<InjectedFault> + Send + Sync>>,
    /// Requests received; doubles as the arrival-ordinal counter.
    requests: AtomicU64,
    cold: AtomicUsize,
    store_hits: AtomicUsize,
    dedup_hits: AtomicUsize,
    deadline_admits: AtomicUsize,
    degraded: AtomicUsize,
    admission_rejects: AtomicUsize,
    quarantine_rejects: AtomicUsize,
    panics: AtomicUsize,
    recovered: AtomicUsize,
}

impl PlanService {
    /// A service answering under `budget`, caching at most `store_capacity`
    /// plans (and retaining at most `store_capacity` per-fingerprint
    /// evaluation caches), gated by the hardened default admission policy
    /// ([`AdmissionPolicy::for_budget`]).
    pub fn new(budget: SearchBudget, store_capacity: usize) -> Self {
        PlanService {
            admission: AdmissionPolicy::for_budget(&budget),
            budget,
            store: PlanStore::new(store_capacity),
            caches: Mutex::new(HashMap::new()),
            cache_capacity: store_capacity.max(1),
            quarantine: Quarantine::new(),
            metrics: None,
            fault_hook: None,
            requests: AtomicU64::new(0),
            cold: AtomicUsize::new(0),
            store_hits: AtomicUsize::new(0),
            dedup_hits: AtomicUsize::new(0),
            deadline_admits: AtomicUsize::new(0),
            degraded: AtomicUsize::new(0),
            admission_rejects: AtomicUsize::new(0),
            quarantine_rejects: AtomicUsize::new(0),
            panics: AtomicUsize::new(0),
            recovered: AtomicUsize::new(0),
        }
    }

    /// Replaces the admission policy (e.g. [`AdmissionPolicy::open`] to
    /// admit everything, the pre-admission behaviour).
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Attaches an observability registry: admission pricing records an
    /// `admission.decide` span, the plan store mirrors its hit/miss/evict
    /// counters (`store.*`), every cold solve records a `serve.cold_solve`
    /// span and threads the registry down the solve pipeline (engine
    /// stream/expand/certify stages).  All instruments are pure
    /// observability — no served value or decision depends on them.
    pub fn with_metrics(mut self, registry: Arc<fsw_obs::MetricsRegistry>) -> Self {
        self.store.attach_metrics(&registry);
        self.metrics = Some(ServiceMetrics {
            admission: registry.span("admission.decide"),
            registry,
        });
        self
    }

    /// The attached observability registry, if any.
    pub fn metrics_registry(&self) -> Option<&Arc<fsw_obs::MetricsRegistry>> {
        self.metrics.as_ref().map(|m| &m.registry)
    }

    /// Installs a deterministic fault hook: before each cold solve the
    /// hook is called with the **arrival ordinal** of the leading request
    /// (0-based, counted across the service's lifetime), and any returned
    /// [`InjectedFault`] is applied to that solve.  Ordinals are assigned
    /// in submission order, so fault replays are independent of the worker
    /// thread count.
    pub fn with_fault_injection<F>(mut self, hook: F) -> Self
    where
        F: Fn(u64) -> Option<InjectedFault> + Send + Sync + 'static,
    {
        self.fault_hook = Some(Box::new(hook));
        self
    }

    /// `(hits, misses)` of the retained evaluation cache that `request`'s
    /// fingerprint resolves to, `None` when no cold solve has created one
    /// yet.  Tests assert cache retention across batches with this.
    pub fn eval_cache_stats(&self, request: &PlanRequest) -> Option<(usize, usize)> {
        let collapse = permutation_collapse_allowed(
            &request.app,
            request.model,
            request.objective,
            &self.budget,
        );
        let canon = CanonicalApplication::with_collapse(&request.app, collapse);
        self.caches
            .lock()
            .expect("cache mutex poisoned")
            .get(&canon.fingerprint)
            .map(|cache| cache.stats())
    }

    /// The budget every cold solve runs under.
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }

    /// The admission policy gating every request.
    pub fn admission(&self) -> &AdmissionPolicy {
        &self.admission
    }

    /// The underlying plan store.
    pub fn store(&self) -> &PlanStore {
        &self.store
    }

    /// One public snapshot of the whole tier: request counters, store
    /// counters, and quarantine occupancy (see [`ServeStats`]).
    pub fn serve_stats(&self) -> ServeStats {
        let (quarantine_active, quarantine_permanent) = self.quarantine.counts();
        ServeStats {
            service: self.stats(),
            store: self.store.stats(),
            quarantine_active,
            quarantine_permanent,
            // The batch path has no shed controller and never queues, so
            // the async-only counters are structurally zero here; the
            // async front end's `serve_stats` fills them in.
            shed_raises: 0,
            shed_lowers: 0,
            deadline_cancels: 0,
        }
    }

    /// The shared panic quarantine (the async front end gates through the
    /// same state machine as the batch path).
    pub(crate) fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Applies the installed fault hook to one request ordinal.
    pub(crate) fn injected_fault(&self, ordinal: u64) -> Option<InjectedFault> {
        self.fault_hook.as_ref().and_then(|hook| hook(ordinal))
    }

    /// Claims the next `n` arrival ordinals (and counts the requests).
    pub(crate) fn next_ordinals(&self, n: u64) -> u64 {
        self.requests.fetch_add(n, Ordering::Relaxed)
    }

    /// The retained evaluation cache for `canon`'s fingerprint, creating
    /// it (and bounding the retention map) when absent.
    pub(crate) fn retained_cache(&self, canon: &CanonicalApplication) -> Arc<EvalCache> {
        let mut retained = self.caches.lock().expect("cache mutex poisoned");
        if !retained.contains_key(&canon.fingerprint) {
            if retained.len() >= self.cache_capacity {
                retained.clear();
            }
            retained.insert(
                canon.fingerprint.clone(),
                Arc::new(EvalCache::new(&canon.app)),
            );
        }
        retained[&canon.fingerprint].clone()
    }

    /// Drops the retained cache of a fingerprint whose solve panicked or
    /// stalled (its internals may be poisoned mid-unwind).
    pub(crate) fn drop_cache(&self, fingerprint: &AppFingerprint) {
        self.caches
            .lock()
            .expect("cache mutex poisoned")
            .remove(fingerprint);
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed) as usize,
            cold: self.cold.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            deadline_admits: self.deadline_admits.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            admission_rejects: self.admission_rejects.load(Ordering::Relaxed),
            quarantine_rejects: self.quarantine_rejects.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
        }
    }

    /// Serves one request (a batch of one).
    pub fn serve_one(&self, request: &PlanRequest) -> CoreResult<ServeOutcome> {
        Ok(self
            .serve_batch(std::slice::from_ref(request))?
            .pop()
            .expect("one request, one response"))
    }

    /// Serves a batch: store lookups, quarantine + admission gates,
    /// in-flight dedup, cold solves on the worker pool (see the module
    /// docs).  Outcomes come back in request order; every
    /// [`Exact`](ServeOutcome::Exact) value is bit-identical to a cold
    /// solve of the tenant's own application under the service's budget.
    ///
    /// Every application is **validated before anything is keyed or
    /// solved**: an invalid tenant (NaN cost, negative selectivity, cyclic
    /// constraints, …) fails the whole batch up front rather than poisoning
    /// the fingerprint store with a garbage plan other tenants could then
    /// be served.
    pub fn serve_batch(&self, requests: &[PlanRequest]) -> CoreResult<Vec<ServeOutcome>> {
        for request in requests {
            request.app.validate()?;
        }
        let base_ordinal = self
            .requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        // 1. Canonicalise and key.
        let prepared: Vec<Prepared> = requests
            .iter()
            .map(|r| Prepared::of(r, &self.budget))
            .collect();
        // 2. + 3. + 4. Store lookups, quarantine + admission gates, and
        // in-flight dedup (leader per missing admitted key).  Same-batch
        // twins of a rejected key share the verdict without re-pricing or
        // draining extra quarantine ticks.
        let mut assignments: Vec<Assignment> = Vec::with_capacity(requests.len());
        let mut leaders: Vec<LeaderTask> = Vec::new();
        let mut in_flight: HashMap<&PlanKey, usize> = HashMap::new();
        let mut rejected_keys: HashMap<&PlanKey, Rejection> = HashMap::new();
        for (idx, prep) in prepared.iter().enumerate() {
            if let Some(slot) = in_flight.get(&prep.key) {
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                assignments.push(Assignment::Follower(*slot));
                continue;
            }
            if let Some(rejection) = rejected_keys.get(&prep.key) {
                self.count_rejection(&rejection.reason);
                assignments.push(Assignment::Rejected(rejection.clone()));
                continue;
            }
            if let Some(plan) = self.store.get(&prep.key) {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                assignments.push(Assignment::Hit(plan));
                continue;
            }
            if let Err(permanent) = self.quarantine.admit(&prep.key) {
                let rejection = Rejection {
                    reason: RejectReason::Quarantined { permanent },
                    estimate: None,
                };
                self.count_rejection(&rejection.reason);
                rejected_keys.insert(&prep.key, rejection.clone());
                assignments.push(Assignment::Rejected(rejection));
                continue;
            }
            let request = &requests[idx];
            let decision = {
                let _pricing = self
                    .metrics
                    .as_ref()
                    .and_then(|m| m.admission.start_sampled());
                self.admission
                    .decide(&request.app, request.model, request.objective, &self.budget)
            };
            let (time_limit, floor) = match decision {
                AdmissionDecision::Admit => (None, None),
                AdmissionDecision::AdmitWithDeadline {
                    time_limit,
                    estimate,
                } => {
                    self.deadline_admits.fetch_add(1, Ordering::Relaxed);
                    (Some(time_limit), estimate.value_floor)
                }
                AdmissionDecision::Reject { estimate } => {
                    let rejection = Rejection {
                        reason: RejectReason::AdmissionCost,
                        estimate: Some(estimate),
                    };
                    self.count_rejection(&rejection.reason);
                    rejected_keys.insert(&prep.key, rejection.clone());
                    assignments.push(Assignment::Rejected(rejection));
                    continue;
                }
            };
            let slot = leaders.len();
            leaders.push(LeaderTask {
                idx,
                ordinal: base_ordinal + idx as u64,
                time_limit,
                floor,
            });
            in_flight.insert(&prep.key, slot);
            self.cold.fetch_add(1, Ordering::Relaxed);
            assignments.push(Assignment::Leader(slot));
        }
        // 5. Drain the leaders onto the pool.  Each cold solve runs serial
        // inside (the fan-out is across requests) under its own deadline,
        // wrapped in `catch_unwind` so one panicking solve cannot take the
        // batch (or the process) down with it.
        let threads = match self.budget.threads {
            0 => std::thread::available_parallelism().map_or(1, |t| t.get()),
            t => t,
        };
        // One evaluation cache per distinct fingerprint, **retained across
        // batches**: the fingerprint determines the canonical application,
        // so leaders of the same application — in this batch under other
        // models/objectives, or in a later batch after the plan store
        // evicted the fingerprint — share the memoised ordering searches,
        // exactly like `solve_all`'s per-app sweep.  (`EvalCache` is `Sync`;
        // the workers only read their `Arc`s.)
        let caches: Vec<Arc<EvalCache>> = leaders
            .iter()
            .map(|task| self.retained_cache(&prepared[task.idx].canon))
            .collect();
        let solved: Vec<Result<StoredPlan, String>> =
            par_chunks(threads, &leaders, |base, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(offset, task)| {
                        let cache = &caches[base + offset];
                        let fault = self.fault_hook.as_ref().and_then(|hook| hook(task.ordinal));
                        let mut inner = SearchBudget {
                            threads: 1,
                            ..self.budget
                        };
                        if let Some(limit) = task.time_limit {
                            inner.time_limit =
                                Some(inner.time_limit.map_or(limit, |own| own.min(limit)));
                        }
                        if fault == Some(InjectedFault::DeadlineBlowout) {
                            inner.time_limit = Some(Duration::ZERO);
                        }
                        catch_unwind(AssertUnwindSafe(|| {
                            match fault {
                                Some(InjectedFault::Panic) => {
                                    panic!(
                                        "injected solver panic (request ordinal {})",
                                        task.ordinal
                                    )
                                }
                                Some(InjectedFault::Slow(stall)) => std::thread::sleep(stall),
                                _ => {}
                            }
                            cold_solve(
                                &prepared[task.idx],
                                requests[task.idx].model,
                                &inner,
                                cache,
                                self.metrics_registry(),
                            )
                        }))
                        .map_err(panic_message)
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        // Bookkeeping in leader order (deterministic store and quarantine
        // contents): only **exhaustive** plans enter the store; failures
        // are quarantined and their retained caches dropped (the unwound
        // solve may have left cache internals poisoned).
        for (slot, task) in leaders.iter().enumerate() {
            let key = &prepared[task.idx].key;
            match &solved[slot] {
                Ok(plan) => {
                    if self.quarantine.record_success(key) {
                        self.recovered.fetch_add(1, Ordering::Relaxed);
                    }
                    if plan.exhaustive {
                        self.store.insert(key.clone(), plan.clone());
                    } else {
                        // A degraded attempt burnt real wall time but stores
                        // nothing: remember the cost, so the eventual exact
                        // re-solve's eviction weight reflects the *full*
                        // recomputation price (degraded-then-exact upgrade).
                        self.store.record_attempt_cost(key, plan.solve_micros);
                    }
                }
                Err(_) => {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    self.quarantine.record_failure(key);
                    self.drop_cache(&key.fingerprint);
                }
            }
        }
        // Degraded leaders that were admitted without a priced floor (the
        // plain-admit band, or an open policy) get one certified now — the
        // degraded path is the slow path, so the bounded pricing pass is
        // affordable here.
        let floors: Vec<Option<f64>> = leaders
            .iter()
            .enumerate()
            .map(|(slot, task)| {
                if task.floor.is_some() {
                    return task.floor;
                }
                match &solved[slot] {
                    Ok(plan) if !plan.exhaustive => {
                        let r = &requests[task.idx];
                        self.admission
                            .certified_floor(&r.app, r.model, r.objective, &self.budget)
                    }
                    _ => None,
                }
            })
            .collect();
        // Fan the answers back out, relabelled per tenant.
        Ok(assignments
            .into_iter()
            .enumerate()
            .map(|(idx, assignment)| {
                let (plan, source, floor) = match assignment {
                    Assignment::Rejected(rejection) => return ServeOutcome::Rejected(rejection),
                    Assignment::Hit(plan) => (plan, ServeSource::Store, None),
                    Assignment::Leader(slot) => match &solved[slot] {
                        Ok(plan) => (plan.clone(), ServeSource::Cold, floors[slot]),
                        Err(message) => {
                            return ServeOutcome::Rejected(Rejection {
                                reason: RejectReason::SolverPanic {
                                    message: message.clone(),
                                },
                                estimate: None,
                            })
                        }
                    },
                    Assignment::Follower(slot) => match &solved[slot] {
                        Ok(plan) => (plan.clone(), ServeSource::Dedup, floors[slot]),
                        Err(message) => {
                            return ServeOutcome::Rejected(Rejection {
                                reason: RejectReason::SolverPanic {
                                    message: message.clone(),
                                },
                                estimate: None,
                            })
                        }
                    },
                };
                let graph = prepared[idx]
                    .canon
                    .graph_to_tenant(&plan.graph)
                    .expect("canonical plans relabel cleanly");
                let response = PlanResponse {
                    value: plan.value,
                    graph,
                    exhaustive: plan.exhaustive,
                    source,
                    solve_micros: plan.solve_micros,
                };
                if response.exhaustive {
                    ServeOutcome::Exact(response)
                } else {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                    let lower_bound = floor.unwrap_or(0.0);
                    let gap = if lower_bound > 0.0 {
                        (response.value - lower_bound) / lower_bound
                    } else {
                        f64::INFINITY
                    };
                    ServeOutcome::Degraded {
                        response,
                        lower_bound,
                        gap,
                    }
                }
            })
            .collect())
    }

    fn count_rejection(&self, reason: &RejectReason) {
        match reason {
            RejectReason::AdmissionCost => {
                self.admission_rejects.fetch_add(1, Ordering::Relaxed);
            }
            RejectReason::Quarantined { .. } => {
                self.quarantine_rejects.fetch_add(1, Ordering::Relaxed);
            }
            // Panic rejections are counted per failed leader (`panics`);
            // the remaining reasons are produced by the async front end,
            // which keeps its own counters.
            _ => {}
        }
    }

    /// Publishes an externally solved plan (an online re-plan from a
    /// [`crate::online::TenantSession`]) into the store, so later requests
    /// for the same fingerprint are served without a solve.  `graph` and
    /// `value` are in tenant labels; the entry is stored canonically.
    ///
    /// `solved_under` is the budget that produced the plan: a store hit
    /// promises the value a cold solve under *the service's* budget would
    /// return, so plans solved under any other budget (different caps,
    /// evaluation, or a time limit) are silently dropped instead of
    /// poisoning the store with a value the service itself would not
    /// compute.  Non-exhaustive plans are dropped for the same reason —
    /// the store only ever holds exact results (a degraded value must
    /// never be served as exhaustive).  Returns `true` when the plan was
    /// stored.
    #[allow(clippy::too_many_arguments)] // one flat record, not a call protocol
    pub fn publish(
        &self,
        app: &Application,
        model: CommModel,
        objective: Objective,
        solved_under: &SearchBudget,
        value: f64,
        graph: &ExecutionGraph,
        exhaustive: bool,
        solve_micros: u64,
    ) -> bool {
        if !exhaustive || *solved_under != self.budget {
            return false;
        }
        let collapse = permutation_collapse_allowed(app, model, objective, &self.budget);
        let canon = CanonicalApplication::with_collapse(app, collapse);
        let Ok(canonical_graph) = canon.graph_to_canonical(graph) else {
            return false;
        };
        let key = PlanKey {
            fingerprint: canon.fingerprint.clone(),
            model,
            objective,
        };
        self.store.insert(
            key,
            StoredPlan {
                value,
                graph: canonical_graph,
                exhaustive,
                solve_micros,
            },
        );
        true
    }
}

/// One cold solve over the canonical application, timed for the store.
/// When a registry is attached it records a `serve.cold_solve` span and is
/// threaded down the solve pipeline (`solve.search`/`solve.orchestrate`
/// spans, engine stream/expand/certify stages).
pub(crate) fn cold_solve(
    prep: &Prepared,
    model: CommModel,
    budget: &SearchBudget,
    cache: &EvalCache,
    metrics: Option<&Arc<fsw_obs::MetricsRegistry>>,
) -> StoredPlan {
    let problem = Problem::new(&prep.canon.app, model, prep.key.objective);
    let started = Instant::now();
    let span = metrics.map(|r| r.span("serve.cold_solve"));
    let guard = span.as_ref().map(|t| t.start());
    let solution = solve_warm_observed(&problem, budget, cache, None, metrics)
        .map(|(solution, _)| solution)
        .expect("serving requests are validated applications");
    drop(guard);
    let solve_micros = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    StoredPlan {
        value: solution.value,
        graph: solution.graph,
        exhaustive: solution.exhaustive,
        solve_micros,
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "solver panicked".to_string()
    }
}

/// The store-aware batch entry point over a **fleet** of applications: every
/// `(application, model, objective)` combination becomes one request, the
/// whole fleet goes through a transient [`PlanService`] batch (so
/// applications identical after canonicalisation are solved **once**), and
/// the responses come back grouped per application in request order.
///
/// The transient service runs with an **open** admission policy
/// ([`AdmissionPolicy::open`]): the caller owns the fleet and wants an
/// answer for every member, so oversized instances come back as their
/// budget-capped best effort (`exhaustive == false`) instead of being
/// rejected.
///
/// This supersedes looping `fsw_sched::orchestrator::solve_all` over the
/// fleet, which solved every tenant separately even when all twelve were
/// the same canonical problem.
pub fn solve_all(
    apps: &[Application],
    requests: &[(CommModel, Objective)],
    budget: &SearchBudget,
) -> CoreResult<Vec<Vec<PlanResponse>>> {
    let service = PlanService::new(*budget, (apps.len() * requests.len()).max(1))
        .with_admission(AdmissionPolicy::open());
    let batch: Vec<PlanRequest> = apps
        .iter()
        .flat_map(|app| {
            requests
                .iter()
                .map(|&(model, objective)| PlanRequest::new(app.clone(), model, objective))
        })
        .collect();
    let mut responses = service.serve_batch(&batch)?.into_iter().map(|outcome| {
        outcome
            .into_response()
            .expect("open admission answers every validated request")
    });
    Ok(apps
        .iter()
        .map(|_| responses.by_ref().take(requests.len()).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_sched::orchestrator::solve;

    fn budget() -> SearchBudget {
        SearchBudget::default()
    }

    fn key_of(specs: &[(f64, f64)]) -> PlanKey {
        PlanKey {
            fingerprint: CanonicalApplication::of(&Application::independent(specs)).fingerprint,
            model: CommModel::Overlap,
            objective: Objective::MinPeriod,
        }
    }

    #[test]
    fn identical_tenants_dedup_in_flight_and_hit_the_store_across_batches() {
        let service = PlanService::new(budget(), 16);
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8)]);
        let request = PlanRequest::new(app.clone(), CommModel::Overlap, Objective::MinPeriod);
        let batch = vec![request.clone(), request.clone(), request.clone()];
        let outcomes = service.serve_batch(&batch).unwrap();
        assert_eq!(outcomes[0].expect_exact().source, ServeSource::Cold);
        assert_eq!(outcomes[1].expect_exact().source, ServeSource::Dedup);
        assert_eq!(outcomes[2].expect_exact().source, ServeSource::Dedup);
        // All three answers are the same bits.
        let cold = solve(
            &Problem::new(&app, CommModel::Overlap, Objective::MinPeriod),
            &budget(),
        )
        .unwrap();
        for outcome in &outcomes {
            let r = outcome.expect_exact();
            assert_eq!(r.value, cold.value);
            assert_eq!(r.exhaustive, cold.exhaustive);
        }
        // A later batch is served from the store.
        let again = service.serve_one(&request).unwrap();
        assert_eq!(again.expect_exact().source, ServeSource::Store);
        assert_eq!(again.expect_exact().value, cold.value);
        let stats = service.stats();
        assert_eq!((stats.cold, stats.dedup_hits, stats.store_hits), (1, 2, 1));
    }

    #[test]
    fn permuted_tenants_share_one_solve_on_invariant_paths() {
        let a = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8)]);
        let b = Application::independent(&[(3.0, 0.8), (2.0, 0.5), (1.0, 2.0)]);
        let service = PlanService::new(budget(), 16);
        let outcomes = service
            .serve_batch(&[
                PlanRequest::new(a.clone(), CommModel::InOrder, Objective::MinPeriod),
                PlanRequest::new(b.clone(), CommModel::InOrder, Objective::MinPeriod),
            ])
            .unwrap();
        assert_eq!(outcomes[0].expect_exact().source, ServeSource::Cold);
        assert_eq!(outcomes[1].expect_exact().source, ServeSource::Dedup);
        // Each tenant's served value equals its own cold solve, bit for bit
        // (the LowerBound MINPERIOD path is label-invariant).
        for (app, outcome) in [(&a, &outcomes[0]), (&b, &outcomes[1])] {
            let response = outcome.expect_exact();
            let cold = solve(
                &Problem::new(app, CommModel::InOrder, Objective::MinPeriod),
                &budget(),
            )
            .unwrap();
            assert_eq!(response.value, cold.value);
            // The served graph is valid for the tenant and achieves the value.
            response.graph.respects(app).unwrap();
        }
    }

    #[test]
    fn publish_refuses_foreign_budgets_and_non_exhaustive_plans() {
        let service = PlanService::new(budget(), 8);
        let app = Application::independent(&[(1.0, 0.5), (2.0, 0.6)]);
        let graph = fsw_core::ExecutionGraph::new(2);
        // A starved budget produces values the service's own cold solves
        // would not return: the store must not accept them.
        let starved = SearchBudget {
            max_graphs: 1,
            ..budget()
        };
        assert!(!service.publish(
            &app,
            CommModel::Overlap,
            Objective::MinPeriod,
            &starved,
            9.0,
            &graph,
            true,
            10
        ));
        // A degraded plan under the right budget is refused too: the store
        // only ever holds exhaustive results.
        assert!(!service.publish(
            &app,
            CommModel::Overlap,
            Objective::MinPeriod,
            &budget(),
            9.0,
            &graph,
            false,
            10
        ));
        assert_eq!(service.store().stats().len, 0);
        // The service's own budget with an exhaustive plan is accepted.
        assert!(service.publish(
            &app,
            CommModel::Overlap,
            Objective::MinPeriod,
            &budget(),
            9.0,
            &graph,
            true,
            10
        ));
        assert_eq!(service.store().stats().len, 1);
    }

    #[test]
    fn invalid_applications_are_rejected_before_solving_or_caching() {
        let service = PlanService::new(budget(), 8);
        let bad = Application::independent(&[(f64::NAN, 0.5), (2.0, 0.6), (1.0, -3.0)]);
        let request = PlanRequest::new(bad, CommModel::Overlap, Objective::MinPeriod);
        assert!(service.serve_one(&request).is_err());
        // Nothing was counted, solved or cached — the store cannot be
        // poisoned with a garbage plan other tenants could be served.
        let stats = service.stats();
        assert_eq!((stats.requests, stats.cold), (0, 0));
        assert_eq!(service.store().stats().len, 0);
    }

    #[test]
    fn collapse_gate_requires_exhaustive_coverage_and_no_deadline() {
        // n = 10 with all-distinct weights: the labelled forest space
        // (10^10) dwarfs max_graphs and no symmetry reduction applies, so
        // the solve would fall back to label-following local search —
        // permuted tenants must not collapse there.
        let specs: Vec<(f64, f64)> = (0..10)
            .map(|k| (1.0 + k as f64, 0.5 + 0.01 * k as f64))
            .collect();
        let wide = Application::independent(&specs);
        for objective in [Objective::MinPeriod, Objective::MinLatency] {
            assert!(!permutation_collapse_allowed(
                &wide,
                CommModel::Overlap,
                objective,
                &budget()
            ));
        }
        // A uniform n = 10 instance is covered through the canonical space.
        let uniform = Application::independent(&[(2.0, 0.5); 10]);
        assert!(permutation_collapse_allowed(
            &uniform,
            CommModel::Overlap,
            Objective::MinPeriod,
            &budget()
        ));
        // A time limit makes any interrupted enumeration walk-order (and
        // wall-clock) dependent: no collapse, however small the instance.
        let small = Application::independent(&[(1.0, 0.5), (2.0, 0.6), (3.0, 0.7)]);
        assert!(permutation_collapse_allowed(
            &small,
            CommModel::Overlap,
            Objective::MinPeriod,
            &budget()
        ));
        let limited = budget().with_time_limit(std::time::Duration::from_secs(1));
        assert!(!permutation_collapse_allowed(
            &small,
            CommModel::Overlap,
            Objective::MinPeriod,
            &limited
        ));
    }

    #[test]
    fn label_following_paths_do_not_collapse_permutations() {
        // MINLATENCY at n <= dag_enumeration_max_n runs ordering searches:
        // permuted tenants must keep distinct fingerprints there.
        let a = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8)]);
        let b = Application::independent(&[(3.0, 0.8), (2.0, 0.5), (1.0, 2.0)]);
        assert!(!permutation_collapse_allowed(
            &a,
            CommModel::InOrder,
            Objective::MinLatency,
            &budget()
        ));
        let service = PlanService::new(budget(), 16);
        let outcomes = service
            .serve_batch(&[
                PlanRequest::new(a, CommModel::InOrder, Objective::MinLatency),
                PlanRequest::new(b, CommModel::InOrder, Objective::MinLatency),
            ])
            .unwrap();
        assert_eq!(outcomes[0].expect_exact().source, ServeSource::Cold);
        assert_eq!(outcomes[1].expect_exact().source, ServeSource::Cold);
    }

    #[test]
    fn fleet_solve_all_groups_responses_per_application() {
        let apps = vec![
            Application::independent(&[(1.0, 0.5), (2.0, 0.8)]),
            Application::independent(&[(2.0, 0.8), (1.0, 0.5)]), // permutation of the first
        ];
        let requests = [
            (CommModel::Overlap, Objective::MinPeriod),
            (CommModel::InOrder, Objective::MinPeriod),
        ];
        let grouped = solve_all(&apps, &requests, &budget()).unwrap();
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].len(), 2);
        // The permuted twin is fully deduplicated.
        assert!(grouped[1].iter().all(|r| r.source == ServeSource::Dedup));
        for (app, responses) in apps.iter().zip(&grouped) {
            for (&(model, objective), response) in requests.iter().zip(responses) {
                let cold = solve(&Problem::new(app, model, objective), &budget()).unwrap();
                assert_eq!(response.value, cold.value, "{model} {objective}");
            }
        }
    }

    #[test]
    fn oversized_requests_are_rejected_with_an_estimate_before_any_solve() {
        let service = PlanService::new(budget(), 8);
        let specs: Vec<(f64, f64)> = (0..24)
            .map(|k| (1.0 + k as f64, 0.3 + 0.02 * k as f64))
            .collect();
        let jumbo = PlanRequest::new(
            Application::independent(&specs),
            CommModel::Overlap,
            Objective::MinPeriod,
        );
        let outcome = service.serve_one(&jumbo).unwrap();
        let rejection = outcome.rejection().expect("n=24 distinct must reject");
        assert_eq!(rejection.reason, RejectReason::AdmissionCost);
        let estimate = rejection.estimate.expect("admission rejects carry a price");
        assert!(estimate.cost > service.admission().reject_cost);
        let stats = service.stats();
        assert_eq!((stats.cold, stats.admission_rejects), (0, 1));
        assert_eq!(service.store().stats().len, 0, "no plan was stored");
    }

    #[test]
    fn degrade_band_requests_come_back_degraded_with_an_admissible_floor() {
        // n = 8 all-distinct sits in the degrade band (8^8 raw plans): the
        // solve runs under the degrade deadline, falls back to local
        // search, and the outcome is Degraded with value >= floor > 0.
        let service = PlanService::new(budget(), 8);
        let specs: Vec<(f64, f64)> = (0..8)
            .map(|k| (1.0 + k as f64, 0.4 + 0.05 * k as f64))
            .collect();
        let request = PlanRequest::new(
            Application::independent(&specs),
            CommModel::Overlap,
            Objective::MinPeriod,
        );
        let outcome = service.serve_one(&request).unwrap();
        let ServeOutcome::Degraded {
            response,
            lower_bound,
            gap,
        } = &outcome
        else {
            panic!("n=8 distinct must degrade, got {outcome:?}");
        };
        assert!(!response.exhaustive);
        assert!(*lower_bound > 0.0, "n=8 prices a certified floor");
        assert!(response.value >= *lower_bound);
        assert!(*gap >= 0.0 && gap.is_finite());
        let stats = service.stats();
        assert_eq!((stats.deadline_admits, stats.degraded), (1, 1));
        // Degraded results are never cached: a repeat request re-solves.
        assert_eq!(service.store().stats().len, 0);
        let again = service.serve_one(&request).unwrap();
        assert!(matches!(again, ServeOutcome::Degraded { .. }));
        assert_eq!(service.stats().cold, 2);
    }

    #[test]
    fn a_panicking_leader_rejects_its_followers_and_quarantines_the_key() {
        let service = PlanService::new(budget(), 16)
            .with_fault_injection(|ordinal| (ordinal == 0).then_some(InjectedFault::Panic));
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8)]);
        let request = PlanRequest::new(app, CommModel::Overlap, Objective::MinPeriod);
        let batch = vec![request.clone(), request.clone(), request.clone()];
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcomes = service.serve_batch(&batch).unwrap();
        std::panic::set_hook(quiet);
        // Leader and both followers observe the panic — nobody hangs, and
        // nothing entered the store.
        assert_eq!(outcomes.len(), 3);
        for outcome in &outcomes {
            let rejection = outcome.rejection().expect("panic must reject");
            assert!(matches!(rejection.reason, RejectReason::SolverPanic { .. }));
        }
        assert_eq!(service.store().stats().len, 0);
        assert_eq!(service.stats().panics, 1);
        // The fingerprint is now in backoff: the next requests are
        // rejected as quarantined without touching the pool.
        let next = service.serve_one(&request).unwrap();
        assert_eq!(
            next.rejection().map(|r| &r.reason),
            Some(&RejectReason::Quarantined { permanent: false })
        );
        assert_eq!(service.stats().cold, 1, "no second solve during backoff");
        // Once the backoff window (2 requests after the first failure)
        // drains, a retry is allowed — the fault fired only on ordinal 0,
        // so the retry succeeds and the quarantine entry clears.
        let _ = service.serve_one(&request).unwrap();
        let retried = service.serve_one(&request).unwrap();
        assert!(retried.is_exact(), "retry after backoff must solve");
        let stats = service.stats();
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.quarantine_rejects, 2);
    }

    #[test]
    fn repeated_panics_make_the_quarantine_permanent() {
        // Every solve of this fingerprint panics: after
        // QUARANTINE_MAX_FAILURES failed retries the key is permanently
        // rejected and the pool is never touched again.
        let service =
            PlanService::new(budget(), 16).with_fault_injection(|_| Some(InjectedFault::Panic));
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0)]);
        let request = PlanRequest::new(app, CommModel::Overlap, Objective::MinPeriod);
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut permanent_seen = false;
        for _ in 0..32 {
            let outcome = service.serve_one(&request).unwrap();
            if let Some(Rejection {
                reason: RejectReason::Quarantined { permanent: true },
                ..
            }) = outcome.rejection()
            {
                permanent_seen = true;
                break;
            }
        }
        std::panic::set_hook(quiet);
        assert!(permanent_seen, "quarantine never became permanent");
        let stats = service.stats();
        assert_eq!(stats.panics, QUARANTINE_MAX_FAILURES as usize);
        // Once permanent, no further solve attempts happen.
        let cold_before = service.stats().cold;
        let outcome = service.serve_one(&request).unwrap();
        assert_eq!(
            outcome.rejection().map(|r| &r.reason),
            Some(&RejectReason::Quarantined { permanent: true })
        );
        assert_eq!(service.stats().cold, cold_before);
    }

    #[test]
    fn quarantine_state_machine_backs_off_exponentially() {
        let quarantine = Quarantine::new();
        let key = key_of(&[(1.0, 0.5), (2.0, 0.6)]);
        // Fresh keys are admitted.
        assert_eq!(quarantine.admit(&key), Ok(()));
        // First failure: backoff of 2 requests, then a retry is allowed.
        quarantine.record_failure(&key);
        assert_eq!(quarantine.admit(&key), Err(false));
        assert_eq!(quarantine.admit(&key), Err(false));
        assert_eq!(quarantine.admit(&key), Ok(()));
        // Second failure: backoff doubles to 4.
        quarantine.record_failure(&key);
        for _ in 0..4 {
            assert_eq!(quarantine.admit(&key), Err(false));
        }
        assert_eq!(quarantine.admit(&key), Ok(()));
        // Third failure: permanent, forever.
        quarantine.record_failure(&key);
        for _ in 0..8 {
            assert_eq!(quarantine.admit(&key), Err(true));
        }
    }

    #[test]
    fn quarantine_success_clears_the_entry() {
        let quarantine = Quarantine::new();
        let key = key_of(&[(3.0, 0.7)]);
        quarantine.record_failure(&key);
        assert_eq!(quarantine.admit(&key), Err(false));
        assert!(quarantine.record_success(&key), "entry existed");
        assert!(!quarantine.record_success(&key), "entry already cleared");
        // A cleared key is fresh again: full failure budget, no backoff.
        assert_eq!(quarantine.admit(&key), Ok(()));
        quarantine.record_failure(&key);
        assert_eq!(quarantine.admit(&key), Err(false));
    }

    #[test]
    fn deadline_blowouts_degrade_deterministically() {
        // A blown deadline (time_limit = 0) forces the deterministic
        // serial fallback: the outcome is Degraded and identical across
        // runs, and nothing enters the store.
        let make = || {
            PlanService::new(budget(), 8)
                .with_fault_injection(|_| Some(InjectedFault::DeadlineBlowout))
        };
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8), (1.5, 0.6)]);
        let request = PlanRequest::new(app, CommModel::Overlap, Objective::MinPeriod);
        let first = make().serve_one(&request).unwrap();
        let second = make().serve_one(&request).unwrap();
        let (a, b) = match (&first, &second) {
            (
                ServeOutcome::Degraded { response: a, .. },
                ServeOutcome::Degraded { response: b, .. },
            ) => (a, b),
            other => panic!("blowouts must degrade, got {other:?}"),
        };
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert!(!a.exhaustive);
    }
}
