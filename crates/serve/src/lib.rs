//! # fsw-serve — the multi-tenant planning service
//!
//! The serving layer above `fsw_sched::orchestrator`: a fleet of tenant
//! applications sends planning requests, and most of them are the same
//! problem wearing different labels.  This crate turns that observation into
//! throughput with four pieces:
//!
//! * **fingerprinting** — every request is keyed by its
//!   [`fsw_core::AppFingerprint`] plus model and objective (the canonical
//!   weight multiset and constraint set, see [`store::PlanKey`]): tenants
//!   identical after canonicalisation share one solve;
//! * **a plan store** ([`store::PlanStore`]) — fingerprint-keyed cached
//!   plans with *cost-aware eviction*: entries are weighed by the wall time
//!   their solve cost, so a 0.2 s exhaustive result outlives a crowd of
//!   millisecond tree solves;
//! * **a batched request queue** ([`service::PlanService`]) — a batch is
//!   canonicalised, answered from the store where possible, deduplicated
//!   in flight (one solve per distinct fingerprint per batch) and the
//!   remaining cold solves drain onto the `fsw_sched::par` thread pool,
//!   each under its own [`SearchBudget`](fsw_sched::orchestrator::SearchBudget)
//!   deadline;
//! * **online re-planning** ([`online::TenantSession`]) — a tenant's
//!   service set evolves (arrivals, departures, weight changes) and the
//!   session re-plans *incrementally*: the previous plan is adapted to the
//!   mutated instance, its value seeds the search incumbent
//!   ([`fsw_sched::orchestrator::solve_warm`]), and a **plan-churn** metric
//!   reports how many parent assignments moved, so stability is measurable.
//!
//! Since the hardening pass, the service also **prices every request
//! before solving it** ([`admission`]): an O(shapes) structural cost
//! estimate decides Admit / AdmitWithDeadline / Reject before any
//! enumeration starts, responses are a three-way
//! [`ServeOutcome`](service::ServeOutcome) (`Exact` / `Degraded` /
//! `Rejected`), solver panics are caught and quarantined instead of
//! poisoning the queue, and a deterministic fault hook
//! ([`PlanService::with_fault_injection`](service::PlanService::with_fault_injection))
//! makes all of it testable under replay.
//!
//! Since the async pass, an optional **event-loop front end**
//! ([`frontend::AsyncFrontend`]) sits above `serve_batch`: callers get a
//! [`Ticket`](frontend::Ticket) from a bounded per-tenant ingress queue
//! instead of blocking on a batch, the live backlog feeds back into the
//! admission thresholds (adaptive load shedding with hysteresis),
//! deadlines propagate to dequeue-time cancellation, and worker
//! heartbeats time out stalled solves into the quarantine — all decisions
//! on one loop thread in logical ticks, so replays are deterministic
//! across worker counts.  The async request lifecycle:
//!
//! ```text
//!   submit(tenant, request) ──► ticket        (never blocks)
//!        │ bounded tenant queue ──full──► Rejected{QueueFull}
//!        ▼ dequeue (round-robin, ≤ dispatch_per_tick per tick)
//!   deadline check ──expired──► Rejected{DeadlineExpired}
//!        ▼
//!   store hit ──► Exact (same tick)
//!        ▼ miss
//!   quarantine ──► Rejected{Quarantined}
//!        ▼ clear
//!   admission @ thresholds >> shed_level      (backlog feedback)
//!        │        └─over scaled reject──► Rejected{Shed{level}}
//!        ▼ admit / degrade-band / predicted-deadline-miss
//!   dispatch ──► worker pool ──► completion event (due-tick order)
//!        │                           │ heartbeat timeout
//!        ▼                           ▼
//!   Exact / Degraded            Rejected{WorkerStall} ─► quarantine
//! ```
//!
//! The request lifecycle, end to end:
//!
//! ```text
//!   request (app, model, objective)
//!        │ canonicalise                  fsw_core::CanonicalApplication
//!        ▼
//!   fingerprint ──► plan store ──hit──────► relabel ──► Exact
//!        │ miss                                ▲
//!        ▼                                     │
//!   quarantine gate ──backoff/permanent──► Rejected
//!        │ clear                               │
//!        ▼                                     │
//!   admission pricing (O(shapes))              │
//!        │    │            └─over reject_cost► Rejected{estimate}
//!        │    └─degrade band: arm deadline     │
//!        ▼                                     │
//!   in-flight dedup (one leader per key)       │
//!        │ leaders                             │
//!        ▼                                     │
//!   par::Exec pool ── catch_unwind ┬─ exhaustive ─► store insert ─► Exact
//!     (solve_with_cache)           ├─ interrupted ─► Degraded{floor, gap}
//!                                  └─ panic ─► quarantine ─► Rejected
//!                                              (followers woken with the
//!                                               leader's error — no hangs)
//! ```
//!
//! Every served **`Exact`** value is bit-identical to a cold solve of the
//! tenant's own application: the permutation collapse only engages on
//! solve paths that are provably label-invariant (see
//! [`service::permutation_collapse_allowed`]), warm-started re-plans
//! return the same winner as cold ones by the strict-clearance pruning
//! contract, and the plan store never holds a non-exhaustive entry (store
//! writes and [`PlanService::publish`](service::PlanService::publish) are
//! both gated on exhaustiveness).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod frontend;
pub mod online;
pub mod service;
pub mod store;

pub use admission::{AdmissionDecision, AdmissionPolicy, CostEstimate};
pub use frontend::{
    AsyncFrontend, Completion, FrontendConfig, FrontendFault, FrontendStats, Ticket,
};
pub use online::{ReplanOutcome, TenantEvent, TenantSession};
pub use service::{
    permutation_collapse_allowed, solve_all, InjectedFault, PlanRequest, PlanResponse, PlanService,
    RejectReason, Rejection, ServeOutcome, ServeSource, ServeStats, ServiceStats,
};
pub use store::{PlanKey, PlanStore, StoreStats, StoredPlan};
