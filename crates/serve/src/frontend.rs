//! The async serving front end: a deterministic event loop over bounded
//! per-tenant ingress queues.
//!
//! [`PlanService::serve_batch`](crate::service::PlanService::serve_batch)
//! is synchronous: callers block while a batch drains, queue depth is
//! invisible to the admission policy, and one stalled worker stalls the
//! fleet.  [`AsyncFrontend`] closes that gap with a small event-driven
//! runtime (no async executor — the container is offline and the loop is
//! deterministic by construction, the same replay-equals-live shape as
//! event-driven backtesting engines):
//!
//! * **bounded ingress** — [`submit`](AsyncFrontend::submit) never blocks:
//!   it enqueues into the tenant's bounded queue and returns a [`Ticket`];
//!   a full queue sheds the request *at ingress*
//!   ([`RejectReason::QueueFull`]) so queue memory stays under the
//!   configured bound whatever the arrival rate;
//! * **logical time** — the loop advances in ticks
//!   ([`tick`](AsyncFrontend::tick)).  Each tick applies due completion
//!   events in dispatch order, then dequeues up to
//!   [`dispatch_per_tick`](FrontendConfig::dispatch_per_tick) requests
//!   round-robin across tenants, then updates the shed level.  Every
//!   decision (admission, shedding, deadlines, dedup, store/quarantine
//!   bookkeeping) happens on the loop thread in logical time, so outcomes
//!   are **identical across worker-thread counts** — only wall latency
//!   varies;
//! * **adaptive backpressure** — the backlog (queued requests) feeds back
//!   into the [`AdmissionPolicy`](crate::admission::AdmissionPolicy)
//!   thresholds: each shed level halves the admit/reject costs, levels
//!   move one step per tick between the
//!   [`backlog_high`](FrontendConfig::backlog_high)/
//!   [`backlog_low`](FrontendConfig::backlog_low) watermarks
//!   (hysteresis — no flapping), and a request shed *only because* of the
//!   tightened threshold reports [`RejectReason::Shed`] with the level
//!   that shed it;
//! * **deadline propagation** — a request may carry a deadline in ticks;
//!   one that has already expired when dequeued is cancelled
//!   ([`RejectReason::DeadlineExpired`]) instead of solved uselessly, and
//!   one *predicted* to miss (dequeue tick + modelled solve latency past
//!   the deadline) is degraded — solved under the admission policy's
//!   degrade deadline rather than at full budget;
//! * **stall detection** — workers heartbeat by recording when they pick a
//!   job up; the loop's completion wait times a started solve out after
//!   [`stall_timeout`](FrontendConfig::stall_timeout), hands the
//!   fingerprint to the existing panic quarantine, resolves the ticket
//!   (and its dedup followers) as [`RejectReason::WorkerStall`], spawns a
//!   replacement worker, and the abandoned solve's late result is
//!   discarded — a wedged solve costs one worker, never the fleet.
//!
//! The shared state — plan store, quarantine, retained evaluation caches,
//! request ordinals — is the owning [`PlanService`]'s, so the sync batch
//! path and the async path see one serving tier.  Completion events are
//! applied in dispatch order (due ticks are monotone in dispatch order),
//! which makes store and quarantine contents a pure function of the
//! submission sequence: the fault-replay digests in `fsw_sim` assert
//! byte-equality across 1/2/4 workers on exactly this property.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fsw_core::{CommModel, CoreResult};
use fsw_obs::{Counter, Gauge, LogHistogram, MetricsRegistry, SpanTimer, TrafficSketch};
use fsw_sched::engine::EvalCache;
use fsw_sched::orchestrator::SearchBudget;

use crate::service::{
    cold_solve, panic_message, InjectedFault, PlanRequest, PlanResponse, PlanService, Prepared,
    RejectReason, Rejection, ServeOutcome, ServeSource, ServeStats,
};
use crate::store::{PlanKey, StoredPlan};

/// Hard cap on the modelled solve latency, in ticks (keeps due ticks from
/// running away on jumbo estimates; the cap is the degrade band anyway).
const MAX_LATENCY_TICKS: u64 = 8;
/// Replacement workers the pool may spawn over its lifetime when stalls
/// consume the original ones.
const MAX_REPLACEMENT_WORKERS: usize = 16;
/// Rows of the per-tenant traffic sketches (`tenant.*`).
const TENANT_SKETCH_DEPTH: usize = 4;
/// Counters per row of the per-tenant traffic sketches.
const TENANT_SKETCH_WIDTH: usize = 64;

/// Tuning of one [`AsyncFrontend`] (all thresholds in logical units; see
/// the module docs for how each feeds the loop).
#[derive(Clone, Copy, Debug)]
pub struct FrontendConfig {
    /// Worker threads solving dispatched requests (wall parallelism only —
    /// outcomes are identical for any value ≥ 1).
    pub workers: usize,
    /// Bound on each tenant's ingress queue; arrivals beyond it are shed
    /// at ingress with [`RejectReason::QueueFull`].
    pub queue_capacity: usize,
    /// Requests dequeued (round-robin across tenants) per tick.
    pub dispatch_per_tick: usize,
    /// Backlog at or above which the shed level rises (one step per tick).
    pub backlog_high: usize,
    /// Backlog at or below which the shed level falls (one step per tick).
    pub backlog_low: usize,
    /// Ceiling on the shed level (each level halves the admission
    /// thresholds).
    pub max_shed_level: u32,
    /// Structural cost per logical tick — the latency model dividing an
    /// admission estimate into a scheduled completion tick.
    pub cost_per_tick: u128,
    /// Default deadline (in ticks from submission) stamped on every
    /// request; `None` leaves requests deadline-free unless
    /// [`submit_with_deadline`](AsyncFrontend::submit_with_deadline) is
    /// used.
    pub deadline_ticks: Option<u64>,
    /// Wall-clock watchdog: a solve still running this long after a worker
    /// picked it up is declared stalled.
    pub stall_timeout: Duration,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            workers: 1,
            queue_capacity: 64,
            dispatch_per_tick: 8,
            backlog_high: 48,
            backlog_low: 16,
            max_shed_level: 8,
            cost_per_tick: 1 << 18,
            deadline_ticks: None,
            stall_timeout: Duration::from_secs(2),
        }
    }
}

/// A claim on one submitted request; resolves to exactly one
/// [`Completion`] from [`AsyncFrontend::tick`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

impl Ticket {
    /// The ticket's id (issue order within its front end).
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// One resolved ticket: the completion event the loop emits.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The ticket being resolved.
    pub ticket: Ticket,
    /// The tenant that submitted it.
    pub tenant: usize,
    /// The request's lifetime arrival ordinal (the fault-injection key,
    /// shared with the owning service's sync path).
    pub ordinal: u64,
    /// Tick at which the request was submitted.
    pub submitted_tick: u64,
    /// Tick at which the ticket resolved (logical latency =
    /// `completed_tick - submitted_tick`).
    pub completed_tick: u64,
    /// The outcome, same three-way contract as the sync path.
    pub outcome: ServeOutcome,
}

/// A deterministic async-layer fault injected by the replay harness,
/// keyed by request ordinal (see
/// [`AsyncFrontend::with_fault_injection`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontendFault {
    /// The worker solving this request stalls for the duration before
    /// doing any work — longer than the watchdog, it exercises stall
    /// detection end to end.
    StallWorker(Duration),
    /// The store shard holding this request's fingerprint responds slowly:
    /// the dequeue path sleeps before the lookup.  Wall-clock only — the
    /// decision sequence (and hence the digest) is unaffected.
    SlowShard(Duration),
}

/// Lifetime counters of one [`AsyncFrontend`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Tickets issued (including those resolved at ingress).
    pub submitted: usize,
    /// Tickets resolved.
    pub completed: usize,
    /// Requests shed at ingress because the tenant queue was full.
    pub queue_full_sheds: usize,
    /// Requests shed by adaptive backpressure (admitted at baseline,
    /// rejected at the tightened threshold).
    pub backpressure_sheds: usize,
    /// Requests rejected by the baseline admission policy.
    pub admission_rejects: usize,
    /// Requests rejected by the quarantine.
    pub quarantine_rejects: usize,
    /// Requests cancelled at dequeue because their deadline had expired.
    pub deadline_cancels: usize,
    /// Requests demoted to the degrade band because they were predicted to
    /// miss their deadline at full budget.
    pub deadline_degrades: usize,
    /// Requests answered from the plan store at dequeue.
    pub store_hits: usize,
    /// Requests that joined an in-flight solve of their key.
    pub dedup_joins: usize,
    /// Cold solves dispatched to the worker pool.
    pub dispatches: usize,
    /// Degraded responses served.
    pub degraded: usize,
    /// Solver panics caught.
    pub panics: usize,
    /// Solves timed out by the stall watchdog.
    pub stalls: usize,
    /// Quarantined fingerprints that completed a retry successfully.
    pub recovered: usize,
    /// Current shed level.
    pub shed_level: u32,
    /// Highest shed level reached.
    pub peak_shed_level: u32,
    /// Shed-level **raises**: ticks on which the backpressure controller
    /// actually stepped the level up (a tick already at
    /// [`max_shed_level`](FrontendConfig::max_shed_level) does not count).
    pub shed_raises: usize,
    /// Shed-level **lowers**: ticks on which the controller stepped the
    /// level back down.
    pub shed_lowers: usize,
    /// Largest backlog (total queued requests) observed at a tick end.
    pub peak_backlog: usize,
    /// Largest single-tenant queue depth observed (≤ the configured
    /// capacity, by the ingress bound).
    pub peak_tenant_queue: usize,
}

/// A ticket's identity while it waits: everything needed to resolve it.
struct TicketInfo {
    ticket: Ticket,
    tenant: usize,
    ordinal: u64,
    submitted_tick: u64,
    request: PlanRequest,
    prep: Arc<Prepared>,
}

/// One request sitting in a tenant's ingress queue.
struct QueuedRequest {
    ticket: Ticket,
    tenant: usize,
    ordinal: u64,
    submitted_tick: u64,
    deadline_tick: Option<u64>,
    request: PlanRequest,
}

/// One dispatched solve the loop is waiting on.
struct PendingJob {
    job: u64,
    key: PlanKey,
    due_tick: u64,
    degrade_floor: Option<f64>,
    leader: TicketInfo,
    followers: Vec<TicketInfo>,
}

/// A unit of work handed to the pool.
struct WorkItem {
    job: u64,
    prep: Arc<Prepared>,
    model: CommModel,
    budget: SearchBudget,
    cache: Arc<EvalCache>,
    fault: Option<InjectedFault>,
    /// Observability registry for the solve (cold-solve span + engine
    /// stages), when the front end has one attached.
    metrics: Option<Arc<MetricsRegistry>>,
}

/// Cached registry handles of one front end, resolved once at attachment
/// ([`AsyncFrontend::with_metrics`]) and recorded through atomics on the
/// hot paths.  The counters mirror [`FrontendStats`] one for one (same
/// increment sites), so a snapshot is checkable against the exact stats.
/// Wall-clock span durations are observability-only; the latency
/// histogram records **logical ticks** — a pure function of the logical
/// timeline, safe next to the replay digests.
struct FrontendMetrics {
    registry: Arc<MetricsRegistry>,
    /// `frontend.tick` — one span per event-loop tick.
    tick: SpanTimer,
    /// `frontend.watchdog` — one span per blocking completion wait (the
    /// stall watchdog's observation window).
    watchdog: SpanTimer,
    /// `admission.decide` — pricing span, same instruments as the sync
    /// batch path when both are attached to one registry.  Duration
    /// sampling ([`SpanTimer::start_sampled`]) keeps the per-request cost
    /// to one atomic; the call count stays exact.
    admission: SpanTimer,
    ingress: Arc<Counter>,
    completions: Arc<Counter>,
    queue_full_sheds: Arc<Counter>,
    backpressure_sheds: Arc<Counter>,
    admission_rejects: Arc<Counter>,
    quarantine_rejects: Arc<Counter>,
    deadline_cancels: Arc<Counter>,
    deadline_degrades: Arc<Counter>,
    store_hits: Arc<Counter>,
    dedup_joins: Arc<Counter>,
    dispatches: Arc<Counter>,
    degraded: Arc<Counter>,
    panics: Arc<Counter>,
    stalls: Arc<Counter>,
    recovered: Arc<Counter>,
    shed_raises: Arc<Counter>,
    shed_lowers: Arc<Counter>,
    /// `frontend.latency_ticks` — logical completion latency
    /// (`completed_tick - submitted_tick`) of every resolved ticket.
    latency_ticks: Arc<LogHistogram>,
    backlog: Arc<Gauge>,
    shed_level: Arc<Gauge>,
    /// `tenant.requests` — per-tenant submission traffic (sketched).
    tenant_requests: Arc<TrafficSketch>,
    /// `tenant.sheds` — per-tenant shed traffic (queue-full + backpressure).
    tenant_sheds: Arc<TrafficSketch>,
    /// `tenant.degrades` — per-tenant degraded responses (sketched).
    tenant_degrades: Arc<TrafficSketch>,
}

impl FrontendMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        FrontendMetrics {
            tick: registry.span("frontend.tick"),
            watchdog: registry.span("frontend.watchdog"),
            admission: registry.span("admission.decide"),
            ingress: registry.counter("frontend.ingress"),
            completions: registry.counter("frontend.completions"),
            queue_full_sheds: registry.counter("frontend.queue_full_sheds"),
            backpressure_sheds: registry.counter("frontend.backpressure_sheds"),
            admission_rejects: registry.counter("frontend.admission_rejects"),
            quarantine_rejects: registry.counter("frontend.quarantine_rejects"),
            deadline_cancels: registry.counter("frontend.deadline_cancels"),
            deadline_degrades: registry.counter("frontend.deadline_degrades"),
            store_hits: registry.counter("frontend.store_hits"),
            dedup_joins: registry.counter("frontend.dedup_joins"),
            dispatches: registry.counter("frontend.dispatches"),
            degraded: registry.counter("frontend.degraded"),
            panics: registry.counter("frontend.panics"),
            stalls: registry.counter("frontend.stalls"),
            recovered: registry.counter("frontend.recovered"),
            shed_raises: registry.counter("frontend.shed_raises"),
            shed_lowers: registry.counter("frontend.shed_lowers"),
            latency_ticks: registry.histogram("frontend.latency_ticks"),
            backlog: registry.gauge("frontend.backlog"),
            shed_level: registry.gauge("frontend.shed_level"),
            tenant_requests: registry.sketch(
                "tenant.requests",
                TENANT_SKETCH_DEPTH,
                TENANT_SKETCH_WIDTH,
            ),
            tenant_sheds: registry.sketch("tenant.sheds", TENANT_SKETCH_DEPTH, TENANT_SKETCH_WIDTH),
            tenant_degrades: registry.sketch(
                "tenant.degrades",
                TENANT_SKETCH_DEPTH,
                TENANT_SKETCH_WIDTH,
            ),
            registry,
        }
    }
}

/// State shared between the loop and the workers.
struct PoolShared {
    queue: Mutex<PoolQueue>,
    ready: Condvar,
}

struct PoolQueue {
    items: VecDeque<WorkItem>,
    /// Heartbeats: when each in-flight job was picked up.
    started: HashMap<u64, Instant>,
    /// Finished solves awaiting the loop.
    results: HashMap<u64, Result<StoredPlan, String>>,
    shutdown: bool,
}

/// The fixed-size worker pool behind the loop (std threads; the loop is
/// the only consumer of results, so ordering lives entirely on its side).
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    replacements: usize,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                items: VecDeque::new(),
                started: HashMap::new(),
                results: HashMap::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let mut pool = WorkerPool {
            shared,
            handles: Vec::new(),
            replacements: 0,
        };
        for _ in 0..workers.max(1) {
            pool.spawn_worker();
        }
        pool
    }

    fn spawn_worker(&mut self) {
        let shared = Arc::clone(&self.shared);
        self.handles.push(std::thread::spawn(move || loop {
            let item = {
                let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
                loop {
                    if queue.shutdown {
                        return;
                    }
                    if let Some(item) = queue.items.pop_front() {
                        queue.started.insert(item.job, Instant::now());
                        break item;
                    }
                    queue = shared.ready.wait(queue).unwrap_or_else(|p| p.into_inner());
                }
            };
            let result = catch_unwind(AssertUnwindSafe(|| {
                match item.fault {
                    Some(InjectedFault::Panic) => {
                        panic!("injected solver panic (request ordinal unknown to worker)")
                    }
                    Some(InjectedFault::Slow(stall)) => std::thread::sleep(stall),
                    _ => {}
                }
                cold_solve(
                    &item.prep,
                    item.model,
                    &item.budget,
                    &item.cache,
                    item.metrics.as_ref(),
                )
            }))
            .map_err(panic_message);
            let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.started.remove(&item.job);
            queue.results.insert(item.job, result);
            shared.ready.notify_all();
        }));
    }

    fn submit(&self, item: WorkItem) {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        queue.items.push_back(item);
        self.shared.ready.notify_all();
    }

    /// Blocks until `job` finishes or its heartbeat exceeds
    /// `stall_timeout`; `Err(())` declares a stall.  Due ticks are
    /// monotone in dispatch order, so every earlier job has already been
    /// applied when this is called — a job that has not started yet is
    /// about to be picked up by a free worker, never blocked behind
    /// unhandled work.
    fn wait(
        &mut self,
        job: u64,
        stall_timeout: Duration,
    ) -> Result<Result<StoredPlan, String>, ()> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = queue.results.remove(&job) {
                return Ok(result);
            }
            let wait_for = match queue.started.get(&job) {
                Some(started) => {
                    let elapsed = started.elapsed();
                    if elapsed >= stall_timeout {
                        drop(queue);
                        // The worker is wedged: restore pool capacity so
                        // queued jobs keep flowing (the abandoned worker
                        // rejoins whenever its solve finally returns).
                        if self.replacements < MAX_REPLACEMENT_WORKERS {
                            self.replacements += 1;
                            self.spawn_worker();
                        }
                        return Err(());
                    }
                    stall_timeout - elapsed
                }
                None => stall_timeout,
            };
            let (guard, _) = self
                .shared
                .ready
                .wait_timeout(queue, wait_for)
                .unwrap_or_else(|p| p.into_inner());
            queue = guard;
        }
    }

    /// Forgets a late result of an abandoned (stalled) job, if present.
    fn discard(&self, job: u64) -> bool {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .results
            .remove(&job)
            .is_some()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.shutdown = true;
            queue.items.clear();
        }
        self.shared.ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The deterministic event loop (see the module docs).  Single ownership:
/// the loop itself is not `Sync` — submissions and ticks happen on one
/// driver thread, parallelism lives in the worker pool behind it.
pub struct AsyncFrontend {
    service: Arc<PlanService>,
    config: FrontendConfig,
    fault_hook: Option<Box<dyn Fn(u64) -> Option<FrontendFault> + Send + Sync>>,
    tick: u64,
    next_ticket: u64,
    next_job: u64,
    last_due: u64,
    shed_level: u32,
    /// Per-tenant bounded ingress queues (BTreeMap: deterministic
    /// round-robin order over tenant ids).
    queues: BTreeMap<usize, VecDeque<QueuedRequest>>,
    /// Round-robin position: the next dequeue starts *after* this tenant.
    rr_after: Option<usize>,
    /// Dispatched jobs in dispatch order (due ticks are monotone, so the
    /// front is always the next completion to apply).
    pending: VecDeque<PendingJob>,
    /// Job id currently in flight per key (dedup joins attach here).
    in_flight: HashMap<PlanKey, u64>,
    /// Jobs abandoned by the stall watchdog whose late results must be
    /// discarded when they eventually surface.
    abandoned: HashSet<u64>,
    /// Completions produced since the last `tick`/`drain` returned.
    ready: Vec<Completion>,
    pool: WorkerPool,
    stats: FrontendStats,
    /// Cached observability handles, when attached
    /// ([`Self::with_metrics`]).
    metrics: Option<FrontendMetrics>,
}

impl AsyncFrontend {
    /// A front end over `service` (whose store, quarantine, caches and
    /// budget are shared with the sync path) under `config`.
    pub fn new(service: Arc<PlanService>, config: FrontendConfig) -> Self {
        AsyncFrontend {
            pool: WorkerPool::new(config.workers),
            service,
            config,
            fault_hook: None,
            tick: 0,
            next_ticket: 0,
            next_job: 0,
            last_due: 0,
            shed_level: 0,
            queues: BTreeMap::new(),
            rr_after: None,
            pending: VecDeque::new(),
            in_flight: HashMap::new(),
            abandoned: HashSet::new(),
            ready: Vec::new(),
            stats: FrontendStats::default(),
            metrics: None,
        }
    }

    /// Attaches an observability registry to the whole request path: the
    /// tick loop records `frontend.*` counters/spans/gauges (mirroring
    /// [`FrontendStats`] one for one), the logical-tick latency histogram
    /// (`frontend.latency_ticks`), per-tenant traffic sketches
    /// (`tenant.requests` / `tenant.sheds` / `tenant.degrades`), the
    /// admission-pricing span, the owning service's store counters
    /// (`store.*`), and every dispatched cold solve threads the registry
    /// down to the engine stages.  Instrumentation is pure observability:
    /// no decision, outcome, or replay digest depends on it.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.service.store().attach_metrics(&registry);
        self.metrics = Some(FrontendMetrics::new(registry));
        self
    }

    /// The attached observability registry, if any.
    pub fn metrics_registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref().map(|m| &m.registry)
    }

    /// Installs a deterministic async-layer fault hook keyed by request
    /// ordinal (stalls and slow shards; solver-level faults — panics,
    /// slowdowns, deadline blowouts — come from the owning service's own
    /// [`with_fault_injection`](PlanService::with_fault_injection) hook,
    /// keyed by the same ordinals).
    pub fn with_fault_injection<F>(mut self, hook: F) -> Self
    where
        F: Fn(u64) -> Option<FrontendFault> + Send + Sync + 'static,
    {
        self.fault_hook = Some(Box::new(hook));
        self
    }

    /// The current logical tick.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Lifetime counters.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    /// One tier-wide snapshot **through this front end**: the owning
    /// service's [`ServeStats`] with the async-only fields filled in —
    /// shed-level transition counts (`shed_raises` / `shed_lowers`) and
    /// deadline-cancellation totals, which the service alone cannot see.
    pub fn serve_stats(&self) -> ServeStats {
        let mut stats = self.service.serve_stats();
        stats.shed_raises = self.stats.shed_raises;
        stats.shed_lowers = self.stats.shed_lowers;
        stats.deadline_cancels = self.stats.deadline_cancels;
        stats
    }

    /// Tickets not yet resolved (queued + in flight).
    pub fn outstanding(&self) -> usize {
        self.stats.submitted - self.stats.completed
    }

    /// Submits one request under the configured default deadline.  Never
    /// blocks: the ticket resolves through [`tick`](Self::tick) (a full
    /// tenant queue resolves it immediately as
    /// [`RejectReason::QueueFull`]).  Validation errors fail the submit
    /// itself — an invalid application never earns a ticket.
    pub fn submit(&mut self, tenant: usize, request: PlanRequest) -> CoreResult<Ticket> {
        let deadline = self.config.deadline_ticks;
        self.submit_inner(tenant, request, deadline)
    }

    /// Submits one request with an explicit deadline `deadline_ticks`
    /// ticks from now (overriding the configured default).
    pub fn submit_with_deadline(
        &mut self,
        tenant: usize,
        request: PlanRequest,
        deadline_ticks: u64,
    ) -> CoreResult<Ticket> {
        self.submit_inner(tenant, request, Some(deadline_ticks))
    }

    fn submit_inner(
        &mut self,
        tenant: usize,
        request: PlanRequest,
        deadline_ticks: Option<u64>,
    ) -> CoreResult<Ticket> {
        request.app.validate()?;
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let ordinal = self.service.next_ordinals(1);
        self.stats.submitted += 1;
        if let Some(m) = &self.metrics {
            m.ingress.inc();
            m.tenant_requests.record(tenant as u64, 1);
        }
        let queue = self.queues.entry(tenant).or_default();
        if queue.len() >= self.config.queue_capacity {
            self.stats.queue_full_sheds += 1;
            if let Some(m) = &self.metrics {
                m.queue_full_sheds.inc();
                m.completions.inc();
                m.latency_ticks.record(0);
                m.tenant_sheds.record(tenant as u64, 1);
            }
            self.ready.push(Completion {
                ticket,
                tenant,
                ordinal,
                submitted_tick: self.tick,
                completed_tick: self.tick,
                outcome: ServeOutcome::Rejected(Rejection {
                    reason: RejectReason::QueueFull,
                    estimate: None,
                }),
            });
            self.stats.completed += 1;
            return Ok(ticket);
        }
        queue.push_back(QueuedRequest {
            ticket,
            tenant,
            ordinal,
            submitted_tick: self.tick,
            deadline_tick: deadline_ticks.map(|d| self.tick + d),
            request,
        });
        self.stats.peak_tenant_queue = self.stats.peak_tenant_queue.max(queue.len());
        Ok(ticket)
    }

    /// Advances one logical tick: applies due completion events, dequeues
    /// up to `dispatch_per_tick` requests, updates the shed level, and
    /// returns every completion produced since the last call.
    pub fn tick(&mut self) -> Vec<Completion> {
        let _tick_span = self.metrics.as_ref().map(|m| m.tick.start());
        self.tick += 1;
        self.apply_due_completions();
        self.dispatch_phase();
        self.update_shed_level();
        std::mem::take(&mut self.ready)
    }

    /// Ticks until every outstanding ticket has resolved, returning all
    /// completions produced along the way.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut all = Vec::new();
        while self.outstanding() > 0 || !self.ready.is_empty() {
            all.extend(self.tick());
        }
        all
    }

    /// Applies every pending completion whose due tick has arrived, in
    /// dispatch order.  Blocks on the worker's actual result (bounded by
    /// the stall watchdog): parallelism is preserved — later jobs keep
    /// solving while the loop waits — but store and quarantine effects
    /// land in deterministic order.
    fn apply_due_completions(&mut self) {
        // Purge late results of previously abandoned jobs.
        self.abandoned.retain(|&job| !self.pool.discard(job));
        while self
            .pending
            .front()
            .is_some_and(|job| job.due_tick <= self.tick)
        {
            let job = self.pending.pop_front().expect("front checked");
            self.in_flight.remove(&job.key);
            let waited = {
                let _watchdog = self.metrics.as_ref().map(|m| m.watchdog.start());
                self.pool.wait(job.job, self.config.stall_timeout)
            };
            match waited {
                Ok(Ok(plan)) => {
                    if self.service.quarantine().record_success(&job.key) {
                        self.stats.recovered += 1;
                        if let Some(m) = &self.metrics {
                            m.recovered.inc();
                        }
                    }
                    if plan.exhaustive {
                        self.service.store().insert(job.key.clone(), plan.clone());
                    } else {
                        self.service
                            .store()
                            .record_attempt_cost(&job.key, plan.solve_micros);
                    }
                    self.resolve_solved(job, plan);
                }
                Ok(Err(message)) => {
                    self.stats.panics += 1;
                    if let Some(m) = &self.metrics {
                        m.panics.inc();
                    }
                    self.service.quarantine().record_failure(&job.key);
                    self.service.drop_cache(&job.key.fingerprint);
                    self.resolve_rejected(
                        job,
                        RejectReason::SolverPanic {
                            message: message.clone(),
                        },
                    );
                }
                Err(()) => {
                    self.stats.stalls += 1;
                    if let Some(m) = &self.metrics {
                        m.stalls.inc();
                    }
                    self.abandoned.insert(job.job);
                    self.service.quarantine().record_failure(&job.key);
                    self.service.drop_cache(&job.key.fingerprint);
                    self.resolve_rejected(job, RejectReason::WorkerStall);
                }
            }
        }
    }

    fn resolve_solved(&mut self, job: PendingJob, plan: StoredPlan) {
        // Degraded results admitted without a priced floor get one
        // certified now (slow path; same post-hoc pass as the sync path).
        let floor = if plan.exhaustive {
            None
        } else {
            job.degrade_floor.or_else(|| {
                let r = &job.leader.request;
                self.service.admission().certified_floor(
                    &r.app,
                    r.model,
                    r.objective,
                    self.service.budget(),
                )
            })
        };
        let completed_tick = self.tick;
        let leader = job.leader;
        let followers = job.followers;
        self.emit_response(leader, &plan, ServeSource::Cold, floor, completed_tick);
        for follower in followers {
            self.emit_response(follower, &plan, ServeSource::Dedup, floor, completed_tick);
        }
    }

    fn emit_response(
        &mut self,
        info: TicketInfo,
        plan: &StoredPlan,
        source: ServeSource,
        floor: Option<f64>,
        completed_tick: u64,
    ) {
        let graph = info
            .prep
            .canon
            .graph_to_tenant(&plan.graph)
            .expect("canonical plans relabel cleanly");
        let response = PlanResponse {
            value: plan.value,
            graph,
            exhaustive: plan.exhaustive,
            source,
            solve_micros: plan.solve_micros,
        };
        let outcome = if response.exhaustive {
            ServeOutcome::Exact(response)
        } else {
            self.stats.degraded += 1;
            if let Some(m) = &self.metrics {
                m.degraded.inc();
                m.tenant_degrades.record(info.tenant as u64, 1);
            }
            let lower_bound = floor.unwrap_or(0.0);
            let gap = if lower_bound > 0.0 {
                (response.value - lower_bound) / lower_bound
            } else {
                f64::INFINITY
            };
            ServeOutcome::Degraded {
                response,
                lower_bound,
                gap,
            }
        };
        self.complete(info, completed_tick, outcome);
    }

    fn resolve_rejected(&mut self, job: PendingJob, reason: RejectReason) {
        let completed_tick = self.tick;
        let leader = job.leader;
        let followers = job.followers;
        self.complete(
            leader,
            completed_tick,
            ServeOutcome::Rejected(Rejection {
                reason: reason.clone(),
                estimate: None,
            }),
        );
        for follower in followers {
            self.complete(
                follower,
                completed_tick,
                ServeOutcome::Rejected(Rejection {
                    reason: reason.clone(),
                    estimate: None,
                }),
            );
        }
    }

    fn complete(&mut self, info: TicketInfo, completed_tick: u64, outcome: ServeOutcome) {
        self.stats.completed += 1;
        if let Some(m) = &self.metrics {
            m.completions.inc();
            m.latency_ticks.record(completed_tick - info.submitted_tick);
        }
        self.ready.push(Completion {
            ticket: info.ticket,
            tenant: info.tenant,
            ordinal: info.ordinal,
            submitted_tick: info.submitted_tick,
            completed_tick,
            outcome,
        });
    }

    /// Dequeues up to `dispatch_per_tick` requests, one per tenant per
    /// round-robin pass starting after the last tick's position.
    fn dispatch_phase(&mut self) {
        let mut budget = self.config.dispatch_per_tick;
        while budget > 0 {
            let Some(item) = self.next_queued() else {
                break;
            };
            budget -= 1;
            self.decide_one(item);
        }
    }

    /// The next queued request in round-robin tenant order, if any.
    fn next_queued(&mut self) -> Option<QueuedRequest> {
        let tenants: Vec<usize> = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&t, _)| t)
            .collect();
        if tenants.is_empty() {
            return None;
        }
        let start = match self.rr_after {
            None => 0,
            Some(after) => tenants.iter().position(|&t| t > after).unwrap_or(0),
        };
        let tenant = tenants[start];
        self.rr_after = Some(tenant);
        self.queues
            .get_mut(&tenant)
            .and_then(|queue| queue.pop_front())
    }

    /// The full dequeue decision pipeline for one request: deadline →
    /// (slow-shard fault) → store → dedup → quarantine → backlog-scaled
    /// admission → dispatch.
    fn decide_one(&mut self, item: QueuedRequest) {
        let QueuedRequest {
            ticket,
            tenant,
            ordinal,
            submitted_tick,
            deadline_tick,
            request,
        } = item;
        // 1. Cancellation: an expired deadline is not worth a lookup.
        if deadline_tick.is_some_and(|deadline| self.tick > deadline) {
            self.stats.deadline_cancels += 1;
            if let Some(m) = &self.metrics {
                m.deadline_cancels.inc();
            }
            self.reject_now(
                ticket,
                tenant,
                ordinal,
                submitted_tick,
                RejectReason::DeadlineExpired,
                None,
            );
            return;
        }
        let prep = Arc::new(Prepared::of(&request, self.service.budget()));
        let info = TicketInfo {
            ticket,
            tenant,
            ordinal,
            submitted_tick,
            request,
            prep,
        };
        // 2. Injected slow shard: wall-clock stall before the lookup, no
        // effect on any decision.
        if let Some(FrontendFault::SlowShard(delay)) = self.frontend_fault(ordinal) {
            std::thread::sleep(delay);
        }
        // 3. Store hit: resolved this tick.
        if let Some(plan) = self.service.store().get(&info.prep.key) {
            self.stats.store_hits += 1;
            if let Some(m) = &self.metrics {
                m.store_hits.inc();
            }
            let completed_tick = self.tick;
            self.emit_response(info, &plan, ServeSource::Store, None, completed_tick);
            return;
        }
        // 4. Dedup join: ride the in-flight solve of the same key.
        if let Some(&job) = self.in_flight.get(&info.prep.key) {
            self.stats.dedup_joins += 1;
            if let Some(m) = &self.metrics {
                m.dedup_joins.inc();
            }
            if let Some(pending) = self.pending.iter_mut().find(|p| p.job == job) {
                pending.followers.push(info);
            }
            return;
        }
        // 5. Quarantine gate.
        if let Err(permanent) = self.service.quarantine().admit(&info.prep.key) {
            self.stats.quarantine_rejects += 1;
            if let Some(m) = &self.metrics {
                m.quarantine_rejects.inc();
            }
            let TicketInfo {
                ticket,
                tenant,
                ordinal,
                submitted_tick,
                ..
            } = info;
            self.reject_now(
                ticket,
                tenant,
                ordinal,
                submitted_tick,
                RejectReason::Quarantined { permanent },
                None,
            );
            return;
        }
        // 6. Admission under backlog-scaled thresholds.
        let service = Arc::clone(&self.service);
        let policy = service.admission();
        let mut time_limit: Option<Duration> = None;
        let mut floor: Option<f64> = None;
        let mut latency: u64 = 1;
        if !policy.is_open() {
            let estimate = {
                let _pricing = self
                    .metrics
                    .as_ref()
                    .and_then(|m| m.admission.start_sampled());
                policy.estimate(
                    &info.request.app,
                    info.request.model,
                    info.request.objective,
                    service.budget(),
                )
            };
            let level = self.shed_level.min(127);
            let effective_admit = policy.admit_cost >> level;
            let effective_reject = policy.reject_cost >> level;
            latency = 1
                + (estimate.cost / self.config.cost_per_tick.max(1))
                    .min(u128::from(MAX_LATENCY_TICKS)) as u64;
            if estimate.cost > effective_reject {
                let (reason, estimate) = if estimate.cost > policy.reject_cost {
                    self.stats.admission_rejects += 1;
                    if let Some(m) = &self.metrics {
                        m.admission_rejects.inc();
                    }
                    (RejectReason::AdmissionCost, Some(estimate))
                } else {
                    self.stats.backpressure_sheds += 1;
                    if let Some(m) = &self.metrics {
                        m.backpressure_sheds.inc();
                        m.tenant_sheds.record(info.tenant as u64, 1);
                    }
                    (RejectReason::Shed { level }, Some(estimate))
                };
                let TicketInfo {
                    ticket,
                    tenant,
                    ordinal,
                    submitted_tick,
                    ..
                } = info;
                self.reject_now(ticket, tenant, ordinal, submitted_tick, reason, estimate);
                return;
            }
            if estimate.cost > effective_admit {
                time_limit = Some(policy.degrade_time_limit);
                floor = policy.certified_floor(
                    &info.request.app,
                    info.request.model,
                    info.request.objective,
                    service.budget(),
                );
            }
        }
        // 7. Deadline propagation: predicted to miss at full budget →
        // degrade instead of solving uselessly.
        if let Some(deadline) = deadline_tick {
            if time_limit.is_none() && self.tick + latency > deadline {
                self.stats.deadline_degrades += 1;
                if let Some(m) = &self.metrics {
                    m.deadline_degrades.inc();
                }
                time_limit = Some(policy.degrade_time_limit);
            }
        }
        // 8. Dispatch.
        self.dispatch(info, time_limit, floor, latency);
    }

    fn frontend_fault(&self, ordinal: u64) -> Option<FrontendFault> {
        self.fault_hook.as_ref().and_then(|hook| hook(ordinal))
    }

    fn dispatch(
        &mut self,
        info: TicketInfo,
        time_limit: Option<Duration>,
        floor: Option<f64>,
        latency: u64,
    ) {
        let job = self.next_job;
        self.next_job += 1;
        self.stats.dispatches += 1;
        if let Some(m) = &self.metrics {
            m.dispatches.inc();
        }
        let mut budget = SearchBudget {
            threads: 1,
            ..*self.service.budget()
        };
        if let Some(limit) = time_limit {
            budget.time_limit = Some(budget.time_limit.map_or(limit, |own| own.min(limit)));
        }
        let mut fault = self.service.injected_fault(info.ordinal);
        if fault == Some(InjectedFault::DeadlineBlowout) {
            budget.time_limit = Some(Duration::ZERO);
            fault = None;
        }
        if let Some(FrontendFault::StallWorker(stall)) = self.frontend_fault(info.ordinal) {
            // A stall is a slowdown from the worker's point of view; the
            // loop-side watchdog is what turns it into a WorkerStall.
            fault = Some(InjectedFault::Slow(stall));
        }
        let cache = self.service.retained_cache(&info.prep.canon);
        // Due ticks are monotone in dispatch order (completion events are
        // applied FIFO), which is what makes the loop's store/quarantine
        // effects — and the fault-replay digests — thread-count
        // independent.
        let due_tick = (self.tick + latency).max(self.last_due);
        self.last_due = due_tick;
        self.pool.submit(WorkItem {
            job,
            prep: Arc::clone(&info.prep),
            model: info.request.model,
            budget,
            cache,
            fault,
            metrics: self.metrics.as_ref().map(|m| Arc::clone(&m.registry)),
        });
        self.in_flight.insert(info.prep.key.clone(), job);
        self.pending.push_back(PendingJob {
            job,
            key: info.prep.key.clone(),
            due_tick,
            degrade_floor: floor,
            leader: info,
            followers: Vec::new(),
        });
    }

    #[allow(clippy::too_many_arguments)] // one flat completion record
    fn reject_now(
        &mut self,
        ticket: Ticket,
        tenant: usize,
        ordinal: u64,
        submitted_tick: u64,
        reason: RejectReason,
        estimate: Option<crate::admission::CostEstimate>,
    ) {
        self.stats.completed += 1;
        if let Some(m) = &self.metrics {
            m.completions.inc();
            m.latency_ticks.record(self.tick - submitted_tick);
        }
        self.ready.push(Completion {
            ticket,
            tenant,
            ordinal,
            submitted_tick,
            completed_tick: self.tick,
            outcome: ServeOutcome::Rejected(Rejection { reason, estimate }),
        });
    }

    /// One hysteresis step: the backlog after this tick's dispatches
    /// moves the shed level at most one notch.
    fn update_shed_level(&mut self) {
        let backlog: usize = self.queues.values().map(VecDeque::len).sum();
        self.stats.peak_backlog = self.stats.peak_backlog.max(backlog);
        if backlog >= self.config.backlog_high {
            let raised = (self.shed_level + 1).min(self.config.max_shed_level);
            if raised != self.shed_level {
                self.shed_level = raised;
                self.stats.shed_raises += 1;
                if let Some(m) = &self.metrics {
                    m.shed_raises.inc();
                }
            }
        } else if backlog <= self.config.backlog_low && self.shed_level > 0 {
            self.shed_level -= 1;
            self.stats.shed_lowers += 1;
            if let Some(m) = &self.metrics {
                m.shed_lowers.inc();
            }
        }
        if let Some(m) = &self.metrics {
            m.backlog.set(backlog as u64);
            m.shed_level.set(u64::from(self.shed_level));
        }
        self.stats.shed_level = self.shed_level;
        self.stats.peak_shed_level = self.stats.peak_shed_level.max(self.shed_level);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use fsw_core::Application;
    use fsw_sched::orchestrator::Objective;

    fn service() -> Arc<PlanService> {
        Arc::new(PlanService::new(SearchBudget::default(), 64))
    }

    fn small_request(seed: u32) -> PlanRequest {
        PlanRequest::new(
            Application::independent(&[(1.0 + f64::from(seed), 0.5), (2.0, 0.25)]),
            CommModel::Overlap,
            Objective::MinPeriod,
        )
    }

    #[test]
    fn tickets_resolve_without_blocking_submission() {
        let mut frontend = AsyncFrontend::new(service(), FrontendConfig::default());
        let t0 = frontend.submit(0, small_request(0)).unwrap();
        let t1 = frontend.submit(1, small_request(0)).unwrap();
        assert_eq!(frontend.outstanding(), 2, "submit never blocks");
        let completions = frontend.drain();
        assert_eq!(completions.len(), 2);
        let by_ticket: HashMap<Ticket, &Completion> =
            completions.iter().map(|c| (c.ticket, c)).collect();
        // Same fingerprint: one cold solve, one dedup/store ride-along.
        let a = by_ticket[&t0].outcome.expect_exact();
        let b = by_ticket[&t1].outcome.expect_exact();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        let stats = frontend.stats();
        assert_eq!(stats.dispatches, 1, "identical keys share one solve");
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn full_tenant_queues_shed_at_ingress() {
        let config = FrontendConfig {
            queue_capacity: 2,
            ..FrontendConfig::default()
        };
        let mut frontend = AsyncFrontend::new(service(), config);
        for i in 0..4u32 {
            frontend.submit(7, small_request(i)).unwrap();
        }
        // Two queued, two shed immediately.
        let stats = frontend.stats();
        assert_eq!(stats.queue_full_sheds, 2);
        assert_eq!(stats.peak_tenant_queue, 2);
        let completions = frontend.drain();
        let shed = completions
            .iter()
            .filter(|c| {
                matches!(
                    c.outcome.rejection().map(|r| &r.reason),
                    Some(RejectReason::QueueFull)
                )
            })
            .count();
        assert_eq!(shed, 2);
        assert_eq!(completions.len(), 4, "every ticket resolves");
    }

    #[test]
    fn expired_deadlines_cancel_at_dequeue() {
        let config = FrontendConfig {
            dispatch_per_tick: 1,
            ..FrontendConfig::default()
        };
        let mut frontend = AsyncFrontend::new(service(), config);
        // Three distinct requests, deadline 1 tick: with one dequeue per
        // tick, the third is dequeued at tick 3 — past its deadline.
        for i in 0..3u32 {
            frontend
                .submit_with_deadline(0, small_request(i), 1)
                .unwrap();
        }
        let completions = frontend.drain();
        let cancelled = completions
            .iter()
            .filter(|c| {
                matches!(
                    c.outcome.rejection().map(|r| &r.reason),
                    Some(RejectReason::DeadlineExpired)
                )
            })
            .count();
        assert!(cancelled >= 1, "late dequeues must cancel");
        assert_eq!(frontend.stats().deadline_cancels, cancelled);
        assert_eq!(completions.len(), 3);
    }

    #[test]
    fn stalled_workers_are_timed_out_and_quarantined() {
        let config = FrontendConfig {
            workers: 2,
            stall_timeout: Duration::from_millis(40),
            ..FrontendConfig::default()
        };
        let service = service();
        let mut frontend =
            AsyncFrontend::new(Arc::clone(&service), config).with_fault_injection(|ordinal| {
                (ordinal == 0).then_some(FrontendFault::StallWorker(Duration::from_millis(400)))
            });
        let stalled = frontend.submit(0, small_request(0)).unwrap();
        let fine = frontend.submit(1, small_request(1)).unwrap();
        let completions = frontend.drain();
        let by_ticket: HashMap<Ticket, &Completion> =
            completions.iter().map(|c| (c.ticket, c)).collect();
        assert_eq!(
            by_ticket[&stalled].outcome.rejection().map(|r| &r.reason),
            Some(&RejectReason::WorkerStall)
        );
        assert!(by_ticket[&fine].outcome.is_exact());
        assert_eq!(frontend.stats().stalls, 1);
        // The stalled fingerprint is now in the shared quarantine: the
        // sync path rejects it too.
        let next = service.serve_one(&small_request(0)).unwrap();
        assert_eq!(
            next.rejection().map(|r| &r.reason),
            Some(&RejectReason::Quarantined { permanent: false })
        );
    }

    #[test]
    fn backpressure_tightens_and_relaxes_with_hysteresis() {
        // Degrade-band requests (admitted at baseline) must be shed while
        // the backlog holds the shed level up, and admitted again after
        // the queues drain.
        let config = FrontendConfig {
            queue_capacity: 256,
            dispatch_per_tick: 4,
            backlog_high: 8,
            backlog_low: 2,
            max_shed_level: 8,
            ..FrontendConfig::default()
        };
        let mut frontend = AsyncFrontend::new(service(), config);
        // A burst of cheap distinct requests builds the backlog…
        for i in 0..64u32 {
            frontend.submit(i as usize % 4, small_request(i)).unwrap();
        }
        // …the level climbs one notch per tick while the backlog holds…
        let mut completions = Vec::new();
        for _ in 0..6 {
            completions.extend(frontend.tick());
        }
        assert!(
            frontend.stats().shed_level >= 5,
            "backlog must raise the level"
        );
        // …and a degrade-band request (n = 8 distinct, admitted with a
        // deadline at baseline) arriving mid-burst is shed at the
        // tightened threshold.
        let specs: Vec<(f64, f64)> = (0..8).map(|k| (1.0 + k as f64, 0.4)).collect();
        let degrade_band = PlanRequest::new(
            Application::independent(&specs),
            CommModel::Overlap,
            Objective::MinPeriod,
        );
        frontend.submit(9, degrade_band.clone()).unwrap();
        completions.extend(frontend.drain());
        // Idle ticks after the drain decay the level back to baseline.
        for _ in 0..10 {
            completions.extend(frontend.tick());
        }
        let stats = frontend.stats();
        assert!(stats.peak_shed_level > 0, "burst must raise the level");
        assert_eq!(stats.shed_level, 0, "drain must relax the level");
        let shed = completions
            .iter()
            .filter(|c| {
                matches!(
                    c.outcome.rejection().map(|r| &r.reason),
                    Some(RejectReason::Shed { .. })
                )
            })
            .count();
        assert_eq!(shed, stats.backpressure_sheds);
        assert!(
            shed >= 1,
            "the degrade-band request under load must be shed (levels {})",
            stats.peak_shed_level
        );
        // After the drain the same request is admitted (degrade band).
        let mut calm = AsyncFrontend::new(service(), config);
        calm.submit(9, degrade_band).unwrap();
        let outcome = &calm.drain()[0].outcome;
        assert!(
            matches!(outcome, ServeOutcome::Degraded { .. }),
            "baseline must still degrade-admit, got {outcome:?}"
        );
    }

    #[test]
    fn open_admission_skips_pricing_but_still_flows() {
        let service = Arc::new(
            PlanService::new(SearchBudget::default(), 16).with_admission(AdmissionPolicy::open()),
        );
        let mut frontend = AsyncFrontend::new(service, FrontendConfig::default());
        frontend.submit(0, small_request(3)).unwrap();
        let completions = frontend.drain();
        assert!(completions[0].outcome.is_exact());
    }
}
