//! Predictive admission control: price a request **before** enumerating.
//!
//! The serving layer must not discover that a request is intractable by
//! burning its deadline on it.  This module prices every request in
//! O(shapes) from the structural counts the canonical machinery already
//! knows how to compute cheaply —
//!
//! * the **plan-space size**: the exact canonical class count for uniform
//!   instances ([`CanonicalSpace::forest_class_count`], closed form), the
//!   exact coloured-orbit count for partially symmetric ones
//!   ([`fsw_core::classed_class_count_within`], a counting pass that never
//!   materialises an orbit), and the raw `n^n` parent-function space where
//!   no symmetry reduces it;
//! * the **per-plan ordering weight**: `1` on structural evaluation paths
//!   (OVERLAP / lower-bound MINPERIOD, forest-phase MINLATENCY via exact
//!   Algorithm 1), the budget-capped worst-case ordering-search size on
//!   orchestrated paths;
//! * an optional **admissible value floor**: the head bound of the
//!   bound-ordered shape plan ([`fsw_core::bound_ordered_shape_plan`] +
//!   [`ShapeBounder`]) — every candidate plan belongs to some shape and
//!   costs at least its shape bound, so the smallest shape bound lower
//!   bounds the instance optimum.  Rejected callers learn what they are
//!   missing; degraded answers ship with a certified gap.
//!
//! The product of the first two is the **estimated cost** — the number of
//! candidate evaluations an exhaustive solve would pay — and the
//! [`AdmissionPolicy`] turns it into one of three decisions: [`Admit`]
//! (solve exactly), [`AdmitWithDeadline`] (worth trying under a degrade
//! deadline; the response may come back `Degraded`), or [`Reject`] (the
//! exact answer is out of reach; the caller gets the estimate and the
//! floor, and the solve pool is never touched).
//!
//! [`Admit`]: AdmissionDecision::Admit
//! [`AdmitWithDeadline`]: AdmissionDecision::AdmitWithDeadline
//! [`Reject`]: AdmissionDecision::Reject

use std::time::{Duration, Instant};

use fsw_core::{
    bound_ordered_shape_plan, classed_class_count_within, Application, ClassedCount, CommModel,
    ShapeBounder, ShapeObjective, ShapeScan, WeightClasses,
};
use fsw_sched::engine::CanonicalSpace;
use fsw_sched::minperiod::PeriodEvaluation;
use fsw_sched::orchestrator::{Objective, SearchBudget};

/// Largest shape count (`A000081` forest classes) for which pricing
/// attempts the bound-ordered value floor: `n = 10` (1 842 shapes) is in,
/// `n = 11` (4 766) is out.  The floor pass runs **without a wall-clock
/// deadline** — its cost is bounded structurally by this limit instead, so
/// the floor (and everything downstream of it: degraded gaps, replay
/// digests) is a pure function of the instance, never of machine load.
const FLOOR_SHAPE_LIMIT: u128 = 2_000;

/// The structural price of one request, computed before any enumeration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Plan-space size: canonical classes (uniform), coloured orbits
    /// (partial symmetry) or raw `n^n` parent functions (no symmetry /
    /// constrained).  Saturating.
    pub plans: u128,
    /// Whether `plans` is the exact size of the space an exhaustive solve
    /// enumerates (`false` when counting was capped, timed out, or
    /// constraints prune an unknown amount of the raw space).
    pub plans_exact: bool,
    /// Worst-case candidate evaluations *per plan* (ordering searches on
    /// orchestrated paths, `1` on structural ones), capped by the budget.
    pub ordering_weight: u128,
    /// `plans × ordering_weight`, saturating — the estimated number of
    /// candidate evaluations an exhaustive solve would pay.
    pub cost: u128,
    /// Admissible lower bound on the instance optimum (the head bound of
    /// the bound-ordered shape plan), when one was certified.  `None` on
    /// the plain-admit fast path (not priced there), on the MINLATENCY DAG
    /// phase (DAGs can beat every forest-shape floor) and when the shape
    /// space is too large to price.
    pub value_floor: Option<f64>,
}

/// The admission verdict for one request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdmissionDecision {
    /// Cheap enough to solve exactly under the service budget.
    Admit,
    /// Too big for an exact promise, small enough to try: solve under
    /// `time_limit` and degrade to the best incumbent if it fires.
    AdmitWithDeadline {
        /// Deadline the solve runs under.
        time_limit: Duration,
        /// The price that put the request in the degrade band.
        estimate: CostEstimate,
    },
    /// The exact answer is out of reach; the solve pool is never touched.
    Reject {
        /// The price that rejected the request, floor included.
        estimate: CostEstimate,
    },
}

/// Thresholds turning a [`CostEstimate`] into an [`AdmissionDecision`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionPolicy {
    /// Requests pricing at most this many candidate evaluations are
    /// admitted unconditionally.
    pub admit_cost: u128,
    /// Requests pricing above `admit_cost` but at most this are admitted
    /// under `degrade_time_limit`; anything above is rejected.
    pub reject_cost: u128,
    /// Deadline armed on solves in the degrade band.
    pub degrade_time_limit: Duration,
    /// Wall-clock budget of the coloured-orbit counting pass (the value
    /// floor is bounded structurally instead, so it stays deterministic).
    pub pricing_budget: Duration,
}

impl AdmissionPolicy {
    /// The hardened default for `budget`: admit up to the enumeration cap
    /// the budget could cover exactly (`max_graphs`), allow a 64× overshoot
    /// band under a 50 ms degrade deadline, and spend at most 5 ms pricing.
    pub fn for_budget(budget: &SearchBudget) -> Self {
        let admit_cost = (budget.max_graphs as u128).max(1);
        AdmissionPolicy {
            admit_cost,
            reject_cost: admit_cost.saturating_mul(64),
            degrade_time_limit: Duration::from_millis(50),
            pricing_budget: Duration::from_millis(5),
        }
    }

    /// Admit everything without pricing — the pre-admission behaviour,
    /// used by [`crate::solve_all`] where the caller owns the fleet and
    /// wants an answer (possibly degraded) for every member.
    pub fn open() -> Self {
        AdmissionPolicy {
            admit_cost: u128::MAX,
            reject_cost: u128::MAX,
            degrade_time_limit: Duration::from_millis(50),
            pricing_budget: Duration::ZERO,
        }
    }

    /// `true` when this policy admits everything (no pricing runs).
    pub fn is_open(&self) -> bool {
        self.admit_cost == u128::MAX
    }

    /// Prices `app` and decides.  O(shapes) worst case, bounded by
    /// `pricing_budget`; open policies return [`AdmissionDecision::Admit`]
    /// without pricing at all.
    pub fn decide(
        &self,
        app: &Application,
        model: CommModel,
        objective: Objective,
        budget: &SearchBudget,
    ) -> AdmissionDecision {
        if self.is_open() {
            return AdmissionDecision::Admit;
        }
        let mut estimate = self.estimate(app, model, objective, budget);
        if estimate.cost <= self.admit_cost {
            return AdmissionDecision::Admit;
        }
        // The floor is only priced when the caller will see it — the
        // degrade band (it becomes the response's certified gap) and the
        // reject band (feedback on what is out of reach).  It is O(shapes)
        // like the rest of the pricing, but with a larger constant, so the
        // admit fast path skips it.
        estimate.value_floor = self.certified_floor(app, model, objective, budget);
        if estimate.cost <= self.reject_cost {
            AdmissionDecision::AdmitWithDeadline {
                time_limit: self.degrade_time_limit,
                estimate,
            }
        } else {
            AdmissionDecision::Reject { estimate }
        }
    }

    /// The structural price of `(app, model, objective)` under `budget`
    /// (see the module docs for the cost model).
    pub fn estimate(
        &self,
        app: &Application,
        model: CommModel,
        objective: Objective,
        budget: &SearchBudget,
    ) -> CostEstimate {
        let n = app.n();
        // MINLATENCY's DAG phase (n within `dag_enumeration_max_n`) is one
        // combined walk over level-ordered insertions, not a per-plan
        // ordering search: its size is the DAG ordering space itself, so it
        // prices as a single "plan" space with weight 1 (an upper bound —
        // the walk prunes, hence `plans_exact: false`).
        if objective == Objective::MinLatency && n <= budget.dag_enumeration_max_n {
            let space = (CanonicalSpace::max_dag_ordering_space(n) as u128).max(1);
            return CostEstimate {
                plans: space,
                plans_exact: false,
                ordering_weight: 1,
                cost: space,
                value_floor: None,
            };
        }
        let classes = WeightClasses::of(app);
        let pricing_deadline = Instant::now() + self.pricing_budget;
        let ordering_weight = ordering_weight(n, model, objective, budget);
        // Count exactly up to the first quantity that forces a rejection;
        // saturate beyond it (the decision is the same either way).
        let count_cap = self
            .reject_cost
            .checked_div(ordering_weight)
            .unwrap_or(u128::MAX)
            .saturating_add(1);
        let raw = raw_parent_functions(n);
        let (plans, plans_exact) = if app.has_constraints() {
            // Constraints prune an unknown amount of the raw space and
            // disable every symmetry reduction.
            (raw, false)
        } else if classes.is_uniform() {
            (CanonicalSpace::forest_class_count(n), true)
        } else if classes.has_symmetry() {
            match classed_class_count_within(&classes, count_cap, Some(pricing_deadline)) {
                ClassedCount::Exact(count) => (count, true),
                ClassedCount::ExceedsCap => (count_cap, false),
                ClassedCount::DeadlineExpired | ClassedCount::Intractable => (raw, false),
            }
        } else {
            (raw, true)
        };
        let cost = plans.saturating_mul(ordering_weight);
        CostEstimate {
            plans,
            plans_exact,
            ordering_weight,
            cost,
            // Attached by `decide` on the degrade/reject bands (and by the
            // service's degraded-response path) via `certified_floor`; the
            // plain estimate stays O(cheap counts).
            value_floor: None,
        }
    }

    /// Certifies an admissible lower bound for `(app, model, objective)`
    /// within the pricing budget — the degraded-response path uses this to
    /// attach a floor to solves that were admitted without one.
    pub fn certified_floor(
        &self,
        app: &Application,
        model: CommModel,
        objective: Objective,
        budget: &SearchBudget,
    ) -> Option<f64> {
        self.value_floor(app, &WeightClasses::of(app), model, objective, budget)
    }

    /// Admissible instance-wide lower bound from the bound-ordered shape
    /// plan: the plan is sorted by shape bound and every candidate costs at
    /// least its shape's bound, so the head bound floors the whole forest
    /// space (constrained plans are a subset of it, so the floor holds for
    /// them too).  `None` when the DAG phase could beat it or when the
    /// shape space exceeds [`FLOOR_SHAPE_LIMIT`] — the structural gate that
    /// bounds this pass instead of a wall-clock deadline, keeping the floor
    /// deterministic.
    fn value_floor(
        &self,
        app: &Application,
        classes: &WeightClasses,
        model: CommModel,
        objective: Objective,
        budget: &SearchBudget,
    ) -> Option<f64> {
        let n = app.n();
        let shape_objective = match objective {
            Objective::MinPeriod => ShapeObjective::Period(model),
            Objective::MinLatency if n > budget.dag_enumeration_max_n => ShapeObjective::Latency,
            Objective::MinLatency => return None,
        };
        if fsw_core::forest_classes(n) > FLOOR_SHAPE_LIMIT {
            return None;
        }
        let bounder = ShapeBounder::new(app, shape_objective);
        match bound_ordered_shape_plan(classes, Some(&bounder), f64::INFINITY, None) {
            ShapeScan::Planned { shapes, .. } => shapes.first().map(|shape| shape.bound),
            ShapeScan::DeadlineExpired => None,
        }
    }
}

/// Worst-case candidate evaluations per plan, capped by the budget: `1` on
/// structural paths (the evaluation is a closed-form metric of the plan),
/// the ordering-search space on orchestrated ones.
fn ordering_weight(
    n: usize,
    model: CommModel,
    objective: Objective,
    budget: &SearchBudget,
) -> u128 {
    let cap = (budget.max_orderings as u128).max(1);
    match objective {
        Objective::MinPeriod => {
            if model == CommModel::Overlap
                || matches!(budget.period_evaluation, PeriodEvaluation::LowerBound)
            {
                1
            } else {
                cap.min((CanonicalSpace::max_forest_ordering_space(n) as u128).max(1))
            }
        }
        // MINLATENCY: the forest-only phase is exact Algorithm 1, purely
        // structural; the DAG phase never reaches here (priced as its
        // combined walk in `estimate`).
        Objective::MinLatency => 1,
    }
}

/// Raw parent-function space `n^n`, saturating — what an unreduced
/// exhaustive enumeration walks.
fn raw_parent_functions(n: usize) -> u128 {
    let mut raw = 1u128;
    for _ in 0..n {
        raw = raw.saturating_mul(n.max(1) as u128);
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> SearchBudget {
        SearchBudget::default()
    }

    #[test]
    fn small_instances_admit_instantly() {
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8)]);
        let policy = AdmissionPolicy::for_budget(&budget());
        for (model, objective) in [
            (CommModel::Overlap, Objective::MinPeriod),
            (CommModel::InOrder, Objective::MinPeriod),
            (CommModel::InOrder, Objective::MinLatency),
        ] {
            assert_eq!(
                policy.decide(&app, model, objective, &budget()),
                AdmissionDecision::Admit,
                "{model} {objective}"
            );
        }
    }

    #[test]
    fn uniform_instances_price_by_canonical_classes_not_raw_space() {
        // n = 14 uniform: 14^14 raw parent functions (~1.1e16) but only
        // 87 811 canonical classes — must admit.
        let app = Application::independent(&[(2.0, 0.5); 14]);
        let policy = AdmissionPolicy::for_budget(&budget());
        let estimate = policy.estimate(&app, CommModel::Overlap, Objective::MinPeriod, &budget());
        assert_eq!(estimate.plans, fsw_core::forest_classes(14));
        assert!(estimate.plans_exact);
        assert_eq!(
            policy.decide(&app, CommModel::Overlap, Objective::MinPeriod, &budget()),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn oversized_distinct_instances_reject_with_a_structural_estimate() {
        // n = 24, all-distinct weights: no symmetry, raw space 24^24 — the
        // decision must be an instant closed-form rejection.
        let specs: Vec<(f64, f64)> = (0..24)
            .map(|k| (1.0 + k as f64, 0.3 + 0.02 * k as f64))
            .collect();
        let app = Application::independent(&specs);
        let policy = AdmissionPolicy::for_budget(&budget());
        let started = Instant::now();
        let decision = policy.decide(&app, CommModel::Overlap, Objective::MinPeriod, &budget());
        assert!(
            started.elapsed() < Duration::from_millis(10),
            "pricing slow"
        );
        let AdmissionDecision::Reject { estimate } = decision else {
            panic!("n=24 distinct must reject, got {decision:?}");
        };
        assert!(estimate.cost > policy.reject_cost);
        assert!(estimate.plans_exact, "24^24 is the exact raw space");
    }

    #[test]
    fn the_degrade_band_sits_between_admit_and_reject() {
        // n = 8, all-distinct: 8^8 ≈ 16.7M raw plans — above the 2M admit
        // cap, below the 128M reject threshold.
        let specs: Vec<(f64, f64)> = (0..8)
            .map(|k| (1.0 + k as f64, 0.4 + 0.05 * k as f64))
            .collect();
        let app = Application::independent(&specs);
        let policy = AdmissionPolicy::for_budget(&budget());
        match policy.decide(&app, CommModel::Overlap, Objective::MinPeriod, &budget()) {
            AdmissionDecision::AdmitWithDeadline {
                time_limit,
                estimate,
            } => {
                assert_eq!(time_limit, policy.degrade_time_limit);
                assert_eq!(estimate.plans, 8u128.pow(8));
            }
            other => panic!("n=8 distinct must enter the degrade band, got {other:?}"),
        }
    }

    #[test]
    fn the_value_floor_is_admissible() {
        use fsw_sched::orchestrator::{solve, Problem};
        let app = Application::independent(&[(2.0, 0.5), (1.0, 2.0), (3.0, 0.8), (1.5, 0.6)]);
        let policy = AdmissionPolicy::for_budget(&budget());
        for model in [CommModel::Overlap, CommModel::InOrder] {
            let floor = policy
                .certified_floor(&app, model, Objective::MinPeriod, &budget())
                .expect("small instance has a floor");
            let optimum = solve(&Problem::new(&app, model, Objective::MinPeriod), &budget())
                .unwrap()
                .value;
            assert!(
                floor <= optimum,
                "floor {floor} exceeds the optimum {optimum} under {model}"
            );
            assert!(floor > 0.0, "positive costs imply a positive floor");
        }
    }

    #[test]
    fn open_policies_admit_everything_without_pricing() {
        let specs: Vec<(f64, f64)> = (0..24).map(|k| (1.0 + k as f64, 0.5)).collect();
        let app = Application::independent(&specs);
        let policy = AdmissionPolicy::open();
        assert!(policy.is_open());
        assert_eq!(
            policy.decide(&app, CommModel::Overlap, Objective::MinPeriod, &budget()),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn orchestrated_paths_carry_an_ordering_weight() {
        // MINLATENCY at n <= dag_enumeration_max_n is one combined DAG walk:
        // it prices as that walk's ordering space with weight 1, keeping
        // small instances (the only ones the engine routes into the DAG
        // phase) inside the admit band.
        let b = budget();
        let policy = AdmissionPolicy::for_budget(&b);
        let specs: Vec<(f64, f64)> = (0..4).map(|k| (1.0 + k as f64, 0.5)).collect();
        let app = Application::independent(&specs);
        let estimate = policy.estimate(&app, CommModel::InOrder, Objective::MinLatency, &b);
        assert_eq!(estimate.ordering_weight, 1);
        assert_eq!(
            estimate.cost,
            CanonicalSpace::max_dag_ordering_space(4) as u128
        );
        assert!(
            !estimate.plans_exact,
            "the walk bound is not an exact count"
        );
        assert_eq!(
            ordering_weight(9, CommModel::InOrder, Objective::MinLatency, &b),
            1,
            "forest-only MINLATENCY is structural"
        );
        assert_eq!(
            ordering_weight(6, CommModel::Overlap, Objective::MinPeriod, &b),
            1
        );
    }
}
