//! Online re-planning: tenants whose service sets evolve over time.
//!
//! A streaming tenant is not a fixed application: predicates are deployed
//! and retired, costs drift as backends scale.  Solving each revision from
//! scratch throws away everything the previous solve learned.  A
//! [`TenantSession`] instead re-plans **incrementally**:
//!
//! * every mutation ([`TenantEvent`]) *adapts* the current plan to the new
//!   service set — a departing service is spliced out of its chain
//!   (children re-attach to the nearest surviving ancestor), an arriving
//!   service starts as an independent root, a re-weighted service keeps its
//!   position;
//! * the adapted plan is a **feasible** plan of the mutated instance, so
//!   its value is an upper bound on the new optimum: [`TenantSession::replan`]
//!   hands it to [`fsw_sched::orchestrator::solve_warm`], which seeds the
//!   search incumbent with it — the enumeration prunes the hopeless region
//!   from the first candidate on, and the bit-identity contract guarantees
//!   the result equals a from-scratch solve while evaluating **no more**
//!   candidates (strictly fewer whenever the bound bites);
//! * the outcome reports **plan churn** — how many services' parent
//!   assignments moved between the adapted previous plan and the new
//!   optimum — so the stability of a tenant's plan under streaming updates
//!   is a measurable quantity, not folklore.
//!
//! Sessions are restricted to **constraint-free** applications (the regime
//! of the serving workloads; precedence constraints would make the splice
//! adaptation unsound).

use std::sync::Arc;

use fsw_core::{Application, CommModel, CoreError, CoreResult, ExecutionGraph, ServiceId};
use fsw_obs::MetricsRegistry;
use fsw_sched::engine::EvalCache;
use fsw_sched::orchestrator::{solve_warm_observed, Objective, Problem, SearchBudget};

/// One mutation of a tenant's service set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TenantEvent {
    /// A new service joins (appended with the next free id).
    Arrive {
        /// Elementary cost of the new service.
        cost: f64,
        /// Selectivity of the new service.
        selectivity: f64,
    },
    /// Service `service` leaves; later ids shift down by one.
    Depart {
        /// The departing service.
        service: ServiceId,
    },
    /// Service `service` changes weights in place.
    Reweight {
        /// The re-weighted service.
        service: ServiceId,
        /// Its new cost.
        cost: f64,
        /// Its new selectivity.
        selectivity: f64,
    },
}

/// What one [`TenantSession::replan`] did.
#[derive(Clone, Debug)]
pub struct ReplanOutcome {
    /// The new optimum (bit-identical to a from-scratch solve).
    pub value: f64,
    /// The new plan, in the tenant's current labelling.
    pub graph: ExecutionGraph,
    /// Whether the solve was exhaustive for the session's budget.
    pub exhaustive: bool,
    /// The warm-start seed that was used (the adapted previous plan's value
    /// on the current instance), when one was available and feasible.
    pub warm_value: Option<f64>,
    /// Candidate plans fully evaluated by the search (the warm seed's own
    /// re-pricing is *not* counted — see
    /// [`SolveStats::evaluated`](fsw_sched::orchestrator::SolveStats) — so
    /// this compares like-for-like against a cold solve's count).
    pub evaluated: usize,
    /// Number of services whose predecessor set changed between the adapted
    /// previous plan and the new plan (`0` when the old plan was still
    /// optimal in place).
    pub churn: usize,
}

/// One tenant's evolving planning state (see the module docs).
pub struct TenantSession {
    app: Application,
    model: CommModel,
    objective: Objective,
    budget: SearchBudget,
    /// The memoised candidate-evaluation cache, retained across re-plans
    /// and rebuilt whenever a mutation changes the application (cache
    /// entries depend on the weights, so it is valid exactly as long as
    /// `cache.app() == self.app`).
    cache: EvalCache,
    /// The current plan over current tenant labels, with its value on the
    /// current instance (`None` until the first replan or adoption, or
    /// after a mutation made the value stale — the graph survives as the
    /// warm-start candidate).
    plan: Option<ExecutionGraph>,
    replans: usize,
    total_churn: usize,
    /// Observability registry, when attached: each replan records a
    /// `session.replan` span and threads the registry through the solve
    /// pipeline (engine stream/expand/certify stages).
    metrics: Option<Arc<MetricsRegistry>>,
}

impl TenantSession {
    /// Opens a session for a constraint-free application.
    pub fn new(
        app: Application,
        model: CommModel,
        objective: Objective,
        budget: SearchBudget,
    ) -> CoreResult<Self> {
        if app.has_constraints() {
            // Splice adaptation is unsound under precedence constraints.
            return Err(CoreError::Unsupported {
                reason: "online re-planning sessions require constraint-free applications",
            });
        }
        app.validate()?;
        let cache = EvalCache::new(&app);
        Ok(TenantSession {
            app,
            model,
            objective,
            budget,
            cache,
            plan: None,
            replans: 0,
            total_churn: 0,
            metrics: None,
        })
    }

    /// Attaches an observability registry: every subsequent
    /// [`replan`](Self::replan) records a `session.replan` span (count +
    /// duration histogram) and threads the registry down the solve
    /// pipeline, so engine-stage spans land in the same registry.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// The tenant's current application.
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// The current plan, if one has been computed or adopted.
    pub fn plan(&self) -> Option<&ExecutionGraph> {
        self.plan.as_ref()
    }

    /// `(replans, total churn)` so far.
    pub fn stability(&self) -> (usize, usize) {
        (self.replans, self.total_churn)
    }

    /// Installs a plan served from elsewhere (e.g. a [`crate::PlanService`]
    /// response for this tenant), making it the warm-start candidate of the
    /// next replan.  A plan sized for a different service set (e.g. a
    /// response that predates a mutation) is rejected, keeping the session
    /// untouched.
    pub fn adopt(&mut self, graph: ExecutionGraph) -> CoreResult<()> {
        if graph.n() != self.app.n() {
            return Err(CoreError::SizeMismatch {
                expected: self.app.n(),
                found: graph.n(),
            });
        }
        self.plan = Some(graph);
        Ok(())
    }

    /// Applies one mutation: the application changes and the current plan
    /// (if any) is adapted to stay a feasible warm-start candidate.
    ///
    /// Mutations are **build-then-commit**: the successor application and
    /// the adapted plan are fully constructed and validated before either
    /// is installed, so a rejected event (bad weights, out-of-range
    /// service) returns an error with the session untouched.
    pub fn apply(&mut self, event: TenantEvent) -> CoreResult<()> {
        match event {
            TenantEvent::Arrive { cost, selectivity } => {
                let mut grown_app = self.app.clone();
                grown_app.add_service(cost, selectivity);
                grown_app.validate()?;
                let grown_plan = match &self.plan {
                    Some(plan) => {
                        // The newcomer starts as an independent root.
                        let mut grown = ExecutionGraph::new(grown_app.n());
                        for (a, b) in plan.edges() {
                            grown.add_edge(a, b)?;
                        }
                        Some(grown)
                    }
                    None => None,
                };
                self.app = grown_app;
                self.cache = EvalCache::new(&self.app);
                self.plan = grown_plan;
            }
            TenantEvent::Depart { service } => {
                let n = self.app.n();
                if service >= n {
                    return Err(CoreError::InvalidService { id: service, n });
                }
                let specs: Vec<(f64, f64)> = (0..n)
                    .filter(|&k| k != service)
                    .map(|k| (self.app.cost(k), self.app.selectivity(k)))
                    .collect();
                let survivors = Application::independent(&specs);
                let spliced_plan = match &self.plan {
                    Some(plan) => {
                        // Splice the departed node out: every survivor whose
                        // predecessor chain runs through it re-attaches to
                        // the departed node's own predecessor (forests have
                        // at most one); then compact the ids.
                        let departed_parent = plan.preds(service).first().copied();
                        let remap = |k: ServiceId| -> ServiceId {
                            if k > service {
                                k - 1
                            } else {
                                k
                            }
                        };
                        let mut spliced = ExecutionGraph::new(survivors.n());
                        for (a, b) in plan.edges() {
                            if b == service {
                                continue; // the departed node's own input edge
                            }
                            let source = if a == service {
                                match departed_parent {
                                    Some(p) => p,
                                    None => continue, // child becomes a root
                                }
                            } else {
                                a
                            };
                            spliced.add_edge(remap(source), remap(b))?;
                        }
                        Some(spliced)
                    }
                    None => None,
                };
                self.app = survivors;
                self.cache = EvalCache::new(&self.app);
                self.plan = spliced_plan;
            }
            TenantEvent::Reweight {
                service,
                cost,
                selectivity,
            } => {
                let n = self.app.n();
                if service >= n {
                    return Err(CoreError::InvalidService { id: service, n });
                }
                let specs: Vec<(f64, f64)> = (0..n)
                    .map(|k| {
                        if k == service {
                            (cost, selectivity)
                        } else {
                            (self.app.cost(k), self.app.selectivity(k))
                        }
                    })
                    .collect();
                let reweighted = Application::independent(&specs);
                reweighted.validate()?;
                self.app = reweighted;
                self.cache = EvalCache::new(&self.app);
                // The plan's structure is unchanged; its value went stale,
                // which the next replan re-prices anyway.
            }
        }
        Ok(())
    }

    /// Re-plans the current instance, warm-starting from the adapted
    /// previous plan (see the module docs).  The returned value and graph
    /// are bit-identical to a from-scratch solve; the session's plan and
    /// stability counters are updated.
    pub fn replan(&mut self) -> CoreResult<ReplanOutcome> {
        let problem = Problem::new(&self.app, self.model, self.objective);
        let replan_span = self.metrics.as_ref().map(|r| r.span("session.replan"));
        let replan_guard = replan_span.as_ref().map(|t| t.start());
        let (solution, stats) = solve_warm_observed(
            &problem,
            &self.budget,
            &self.cache,
            self.plan.as_ref(),
            self.metrics.as_ref(),
        )?;
        drop(replan_guard);
        let churn = self
            .plan
            .as_ref()
            .map(|previous| plan_churn(previous, &solution.graph))
            .unwrap_or(0);
        self.replans += 1;
        self.total_churn += churn;
        self.plan = Some(solution.graph.clone());
        Ok(ReplanOutcome {
            value: solution.value,
            graph: solution.graph,
            exhaustive: solution.exhaustive,
            warm_value: stats.warm_value,
            evaluated: stats.evaluated,
            churn,
        })
    }
}

/// Number of services whose predecessor set differs between two plans on
/// the same service set — the plan-churn metric.  Plans over different
/// service counts are incomparable: every service counts as moved.
pub fn plan_churn(previous: &ExecutionGraph, next: &ExecutionGraph) -> usize {
    if previous.n() != next.n() {
        return previous.n().max(next.n());
    }
    (0..previous.n())
        .filter(|&k| {
            let mut a: Vec<ServiceId> = previous.preds(k).to_vec();
            let mut b: Vec<ServiceId> = next.preds(k).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            a != b
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_sched::orchestrator::solve;

    fn session(specs: &[(f64, f64)]) -> TenantSession {
        TenantSession::new(
            Application::independent(specs),
            CommModel::Overlap,
            Objective::MinPeriod,
            SearchBudget::default(),
        )
        .unwrap()
    }

    #[test]
    fn constrained_applications_are_rejected() {
        let mut app = Application::independent(&[(1.0, 0.5), (2.0, 0.5)]);
        app.add_constraint(0, 1).unwrap();
        assert!(TenantSession::new(
            app,
            CommModel::Overlap,
            Objective::MinPeriod,
            SearchBudget::default()
        )
        .is_err());
    }

    #[test]
    fn replan_matches_a_cold_solve_and_warm_start_prices_the_previous_plan() {
        let mut s = session(&[(1.0, 0.1), (10.0, 1.0), (2.0, 0.5)]);
        let first = s.replan().unwrap();
        assert!(first.warm_value.is_none(), "no previous plan yet");
        assert_eq!(first.churn, 0);
        // A second replan of the unchanged instance warm-starts at the
        // optimum itself and cannot move the plan.
        let second = s.replan().unwrap();
        assert_eq!(second.value, first.value);
        assert_eq!(second.churn, 0);
        assert_eq!(second.warm_value, Some(first.value));
        assert!(second.evaluated <= first.evaluated);
        // Both equal the from-scratch orchestrator answer.
        let cold = solve(
            &Problem::new(s.app(), CommModel::Overlap, Objective::MinPeriod),
            &SearchBudget::default(),
        )
        .unwrap();
        assert_eq!(second.value, cold.value);
    }

    #[test]
    fn departure_splices_the_plan_and_replans_to_the_mutated_optimum() {
        // A chain-inducing instance: strong filter feeding expensive work.
        let mut s = session(&[(1.0, 0.1), (10.0, 1.0), (8.0, 1.0), (0.5, 0.2)]);
        s.replan().unwrap();
        // Remove the expensive middle service; the spliced plan must stay a
        // feasible forest on the survivors.
        s.apply(TenantEvent::Depart { service: 1 }).unwrap();
        let warm = s.plan().unwrap().clone();
        warm.respects(s.app()).unwrap();
        assert!(warm.is_forest());
        assert_eq!(warm.n(), 3);
        let outcome = s.replan().unwrap();
        let cold = solve(
            &Problem::new(s.app(), CommModel::Overlap, Objective::MinPeriod),
            &SearchBudget::default(),
        )
        .unwrap();
        assert_eq!(outcome.value, cold.value, "replan equals from-scratch");
        assert!(outcome.warm_value.is_some());
    }

    #[test]
    fn arrival_and_reweight_keep_warm_starts_feasible() {
        let mut s = session(&[(1.0, 0.1), (10.0, 1.0)]);
        s.replan().unwrap();
        s.apply(TenantEvent::Arrive {
            cost: 3.0,
            selectivity: 0.7,
        })
        .unwrap();
        assert_eq!(s.app().n(), 3);
        assert_eq!(s.plan().unwrap().n(), 3);
        let after_arrival = s.replan().unwrap();
        assert!(after_arrival.warm_value.is_some());
        s.apply(TenantEvent::Reweight {
            service: 0,
            cost: 2.0,
            selectivity: 0.9,
        })
        .unwrap();
        let after_reweight = s.replan().unwrap();
        let cold = solve(
            &Problem::new(s.app(), CommModel::Overlap, Objective::MinPeriod),
            &SearchBudget::default(),
        )
        .unwrap();
        assert_eq!(after_reweight.value, cold.value);
        let (replans, _) = s.stability();
        assert_eq!(replans, 3);
    }

    #[test]
    fn rejected_mutations_leave_the_session_untouched() {
        let mut s = session(&[(1.0, 0.5), (2.0, 0.6), (3.0, 0.7)]);
        s.replan().unwrap();
        let before_app = s.app().clone();
        let before_plan: Vec<_> = s.plan().unwrap().edges().collect();
        assert!(s
            .apply(TenantEvent::Arrive {
                cost: -1.0,
                selectivity: 0.5
            })
            .is_err());
        assert!(s
            .apply(TenantEvent::Reweight {
                service: 0,
                cost: 1.0,
                selectivity: -2.0
            })
            .is_err());
        assert!(s.apply(TenantEvent::Depart { service: 9 }).is_err());
        assert_eq!(s.app(), &before_app, "app must not be poisoned");
        assert_eq!(
            s.plan().unwrap().edges().collect::<Vec<_>>(),
            before_plan,
            "plan must survive rejected mutations"
        );
        s.replan().unwrap();
    }

    #[test]
    fn churn_counts_moved_parent_assignments() {
        let a = ExecutionGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let b = ExecutionGraph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        assert_eq!(plan_churn(&a, &b), 1); // only service 2 moved
        assert_eq!(plan_churn(&a, &a), 0);
        let c = ExecutionGraph::new(3);
        assert_eq!(plan_churn(&a, &c), 2);
    }
}
