//! # fsw-sim — discrete-event simulation of filtering workflow plans
//!
//! Substrate crate of the reproduction: it *executes* plans instead of
//! analysing them, so every analytic result of `fsw-sched` can be
//! cross-validated against an independent code path.
//!
//! * [`simulate_inorder`] — greedy event-driven execution of the one-port
//!   `INORDER` discipline with synchronous rendezvous transfers; its measured
//!   steady-state period must match the maximum-cycle-ratio analysis.
//! * [`replay_oplist`] — unrolls an explicit operation list over a finite
//!   stream of data sets, re-checks every resource constraint on the absolute
//!   timeline (including multi-port bandwidth sharing) and reports the
//!   achieved completion times.
//! * [`replay_trace`] — replays a *serving trace* (tenants, requests and
//!   service-set mutations arriving over time) through the `fsw_serve`
//!   planning service, with optional shadow cold solves cross-validating
//!   every served value bit-for-bit.
//! * [`replay_trace_async`] — the same timeline through the event-loop
//!   front end (`fsw_serve::AsyncFrontend`): bounded ingress queues,
//!   adaptive backpressure, deadline cancellation and stall watchdogs,
//!   with ordinal-keyed async faults (worker stalls, slow shards, ingress
//!   bursts) and a worker-count-independent decision digest.
//!
//! ```
//! use fsw_core::{Application, CommModel, ExecutionGraph};
//! use fsw_sched::overlap::overlap_period_oplist;
//! use fsw_sim::replay_oplist;
//!
//! let app = Application::independent(&[(4.0, 1.0); 5]);
//! let graph = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
//! let oplist = overlap_period_oplist(&app, &graph).unwrap();
//! let report = replay_oplist(&app, &graph, &oplist, CommModel::Overlap, 64).unwrap();
//! assert_eq!(report.period, 4.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod frontend_replay;
pub mod measure;
pub mod oneport;
pub mod replay;
pub mod serve_replay;

pub use frontend_replay::{
    replay_trace_async, AsyncDisposition, AsyncRequestOutcome, FrontendReplayConfig, FrontendReport,
};
pub use measure::SimReport;
pub use oneport::simulate_inorder;
pub use replay::replay_oplist;
pub use serve_replay::{
    replay_trace, Disposition, FaultPlan, RequestOutcome, RequestPath, ServeReplayConfig,
    TraceReport,
};
