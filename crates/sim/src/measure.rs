//! Measurements extracted from a simulation run.

/// Steady-state measurements of a stream execution.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Completion time of every data set (in arrival order).
    pub completions: Vec<f64>,
    /// Estimated steady-state period (inter-completion time over the second
    /// half of the run).
    pub period: f64,
    /// Completion time of the very first data set (its latency, since all data
    /// sets are available at time 0).
    pub first_latency: f64,
}

impl SimReport {
    /// Builds a report from per-data-set completion times.
    pub fn from_completions(completions: Vec<f64>) -> Self {
        let n = completions.len();
        let first_latency = completions.first().copied().unwrap_or(0.0);
        let period = if n >= 2 {
            let lo = n / 2;
            let hi = n - 1;
            if hi > lo {
                (completions[hi] - completions[lo]) / (hi - lo) as f64
            } else {
                completions[hi] - completions[hi - 1]
            }
        } else {
            0.0
        };
        SimReport {
            completions,
            period,
            first_latency,
        }
    }

    /// Number of data sets processed.
    pub fn data_sets(&self) -> usize {
        self.completions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_from_regular_completions() {
        let completions: Vec<f64> = (0..10).map(|i| 5.0 + 3.0 * i as f64).collect();
        let r = SimReport::from_completions(completions);
        assert_eq!(r.first_latency, 5.0);
        assert!((r.period - 3.0).abs() < 1e-12);
        assert_eq!(r.data_sets(), 10);
    }

    #[test]
    fn report_from_degenerate_runs() {
        assert_eq!(SimReport::from_completions(vec![]).period, 0.0);
        assert_eq!(SimReport::from_completions(vec![2.0]).first_latency, 2.0);
        let two = SimReport::from_completions(vec![2.0, 6.0]);
        assert!((two.period - 4.0).abs() < 1e-12);
    }
}
