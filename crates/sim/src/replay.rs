//! Replay of an operation list over a finite stream of data sets.
//!
//! The cyclic validator of `fsw-core` checks schedules "modulo λ"; the replay
//! simulator unrolls the schedule explicitly over `data_sets` consecutive data
//! sets (operation of data set `d` = operation of data set 0 shifted by
//! `d · λ`), re-checks every resource constraint on the absolute timeline, and
//! reports the achieved completion times.  This is the independent
//! cross-validation path for the `OVERLAP` schedules (bandwidth sharing), and
//! a sanity check that a "valid modulo λ" schedule really does run conflict
//! free when executed.

use fsw_core::{
    in_edges, out_edges, plan_edges, Application, CommModel, CoreError, CoreResult, ExecutionGraph,
    OperationList, PlanMetrics,
};

use crate::measure::SimReport;

/// An operation instance on the absolute timeline.
#[derive(Clone, Debug)]
struct Occurrence {
    start: f64,
    end: f64,
    /// Bandwidth consumed on the port (communications only).
    rate: f64,
}

/// Replays `oplist` for `data_sets` data sets under `model`.
///
/// Returns the per-data-set completion times, or the list of conflicts found
/// (as a [`CoreError::CyclicGraph`] with the details lost — use the modular
/// validator of `fsw-core` for diagnosis; the replay is a yes/no cross-check).
pub fn replay_oplist(
    app: &Application,
    graph: &ExecutionGraph,
    oplist: &OperationList,
    model: CommModel,
    data_sets: usize,
) -> CoreResult<SimReport> {
    oplist.covers(graph)?;
    let metrics = PlanMetrics::compute(app, graph)?;
    let lambda = oplist.lambda;
    if lambda.is_nan() || lambda <= 0.0 {
        return Err(CoreError::InvalidNumber {
            what: "period",
            value: lambda,
        });
    }
    let n = graph.n();
    let eps = 1e-7;

    // Completion time of each data set: the last communication of that data set.
    let mut completions = vec![0.0f64; data_sets];
    for (d, completion) in completions.iter_mut().enumerate() {
        let shift = d as f64 * lambda;
        let end = plan_edges(graph)
            .into_iter()
            .map(|e| oplist.comm(e).expect("coverage checked").end + shift)
            .fold(0.0f64, f64::max);
        *completion = end;
    }

    // Resource checks on the unrolled timeline.
    match model {
        CommModel::OutOrder | CommModel::InOrder => {
            for k in 0..n {
                let mut occ: Vec<Occurrence> = Vec::new();
                for d in 0..data_sets {
                    let shift = d as f64 * lambda;
                    let calc = oplist.calc(k);
                    occ.push(Occurrence {
                        start: calc.begin + shift,
                        end: calc.end + shift,
                        rate: 0.0,
                    });
                    for e in in_edges(graph, k).into_iter().chain(out_edges(graph, k)) {
                        let iv = oplist.comm(e).expect("coverage checked");
                        occ.push(Occurrence {
                            start: iv.begin + shift,
                            end: iv.end + shift,
                            rate: 0.0,
                        });
                    }
                }
                occ.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));
                for w in occ.windows(2) {
                    if w[1].start < w[0].end - eps {
                        return Err(CoreError::CyclicGraph);
                    }
                }
            }
        }
        CommModel::Overlap => {
            for k in 0..n {
                for edges in [in_edges(graph, k), out_edges(graph, k)] {
                    let mut occ: Vec<Occurrence> = Vec::new();
                    for d in 0..data_sets {
                        let shift = d as f64 * lambda;
                        for e in &edges {
                            let iv = oplist.comm(*e).expect("coverage checked");
                            let volume = metrics.edge_volume(app, *e);
                            if volume <= eps || iv.duration() <= eps {
                                continue;
                            }
                            occ.push(Occurrence {
                                start: iv.begin + shift,
                                end: iv.end + shift,
                                rate: volume / iv.duration(),
                            });
                        }
                    }
                    // Sweep the event points and check the aggregate rate.
                    let mut points: Vec<f64> = occ.iter().flat_map(|o| [o.start, o.end]).collect();
                    points.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
                    points.dedup_by(|a, b| (*a - *b).abs() <= eps);
                    for w in points.windows(2) {
                        let mid = 0.5 * (w[0] + w[1]);
                        let rate: f64 = occ
                            .iter()
                            .filter(|o| o.start <= mid && mid < o.end)
                            .map(|o| o.rate)
                            .sum();
                        if rate > 1.0 + 1e-6 {
                            return Err(CoreError::CyclicGraph);
                        }
                    }
                }
            }
        }
    }

    // Check that data-set precedence holds on the absolute timeline too (it is
    // shift-invariant, so checking data set 0 is enough).
    for k in 0..n {
        let calc = oplist.calc(k);
        for e in in_edges(graph, k) {
            if oplist.comm(e).expect("coverage checked").end > calc.begin + eps {
                return Err(CoreError::CyclicGraph);
            }
        }
        for e in out_edges(graph, k) {
            if calc.end > oplist.comm(e).expect("coverage checked").begin + eps {
                return Err(CoreError::CyclicGraph);
            }
        }
        // Computations of consecutive data sets must not overlap either.
        if calc.end - calc.begin > lambda + eps {
            return Err(CoreError::CyclicGraph);
        }
    }
    Ok(SimReport::from_completions(completions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_core::Interval;
    use fsw_sched::oneport::{inorder_oplist_for_orderings, oneport_period_search, OnePortStyle};
    use fsw_sched::overlap::overlap_period_oplist;

    fn section23() -> (Application, ExecutionGraph) {
        let app = Application::independent(&[(4.0, 1.0); 5]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
        (app, g)
    }

    #[test]
    fn overlap_schedule_replays_cleanly() {
        let (app, g) = section23();
        let ol = overlap_period_oplist(&app, &g).unwrap();
        let report = replay_oplist(&app, &g, &ol, CommModel::Overlap, 32).unwrap();
        assert_eq!(report.data_sets(), 32);
        assert!((report.period - 4.0).abs() < 1e-9);
    }

    #[test]
    fn inorder_schedule_replays_cleanly() {
        let (app, g) = section23();
        let search = oneport_period_search(&app, &g, OnePortStyle::InOrder, 1000).unwrap();
        let ol = inorder_oplist_for_orderings(&app, &g, &search.orderings).unwrap();
        let report = replay_oplist(&app, &g, &ol, CommModel::InOrder, 16).unwrap();
        assert!((report.period - 23.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn conflicting_replay_is_detected() {
        let (app, g) = section23();
        let search = oneport_period_search(&app, &g, OnePortStyle::InOrder, 1000).unwrap();
        let mut ol = inorder_oplist_for_orderings(&app, &g, &search.orderings).unwrap();
        // Shrinking the period below the optimum necessarily creates conflicts.
        ol.lambda = 6.0;
        assert!(replay_oplist(&app, &g, &ol, CommModel::InOrder, 16).is_err());
    }

    #[test]
    fn precedence_violation_detected_in_replay() {
        let (app, g) = section23();
        let mut ol = overlap_period_oplist(&app, &g).unwrap();
        let calc = ol.calc(1);
        ol.set_calc(1, Interval::new(calc.begin - 2.0, calc.end - 2.0));
        assert!(replay_oplist(&app, &g, &ol, CommModel::Overlap, 4).is_err());
    }
}
