//! Event-driven simulation of the one-port `INORDER` execution.
//!
//! Every server cycles through its operation sequence — receptions in a fixed
//! order, computation, emissions in a fixed order — one data set at a time;
//! service-to-service transfers are synchronous rendezvous (they start when
//! *both* endpoints have reached that operation and occupy both servers for
//! the whole transfer).  The simulation is greedy (self-timed): every
//! operation starts as soon as its server(s) allow it.
//!
//! The steady-state period measured here must match the maximum cycle ratio
//! computed analytically by `fsw-sched`/`fsw-eventgraph` for the same
//! orderings — that cross-validation is one of the main integration tests of
//! the workspace.

use fsw_core::{Application, CoreError, CoreResult, EdgeRef, ExecutionGraph, PlanMetrics};
use fsw_sched::CommOrderings;

use crate::measure::SimReport;

/// One operation of a server's per-data-set sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
enum ServerOp {
    Recv(EdgeRef),
    Calc,
    Send(EdgeRef),
}

/// Runs the greedy `INORDER` execution of `data_sets` consecutive data sets.
///
/// All data sets are available at time 0 at the input node (the source is
/// never the bottleneck), so the measured period is the intrinsic throughput
/// bound of the plan and the first completion time is the latency of the plan
/// when a single data set is processed in isolation... as long as it is not
/// slowed down by back-pressure, which `INORDER` never does for data set 0.
pub fn simulate_inorder(
    app: &Application,
    graph: &ExecutionGraph,
    ords: &CommOrderings,
    data_sets: usize,
) -> CoreResult<SimReport> {
    if !ords.is_consistent_with(graph) {
        return Err(CoreError::SizeMismatch {
            expected: graph.n(),
            found: ords.n(),
        });
    }
    let metrics = PlanMetrics::compute(app, graph)?;
    let n = graph.n();
    if n == 0 || data_sets == 0 {
        return Ok(SimReport::from_completions(Vec::new()));
    }

    // Per-server operation sequence for one data set.
    let mut seqs: Vec<Vec<ServerOp>> = Vec::with_capacity(n);
    for k in 0..n {
        let mut seq = Vec::new();
        for e in &ords.incoming[k] {
            seq.push(ServerOp::Recv(*e));
        }
        seq.push(ServerOp::Calc);
        for e in &ords.outgoing[k] {
            seq.push(ServerOp::Send(*e));
        }
        seqs.push(seq);
    }

    // Per-server cursor: (data set index, position in the sequence) and the
    // time at which the server becomes available for its next operation.
    let mut ds = vec![0usize; n];
    let mut pos = vec![0usize; n];
    let mut avail = vec![0.0f64; n];
    let mut completions = vec![0.0f64; data_sets];
    let mut done = vec![false; n];

    let duration = |k: usize, op: &ServerOp| -> f64 {
        match op {
            ServerOp::Calc => metrics.c_comp(k),
            ServerOp::Recv(e) | ServerOp::Send(e) => metrics.edge_volume(app, *e),
        }
    };

    loop {
        let mut progressed = false;
        let mut all_done = true;
        for k in 0..n {
            if done[k] {
                continue;
            }
            all_done = false;
            let op = seqs[k][pos[k]];
            let executed = match op {
                ServerOp::Calc
                | ServerOp::Recv(EdgeRef::Input(_))
                | ServerOp::Send(EdgeRef::Output(_)) => {
                    // Local operation: the server alone decides.
                    let start = avail[k];
                    let end = start + duration(k, &op);
                    avail[k] = end;
                    completions[ds[k]] = completions[ds[k]].max(end);
                    true
                }
                ServerOp::Recv(EdgeRef::Link(i, _)) | ServerOp::Send(EdgeRef::Link(_, i)) => {
                    // Rendezvous: the peer must have reached the same transfer
                    // for the same data set.
                    let peer = match op {
                        ServerOp::Recv(EdgeRef::Link(i, _)) => i,
                        ServerOp::Send(EdgeRef::Link(_, j)) => j,
                        _ => unreachable!(),
                    };
                    let _ = i;
                    let peer_ready = !done[peer]
                        && ds[peer] == ds[k]
                        && matches!(
                            (seqs[peer][pos[peer]], op),
                            (ServerOp::Send(a), ServerOp::Recv(b)) if a == b
                        ) | matches!(
                            (seqs[peer][pos[peer]], op),
                            (ServerOp::Recv(a), ServerOp::Send(b)) if a == b
                        );
                    if peer_ready {
                        let start = avail[k].max(avail[peer]);
                        let end = start + duration(k, &op);
                        avail[k] = end;
                        avail[peer] = end;
                        completions[ds[k]] = completions[ds[k]].max(end);
                        // Advance the peer past this transfer too.
                        advance(
                            &mut ds[peer],
                            &mut pos[peer],
                            &mut done[peer],
                            seqs[peer].len(),
                            data_sets,
                        );
                        true
                    } else {
                        false
                    }
                }
                ServerOp::Recv(EdgeRef::Output(_)) | ServerOp::Send(EdgeRef::Input(_)) => {
                    unreachable!("input edges are received, output edges are sent")
                }
            };
            if executed {
                advance(
                    &mut ds[k],
                    &mut pos[k],
                    &mut done[k],
                    seqs[k].len(),
                    data_sets,
                );
                progressed = true;
            }
        }
        if all_done {
            break;
        }
        if !progressed {
            // The rendezvous orders are mutually inconsistent: deadlock.
            return Err(CoreError::CyclicGraph);
        }
    }
    Ok(SimReport::from_completions(completions))
}

fn advance(ds: &mut usize, pos: &mut usize, done: &mut bool, seq_len: usize, data_sets: usize) {
    *pos += 1;
    if *pos == seq_len {
        *pos = 0;
        *ds += 1;
        if *ds == data_sets {
            *done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_sched::oneport::inorder_period_for_orderings;

    fn section23() -> (Application, ExecutionGraph) {
        let app = Application::independent(&[(4.0, 1.0); 5]);
        let g = ExecutionGraph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]).unwrap();
        (app, g)
    }

    #[test]
    fn chain_simulation_matches_closed_form() {
        let app = Application::independent(&[(2.0, 0.5), (3.0, 2.0), (1.0, 1.0)]);
        let g = ExecutionGraph::chain_of(3, &[0, 1, 2]).unwrap();
        let ords = CommOrderings::natural(&g);
        let report = simulate_inorder(&app, &g, &ords, 64).unwrap();
        let analytic = inorder_period_for_orderings(&app, &g, &ords).unwrap();
        assert!(
            (report.period - analytic).abs() < 1e-6,
            "{report:?} vs {analytic}"
        );
        // Latency of the first data set on the chain:
        // 1 (in) + 2 (C1) + 0.5 + 1.5 (C2) + 1 + 1 (C3) + 1 (out) = 8.
        assert!((report.first_latency - 8.0).abs() < 1e-9);
    }

    #[test]
    fn section23_simulation_matches_event_graph_analysis() {
        let (app, g) = section23();
        for ords in fsw_sched::CommOrderings::enumerate_all(&g, 100).unwrap() {
            let analytic = inorder_period_for_orderings(&app, &g, &ords).unwrap();
            let report = simulate_inorder(&app, &g, &ords, 400).unwrap();
            // Self-timed executions of a marked graph become periodic after a
            // transient, possibly with a cyclicity larger than one data set, so
            // the measured slope carries a small sampling error.
            assert!(
                (report.period - analytic).abs() < 0.05,
                "ordering {ords:?}: simulated {} vs analytic {analytic}",
                report.period
            );
        }
    }

    #[test]
    fn first_data_set_latency_matches_latency_module() {
        let (app, g) = section23();
        let ords = CommOrderings::natural(&g);
        let (latency, _) = fsw_sched::oneport_latency_for_orderings(&app, &g, &ords).unwrap();
        let report = simulate_inorder(&app, &g, &ords, 8).unwrap();
        assert!((report.first_latency - latency).abs() < 1e-9);
    }

    #[test]
    fn empty_and_trivial_runs() {
        let (app, g) = section23();
        let ords = CommOrderings::natural(&g);
        let empty = simulate_inorder(&app, &g, &ords, 0).unwrap();
        assert_eq!(empty.data_sets(), 0);
        let single = simulate_inorder(&app, &g, &ords, 1).unwrap();
        assert_eq!(single.data_sets(), 1);
        assert!(single.first_latency > 0.0);
    }

    #[test]
    fn inconsistent_orderings_rejected() {
        let (app, g) = section23();
        let other = ExecutionGraph::from_edges(5, &[(0, 1)]).unwrap();
        let ords = CommOrderings::natural(&other);
        assert!(simulate_inorder(&app, &g, &ords, 4).is_err());
    }
}
