//! Replay of a serving trace through the multi-tenant planning service.
//!
//! The analytic twin of the op-list replay: where [`crate::replay_oplist`]
//! executes one *schedule* against the resource rules, this harness
//! executes a whole *serving timeline*
//! ([`fsw_workloads::streaming::ArrivalTrace`]) against the `fsw_serve`
//! stack — tenants are admitted into [`TenantSession`]s, request batches
//! flow through a [`PlanService`] (admission control + fingerprint store +
//! in-flight dedup + worker pool), and service-set mutations trigger
//! warm-started online re-plans whose results are published back into the
//! store.
//!
//! With [`ServeReplayConfig::verify`] on, every **exactly answered** request
//! additionally runs a **shadow cold solve** of the tenant's current
//! application outside the serving path: the report then carries, per
//! request, the ground-truth value (served `Exact` values must match it
//! bit-for-bit) and the cold evaluation count (warm re-plans must not
//! evaluate more).  Shadow solves are memoised by the tenant's exact
//! service list — a 100 000-request trace over a handful of templates costs
//! a handful of shadow solves — and are excluded from the serving wall
//! time.
//!
//! With a non-empty [`FaultPlan`], the replay drives the service's
//! deterministic fault hook: solver panics, artificial slowdowns and
//! deadline blowouts are injected by **request ordinal** (arrival order at
//! the service), so a faulted replay takes the same admit/degrade/reject
//! path whatever the worker thread count — the foundation of the
//! robustness digests asserted in tests and the E15 overload experiment.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use fsw_core::{Application, CommModel, CoreError, CoreResult};
use fsw_sched::engine::EvalCache;
use fsw_sched::orchestrator::{solve_warm, Objective, Problem, SearchBudget};
use fsw_serve::{
    FrontendFault, InjectedFault, PlanRequest, PlanService, ServeOutcome, ServeSource,
    ServiceStats, StoreStats, TenantSession,
};
use fsw_workloads::streaming::{ArrivalTrace, TraceEventKind};

/// How a request was answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestPath {
    /// Cold solve (the leader of its fingerprint in its batch).
    Cold,
    /// Served from the plan store.
    Store,
    /// Deduplicated in flight against a same-batch leader.
    Dedup,
    /// Warm-started online re-plan after a service-set mutation.
    Replan,
    /// No plan served: rejected by admission, quarantine, or a caught
    /// solver panic.
    Rejected,
}

/// The quality tier of a request's answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Exhaustive answer, bit-identical to a cold solve.
    Exact,
    /// Best incumbent under a fired deadline or breached cap.
    Degraded,
    /// No plan at all.
    Rejected,
}

/// One request's outcome in the replay.
#[derive(Clone, Debug)]
pub struct RequestOutcome {
    /// The step the request fired at.
    pub step: usize,
    /// The requesting tenant.
    pub tenant: usize,
    /// How it was answered.
    pub path: RequestPath,
    /// The answer's quality tier.
    pub disposition: Disposition,
    /// The served objective value (`NaN` on the rejected path).
    pub value: f64,
    /// Whether the underlying solve was exhaustive.
    pub exhaustive: bool,
    /// Certified admissible lower bound of a degraded answer (or the floor
    /// quoted with a rejection), when one was priced.
    pub lower_bound: Option<f64>,
    /// Wall-clock latency attributed to the request: its batch's serving
    /// time (shared across the batch) or its re-plan's solve time.
    pub latency: Duration,
    /// Plan churn of a re-plan (moved parent assignments); `None` off the
    /// replan path.
    pub churn: Option<usize>,
    /// The warm-start seed of a re-plan.
    pub warm_value: Option<f64>,
    /// Candidates evaluated by a re-plan's search (0 off the replan path).
    pub evaluated: usize,
    /// Ground-truth value from the shadow cold solve (verify mode, exact
    /// answers only).
    pub cold_value: Option<f64>,
    /// Candidates the shadow cold solve evaluated (verify mode).
    pub cold_evaluated: Option<usize>,
}

/// Aggregate report of one trace replay.
#[derive(Debug)]
pub struct TraceReport {
    /// Per-request outcomes, in timeline order.
    pub outcomes: Vec<RequestOutcome>,
    /// Tenants admitted.
    pub tenants: usize,
    /// Wall time spent *serving* (batches + re-plans; shadow solves and
    /// bookkeeping excluded).
    pub serve_wall: Duration,
    /// The plan store's final counters.
    pub store: StoreStats,
    /// The service's final counters (replans are not service requests).
    pub service: ServiceStats,
    /// Plan-store entries holding a non-exhaustive plan at the end of the
    /// replay — the store-purity invariant says this is always `0`.
    pub store_non_exhaustive: usize,
}

impl TraceReport {
    /// Total requests answered (serving paths + re-plans).
    pub fn requests(&self) -> usize {
        self.outcomes.len()
    }

    /// Requests served without any solve (store + dedup).
    pub fn served(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.path, RequestPath::Store | RequestPath::Dedup))
            .count()
    }

    /// Fraction of requests served from cache or dedup.
    pub fn served_ratio(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.served() as f64 / self.outcomes.len() as f64
    }

    /// Number of re-plan outcomes.
    pub fn replans(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.path == RequestPath::Replan)
            .count()
    }

    /// `(exact, degraded, rejected)` — the answer-quality mix.
    pub fn mix(&self) -> (usize, usize, usize) {
        self.outcomes
            .iter()
            .fold((0, 0, 0), |(e, d, r), o| match o.disposition {
                Disposition::Exact => (e + 1, d, r),
                Disposition::Degraded => (e, d + 1, r),
                Disposition::Rejected => (e, d, r + 1),
            })
    }

    /// The `p`-th percentile (0–100, nearest-rank) of per-request latency.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.outcomes.is_empty() {
            return Duration::ZERO;
        }
        let mut latencies: Vec<Duration> = self.outcomes.iter().map(|o| o.latency).collect();
        latencies.sort_unstable();
        let rank = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
        latencies[rank.min(latencies.len() - 1)]
    }

    /// Sum of plan churn over all re-plans.
    pub fn total_churn(&self) -> usize {
        self.outcomes.iter().filter_map(|o| o.churn).sum()
    }

    /// `(warm, cold)` evaluation totals over the re-plans that carry shadow
    /// counts (verify mode): the warm side must never exceed the cold side.
    pub fn replan_evaluations(&self) -> (usize, usize) {
        self.outcomes
            .iter()
            .filter(|o| o.path == RequestPath::Replan && o.cold_evaluated.is_some())
            .fold((0, 0), |(w, c), o| {
                (w + o.evaluated, c + o.cold_evaluated.unwrap_or(0))
            })
    }

    /// Requests whose served value differs (bitwise) from the shadow cold
    /// solve's value — must be `0` in verify mode (only `Exact` answers
    /// carry a ground truth; degraded and rejected ones promise none).
    pub fn value_mismatches(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| {
                o.cold_value
                    .is_some_and(|cold| cold.to_bits() != o.value.to_bits())
            })
            .count()
    }

    /// Serving throughput in requests per second.
    pub fn requests_per_second(&self) -> f64 {
        let secs = self.serve_wall.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        self.outcomes.len() as f64 / secs
    }

    /// A thread-count-independent digest of the replay for determinism
    /// tests: `(step, tenant, path, disposition, value bits, churn)` per
    /// request.  Latencies and evaluation counts are excluded — parallel
    /// searches return identical *results* but different timings, and may
    /// probe more candidates against a staler incumbent.
    #[allow(clippy::type_complexity)] // a flat digest row, named by its doc
    pub fn digest(&self) -> Vec<(usize, usize, RequestPath, Disposition, u64, Option<usize>)> {
        self.outcomes
            .iter()
            .map(|o| {
                (
                    o.step,
                    o.tenant,
                    o.path,
                    o.disposition,
                    o.value.to_bits(),
                    o.churn,
                )
            })
            .collect()
    }
}

/// A deterministic fault schedule for a replay: faults are keyed by the
/// **request ordinal** at the service (arrival order across the replay),
/// so the same plan replayed under any worker thread count injects the
/// same faults into the same requests.  A solver fault fires when its
/// request leads a cold solve; ordinals answered from the store,
/// deduplicated, or rejected before the pool leave their fault unused.
///
/// Beyond the solver-level faults (panic / slow / deadline blowout), the
/// plan carries **async-layer faults** for the event-loop front end
/// ([`fsw_serve::AsyncFrontend`]): worker stalls and slow store shards
/// ([`FrontendFault`], same ordinal keying), and **ingress bursts** — at
/// the scheduled ordinal the replay driver injects that many extra
/// synthetic requests, modelling an arrival spike.  All of them stay
/// keyed by ordinal, so replay digests remain thread-count independent.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: HashMap<u64, InjectedFault>,
    frontend_faults: HashMap<u64, FrontendFault>,
    bursts: HashMap<u64, usize>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a solver panic at request `ordinal`.
    pub fn panic_at(mut self, ordinal: u64) -> Self {
        self.faults.insert(ordinal, InjectedFault::Panic);
        self
    }

    /// Schedules an artificial `stall` before the solve at `ordinal`.
    pub fn slow_at(mut self, ordinal: u64, stall: Duration) -> Self {
        self.faults.insert(ordinal, InjectedFault::Slow(stall));
        self
    }

    /// Schedules a deadline blowout (the solve starts with its deadline
    /// already expired and degrades to the deterministic fallback) at
    /// `ordinal`.
    pub fn blowout_at(mut self, ordinal: u64) -> Self {
        self.faults.insert(ordinal, InjectedFault::DeadlineBlowout);
        self
    }

    /// Schedules a **worker stall** at `ordinal` (async front end): the
    /// worker sleeps for `stall` before solving, and the loop's watchdog —
    /// provided `stall` comfortably exceeds the configured
    /// `stall_timeout` — times the solve out as a
    /// [`fsw_serve::RejectReason::WorkerStall`].
    pub fn stall_worker_at(mut self, ordinal: u64, stall: Duration) -> Self {
        self.frontend_faults
            .insert(ordinal, FrontendFault::StallWorker(stall));
        self
    }

    /// Schedules a **slow store shard** at `ordinal` (async front end):
    /// the dequeue path sleeps for `delay` before the store lookup.
    /// Wall-clock only — decisions and digests are unaffected.
    pub fn slow_shard_at(mut self, ordinal: u64, delay: Duration) -> Self {
        self.frontend_faults
            .insert(ordinal, FrontendFault::SlowShard(delay));
        self
    }

    /// Schedules an **ingress burst** at `ordinal`: when the replay driver
    /// submits that ordinal, it follows up with `extra` synthetic copies of
    /// the same tenant's request in the same step.
    pub fn burst_at(mut self, ordinal: u64, extra: usize) -> Self {
        self.bursts.insert(ordinal, extra);
        self
    }

    /// The solver fault scheduled at `ordinal`, if any.
    pub fn at(&self, ordinal: u64) -> Option<InjectedFault> {
        self.faults.get(&ordinal).copied()
    }

    /// The async-layer fault scheduled at `ordinal`, if any.
    pub fn frontend_at(&self, ordinal: u64) -> Option<FrontendFault> {
        self.frontend_faults.get(&ordinal).copied()
    }

    /// The ingress burst scheduled at `ordinal`, if any.
    pub fn burst_of(&self, ordinal: u64) -> Option<usize> {
        self.bursts.get(&ordinal).copied()
    }

    /// `true` when no fault of any layer is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.frontend_faults.is_empty() && self.bursts.is_empty()
    }

    /// Number of scheduled faults across all layers.
    pub fn len(&self) -> usize {
        self.faults.len() + self.frontend_faults.len() + self.bursts.len()
    }
}

/// Parameters of a trace replay.
#[derive(Clone, Debug)]
pub struct ServeReplayConfig {
    /// Budget of every solve (serving and re-planning); its `time_limit` is
    /// armed per request.
    pub budget: SearchBudget,
    /// Plan-store capacity.  Note that eviction weighs entries by measured
    /// wall time, so an over-subscribed store makes replays timing
    /// dependent; determinism tests size it above the fingerprint count.
    pub store_capacity: usize,
    /// Run a shadow cold solve per exactly-answered request (ground truth
    /// + node counts).
    pub verify: bool,
    /// The communication model every request plans for.
    pub model: CommModel,
    /// The objective every request optimises.
    pub objective: Objective,
    /// Faults to inject, by request ordinal (empty = fault-free).
    pub faults: FaultPlan,
}

impl Default for ServeReplayConfig {
    fn default() -> Self {
        ServeReplayConfig {
            budget: SearchBudget::default(),
            store_capacity: 256,
            verify: false,
            model: CommModel::Overlap,
            objective: Objective::MinPeriod,
            faults: FaultPlan::new(),
        }
    }
}

/// Replays `trace` through a fresh [`PlanService`] (see the module docs).
/// Events of one step form one service batch; mutations precede the step's
/// requests.  Returns the per-request outcomes and aggregate counters.
///
/// Rejected requests (admission, quarantine, injected panics) are reported
/// like any other outcome — the tenant keeps its previous plan, nothing is
/// adopted and no shadow solve runs.
pub fn replay_trace(trace: &ArrivalTrace, config: &ServeReplayConfig) -> CoreResult<TraceReport> {
    let mut service = PlanService::new(config.budget, config.store_capacity);
    if !config.faults.is_empty() {
        let faults = config.faults.clone();
        service = service.with_fault_injection(move |ordinal| faults.at(ordinal));
    }
    let service = service;
    let mut sessions: Vec<Option<TenantSession>> = (0..trace.tenants).map(|_| None).collect();
    // A tenant is dirty between a mutation and its next request: that
    // request re-plans online instead of going through the batch.
    let mut dirty = vec![false; trace.tenants];
    // Shadow ground truths memoised by the tenant's exact service list (in
    // label order — only an *identical* application may share a shadow).
    let mut shadow_memo: HashMap<Vec<(u64, u64)>, (f64, usize)> = HashMap::new();
    let mut outcomes = Vec::new();
    let mut serve_wall = Duration::ZERO;
    let mut at = 0;
    while at < trace.events.len() {
        let step = trace.events[at].step;
        let mut end = at;
        while end < trace.events.len() && trace.events[end].step == step {
            end += 1;
        }
        let events = &trace.events[at..end];
        at = end;
        // 1. Admissions and mutations of the step.
        for event in events {
            match &event.kind {
                TraceEventKind::Admit { services } => {
                    let app = Application::independent(services);
                    sessions[event.tenant] = Some(TenantSession::new(
                        app,
                        config.model,
                        config.objective,
                        config.budget,
                    )?);
                }
                TraceEventKind::Arrive { cost, selectivity } => {
                    session_mut(&mut sessions, event.tenant)?.apply(
                        fsw_serve::TenantEvent::Arrive {
                            cost: *cost,
                            selectivity: *selectivity,
                        },
                    )?;
                    dirty[event.tenant] = true;
                }
                TraceEventKind::Depart { service: departed } => {
                    session_mut(&mut sessions, event.tenant)?
                        .apply(fsw_serve::TenantEvent::Depart { service: *departed })?;
                    dirty[event.tenant] = true;
                }
                TraceEventKind::Reweight {
                    service: target,
                    cost,
                    selectivity,
                } => {
                    session_mut(&mut sessions, event.tenant)?.apply(
                        fsw_serve::TenantEvent::Reweight {
                            service: *target,
                            cost: *cost,
                            selectivity: *selectivity,
                        },
                    )?;
                    dirty[event.tenant] = true;
                }
                TraceEventKind::Request => {}
            }
        }
        // 2. The step's requests: dirty tenants re-plan online (and publish
        // the result), the rest form one service batch.
        let mut batch_tenants: Vec<usize> = Vec::new();
        for event in events {
            if !matches!(event.kind, TraceEventKind::Request) {
                continue;
            }
            let tenant = event.tenant;
            if dirty[tenant] {
                dirty[tenant] = false;
                let session = session_mut(&mut sessions, tenant)?;
                let started = Instant::now();
                let replan = session.replan()?;
                let elapsed = started.elapsed();
                serve_wall += elapsed;
                // Sessions and service run under the same config budget, so
                // the budget-equality gate of `publish` accepts here (the
                // exhaustiveness gate still applies: an interrupted re-plan
                // is served to the tenant but never cached).
                service.publish(
                    session.app(),
                    config.model,
                    config.objective,
                    &config.budget,
                    replan.value,
                    &replan.graph,
                    replan.exhaustive,
                    elapsed.as_micros().min(u64::MAX as u128) as u64,
                );
                let (cold_value, cold_evaluated) = if config.verify && replan.exhaustive {
                    let (value, evaluated) = shadow_cold_solve(
                        &mut shadow_memo,
                        session.app(),
                        config.model,
                        config.objective,
                        &config.budget,
                    )?;
                    (Some(value), Some(evaluated))
                } else {
                    (None, None)
                };
                outcomes.push(RequestOutcome {
                    step,
                    tenant,
                    path: RequestPath::Replan,
                    disposition: if replan.exhaustive {
                        Disposition::Exact
                    } else {
                        Disposition::Degraded
                    },
                    value: replan.value,
                    exhaustive: replan.exhaustive,
                    lower_bound: None,
                    latency: elapsed,
                    churn: Some(replan.churn),
                    warm_value: replan.warm_value,
                    evaluated: replan.evaluated,
                    cold_value,
                    cold_evaluated,
                });
            } else {
                batch_tenants.push(tenant);
            }
        }
        if !batch_tenants.is_empty() {
            let requests: Vec<PlanRequest> = batch_tenants
                .iter()
                .map(|&tenant| {
                    let session = sessions[tenant].as_ref().expect("admitted before request");
                    PlanRequest::new(session.app().clone(), config.model, config.objective)
                })
                .collect();
            let started = Instant::now();
            let served = service.serve_batch(&requests)?;
            let batch_elapsed = started.elapsed();
            serve_wall += batch_elapsed;
            for (&tenant, served_outcome) in batch_tenants.iter().zip(served) {
                let outcome = match served_outcome {
                    ServeOutcome::Rejected(rejection) => RequestOutcome {
                        step,
                        tenant,
                        path: RequestPath::Rejected,
                        disposition: Disposition::Rejected,
                        value: f64::NAN,
                        exhaustive: false,
                        lower_bound: rejection.estimate.and_then(|e| e.value_floor),
                        latency: batch_elapsed,
                        churn: None,
                        warm_value: None,
                        evaluated: 0,
                        cold_value: None,
                        cold_evaluated: None,
                    },
                    ServeOutcome::Exact(response) => {
                        let session = session_mut(&mut sessions, tenant)?;
                        session.adopt(response.graph.clone())?;
                        let (cold_value, cold_evaluated) = if config.verify {
                            let (value, evaluated) = shadow_cold_solve(
                                &mut shadow_memo,
                                session.app(),
                                config.model,
                                config.objective,
                                &config.budget,
                            )?;
                            (Some(value), Some(evaluated))
                        } else {
                            (None, None)
                        };
                        RequestOutcome {
                            step,
                            tenant,
                            path: path_of(response.source),
                            disposition: Disposition::Exact,
                            value: response.value,
                            exhaustive: true,
                            lower_bound: None,
                            latency: batch_elapsed,
                            churn: None,
                            warm_value: None,
                            evaluated: 0,
                            cold_value,
                            cold_evaluated,
                        }
                    }
                    ServeOutcome::Degraded {
                        response,
                        lower_bound,
                        ..
                    } => {
                        let session = session_mut(&mut sessions, tenant)?;
                        session.adopt(response.graph.clone())?;
                        RequestOutcome {
                            step,
                            tenant,
                            path: path_of(response.source),
                            disposition: Disposition::Degraded,
                            value: response.value,
                            exhaustive: false,
                            lower_bound: (lower_bound > 0.0).then_some(lower_bound),
                            latency: batch_elapsed,
                            churn: None,
                            warm_value: None,
                            evaluated: 0,
                            cold_value: None,
                            cold_evaluated: None,
                        }
                    }
                };
                outcomes.push(outcome);
            }
        }
    }
    Ok(TraceReport {
        outcomes,
        tenants: trace.tenants,
        serve_wall,
        store: service.store().stats(),
        store_non_exhaustive: service.store().non_exhaustive_len(),
        service: service.stats(),
    })
}

fn path_of(source: ServeSource) -> RequestPath {
    match source {
        ServeSource::Cold => RequestPath::Cold,
        ServeSource::Store => RequestPath::Store,
        ServeSource::Dedup => RequestPath::Dedup,
    }
}

fn session_mut(
    sessions: &mut [Option<TenantSession>],
    tenant: usize,
) -> CoreResult<&mut TenantSession> {
    sessions
        .get_mut(tenant)
        .and_then(|s| s.as_mut())
        .ok_or(CoreError::Unsupported {
            reason: "trace event for a tenant that was never admitted",
        })
}

/// A from-scratch solve of `app` outside the serving path: the ground-truth
/// value and the number of candidates a cold search evaluates.  Memoised by
/// the exact service list (label order included), so identical applications
/// pay for one shadow solve however many requests they issue.
fn shadow_cold_solve(
    memo: &mut HashMap<Vec<(u64, u64)>, (f64, usize)>,
    app: &Application,
    model: CommModel,
    objective: Objective,
    budget: &SearchBudget,
) -> CoreResult<(f64, usize)> {
    let key: Vec<(u64, u64)> = app
        .services()
        .iter()
        .map(|s| (s.cost.to_bits(), s.selectivity.to_bits()))
        .collect();
    if let Some(&cached) = memo.get(&key) {
        return Ok(cached);
    }
    let cache = EvalCache::new(app);
    let (solution, stats) = solve_warm(&Problem::new(app, model, objective), budget, &cache, None)?;
    memo.insert(key, (solution.value, stats.evaluated));
    Ok((solution.value, stats.evaluated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsw_workloads::streaming::{serving_trace, TraceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_trace() -> ArrivalTrace {
        serving_trace(
            &TraceConfig {
                tenants: 6,
                steps: 8,
                templates: 2,
                services_per_tenant: 4,
                mutation_rate: 0.5,
                requests_per_step: 3,
                ..TraceConfig::default()
            },
            &mut StdRng::seed_from_u64(42),
        )
    }

    #[test]
    fn replay_serves_every_request_and_matches_ground_truth() {
        let trace = small_trace();
        let config = ServeReplayConfig {
            verify: true,
            ..ServeReplayConfig::default()
        };
        let report = replay_trace(&trace, &config).unwrap();
        assert_eq!(report.requests(), trace.request_count());
        assert_eq!(report.value_mismatches(), 0, "served != ground truth");
        assert!(report.served() > 0, "store/dedup never fired");
        let (exact, degraded, rejected) = report.mix();
        assert_eq!(exact, report.requests(), "fault-free small trace is exact");
        assert_eq!((degraded, rejected), (0, 0));
        assert_eq!(report.store_non_exhaustive, 0);
        let (warm, cold) = report.replan_evaluations();
        if report.replans() > 0 {
            assert!(warm <= cold, "warm re-plans evaluated more than cold");
        }
    }

    #[test]
    fn replay_is_deterministic_for_one_thread_count() {
        let trace = small_trace();
        let config = ServeReplayConfig::default();
        let a = replay_trace(&trace, &config).unwrap();
        let b = replay_trace(&trace, &config).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.store, b.store);
        assert_eq!(a.service, b.service);
    }

    #[test]
    fn injected_panics_reject_deterministically_and_keep_the_store_pure() {
        let trace = small_trace();
        // Panic the very first cold solve and blow the deadline of a later
        // one; the replay must complete with every request answered.
        let config = ServeReplayConfig {
            faults: FaultPlan::new().panic_at(0).blowout_at(7),
            ..ServeReplayConfig::default()
        };
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = replay_trace(&trace, &config).unwrap();
        let again = replay_trace(&trace, &config).unwrap();
        std::panic::set_hook(quiet);
        assert_eq!(report.requests(), trace.request_count(), "nothing hangs");
        let (_, _, rejected) = report.mix();
        assert!(rejected > 0, "the injected panic rejected its request");
        assert_eq!(report.service.panics, 1);
        assert_eq!(report.store_non_exhaustive, 0, "store purity");
        assert_eq!(report.digest(), again.digest(), "faulted replays replay");
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let trace = small_trace();
        let report = replay_trace(&trace, &ServeReplayConfig::default()).unwrap();
        let p50 = report.latency_percentile(50.0);
        let p99 = report.latency_percentile(99.0);
        assert!(p50 <= p99);
        assert!(p99 > Duration::ZERO);
    }
}
